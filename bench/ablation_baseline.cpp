// Ablation: how strong can the conventional baseline be made?
//
// The paper's baseline solves Eq. 11, normalizes, and rounds
// (kUnitNorm).  A practitioner could do better with a power-of-two gain
// before rounding: fill the representable range (kMaxRange) or the
// largest gain that still satisfies the overflow constraints
// (kOverflowAware).  This bench shows that even the strongest
// conventional variant trails LDA-FP at short word lengths — the gap is
// the value of optimizing over the grid directly, not an artifact of a
// weak baseline.
#include <cstdio>
#include <string>

#include "data/synthetic.h"
#include "eval/experiment.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace ldafp;

  support::Rng rng(11);
  const auto train = data::make_synthetic(3000, rng);
  const auto test = data::make_synthetic(10000, rng);

  std::printf("Ablation — conventional-LDA rescale policy vs LDA-FP "
              "(synthetic set)\n\n");
  support::TextTable table({"W", "LDA unit-norm", "LDA max-range",
                            "LDA overflow-aware", "LDA-FP"});
  for (const int w : {4, 6, 8, 10, 12, 14}) {
    std::vector<std::string> row{std::to_string(w)};
    double fp_error = 0.0;
    for (const auto policy :
         {core::LdaGainPolicy::kUnitNorm, core::LdaGainPolicy::kMaxRange,
          core::LdaGainPolicy::kOverflowAware}) {
      eval::ExperimentConfig config;
      config.word_lengths = {w};
      config.lda_gain = policy;
      config.ldafp.bnb.max_nodes = 6000;
      config.ldafp.bnb.max_seconds = 15.0;
      config.ldafp.bnb.rel_gap = 1e-3;
      const eval::TrialResult trial =
          eval::run_trial(train, test, w, config);
      row.push_back(support::format_percent(trial.lda_error));
      fp_error = trial.ldafp_error;  // identical across policies
    }
    row.push_back(support::format_percent(fp_error));
    table.add_row(std::move(row));
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Expectation: gain policies help the baseline at medium "
              "word lengths, but LDA-FP\nstill dominates at 4-8 bits.\n");
  return 0;
}
