// Ablation: sensitivity to the confidence level ρ (Eq. 16).
//
// ρ controls how conservatively the Eq. 18/20 anti-overflow constraints
// box in the weights: larger ρ (larger β) shrinks the feasible set —
// fewer overflows at inference but less freedom for the optimizer.  The
// paper fixes one (unstated) ρ; this bench sweeps it and reports test
// error plus observed inference-time overflow events.
#include <cstdio>
#include <string>

#include "core/format_policy.h"
#include "core/lda.h"
#include "core/ldafp.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "stats/normal.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace ldafp;

  support::Rng rng(9);
  const auto train = data::make_synthetic(3000, rng);
  const auto test = data::make_synthetic(8000, rng);
  const core::TrainingSet raw = train.to_training_set();

  std::printf("Ablation — confidence level rho of Eq. 16 "
              "(synthetic set, Q1.7 where Eq. 18/20 bind)\n\n");
  support::TextTable table({"rho", "beta", "LDA-FP error",
                            "Final overflows", "Product overflows",
                            "LDA-FP cost", "Overflow-aware LDA error"});
  // Fix the preprocessing (format + feature scale) at a reference
  // confidence once: re-scaling per rho would exactly cancel the
  // constraint tightening (the limit on |w_m| is max_value/(beta*sigma_m)
  // and sigma_m scales like 1/beta under the format policy) — itself a
  // finding this bench documents.
  const core::FormatChoice choice =
      core::choose_format(raw, 8, stats::confidence_beta(0.9), 1);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, choice.feature_scale);
  for (const double rho : {0.5, 0.9, 0.99, 0.999, 0.9999, 0.999999}) {
    const double beta = stats::confidence_beta(rho);

    core::LdaFpOptions options;
    options.rho = rho;
    options.bnb.max_nodes = 8000;
    options.bnb.max_seconds = 20.0;
    const core::LdaFpTrainer trainer(choice.format, options);
    const core::LdaFpResult result = trainer.train(scaled);
    if (!result.found()) {
      table.add_row({support::format_double(rho, 6),
                     support::format_double(beta, 3), "infeasible", "-",
                     "-", "-", "-"});
      continue;
    }
    const core::FixedClassifier clf = trainer.make_classifier(result);
    fixed::DotDiagnostics diag;
    const double error =
        eval::evaluate(clf, test, choice.feature_scale, &diag).error();

    // Contrast: the overflow-aware baseline *does* move with beta, since
    // its power-of-two gain backs off until Eq. 18/20 hold.
    const auto model = core::fit_two_class_model(
        core::quantize_training_set(scaled, choice.format));
    const core::FixedClassifier baseline = core::quantize_lda(
        core::fit_lda(scaled), model, beta, choice.format,
        core::LdaGainPolicy::kOverflowAware);
    const double baseline_error =
        eval::evaluate(baseline, test, choice.feature_scale).error();

    table.add_row({support::format_double(rho, 6),
                   support::format_double(beta, 3),
                   support::format_percent(error),
                   diag.final_overflow ? "yes" : "no",
                   std::to_string(diag.product_overflows),
                   support::format_double(result.cost, 6),
                   support::format_percent(baseline_error)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Finding: LDA-FP is insensitive to rho — its cost is scale-"
      "invariant, so the\noptimizer simply shrinks the weights away from "
      "the tightening constraints with\nonly grid-resolution losses.  "
      "The overflow-aware baseline, whose gain is set by\nbeta directly, "
      "shows the dependence rho would otherwise cause.  This supports\n"
      "the paper treating rho casually (\"sufficiently large\").\n");
  return 0;
}
