// Ablation: accumulator architecture of the inference datapath.
//
// The paper's training model accounts for weight-grid rounding and
// overflow but not per-product rounding.  That matches a MAC with a wide
// (K + 2F bit) accumulator that rounds once at the end; the cheapest
// datapath instead narrows every product to QK.F first, injecting
// rounding noise per term.  This bench evaluates identical trained
// classifiers under both architectures.
#include <cstdio>
#include <string>

#include "core/format_policy.h"
#include "core/lda.h"
#include "core/ldafp.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "stats/normal.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace ldafp;

  support::Rng rng(13);
  const auto train = data::make_synthetic(3000, rng);
  const auto test = data::make_synthetic(10000, rng);
  const core::TrainingSet raw = train.to_training_set();
  const double beta = stats::confidence_beta(0.9999);

  std::printf("Ablation — wide vs narrow MAC accumulator at inference "
              "(synthetic set)\n\n");
  support::TextTable table({"W", "LDA-FP wide acc", "LDA-FP narrow acc",
                            "LDA wide acc", "LDA narrow acc"});
  for (const int w : {4, 6, 8, 10, 12}) {
    const core::FormatChoice choice = core::choose_format(raw, w, beta, 2);
    const core::TrainingSet scaled =
        core::scale_training_set(raw, choice.feature_scale);

    core::LdaFpOptions options;
    options.bnb.max_nodes = 6000;
    options.bnb.max_seconds = 15.0;
    const core::LdaFpTrainer trainer(choice.format, options);
    const core::LdaFpResult fp = trainer.train(scaled);

    const core::LdaModel lda = core::fit_lda(scaled);
    const auto model = core::fit_two_class_model(
        core::quantize_training_set(scaled, choice.format));

    auto error_for = [&](const linalg::Vector& weights, double threshold,
                         fixed::AccumulatorMode acc) {
      const core::FixedClassifier clf(choice.format, weights, threshold,
                                      fixed::RoundingMode::kNearestEven,
                                      acc);
      return eval::evaluate(clf, test, choice.feature_scale).error();
    };
    const core::FixedClassifier lda_clf =
        core::quantize_lda(lda, model, beta, choice.format,
                           core::LdaGainPolicy::kUnitNorm);

    std::vector<std::string> row{std::to_string(w)};
    if (fp.found()) {
      row.push_back(support::format_percent(error_for(
          fp.weights, fp.threshold, fixed::AccumulatorMode::kWide)));
      row.push_back(support::format_percent(error_for(
          fp.weights, fp.threshold, fixed::AccumulatorMode::kNarrow)));
    } else {
      row.insert(row.end(), {"-", "-"});
    }
    row.push_back(support::format_percent(
        error_for(lda_clf.weights_real(), lda_clf.threshold_real(),
                  fixed::AccumulatorMode::kWide)));
    row.push_back(support::format_percent(
        error_for(lda_clf.weights_real(), lda_clf.threshold_real(),
                  fixed::AccumulatorMode::kNarrow)));
    table.add_row(std::move(row));
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Expectation: the narrow accumulator adds per-product "
              "rounding noise, costing\naccuracy whenever trained weights "
              "are small relative to one grid step.\n");
  return 0;
}
