// Ablation: value of each branch-and-bound heuristic (DESIGN.md §5).
//
// The paper mentions "a number of additional heuristics to speed up the
// search" without detail; ours are (i) LDA warm start, (ii) grid
// coordinate-descent polish of incumbents, (iii) t-interval-first
// branching.  This bench disables them one at a time on the synthetic
// workload and reports nodes, relaxations wall time, and the cost
// reached — all variants must land on the same optimum when allowed to
// converge.
#include <cstdio>
#include <string>

#include "core/format_policy.h"
#include "core/ldafp.h"
#include "data/synthetic.h"
#include "stats/normal.h"
#include "support/str.h"
#include "support/table.h"

namespace {

using namespace ldafp;

struct Variant {
  const char* name;
  bool warm_start;
  bool local_search;
  bool branch_t_first;
};

}  // namespace

int main() {
  support::Rng rng(7);
  const auto dataset = data::make_synthetic(3000, rng);
  const core::TrainingSet raw = dataset.to_training_set();
  const double beta = stats::confidence_beta(0.9999);

  constexpr Variant kVariants[] = {
      {"all heuristics", true, true, true},
      {"no warm start", false, true, true},
      {"no local search", true, false, true},
      {"no t-first branching", true, true, false},
      {"none", false, false, false},
  };

  std::printf("Ablation — branch-and-bound heuristics "
              "(synthetic set, proved-optimal runs)\n\n");
  for (const int w : {6, 8}) {
    const core::FormatChoice choice = core::choose_format(raw, w, beta, 2);
    const core::TrainingSet scaled =
        core::scale_training_set(raw, choice.feature_scale);
    std::printf("Word length %d (%s):\n", w,
                choice.format.to_string().c_str());
    support::TextTable table({"Variant", "Nodes", "Pruned", "Seconds",
                              "Cost", "Status"});
    for (const Variant& variant : kVariants) {
      core::LdaFpOptions options;
      options.bnb.max_nodes = 300000;
      options.bnb.max_seconds = 20.0;
      options.bnb.rel_gap = 1e-6;
      options.warm_start_from_lda = variant.warm_start;
      options.local_search = variant.local_search;
      options.branch_t_first = variant.branch_t_first;
      const core::LdaFpTrainer trainer(choice.format, options);
      const core::LdaFpResult result = trainer.train(scaled);
      table.add_row({variant.name,
                     std::to_string(result.search.nodes_processed),
                     std::to_string(result.search.nodes_pruned),
                     support::format_double(result.train_seconds, 2),
                     support::format_double(result.cost, 6),
                     opt::to_string(result.search.status)});
      std::fflush(stdout);
    }
    std::printf("%s\n", table.to_string().c_str());
  }
  std::printf(
      "Finding: every variant reaches the same globally-optimal cost.  On "
      "this 3-feature\nproblem the warm start and polish are redundant "
      "(the relaxation-rounding candidate\nalready hits the optimum at "
      "the root) and t-first branching costs nodes — the\ninterval-"
      "arithmetic t-propagation after each w-split already tightens eta.  "
      "On the\n42-feature BCI search the same t-branching is what yields "
      "a non-trivial certified\nbound under a node budget (EXPERIMENTS."
      "md), which is why it stays the default.\n");
  return 0;
}
