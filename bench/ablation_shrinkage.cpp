// Ablation: covariance estimator on the small-sample BCI workload.
//
// 42 features from 112 training trials is the classic regime where
// Ledoit-Wolf shrinkage helps generic classifiers — but this workload's
// optimal weights live in the *off-diagonal structure* (noise
// cancellation across correlated channels), which shrinkage toward the
// identity attenuates.  This bench quantifies that tension for float
// LDA, rounded LDA, and LDA-FP, applied symmetrically.
#include <cstdio>
#include <string>

#include "data/bci_synthetic.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "core/lda.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace ldafp;

  support::Rng rng(16);
  const auto dataset = data::make_bci_synthetic(rng);

  std::printf("Ablation — covariance estimator on the BCI workload "
              "(5-fold CV, 6-bit, max-range baseline)\n\n");
  support::TextTable table({"Estimator", "Float LDA", "LDA (rounded)",
                            "LDA-FP"});
  for (const auto estimator : {stats::CovarianceEstimator::kEmpirical,
                               stats::CovarianceEstimator::kLedoitWolf}) {
    // Float LDA reference under this estimator.
    support::Rng cv_rng(17);
    const auto splits = data::stratified_k_fold(dataset, 5, cv_rng);
    double float_err = 0.0;
    std::size_t n = 0;
    for (const auto& split : splits) {
      const core::LdaModel lda =
          core::fit_lda(split.train.to_training_set(), estimator);
      const auto c = eval::evaluate(lda.classifier(), split.test);
      float_err += c.error() * static_cast<double>(split.test.size());
      n += split.test.size();
    }
    float_err /= static_cast<double>(n);

    eval::ExperimentConfig config;
    config.word_lengths = {6};
    config.covariance = estimator;
    config.lda_gain = core::LdaGainPolicy::kMaxRange;
    config.ldafp.bnb.max_nodes = 250;
    config.ldafp.bnb.max_seconds = 20.0;
    config.ldafp.local_search_options.max_step_pow = 5;
    support::Rng cv_rng2(17);
    const auto rows = eval::run_cv_sweep(dataset, 5, config, cv_rng2);

    table.add_row({stats::to_string(estimator),
                   support::format_percent(float_err),
                   support::format_percent(rows[0].lda_error),
                   support::format_percent(rows[0].ldafp_error)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Finding: shrinkage blurs the channel correlations the "
      "noise-cancelling weights\nexploit, so it costs float LDA and LDA-FP "
      "accuracy — but it also tames the weight\ndynamic range, which "
      "*helps* the rounded conventional baseline.  LDA-FP gets the\nsame "
      "robustness from its grid-aware optimization and keeps the better "
      "(empirical)\nstatistics — one more reading of the paper's thesis.\n");
  return 0;
}
