// Extension bench: channel pruning × word length on the BCI workload.
//
// An implant's classifier power scales with both the word length
// (quadratic, the paper's axis) and the channel count (linear in MAC
// cycles and acquisition front-ends).  Greedy Fisher-criterion selection
// (core/feature_selection.h) prunes channels; this bench maps the
// error / energy frontier over both axes, with energy modeled as
// P(W) × (channels + 1) cycles per classification.
#include <cstdio>
#include <string>

#include "core/feature_selection.h"
#include "data/bci_synthetic.h"
#include "eval/experiment.h"
#include "hw/power_model.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace ldafp;

  support::Rng rng(16);
  const auto dataset = data::make_bci_synthetic(rng);
  const hw::PowerModel power;

  std::printf("Extension — channel pruning x word length on the BCI "
              "workload (5-fold CV)\n\n");
  support::TextTable table({"Channels", "W", "LDA-FP error",
                            "Energy (rel. 42ch/8bit)", "Selected first"});
  const double base_energy = power.energy_per_classification(8, 42 + 1);

  // Selection is computed on the full data once per channel count; CV
  // retrains per fold on the projected features.
  const core::FeatureSelectionResult ranking =
      core::select_features(dataset.to_training_set(), 42);

  for (const std::size_t channels : {6u, 12u, 21u, 42u}) {
    std::vector<std::size_t> keep(
        ranking.selected.begin(),
        ranking.selected.begin() + static_cast<long>(channels));
    const data::LabeledDataset pruned =
        data::project_features(dataset, keep);

    for (const int w : {4, 6, 8}) {
      eval::ExperimentConfig config;
      config.word_lengths = {w};
      config.ldafp.bnb.max_nodes = 200;
      config.ldafp.bnb.max_seconds = 15.0;
      config.ldafp.bnb.rel_gap = 1e-3;
      config.ldafp.local_search_options.max_step_pow = 5;
      config.lda_gain = core::LdaGainPolicy::kMaxRange;
      support::Rng cv_rng(17);
      const auto rows = eval::run_cv_sweep(pruned, 5, config, cv_rng);
      const double energy = power.energy_per_classification(
          w, static_cast<std::int64_t>(channels) + 1);
      std::string first = "-";
      if (channels == 6) {
        first.clear();
        for (std::size_t i = 0; i < 3; ++i) {
          if (i != 0) first += ",";
          first += std::to_string(ranking.selected[i]);
        }
        first += ",...";
      }
      table.add_row({std::to_string(channels), std::to_string(w),
                     support::format_percent(rows[0].ldafp_error),
                     support::format_double(energy / base_energy, 3),
                     first});
      std::fflush(stdout);
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: the greedy criterion picks complete noise-cancelling "
      "triads (channels\n15,16,17 first — one signal plus its two "
      "cancellation companions), and pruning to\n~12 channels *improves* "
      "accuracy at a quarter of the energy: fewer channels mean\nless "
      "covariance-estimation noise and an easier integer program.  The "
      "two power axes\n(bits and channels) compose.\n");
  return 0;
}
