// Extension bench: per-feature word-length optimization (the paper's
// named future work, Sec. 3) vs the paper's uniform format.
//
// Both columns spend the SAME total weight-storage budget B = Σ(K+F_m);
// "uniform" splits it evenly (the paper's QK.F), "allocated" lets the
// curvature-driven allocator (core/bit_allocation.h) distribute
// fractional bits per weight.  On the synthetic set the informative
// weight needs fine resolution while the noise-cancelling weights need
// range, so non-uniform allocation should reach a given accuracy with a
// smaller budget.
#include <cstdio>
#include <string>

#include "core/bit_allocation.h"
#include "core/format_policy.h"
#include "core/ldafp.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "stats/normal.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace ldafp;

  support::Rng rng(21);
  const auto train = data::make_synthetic(3000, rng);
  const auto test = data::make_synthetic(10000, rng);
  const core::TrainingSet raw = train.to_training_set();
  const double beta = stats::confidence_beta(0.9999);

  std::printf("Extension — per-feature word lengths vs uniform QK.F at "
              "equal weight-storage budget (synthetic set)\n\n");
  support::TextTable table({"Budget (bits)", "Uniform W/weight",
                            "LDA-FP QK.F error", "Uniform-weights error",
                            "Allocated F per weight", "Allocated error"});
  for (const int w : {4, 5, 6, 8, 10}) {
    const int budget = 3 * w;  // three weights

    // Uniform reference: LDA-FP at QK.F with F = w - K.
    const core::FormatChoice choice = core::choose_format(raw, w, beta, 2);
    const core::TrainingSet scaled =
        core::scale_training_set(raw, choice.feature_scale);
    core::LdaFpOptions options;
    options.bnb.max_nodes = 4000;
    options.bnb.max_seconds = 15.0;
    options.bnb.rel_gap = 1e-3;
    const core::LdaFpTrainer trainer(choice.format, options);
    const core::LdaFpResult uniform = trainer.train(scaled);
    double uniform_error = 0.5;
    if (uniform.found()) {
      uniform_error = eval::evaluate(trainer.make_classifier(uniform), test,
                                     choice.feature_scale).error();
    }

    // Mixed-format columns share a fine (12-bit) feature front end so the
    // only difference between them is how the WEIGHT storage budget is
    // laid out; the LDA-FP column above keeps the paper's setup where
    // features and weights share QK.F at W bits.
    const core::FormatChoice feature_choice =
        core::choose_format(raw, 12, beta, 2);
    const core::TrainingSet feature_scaled =
        core::scale_training_set(raw, feature_choice.feature_scale);

    auto mixed_error = [&](const core::BitAllocationResult& alloc) {
      if (!alloc.found) return 0.5;
      const core::MixedClassifier clf =
          alloc.classifier(feature_choice.format);
      std::size_t errors = 0;
      for (std::size_t i = 0; i < test.size(); ++i) {
        linalg::Vector x = test.samples[i];
        x *= feature_choice.feature_scale;
        if (clf.classify(x) != test.labels[i]) ++errors;
      }
      return static_cast<double>(errors) /
             static_cast<double>(test.size());
    };

    const auto allocated = core::allocate_word_lengths(
        feature_scaled, feature_choice.format, budget);
    core::BitAllocationOptions uniform_opts;
    uniform_opts.min_frac_bits = w - 2;
    uniform_opts.max_frac_bits = w - 2;
    const auto uniform_mixed = core::allocate_word_lengths(
        feature_scaled, feature_choice.format, budget, uniform_opts);

    std::string layout = "-";
    if (allocated.found) {
      layout.clear();
      for (std::size_t m = 0; m < allocated.layout.size(); ++m) {
        if (m != 0) layout += "/";
        layout += std::to_string(allocated.layout.frac_bits(m));
      }
    }
    table.add_row({std::to_string(budget), std::to_string(w),
                   support::format_percent(uniform_error),
                   support::format_percent(mixed_error(uniform_mixed)),
                   layout,
                   support::format_percent(mixed_error(allocated))});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Reading: the last two columns share the weight budget and feature "
      "front end and\ndiffer only in layout freedom; the allocator must "
      "match or beat the uniform layout.\nAgainst the paper's setup "
      "(first error column, features also at W bits) the mixed\npipeline "
      "shows what a decoupled ADC width buys at small weight budgets.\n");
  return 0;
}
