// Reproduces the phenomenon of paper Figure 2: the boundary found by
// conventional LDA sits on a knife edge — a one-ulp rounding
// perturbation of a weight moves it from P_N to P_L/P_U and the error
// explodes — while the LDA-FP boundary tolerates the same perturbation.
//
// Protocol (synthetic set, where the effect is structural): for each
// word length, build both fixed-point boundaries, then perturb each
// weight by ±1 ulp one at a time (the 2M rounded neighbours of the
// boundary, Fig. 2's P_L/P_U) and report the nominal and the worst
// perturbed error.  Conventional LDA keeps its informative weight w1 at
// ~1 ulp, so one perturbation zeroes it and the classifier collapses to
// chance; LDA-FP's w1 spans several ulp and survives.
#include <algorithm>
#include <cstdio>
#include <string>

#include "data/synthetic.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "support/str.h"
#include "support/table.h"

namespace {

using namespace ldafp;

/// Max error over the 2M one-weight ±1-ulp perturbations of a boundary.
double worst_one_ulp_error(const linalg::Vector& weights, double threshold,
                           const fixed::FixedFormat& fmt,
                           const data::LabeledDataset& test, double scale) {
  const double ulp = fmt.resolution();
  double worst = 0.0;
  for (std::size_t m = 0; m < weights.size(); ++m) {
    for (const double delta : {ulp, -ulp}) {
      linalg::Vector w = weights;
      w[m] = fmt.round_to_grid(w[m] + delta);
      bool all_zero = true;
      for (std::size_t i = 0; i < w.size(); ++i) {
        if (w[i] != 0.0) all_zero = false;
      }
      if (all_zero) continue;
      const core::FixedClassifier clf(fmt, w, threshold);
      worst = std::max(worst, eval::evaluate(clf, test, scale).error());
    }
  }
  return worst;
}

}  // namespace

int main() {
  support::Rng rng(20140601);
  const auto train = data::make_synthetic(4000, rng);
  const auto test = data::make_synthetic(10000, rng);

  eval::ExperimentConfig config;
  config.word_lengths = {12, 13, 14, 16};
  config.ldafp.bnb.max_nodes = 8000;
  config.ldafp.bnb.max_seconds = 15.0;
  config.ldafp.bnb.rel_gap = 1e-3;

  std::printf("Figure 2 — boundary fragility under one-ulp weight "
              "perturbations (synthetic set)\n\n");
  support::TextTable table({"W", "LDA nominal", "LDA worst P_L/P_U",
                            "LDA-FP nominal", "LDA-FP worst P_L/P_U"});
  for (const int w : config.word_lengths) {
    const eval::TrialResult row = eval::run_trial(train, test, w, config);
    const fixed::FixedFormat fmt = row.format_choice.format;
    const double scale = row.format_choice.feature_scale;

    const double lda_worst = worst_one_ulp_error(
        row.lda_weights, row.lda_threshold, fmt, test, scale);
    const double fp_worst = worst_one_ulp_error(
        row.ldafp_weights, row.ldafp_threshold, fmt, test, scale);
    table.add_row({std::to_string(w),
                   support::format_percent(row.lda_error),
                   support::format_percent(lda_worst),
                   support::format_percent(row.ldafp_error),
                   support::format_percent(fp_worst)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape check (paper Fig. 2): conventional LDA's boundary collapses "
      "toward\nchance under a one-ulp perturbation (its informative "
      "weight sits at ~1 ulp),\nwhile LDA-FP's boundary degrades "
      "gracefully.\n");
  return 0;
}
