// Reproduces paper Figure 4: the three weight values w1, w2, w3 as
// functions of the word length, for rounded LDA and for LDA-FP.
//
// Expected shape: the informative weight w1 is ~580x smaller than the
// noise-cancelling weights w2, w3 in the float optimum, so rounded LDA
// flushes w1 to zero at short word lengths (killing the classifier),
// while LDA-FP promotes w1 to a non-zero grid value and settles for
// partial noise cancellation.
#include <cstdio>
#include <string>

#include "data/synthetic.h"
#include "eval/experiment.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace ldafp;

  support::Rng rng(20140601);
  const auto train = data::make_synthetic(4000, rng);
  const auto test = data::make_synthetic(4000, rng);

  eval::ExperimentConfig config;
  config.word_lengths = {4, 6, 8, 10, 12, 14, 16};
  config.ldafp.bnb.max_nodes = 20000;
  config.ldafp.bnb.max_seconds = 20.0;
  config.ldafp.bnb.rel_gap = 1e-4;

  std::printf("Figure 4 — quantized weight values vs word length "
              "(synthetic set)\n\n");

  support::TextTable table({"W", "LDA w1", "LDA w2", "LDA w3", "FP w1",
                            "FP w2", "FP w3", "LDA w1 == 0?"});
  for (const int w : config.word_lengths) {
    const eval::TrialResult row = eval::run_trial(train, test, w, config);
    auto fmt6 = [](double v) { return support::format_double(v, 6); };
    table.add_row({std::to_string(w), fmt6(row.lda_weights[0]),
                   fmt6(row.lda_weights[1]), fmt6(row.lda_weights[2]),
                   fmt6(row.ldafp_weights[0]), fmt6(row.ldafp_weights[1]),
                   fmt6(row.ldafp_weights[2]),
                   row.lda_weights[0] == 0.0 ? "yes (broken)" : "no"});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Shape checks (paper Fig. 4): rounded LDA's w1 is zero at short\n"
      "word lengths while LDA-FP keeps w1 non-zero at every word "
      "length.\n");
  return 0;
}
