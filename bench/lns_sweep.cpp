// LNS-vs-fixed-point design sweep: the Datapath-API payoff bench.
//
// For each workload (the paper's 3-feature synthetic task, the BCI-like
// 42-feature set, and the ECG beat classifier) and each word length W,
// both backends train the identical LDA-FP grid search and deploy the
// trained weights on their own arithmetic:
//
//   fixed  the paper's QK.F two's-complement MAC — power ~ W² (Sec. 5.1)
//   lns    sign + (W-1)-bit log2 magnitude, add-for-multiply MAC with a
//          Mitchell log-domain accumulator — power ~ W (no multiplier
//          array), at the cost of log-grid quantization error
//
// Errors are measured on a held-out test set through each backend's
// datapath (eval::ExperimentConfig::datapath); power comes from
// hw::PowerModel's per-backend rules.  Two comparisons are printed and
// written to BENCH_lns.json:
//
//   iso-width      at the same W: LNS power saving vs accuracy delta
//   iso-accuracy   for each LNS row, the cheapest fixed-point W whose
//                  error is no worse; the power ratio at that matched
//                  accuracy is the number a designer actually trades on
//
// `--smoke` shrinks datasets and search budgets for CI; the row
// structure (3 workloads x 3 word lengths x 2 backends) is unchanged.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "data/bci_synthetic.h"
#include "data/ecg_synthetic.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "hw/power_model.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/table.h"

namespace {

using namespace ldafp;

struct Options {
  bool smoke = false;
  std::string out_path = "BENCH_lns.json";
  std::size_t synthetic_per_class = 400;
  std::size_t ecg_per_class = 300;
  std::size_t bci_trials_per_class = 70;
  std::size_t bnb_nodes = 400;
  double bnb_seconds = 20.0;
};

struct Row {
  std::string workload;
  int word_length = 0;
  fixed::DatapathKind kind = fixed::DatapathKind::kTwosComplement;
  double lda_error = 0.0;    ///< rounded-LDA baseline on this backend
  double ldafp_error = 0.0;  ///< LDA-FP deployed on this backend
  double power = 0.0;        ///< MAC power, arbitrary units
  double energy = 0.0;       ///< power x (M + 1) serial-MAC cycles
};

/// One workload's train/test pair (independent draws, fixed seeds).
struct Workload {
  std::string name;
  data::LabeledDataset train;
  data::LabeledDataset test;
};

std::vector<Workload> make_workloads(const Options& opts) {
  std::vector<Workload> out;
  {
    support::Rng train_rng(11), test_rng(12);
    out.push_back({"synthetic",
                   data::make_synthetic(opts.synthetic_per_class, train_rng),
                   data::make_synthetic(opts.synthetic_per_class, test_rng)});
  }
  {
    data::BciOptions bci;
    bci.trials_per_class = opts.bci_trials_per_class;
    support::Rng train_rng(21), test_rng(22);
    out.push_back({"bci", data::make_bci_synthetic(train_rng, bci),
                   data::make_bci_synthetic(test_rng, bci)});
  }
  {
    support::Rng train_rng(31), test_rng(32);
    out.push_back({"ecg",
                   data::make_ecg_synthetic(opts.ecg_per_class, train_rng),
                   data::make_ecg_synthetic(opts.ecg_per_class, test_rng)});
  }
  return out;
}

/// The cheapest fixed-point word length whose error <= `target`, if any.
std::optional<const Row*> cheapest_fixed_at(
    const std::vector<Row>& rows, const std::string& workload,
    double target) {
  const Row* best = nullptr;
  for (const Row& row : rows) {
    if (row.workload != workload ||
        row.kind != fixed::DatapathKind::kTwosComplement) {
      continue;
    }
    if (row.ldafp_error <= target &&
        (best == nullptr || row.power < best->power)) {
      best = &row;
    }
  }
  if (best == nullptr) return std::nullopt;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }
  if (opts.smoke) {
    opts.synthetic_per_class = 150;
    opts.ecg_per_class = 100;
    opts.bci_trials_per_class = 40;
    opts.bnb_nodes = 120;
    opts.bnb_seconds = 5.0;
  }

  // LNS layouts need W >= 4, so the sweep grid starts there; these are
  // also the short-word regime where the backends actually diverge.
  const std::vector<int> word_lengths = {4, 6, 8};
  const fixed::DatapathKind kinds[] = {fixed::DatapathKind::kTwosComplement,
                                       fixed::DatapathKind::kLns};
  const hw::PowerModel power_model;  // default per-backend coefficients

  const std::vector<Workload> workloads = make_workloads(opts);
  std::vector<Row> rows;
  for (const Workload& wl : workloads) {
    for (const int w : word_lengths) {
      // One trained model per (workload, W): both backends deploy the
      // identical grid weights, so every error difference below is pure
      // arithmetic, not training noise.  run_trial re-trains per call,
      // but the search is deterministic, so two calls with different
      // `datapath` share their training trajectory bit for bit.
      for (const fixed::DatapathKind kind : kinds) {
        eval::ExperimentConfig config;
        config.word_lengths = {w};
        config.datapath = kind;
        config.ldafp.bnb.max_nodes = opts.bnb_nodes;
        config.ldafp.bnb.max_seconds = opts.bnb_seconds;
        config.ldafp.bnb.rel_gap = 1e-3;
        config.executor = sched::Executor::pooled(0);
        const eval::TrialResult trial =
            eval::run_trial(wl.train, wl.test, w, config);
        Row row;
        row.workload = wl.name;
        row.word_length = w;
        row.kind = kind;
        row.lda_error = trial.lda_error;
        row.ldafp_error = trial.ldafp_error;
        row.power = power_model.power(kind, w);
        row.energy = power_model.energy_per_classification(
            kind, w, static_cast<std::int64_t>(wl.train.dim()) + 1);
        rows.push_back(row);
      }
    }
  }

  // --- iso-width table ---------------------------------------------------
  support::TextTable table({"workload", "W", "backend", "LDA err%",
                            "LDA-FP err%", "power", "energy/classif."});
  for (const Row& row : rows) {
    table.add_row({row.workload, std::to_string(row.word_length),
                   fixed::to_string(row.kind),
                   support::format_double(100.0 * row.lda_error, 2),
                   support::format_double(100.0 * row.ldafp_error, 2),
                   support::format_double(row.power, 1),
                   support::format_double(row.energy, 0)});
  }
  std::fputs(table.to_string().c_str(), stdout);

  // --- iso-accuracy Pareto comparison ------------------------------------
  // For each LNS row: the cheapest fixed-point design no less accurate,
  // and the resulting power ratio.  ratio > 1 means the LNS design wins
  // power at matched (or better) accuracy.
  struct Pareto {
    const Row* lns;
    const Row* fixed_match;  ///< nullptr: no fixed W in the grid matches
    double ratio = 0.0;
  };
  std::vector<Pareto> pareto;
  std::size_t lns_wins = 0;
  for (const Row& row : rows) {
    if (row.kind != fixed::DatapathKind::kLns) continue;
    Pareto p{&row, nullptr, 0.0};
    if (const auto match =
            cheapest_fixed_at(rows, row.workload, row.ldafp_error)) {
      p.fixed_match = *match;
      p.ratio = p.fixed_match->power / row.power;
      if (p.ratio > 1.0) ++lns_wins;
    }
    pareto.push_back(p);
  }
  support::TextTable iso({"workload", "LNS W", "LNS err%", "fixed W match",
                          "fixed power", "LNS power", "power ratio"});
  for (const Pareto& p : pareto) {
    iso.add_row(
        {p.lns->workload, std::to_string(p.lns->word_length),
         support::format_double(100.0 * p.lns->ldafp_error, 2),
         p.fixed_match != nullptr
             ? std::to_string(p.fixed_match->word_length)
             : "(none <= this err)",
         p.fixed_match != nullptr
             ? support::format_double(p.fixed_match->power, 1)
             : "-",
         support::format_double(p.lns->power, 1),
         p.fixed_match != nullptr ? support::format_double(p.ratio, 2)
                                  : "-"});
  }
  std::printf("\nIso-accuracy comparison (ratio > 1: LNS wins power at "
              "matched accuracy):\n");
  std::fputs(iso.to_string().c_str(), stdout);
  std::printf("\nLNS wins power-at-iso-accuracy on %zu of %zu rows.\n",
              lns_wins, pareto.size());

  std::ofstream out_file(opts.out_path);
  if (!out_file) {
    std::fprintf(stderr, "error: cannot write %s\n", opts.out_path.c_str());
    return 1;
  }
  support::JsonWriter json(out_file);
  json.begin_object();
  json.kv("bench", "lns_sweep");
  json.kv("smoke", opts.smoke);
  json.key("rows");
  json.begin_array();
  for (const Row& row : rows) {
    json.begin_object();
    json.kv("workload", row.workload);
    json.kv("word_length", static_cast<std::int64_t>(row.word_length));
    json.kv("datapath", fixed::to_string(row.kind));
    json.kv("lda_error", row.lda_error);
    json.kv("ldafp_error", row.ldafp_error);
    json.kv("power", row.power);
    json.kv("energy_per_classification", row.energy);
    json.end_object();
  }
  json.end_array();
  json.key("iso_accuracy");
  json.begin_array();
  for (const Pareto& p : pareto) {
    json.begin_object();
    json.kv("workload", p.lns->workload);
    json.kv("lns_word_length",
            static_cast<std::int64_t>(p.lns->word_length));
    json.kv("lns_error", p.lns->ldafp_error);
    json.kv("lns_power", p.lns->power);
    if (p.fixed_match != nullptr) {
      json.kv("fixed_word_length",
              static_cast<std::int64_t>(p.fixed_match->word_length));
      json.kv("fixed_power", p.fixed_match->power);
      json.kv("power_ratio", p.ratio);
    } else {
      json.kv("fixed_word_length", static_cast<std::int64_t>(-1));
    }
    json.end_object();
  }
  json.end_array();
  json.kv("lns_iso_accuracy_wins", static_cast<std::uint64_t>(lns_wins));
  json.end_object();
  out_file << "\n";
  std::printf("Wrote %s\n", opts.out_path.c_str());
  return 0;
}
