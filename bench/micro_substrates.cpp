// google-benchmark micro-benchmarks of the substrates: fixed-point MAC,
// dense factorizations, the barrier solver, and branch-and-bound node
// throughput.  These track the cost model behind the budget choices in
// the table benches.
#include <benchmark/benchmark.h>

#include "core/format_policy.h"
#include "core/ldafp.h"
#include "data/synthetic.h"
#include "fixed/dot.h"
#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/ops.h"
#include "opt/barrier_solver.h"
#include "stats/normal.h"
#include "support/rng.h"

namespace {

using namespace ldafp;

void BM_FixedDotWide(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fixed::FixedFormat fmt(2, 6);
  support::Rng rng(1);
  linalg::Vector w(n);
  linalg::Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = fmt.round_to_grid(rng.uniform(-1.0, 1.0));
    x[i] = rng.uniform(-1.0, 1.0);
  }
  const auto wq = fixed::quantize_vector(w, fmt);
  const auto xq = fixed::quantize_vector(x, fmt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixed::dot_datapath(wq, xq, fmt, fixed::RoundingMode::kNearestEven,
                            fixed::AccumulatorMode::kWide));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FixedDotWide)->Arg(3)->Arg(42)->Arg(256);

void BM_FixedDotNarrow(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const fixed::FixedFormat fmt(2, 6);
  support::Rng rng(2);
  linalg::Vector w(n);
  linalg::Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = fmt.round_to_grid(rng.uniform(-1.0, 1.0));
    x[i] = rng.uniform(-1.0, 1.0);
  }
  const auto wq = fixed::quantize_vector(w, fmt);
  const auto xq = fixed::quantize_vector(x, fmt);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixed::dot_datapath(wq, xq, fmt, fixed::RoundingMode::kNearestEven,
                            fixed::AccumulatorMode::kNarrow));
  }
}
BENCHMARK(BM_FixedDotNarrow)->Arg(42);

void BM_Cholesky(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(3);
  const linalg::Matrix a = linalg::random_spd(n, 0.1, 10.0, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::Cholesky(a));
  }
}
BENCHMARK(BM_Cholesky)->Arg(3)->Arg(16)->Arg(42)->Arg(128);

void BM_LuSolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(4);
  const linalg::Matrix a = linalg::random_gaussian_matrix(n, n, rng);
  linalg::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = rng.gaussian();
  for (auto _ : state) {
    const linalg::Lu lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_LuSolve)->Arg(16)->Arg(42);

void BM_BarrierSolveBoxQp(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Rng rng(5);
  const linalg::Matrix q = linalg::random_spd(n, 0.5, 5.0, rng);
  opt::ConvexProblem problem(q);
  problem.set_box(opt::Box(n, opt::Interval{-1.0, 1.0}));
  problem.add_linear({linalg::Vector(n, 1.0), 0.5});
  const opt::BarrierSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(problem));
  }
}
BENCHMARK(BM_BarrierSolveBoxQp)->Arg(3)->Arg(16)->Arg(42);

void BM_LdaFpTrainSynthetic(benchmark::State& state) {
  support::Rng rng(6);
  const auto dataset = data::make_synthetic(1000, rng);
  const core::TrainingSet raw = dataset.to_training_set();
  const double beta = stats::confidence_beta(0.9999);
  const core::FormatChoice choice = core::choose_format(
      raw, static_cast<int>(state.range(0)), beta, 2);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, choice.feature_scale);
  core::LdaFpOptions options;
  options.bnb.max_nodes = 200;
  options.bnb.max_seconds = 5.0;
  const core::LdaFpTrainer trainer(choice.format, options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train(scaled));
  }
}
BENCHMARK(BM_LdaFpTrainSynthetic)->Arg(4)->Arg(6)->Unit(
    benchmark::kMillisecond);

}  // namespace
