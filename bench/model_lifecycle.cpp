// Model lifecycle benchmark: serialization, streaming statistics, and
// drift-gated hot promotion under concurrent scoring traffic.
//
//   serialize  encode/decode latency of the versioned .ldafp image in
//              memory across word lengths, plus full save/load through
//              the filesystem (binary + JSON sidecar).  Every decode is
//              verified bit-identical to the encoded classifier — this
//              doubles as a round-trip audit at benchmark volume.
//   stream     OnlineRetrainer::observe() throughput: ring-window write
//              plus rank-1 Welford update per labeled sample, and
//              observe_score() throughput through the drift detector.
//   lifecycle  reader threads score through registry handles while a
//              writer feeds labeled samples and kicks background
//              retrains; promotions hot-swap versions mid-read.
//
// Accounting is exact, in the serve_load.cpp style: every round-trip
// bit-identical, every read scored exactly once, reader-observed
// versions monotone, and final registry version == bootstrap +
// promotions.  Non-zero exit on any violation.  Writes BENCH_model.json
// (--out overrides); `--smoke` runs reduced counts for CI.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "model/model_io.h"
#include "model/retrainer.h"
#include "runtime/registry.h"
#include "sched/executor.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using namespace ldafp;
using linalg::Vector;

struct Options {
  bool smoke = false;
  std::string out_path = "BENCH_model.json";
  std::size_t encode_iters = 20000;
  std::size_t file_iters = 200;
  std::size_t stream_samples = 200000;
  std::size_t readers = 4;
  std::size_t reads_per_reader = 50000;
  std::size_t feed_samples = 20000;
  std::size_t retrain_every = 1000;
};

/// Deterministic grid-exact classifier at `fmt`, dimension `dim`.
core::FixedClassifier make_classifier(const fixed::FixedFormat& fmt,
                                      std::size_t dim) {
  const std::int64_t span = fmt.raw_max() - fmt.raw_min() + 1;
  Vector w(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    w[i] = fmt.to_real(fmt.raw_min() +
                       static_cast<std::int64_t>(i * 7919 + 13) % span);
  }
  return core::FixedClassifier(fmt, w,
                               fmt.to_real(fmt.raw_min() + 9973 % span));
}

bool bit_identical(const core::FixedClassifier& a,
                   const core::FixedClassifier& b) {
  if (a.dim() != b.dim()) return false;
  if (a.threshold_fixed().raw() != b.threshold_fixed().raw()) return false;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    if (a.weights_fixed()[i].raw() != b.weights_fixed()[i].raw())
      return false;
  }
  return true;
}

struct SerializeRow {
  int word_length = 0;
  std::size_t dim = 0;
  std::size_t bytes = 0;
  double encode_us = 0.0;
  double decode_us = 0.0;
  std::uint64_t mismatches = 0;
};

SerializeRow bench_serialize(const fixed::FixedFormat& fmt, std::size_t dim,
                             std::size_t iters) {
  SerializeRow row;
  row.word_length = fmt.word_length();
  row.dim = dim;
  model::SavedModel m{make_classifier(fmt, dim), {}};
  m.provenance.name = "bench";
  m.provenance.word_length = static_cast<std::uint32_t>(fmt.word_length());

  std::vector<std::uint8_t> bytes = model::encode_model(m);
  row.bytes = bytes.size();
  support::WallTimer timer;
  for (std::size_t i = 0; i < iters; ++i) {
    bytes = model::encode_model(m);
  }
  row.encode_us = timer.seconds() / static_cast<double>(iters) * 1e6;

  timer.reset();
  for (std::size_t i = 0; i < iters; ++i) {
    const model::DecodeResult r = model::decode_model(bytes);
    if (!r.ok() || !bit_identical(r.model->classifier, m.classifier)) {
      ++row.mismatches;
    }
  }
  row.decode_us = timer.seconds() / static_cast<double>(iters) * 1e6;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      opts.smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }
  if (opts.smoke) {
    opts.encode_iters = 2000;
    opts.file_iters = 40;
    opts.stream_samples = 20000;
    opts.readers = 2;
    opts.reads_per_reader = 5000;
    opts.feed_samples = 4000;
    opts.retrain_every = 500;
  }
  std::uint64_t failures = 0;

  // --- serialize: encode/decode latency across word lengths -------------
  const std::size_t dim = 16;
  std::vector<SerializeRow> rows;
  for (const fixed::FixedFormat fmt :
       {fixed::FixedFormat(2, 3), fixed::FixedFormat(3, 4),
        fixed::FixedFormat(5, 6)}) {
    rows.push_back(bench_serialize(fmt, dim, opts.encode_iters));
    failures += rows.back().mismatches;
  }

  // Filesystem round trip (binary + sidecar) at the middle format.
  const std::filesystem::path tmp_dir =
      std::filesystem::temp_directory_path() / "ldafp_model_bench";
  std::filesystem::create_directories(tmp_dir);
  const std::string file_path = (tmp_dir / "bench.ldafp").string();
  model::SavedModel file_model{make_classifier(fixed::FixedFormat(3, 4), dim),
                               {}};
  file_model.provenance.name = "bench";
  support::WallTimer timer;
  for (std::size_t i = 0; i < opts.file_iters; ++i) {
    model::save_model(file_path, file_model);
  }
  const double save_us =
      timer.seconds() / static_cast<double>(opts.file_iters) * 1e6;
  timer.reset();
  for (std::size_t i = 0; i < opts.file_iters; ++i) {
    const model::DecodeResult r = model::load_model(file_path);
    if (!r.ok() ||
        !bit_identical(r.model->classifier, file_model.classifier)) {
      ++failures;
    }
  }
  const double load_us =
      timer.seconds() / static_cast<double>(opts.file_iters) * 1e6;
  std::filesystem::remove_all(tmp_dir);

  // --- stream: observe() and observe_score() throughput -----------------
  constexpr std::size_t kStreamDim = 8;
  double observe_mps = 0.0;
  double score_mps = 0.0;
  {
    runtime::ModelRegistry registry;
    model::RetrainerOptions ropts;
    ropts.model_name = "stream";
    ropts.window_capacity = 4096;
    ropts.holdout = 256;
    model::OnlineRetrainer retrainer(registry, ropts);
    support::Rng rng(21);
    std::vector<Vector> samples;
    samples.reserve(opts.stream_samples);
    for (std::size_t i = 0; i < opts.stream_samples; ++i) {
      Vector x(kStreamDim);
      const double mean = (i % 2 == 0) ? 1.0 : -1.0;
      for (std::size_t m = 0; m < kStreamDim; ++m) {
        x[m] = rng.gaussian(mean, 0.5);
      }
      samples.push_back(std::move(x));
    }
    timer.reset();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      retrainer.observe(samples[i], (i % 2 == 0) ? core::Label::kClassA
                                                 : core::Label::kClassB);
    }
    observe_mps =
        static_cast<double>(samples.size()) / timer.seconds() / 1e6;
    timer.reset();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      retrainer.observe_score(samples[i][0]);
    }
    score_mps = static_cast<double>(samples.size()) / timer.seconds() / 1e6;
  }

  // --- lifecycle: hot promotion under concurrent scoring ----------------
  std::uint64_t lifecycle_reads = 0;
  std::uint64_t lifecycle_promotions = 0;
  std::uint64_t lifecycle_retrains = 0;
  double reads_per_sec = 0.0;
  bool monotone_ok = true;
  bool accounting_ok = true;
  {
    constexpr std::size_t kDim = 3;
    runtime::ModelRegistry registry;
    model::RetrainerOptions ropts;
    ropts.model_name = "live";
    ropts.format = fixed::FixedFormat(3, 3);
    ropts.window_capacity = 1024;
    ropts.holdout = 128;
    ropts.min_class_samples = 16;
    ropts.accuracy_tolerance = 1.0;  // every attempt promotes
    ropts.executor = sched::Executor::pooled(2);
    model::OnlineRetrainer retrainer(registry, ropts);
    retrainer.bootstrap(core::FixedClassifier(
        fixed::FixedFormat(3, 3), Vector{0.5, 0.5, 0.5}, 0.0));

    std::atomic<std::uint64_t> scored{0};
    std::atomic<bool> monotone{true};
    std::vector<std::thread> readers;
    readers.reserve(opts.readers);
    support::WallTimer lifecycle_timer;
    for (std::size_t r = 0; r < opts.readers; ++r) {
      readers.emplace_back([&, r] {
        support::Rng rng(5000 + r);
        std::uint64_t last_version = 0;
        Vector x(kDim);
        for (std::size_t i = 0; i < opts.reads_per_reader; ++i) {
          const runtime::ModelHandle handle = registry.get("live");
          if (handle == nullptr || handle->version < last_version) {
            monotone.store(false);
            return;
          }
          last_version = handle->version;
          const double mean = (i % 2 == 0) ? 1.0 : -1.0;
          for (std::size_t m = 0; m < kDim; ++m) {
            x[m] = rng.gaussian(mean, 0.3);
          }
          (void)handle->classifier.classify(x);
          scored.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    support::Rng feed_rng(99);
    for (std::size_t i = 0; i < opts.feed_samples; ++i) {
      const core::Label truth =
          (i % 2 == 0) ? core::Label::kClassA : core::Label::kClassB;
      Vector x(kDim);
      const double mean = truth == core::Label::kClassA ? 1.0 : -1.0;
      for (std::size_t m = 0; m < kDim; ++m) {
        x[m] = feed_rng.gaussian(mean, 0.3);
      }
      retrainer.observe(x, truth);
      if ((i + 1) % opts.retrain_every == 0) retrainer.retrain_async();
    }
    for (std::thread& t : readers) t.join();
    const double elapsed = lifecycle_timer.seconds();
    retrainer.wait();

    lifecycle_reads = scored.load();
    lifecycle_promotions = retrainer.promotions();
    lifecycle_retrains = retrainer.retrains();
    reads_per_sec = static_cast<double>(lifecycle_reads) / elapsed;
    monotone_ok = monotone.load();
    const runtime::ModelHandle latest = registry.get("live");
    accounting_ok =
        monotone_ok &&
        lifecycle_reads == opts.readers * opts.reads_per_reader &&
        latest != nullptr &&
        latest->version == 1 + lifecycle_promotions &&
        lifecycle_promotions >= 1;
    if (!accounting_ok) ++failures;
  }

  // --- report -----------------------------------------------------------
  support::TextTable table({"metric", "value"});
  for (const SerializeRow& row : rows) {
    char label[64];
    std::snprintf(label, sizeof(label), "encode W=%d (us)",
                  row.word_length);
    table.add_row({label, support::format_double(row.encode_us, 2)});
    std::snprintf(label, sizeof(label), "decode W=%d (us)",
                  row.word_length);
    table.add_row({label, support::format_double(row.decode_us, 2)});
  }
  table.add_row({"save to disk (us)", support::format_double(save_us, 1)});
  table.add_row({"load from disk (us)", support::format_double(load_us, 1)});
  table.add_row({"observe (Msamples/s)",
                 support::format_double(observe_mps, 2)});
  table.add_row({"observe_score (Msamples/s)",
                 support::format_double(score_mps, 2)});
  table.add_row({"lifecycle reads/s",
                 support::format_double(reads_per_sec, 0)});
  table.add_row({"lifecycle promotions",
                 std::to_string(lifecycle_promotions)});
  table.add_row({"lifecycle retrains", std::to_string(lifecycle_retrains)});
  table.add_row({"accounting", accounting_ok ? "exact" : "VIOLATED"});
  std::fputs(table.to_string().c_str(), stdout);

  std::ofstream out_file(opts.out_path);
  if (!out_file) {
    std::fprintf(stderr, "error: cannot write %s\n", opts.out_path.c_str());
    return 1;
  }
  support::JsonWriter json(out_file);
  json.begin_object();
  json.kv("bench", "model_lifecycle");
  json.kv("smoke", opts.smoke);
  json.key("serialize");
  json.begin_array();
  for (const SerializeRow& row : rows) {
    json.begin_object();
    json.kv("word_length", static_cast<std::int64_t>(row.word_length));
    json.kv("dim", static_cast<std::uint64_t>(row.dim));
    json.kv("bytes", static_cast<std::uint64_t>(row.bytes));
    json.kv("encode_us", row.encode_us);
    json.kv("decode_us", row.decode_us);
    json.kv("mismatches", row.mismatches);
    json.end_object();
  }
  json.end_array();
  json.key("file_io");
  json.begin_object();
  json.kv("save_us", save_us);
  json.kv("load_us", load_us);
  json.end_object();
  json.key("streaming");
  json.begin_object();
  json.kv("observe_msamples_per_sec", observe_mps);
  json.kv("observe_score_msamples_per_sec", score_mps);
  json.end_object();
  json.key("lifecycle");
  json.begin_object();
  json.kv("reads", lifecycle_reads);
  json.kv("reads_per_sec", reads_per_sec);
  json.kv("promotions", lifecycle_promotions);
  json.kv("retrains", lifecycle_retrains);
  json.kv("monotone_versions", monotone_ok);
  json.kv("accounting_exact", accounting_ok);
  json.end_object();
  json.kv("failures", failures);
  json.end_object();
  std::printf("\nwrote %s\n", opts.out_path.c_str());

  if (failures != 0) {
    std::fprintf(stderr, "FAILED: %llu accounting violations\n",
                 static_cast<unsigned long long>(failures));
    return 1;
  }
  return 0;
}
