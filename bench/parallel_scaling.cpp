// Parallel scaling of the ldafp_sched substrate on the two paper
// workloads: LDA-FP training (the Table 1 synthetic set, parallel
// branch-and-bound) and the 5-fold CV sweep (the Table 2 BCI workload,
// parallel (word length × fold) fan-out), each at 1/2/4/8 threads.
//
// Every parallel run is checked bit-identical to the 1-thread reference
// before its row prints — the determinism contract (DESIGN.md §9) is an
// acceptance gate here, not an aspiration.  Speedups depend on the host
// core count; the identity columns must read "yes" on any machine.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/format_policy.h"
#include "core/ldafp.h"
#include "data/bci_synthetic.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "sched/executor.h"
#include "stats/normal.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using namespace ldafp;

constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

sched::Executor executor_for(std::size_t threads) {
  return threads <= 1 ? sched::Executor::inline_exec()
                      : sched::Executor::pooled(threads);
}

bool same_vector(const linalg::Vector& a, const linalg::Vector& b) {
  return a.size() == b.size() && linalg::max_abs_diff(a, b) == 0.0;
}

/// Table 1 workload: one LDA-FP training run (6-bit format, node-budget
/// anytime search) with the branch-and-bound expanding nodes in parallel.
void bench_training() {
  support::Rng rng(20140601);
  const auto train = data::make_synthetic(1000, rng);
  const core::TrainingSet raw = train.to_training_set();
  const double beta = stats::confidence_beta(0.9999);
  const core::FormatChoice choice = core::choose_format(raw, 6, beta, 2);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, choice.feature_scale);

  std::printf("LDA-FP training, Table 1 synthetic workload "
              "(%zu samples, W=6, 1500-node budget)\n",
              train.size());
  std::fflush(stdout);
  core::LdaFpResult reference;
  double reference_seconds = 0.0;
  support::TextTable table(
      {"Threads", "Train (s)", "Speedup", "Nodes", "Bit-identical"});
  for (const std::size_t threads : kThreadCounts) {
    core::LdaFpOptions options;
    options.bnb.max_nodes = 1500;
    options.bnb.rel_gap = 1e-4;
    options.bnb.executor = executor_for(threads);
    const core::LdaFpTrainer trainer(choice.format, options);
    support::WallTimer timer;
    const core::LdaFpResult result = trainer.train(scaled);
    const double seconds = timer.seconds();

    bool identical = true;
    if (threads == 1) {
      reference = result;
      reference_seconds = seconds;
    } else {
      identical = result.found() == reference.found() &&
                  result.cost == reference.cost &&
                  result.threshold == reference.threshold &&
                  result.search.status == reference.search.status &&
                  result.search.nodes_processed ==
                      reference.search.nodes_processed &&
                  result.search.nodes_pruned ==
                      reference.search.nodes_pruned &&
                  result.search.gap() == reference.search.gap() &&
                  same_vector(result.weights, reference.weights);
      if (!identical) {
        std::fprintf(stderr,
                     "FAIL: %zu-thread training diverged from 1-thread\n",
                     threads);
        std::exit(1);
      }
    }
    table.add_row({std::to_string(threads),
                   support::format_double(seconds, 2),
                   support::format_double(reference_seconds / seconds, 2),
                   std::to_string(result.search.nodes_processed),
                   identical ? "yes" : "NO"});
    std::fprintf(stderr, "  [train] %zu thread(s): %.2fs\n", threads,
                 seconds);
  }
  std::printf("%s\n", table.to_string().c_str());
}

/// Table 2 workload: the full 5-fold CV sweep over word lengths 3-8 with
/// the (word length × fold) grid fanned over the pool.
void bench_cv_sweep() {
  support::Rng rng(16);
  const auto dataset = data::make_bci_synthetic(rng);

  eval::ExperimentConfig config;
  config.word_lengths = {3, 4, 5, 6, 7, 8};
  config.ldafp.bnb.max_nodes = 400;
  config.ldafp.bnb.max_seconds = 30.0;
  config.ldafp.bnb.rel_gap = 1e-3;
  config.ldafp.local_search_options.max_step_pow = 5;
  config.lda_gain = core::LdaGainPolicy::kMaxRange;

  std::printf("5-fold CV sweep, Table 2 BCI workload "
              "(%zu features, word lengths 3-8, 30 trials)\n",
              dataset.dim());
  std::fflush(stdout);
  std::vector<eval::CvTrialResult> reference;
  double reference_seconds = 0.0;
  support::TextTable table(
      {"Threads", "Sweep (s)", "Speedup", "Bit-identical"});
  for (const std::size_t threads : kThreadCounts) {
    eval::ExperimentConfig run = config;
    run.executor = executor_for(threads);
    support::Rng cv_rng(17);  // same folds every thread count
    support::WallTimer timer;
    const auto rows = eval::run_cv_sweep(dataset, 5, run, cv_rng);
    const double seconds = timer.seconds();

    bool identical = true;
    if (threads == 1) {
      reference = rows;
      reference_seconds = seconds;
    } else {
      identical = rows.size() == reference.size();
      for (std::size_t i = 0; identical && i < rows.size(); ++i) {
        identical = rows[i].word_length == reference[i].word_length &&
                    rows[i].lda_error == reference[i].lda_error &&
                    rows[i].ldafp_error == reference[i].ldafp_error &&
                    rows[i].max_gap == reference[i].max_gap;
      }
      if (!identical) {
        std::fprintf(stderr,
                     "FAIL: %zu-thread sweep diverged from 1-thread\n",
                     threads);
        std::exit(1);
      }
    }
    table.add_row({std::to_string(threads),
                   support::format_double(seconds, 2),
                   support::format_double(reference_seconds / seconds, 2),
                   identical ? "yes" : "NO"});
    std::fprintf(stderr, "  [sweep] %zu thread(s): %.2fs\n", threads,
                 seconds);
  }
  std::printf("%s\n", table.to_string().c_str());
}

}  // namespace

int main() {
  std::printf("Parallel scaling — ldafp_sched work-stealing pool\n\n");
  bench_training();
  bench_cv_sweep();
  std::printf("All parallel rows bit-identical to the 1-thread "
              "reference.\n");
  return 0;
}
