// Reproduces the paper's power arithmetic (Sec. 5): power of fixed-point
// arithmetic is ~quadratic in word length [13], so word-length savings
// square into power savings.  Prints the power curve, the paper's two
// headline ratios, and per-classification energy for the two workloads'
// datapath cycle counts.
#include <cstdio>
#include <string>

#include "hw/power_model.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace ldafp;

  const hw::PowerModel paper_rule;  // pure quadratic, the paper's model
  const hw::PowerModel with_linear(
      hw::PowerModelOptions{1.0, 2.0});  // + adder/register term

  std::printf("Power model — P(W) ∝ W² (paper's rule) and a "
              "quadratic+linear variant\n\n");

  support::TextTable table({"Word Length", "P ∝ W²", "Relative to 16-bit",
                            "P ∝ W²+2W", "Energy/classif. (M=3)",
                            "Energy/classif. (M=42)"});
  for (const int w : {3, 4, 5, 6, 7, 8, 10, 12, 14, 16}) {
    table.add_row(
        {std::to_string(w),
         support::format_double(paper_rule.power(w), 0),
         support::format_double(paper_rule.power(w) / paper_rule.power(16),
                                3),
         support::format_double(with_linear.power(w), 0),
         support::format_double(
             paper_rule.energy_per_classification(w, 3 + 1), 0),
         support::format_double(
             paper_rule.energy_per_classification(w, 42 + 1), 0)});
  }
  std::printf("%s\n", table.to_string().c_str());

  std::printf("Paper headline ratios under the quadratic rule:\n");
  std::printf("  12-bit -> 4-bit (Table 1's 3x word-length saving): "
              "%.1fx power reduction (paper: 9x)\n",
              paper_rule.power_ratio(12, 4));
  std::printf("  8-bit -> 6-bit (Table 2): %.2fx power reduction "
              "(paper: 1.8x)\n",
              paper_rule.power_ratio(8, 6));
  std::printf("With the quadratic+linear variant the same savings are "
              "%.1fx and %.2fx.\n",
              with_linear.power_ratio(12, 4),
              with_linear.power_ratio(8, 6));
  return 0;
}
