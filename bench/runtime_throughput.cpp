// Serving throughput: single-thread vs pooled batched scoring.
//
//   $ ./runtime_throughput [samples]
//
// Scores a BCI-shaped fixed-point model (42 features, Q2.6) over a
// fixed sample set four ways — sequential FixedClassifier::classify,
// single-thread BatchScorer, and the pooled InferenceEngine at request
// batch sizes 1/8/64 — and reports samples/sec plus the speedup over
// the sequential baseline.  Every path is checked bit-identical to the
// sequential labels before its row is printed: batching and threading
// change throughput, never bits.
//
// The engine rows depend on the host: on a multi-core machine the pool
// (hardware_concurrency workers) should clear 3x sequential at batch
// 64; on a single core the engine pays its queue/promise overhead with
// no parallelism to earn it back, and the printed core count says so.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/classifier.h"
#include "runtime/runtime.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using namespace ldafp;

core::FixedClassifier make_bci_shaped_model(support::Rng& rng) {
  const fixed::FixedFormat fmt(2, 6);  // 8-bit Q2.6, the Table 2 shape
  linalg::Vector w(42);
  for (std::size_t m = 0; m < w.size(); ++m) {
    w[m] = fmt.to_real(rng.uniform_int(fmt.raw_min(), fmt.raw_max()));
  }
  return core::FixedClassifier(fmt, w, 0.0625);
}

std::vector<linalg::Vector> make_traffic(std::size_t n, std::size_t dim,
                                         support::Rng& rng) {
  std::vector<linalg::Vector> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Vector x(dim);
    for (std::size_t m = 0; m < dim; ++m) x[m] = rng.uniform(-1.8, 1.8);
    xs.push_back(std::move(x));
  }
  return xs;
}

std::string rate_str(double samples_per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", samples_per_sec);
  return buf;
}

std::string speedup_str(double speedup) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const long long requested = argc > 1 ? std::atoll(argv[1]) : 100000;
  if (requested <= 0) {
    std::fprintf(stderr, "usage: %s [samples>0]\n", argv[0]);
    return 2;
  }
  const std::size_t n_samples = static_cast<std::size_t>(requested);
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t workers = std::max<std::size_t>(2, cores);

  support::Rng rng(4242);
  const core::FixedClassifier clf = make_bci_shaped_model(rng);
  const auto traffic = make_traffic(n_samples, clf.dim(), rng);
  std::printf("runtime_throughput: %zu samples x %zu features, format %s, "
              "%u hardware cores, %zu engine workers\n\n",
              traffic.size(), clf.dim(), clf.format().to_string().c_str(),
              cores, workers);

  // Sequential reference: one classify() per sample on one thread.
  std::vector<core::Label> reference;
  reference.reserve(traffic.size());
  support::WallTimer seq_timer;
  for (const auto& x : traffic) reference.push_back(clf.classify(x));
  const double seq_seconds = seq_timer.seconds();
  const double seq_rate = static_cast<double>(traffic.size()) / seq_seconds;

  support::TextTable table(
      {"path", "batch", "samples/sec", "vs sequential", "bit-exact"});
  table.add_row({"classify() loop", "1", rate_str(seq_rate), "1.00x", "ref"});

  // Single-thread BatchScorer at the swept batch sizes.
  const runtime::BatchScorer scorer(clf);
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{8},
                                       std::size_t{64}}) {
    std::vector<core::Label> labels;
    labels.reserve(traffic.size());
    runtime::PackedBatch packed;
    std::vector<runtime::ScoreResult> results;
    support::WallTimer timer;
    for (std::size_t i = 0; i < traffic.size(); i += batch_size) {
      const std::size_t n = std::min(batch_size, traffic.size() - i);
      packed.clear();
      scorer.pack_into(packed, traffic.data() + i, n);
      results.resize(n);
      scorer.score(packed, results.data());
      for (std::size_t r = 0; r < n; ++r) labels.push_back(results[r].label);
    }
    const double rate =
        static_cast<double>(traffic.size()) / timer.seconds();
    table.add_row({"BatchScorer (1 thread)", std::to_string(batch_size),
                   rate_str(rate), speedup_str(rate / seq_rate),
                   labels == reference ? "yes" : "NO"});
  }

  // Pooled engine: one producer thread per worker submits its shard as
  // requests of `batch_size` samples.
  runtime::ModelRegistry registry;
  const runtime::ModelHandle model = registry.install("bci-shaped", clf);
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{8},
                                       std::size_t{64}}) {
    runtime::InferenceEngine engine(
        {.workers = workers, .queue_capacity = 4096, .max_batch = 256,
         .max_wait_seconds = 100e-6});
    std::vector<core::Label> labels(traffic.size());
    std::vector<std::thread> producers;
    const std::size_t shard =
        (traffic.size() + workers - 1) / workers;
    support::WallTimer timer;
    for (std::size_t p = 0; p < workers; ++p) {
      producers.emplace_back([&, p] {
        const std::size_t begin = p * shard;
        const std::size_t end = std::min(begin + shard, traffic.size());
        std::vector<std::pair<std::size_t,
                              std::future<std::vector<runtime::ScoreResult>>>>
            pending;
        for (std::size_t i = begin; i < end; i += batch_size) {
          const std::size_t n = std::min(batch_size, end - i);
          std::vector<linalg::Vector> request(traffic.begin() + i,
                                              traffic.begin() + i + n);
          while (true) {
            auto sub = engine.submit(model, std::move(request));
            if (sub.status == runtime::SubmitStatus::kAccepted) {
              pending.emplace_back(i, std::move(sub.result));
              break;
            }
            // Queue full: the submit consumed the request vector, so
            // re-slice it before retrying.
            request.assign(traffic.begin() + i, traffic.begin() + i + n);
            std::this_thread::yield();
          }
        }
        for (auto& [offset, future] : pending) {
          const auto results = future.get();
          for (std::size_t r = 0; r < results.size(); ++r) {
            labels[offset + r] = results[r].label;
          }
        }
      });
    }
    for (auto& t : producers) t.join();
    const double rate =
        static_cast<double>(traffic.size()) / timer.seconds();
    char path[64];
    std::snprintf(path, sizeof(path), "engine (%zu workers)", workers);
    table.add_row({path, std::to_string(batch_size), rate_str(rate),
                   speedup_str(rate / seq_rate),
                   labels == reference ? "yes" : "NO"});
    if (batch_size == 64) {
      engine.shutdown();
      std::printf("engine stats at batch 64:\n%s\n",
                  engine.stats().report().c_str());
    }
  }

  std::printf("%s\n", table.to_string().c_str());
  std::printf("note: engine speedup needs cores; this host has %u.\n",
              cores);
  return 0;
}
