// Serving throughput: SIMD vs scalar scoring kernels, single-thread
// batched scoring, and the pooled engine.
//
//   $ ./runtime_throughput [--smoke] [--out FILE] [samples]
//
// Three sections over a BCI-shaped fixed-point model (42 features,
// Q2.6):
//
//  1. Kernel: the same PackedBatch is scored with the kernel backend
//     forced to scalar and then on the best backend the host compiled
//     (DESIGN.md §14).  Both accumulator modes are timed; every
//     projection word and label must match the forced-scalar run and
//     the per-sample classify() reference bit for bit, or the bench
//     exits non-zero.  The full run also gates the wide-accumulator
//     SIMD speedup at >= 4x when a vector backend is active.
//
//  2. Single-thread BatchScorer at request batch sizes 1/8/64 against
//     the sequential classify() loop.
//
//  3. Pooled InferenceEngine at the same batch sizes.  On a multi-core
//     machine the pool should clear 3x sequential at batch 64; on a
//     single core it pays queue/promise overhead with no parallelism to
//     earn it back, and the printed core count says so.
//
// Results stream to BENCH_runtime.json (see README for the schema).
// `--smoke` shrinks the sample count and skips the 4x gate (identity is
// still asserted); CI runs the smoke mode on every push.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/classifier.h"
#include "fixed/simd.h"
#include "runtime/runtime.h"
#include "support/json.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using namespace ldafp;
namespace simd = fixed::simd;

core::FixedClassifier make_bci_shaped_model(support::Rng& rng,
                                            fixed::AccumulatorMode acc) {
  const fixed::FixedFormat fmt(2, 6);  // 8-bit Q2.6, the Table 2 shape
  linalg::Vector w(42);
  for (std::size_t m = 0; m < w.size(); ++m) {
    w[m] = fmt.to_real(rng.uniform_int(fmt.raw_min(), fmt.raw_max()));
  }
  return core::FixedClassifier(fmt, w, 0.0625,
                               fixed::RoundingMode::kNearestEven, acc);
}

std::vector<linalg::Vector> make_traffic(std::size_t n, std::size_t dim,
                                         support::Rng& rng) {
  std::vector<linalg::Vector> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Vector x(dim);
    for (std::size_t m = 0; m < dim; ++m) x[m] = rng.uniform(-1.8, 1.8);
    xs.push_back(std::move(x));
  }
  return xs;
}

std::string rate_str(double samples_per_sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", samples_per_sec);
  return buf;
}

std::string speedup_str(double speedup) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2fx", speedup);
  return buf;
}

/// Scores the packed batch repeatedly until `min_seconds` of wall time
/// has accumulated and returns samples/sec (kernel rates are too high
/// to time with a single pass).
double measure_packed_rate(const runtime::BatchScorer& scorer,
                           const runtime::PackedBatch& batch,
                           std::vector<runtime::ScoreResult>& results,
                           double min_seconds) {
  std::size_t passes = 0;
  support::WallTimer timer;
  double elapsed = 0.0;
  do {
    scorer.score(batch, results.data());
    ++passes;
    elapsed = timer.seconds();
  } while (elapsed < min_seconds);
  return static_cast<double>(passes * batch.rows) / elapsed;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_runtime.json";
  long long requested = -1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (argv[i][0] != '-' && requested < 0) {
      requested = std::atoll(argv[i]);
      if (requested <= 0) {
        std::fprintf(stderr, "usage: %s [--smoke] [--out FILE] [samples>0]\n",
                     argv[0]);
        return 2;
      }
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE] [samples>0]\n",
                   argv[0]);
      return 2;
    }
  }
  const std::size_t n_samples = requested > 0
                                    ? static_cast<std::size_t>(requested)
                                    : (smoke ? 20000 : 100000);
  const double min_measure_seconds = smoke ? 0.05 : 0.3;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t workers = std::max<std::size_t>(2, cores);
  const simd::Backend best = simd::active_backend();

  support::Rng rng(4242);
  const core::FixedClassifier clf =
      make_bci_shaped_model(rng, fixed::AccumulatorMode::kWide);
  const auto traffic = make_traffic(n_samples, clf.dim(), rng);
  std::printf("runtime_throughput: %zu samples x %zu features, format %s, "
              "simd backend %s, %u hardware cores, %zu engine workers\n\n",
              traffic.size(), clf.dim(), clf.format().to_string().c_str(),
              simd::to_string(best), cores, workers);

  std::ofstream out_file(out_path);
  if (!out_file) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  support::JsonWriter json(out_file);
  json.begin_object();
  json.kv("bench", "runtime_throughput");
  json.kv("smoke", smoke);
  json.kv("samples", static_cast<std::uint64_t>(traffic.size()));
  json.kv("dim", static_cast<std::uint64_t>(clf.dim()));
  json.kv("format", clf.format().to_string());
  json.kv("backend", simd::to_string(best));

  bool all_bit_exact = true;
  double wide_simd_speedup = 1.0;

  // ---- Section 1: kernel backends on one packed batch -----------------
  // The kernel batch is capped at 2048 rows (~0.7 MB packed) so both
  // backends run out of cache and the row measures the kernels, not the
  // host's DRAM bandwidth; the end-to-end sections below stream the full
  // traffic.
  const std::size_t kernel_rows = std::min<std::size_t>(traffic.size(), 2048);
  const std::vector<linalg::Vector> kernel_traffic(
      traffic.begin(), traffic.begin() + kernel_rows);
  support::TextTable kernel_table(
      {"kernel", "accumulator", "samples/sec", "vs scalar", "bit-exact"});
  json.kv("kernel_rows", static_cast<std::uint64_t>(kernel_rows));
  json.key("kernel");
  json.begin_array();
  for (const auto acc : {fixed::AccumulatorMode::kWide,
                         fixed::AccumulatorMode::kNarrow}) {
    support::Rng acc_rng(4242);
    const core::FixedClassifier acc_clf = make_bci_shaped_model(acc_rng, acc);
    const runtime::BatchScorer scorer(acc_clf);
    const runtime::PackedBatch batch = scorer.pack(kernel_traffic);
    std::vector<runtime::ScoreResult> scalar_results(batch.rows);
    std::vector<runtime::ScoreResult> vec_results(batch.rows);

    simd::set_backend_override(simd::Backend::kScalar);
    const double scalar_rate = measure_packed_rate(
        scorer, batch, scalar_results, min_measure_seconds);
    simd::set_backend_override(best);
    const double vec_rate = measure_packed_rate(
        scorer, batch, vec_results, min_measure_seconds);
    simd::clear_backend_override();

    // Identity: the vector run must match forced-scalar and the
    // per-sample datapath word for word.
    bool exact = true;
    for (std::size_t i = 0; i < batch.rows && exact; ++i) {
      exact = vec_results[i].projection_raw ==
                  scalar_results[i].projection_raw &&
              vec_results[i].label == scalar_results[i].label &&
              scalar_results[i].projection_raw ==
                  acc_clf.project(kernel_traffic[i]).raw();
    }
    all_bit_exact = all_bit_exact && exact;
    const double speedup = vec_rate / scalar_rate;
    if (acc == fixed::AccumulatorMode::kWide) wide_simd_speedup = speedup;

    kernel_table.add_row({std::string("scalar"), fixed::to_string(acc),
                          rate_str(scalar_rate), "1.00x", "ref"});
    kernel_table.add_row({simd::to_string(best), fixed::to_string(acc),
                          rate_str(vec_rate), speedup_str(speedup),
                          exact ? "yes" : "NO"});
    json.begin_object();
    json.kv("accumulator", fixed::to_string(acc));
    json.kv("scalar_samples_per_sec", scalar_rate);
    json.kv("simd_samples_per_sec", vec_rate);
    json.kv("speedup", speedup);
    json.kv("bit_exact", exact);
    json.end_object();
  }
  json.end_array();
  std::printf("%s\n", kernel_table.to_string().c_str());

  // ---- Section 2 + 3: end-to-end paths --------------------------------
  // Sequential reference: one classify() per sample on one thread.
  std::vector<core::Label> reference;
  reference.reserve(traffic.size());
  support::WallTimer seq_timer;
  for (const auto& x : traffic) reference.push_back(clf.classify(x));
  const double seq_seconds = seq_timer.seconds();
  const double seq_rate = static_cast<double>(traffic.size()) / seq_seconds;

  support::TextTable table(
      {"path", "batch", "samples/sec", "vs sequential", "bit-exact"});
  table.add_row({"classify() loop", "1", rate_str(seq_rate), "1.00x", "ref"});
  json.key("end_to_end");
  json.begin_array();
  json.begin_object();
  json.kv("path", "classify_loop");
  json.kv("batch", std::uint64_t{1});
  json.kv("samples_per_sec", seq_rate);
  json.kv("speedup", 1.0);
  json.kv("bit_exact", true);
  json.end_object();

  // Single-thread BatchScorer at the swept batch sizes.
  const runtime::BatchScorer scorer(clf);
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{8},
                                       std::size_t{64}}) {
    std::vector<core::Label> labels;
    labels.reserve(traffic.size());
    runtime::PackedBatch packed;
    std::vector<runtime::ScoreResult> results;
    support::WallTimer timer;
    for (std::size_t i = 0; i < traffic.size(); i += batch_size) {
      const std::size_t n = std::min(batch_size, traffic.size() - i);
      packed.clear();
      scorer.pack_into(packed, traffic.data() + i, n);
      results.resize(n);
      scorer.score(packed, results.data());
      for (std::size_t r = 0; r < n; ++r) labels.push_back(results[r].label);
    }
    const double rate =
        static_cast<double>(traffic.size()) / timer.seconds();
    const bool exact = labels == reference;
    all_bit_exact = all_bit_exact && exact;
    table.add_row({"BatchScorer (1 thread)", std::to_string(batch_size),
                   rate_str(rate), speedup_str(rate / seq_rate),
                   exact ? "yes" : "NO"});
    json.begin_object();
    json.kv("path", "batch_scorer");
    json.kv("batch", static_cast<std::uint64_t>(batch_size));
    json.kv("samples_per_sec", rate);
    json.kv("speedup", rate / seq_rate);
    json.kv("bit_exact", exact);
    json.end_object();
  }

  // Pooled engine: one producer thread per worker submits its shard as
  // requests of `batch_size` samples.
  runtime::ModelRegistry registry;
  const runtime::ModelHandle model = registry.install("bci-shaped", clf);
  for (const std::size_t batch_size : {std::size_t{1}, std::size_t{8},
                                       std::size_t{64}}) {
    runtime::InferenceEngine engine(
        {.workers = workers, .queue_capacity = 4096, .max_batch = 256,
         .max_wait_seconds = 100e-6});
    std::vector<core::Label> labels(traffic.size());
    std::vector<std::thread> producers;
    const std::size_t shard =
        (traffic.size() + workers - 1) / workers;
    support::WallTimer timer;
    for (std::size_t p = 0; p < workers; ++p) {
      producers.emplace_back([&, p] {
        const std::size_t begin = p * shard;
        const std::size_t end = std::min(begin + shard, traffic.size());
        std::vector<std::pair<std::size_t,
                              std::future<std::vector<runtime::ScoreResult>>>>
            pending;
        for (std::size_t i = begin; i < end; i += batch_size) {
          const std::size_t n = std::min(batch_size, end - i);
          std::vector<linalg::Vector> request(traffic.begin() + i,
                                              traffic.begin() + i + n);
          while (true) {
            auto sub = engine.submit(model, std::move(request));
            if (sub.status == runtime::SubmitStatus::kAccepted) {
              pending.emplace_back(i, std::move(sub.result));
              break;
            }
            // Queue full: the submit consumed the request vector, so
            // re-slice it before retrying.
            request.assign(traffic.begin() + i, traffic.begin() + i + n);
            std::this_thread::yield();
          }
        }
        for (auto& [offset, future] : pending) {
          const auto results = future.get();
          for (std::size_t r = 0; r < results.size(); ++r) {
            labels[offset + r] = results[r].label;
          }
        }
      });
    }
    for (auto& t : producers) t.join();
    const double rate =
        static_cast<double>(traffic.size()) / timer.seconds();
    const bool exact = labels == reference;
    all_bit_exact = all_bit_exact && exact;
    char path[64];
    std::snprintf(path, sizeof(path), "engine (%zu workers)", workers);
    table.add_row({path, std::to_string(batch_size), rate_str(rate),
                   speedup_str(rate / seq_rate),
                   exact ? "yes" : "NO"});
    json.begin_object();
    json.kv("path", "engine");
    json.kv("batch", static_cast<std::uint64_t>(batch_size));
    json.kv("samples_per_sec", rate);
    json.kv("speedup", rate / seq_rate);
    json.kv("bit_exact", exact);
    json.end_object();
    if (batch_size == 64) {
      engine.shutdown();
      std::printf("engine stats at batch 64:\n%s\n",
                  engine.stats().report().c_str());
    }
  }
  json.end_array();

  std::printf("%s\n", table.to_string().c_str());
  std::printf("note: engine speedup needs cores; this host has %u.\n",
              cores);

  json.kv("wide_simd_speedup", wide_simd_speedup);
  json.kv("all_bit_exact", all_bit_exact);
  json.end_object();

  if (!all_bit_exact) {
    std::fprintf(stderr,
                 "FAIL: a scoring path diverged from the per-sample "
                 "reference (see table above)\n");
    return 1;
  }
  // Full runs gate the README claim; smoke runs (CI, any machine) only
  // assert identity.  Scalar-only builds have nothing to gate.
  if (!smoke && best != simd::Backend::kScalar && wide_simd_speedup < 4.0) {
    std::fprintf(stderr,
                 "FAIL: wide-accumulator SIMD speedup %.2fx below the 4x "
                 "target\n", wide_simd_speedup);
    return 1;
  }
  return 0;
}
