// Million-request load harness for the ldafp_net serving front-end.
//
// Starts an in-process epoll server (loopback, ephemeral port) fronting
// two conventionally-trained fixed-point classifiers, then drives it
// through three phases:
//
//   closed  hundreds of connections, each pipelining a fixed window of
//           requests and sending one more per response — measures
//           saturated throughput and end-to-end latency.
//   open    paced senders at a target aggregate rate (arrivals
//           independent of completions) — measures latency at an
//           offered load instead of at saturation.
//   burst   the engine is paused so its queue fills, then a request
//           burst forces kQueueFull — proves backpressure surfaces as
//           protocol-level REJECTED responses, never silent drops.
//
// Every response is verified: per-connection FIFO order (pipelining
// contract), model version/format routing, and the served label against
// the classifier evaluated locally — a million-request bit-identity
// check of the whole transport.  Latency records into ldafp_obs
// histograms ("load.latency{phase=...}", p50/p99/p999 in the export),
// and the run writes BENCH_serve.json in the BENCH_solver.json style:
// per-phase throughput, the client-side histograms, the server's full
// "net.* + runtime.*" snapshot, and the accounting block.  Exit status
// is non-zero unless accounting is exact: sent == ok + rejected, zero
// protocol errors, zero ordering or label mismatches, and the burst
// actually rejected something.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/format_policy.h"
#include "core/lda.h"
#include "data/synthetic.h"
#include "net/net.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "runtime/runtime.h"
#include "stats/normal.h"
#include "support/json.h"
#include "support/str.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using namespace ldafp;

struct Options {
  bool smoke = false;
  /// Also measure the legacy future-polling pipeline in this binary: a
  /// second Server in use_futures_baseline mode (same engine, same
  /// models) runs a closed loop at `compare_connections`, the
  /// completion path runs an identical matched round, and the artifact
  /// records the speedup.  Full (non-smoke) runs gate on >= 1.3x.
  bool baseline_futures = false;
  std::string out_path = "BENCH_serve.json";
  std::size_t connections = 128;
  std::size_t requests_per_conn = 8192;  // 128 * 8192 = 1,048,576
  std::size_t window = 16;  // 128 * 16 = 2048 in flight < queue
  /// The transport comparison runs at moderate concurrency: at full
  /// saturation every thread on a small host is CPU-starved and both
  /// transports converge on the shared syscall+scoring floor, while the
  /// busy-poll tax the completion path removes is paid exactly when
  /// loops have idle time — the regime servers actually live in.
  std::size_t compare_connections = 32;
  std::size_t compare_requests = 4096;
  std::size_t open_connections = 64;
  std::size_t open_requests_per_conn = 800;
  double open_rate = 40000.0;  // aggregate req/s target
  std::size_t burst_connections = 4;
  std::size_t burst_per_conn = 0;  // derived from queue unless overridden
  std::size_t io_threads = 2;
  std::size_t workers = 4;
  std::size_t queue = 4096;
  std::size_t max_batch = 64;
};

/// One servable model plus the probe set and locally-computed expected
/// labels every response is checked against.
struct ModelUnderTest {
  std::string name;
  std::uint16_t dim = 0;
  std::uint8_t integer_bits = 0;
  std::uint8_t frac_bits = 0;
  std::uint64_t version = 0;
  std::vector<std::vector<double>> probes;  ///< scaled feature rows
  std::vector<std::uint8_t> expected;       ///< classifier labels
};

/// Client-side outcome tally of one phase (merged across threads).
struct Tally {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;  ///< any non-ok response status
  std::uint64_t order_errors = 0;
  std::uint64_t label_errors = 0;
  std::uint64_t route_errors = 0;

  void merge(const Tally& other) {
    sent += other.sent;
    ok += other.ok;
    rejected += other.rejected;
    order_errors += other.order_errors;
    label_errors += other.label_errors;
    route_errors += other.route_errors;
  }
};

/// Trains a conventional quantized-LDA classifier at `word_length` bits
/// on the paper's synthetic task, installs it, and snapshots probes +
/// expected labels (what the wire must reproduce bit for bit).
ModelUnderTest install_model(runtime::ModelRegistry& registry,
                             const std::string& name, int word_length,
                             const data::LabeledDataset& dataset) {
  const double beta = stats::confidence_beta(0.9999);
  const core::TrainingSet raw = dataset.to_training_set();
  const core::FormatChoice choice =
      core::choose_format(raw, word_length, beta, 2);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, choice.feature_scale);
  const core::LdaModel lda = core::fit_lda(scaled);
  const auto model_stats = core::fit_two_class_model(
      core::quantize_training_set(scaled, choice.format));
  const core::FixedClassifier clf =
      core::quantize_lda(lda, model_stats, beta, choice.format);
  const runtime::ModelHandle handle = registry.install(name, clf);

  ModelUnderTest model;
  model.name = name;
  model.dim = static_cast<std::uint16_t>(clf.dim());
  model.integer_bits =
      static_cast<std::uint8_t>(clf.format().integer_bits());
  model.frac_bits = static_cast<std::uint8_t>(clf.format().frac_bits());
  model.version = handle->version;
  const std::size_t probe_count = std::min<std::size_t>(dataset.size(), 64);
  for (std::size_t i = 0; i < probe_count; ++i) {
    linalg::Vector x = dataset.samples[i];
    x *= choice.feature_scale;
    std::vector<double> row(x.size());
    for (std::size_t j = 0; j < x.size(); ++j) row[j] = x[j];
    model.expected.push_back(
        static_cast<std::uint8_t>(clf.classify(x)));
    model.probes.push_back(std::move(row));
  }
  return model;
}

net::ScoreRequest make_request(const ModelUnderTest& model,
                               std::uint64_t id, std::size_t k) {
  net::ScoreRequest request;
  request.request_id = id;
  request.model = model.name;
  request.dim = model.dim;
  request.features = model.probes[k % model.probes.size()];
  return request;
}

/// Checks one response against the expectation FIFO; updates `tally`.
void check_response(const net::ScoreResponse& response,
                    const ModelUnderTest& model, std::uint64_t expected_id,
                    std::size_t k, Tally& tally) {
  if (response.request_id != expected_id) ++tally.order_errors;
  if (response.status == net::ResponseStatus::kOk) {
    ++tally.ok;
    if (response.model_version != model.version ||
        response.model_integer_bits != model.integer_bits ||
        response.model_frac_bits != model.frac_bits) {
      ++tally.route_errors;
    }
    if (response.results.size() != 1 ||
        response.results[0].label !=
            model.expected[k % model.expected.size()]) {
      ++tally.label_errors;
    }
  } else {
    ++tally.rejected;
  }
}

/// Closed loop: keep `window` requests in flight per connection.
Tally run_closed_loop(const std::string& host, std::uint16_t port,
                      const std::vector<ModelUnderTest>& models,
                      const Options& opts, obs::Histogram& latency) {
  Tally total;
  std::mutex merge_mu;
  std::vector<std::thread> threads;
  threads.reserve(opts.connections);
  for (std::size_t c = 0; c < opts.connections; ++c) {
    threads.emplace_back([&, c] {
      const ModelUnderTest& model = models[c % models.size()];
      net::Client client = net::Client::connect_to(host, port);
      Tally tally;
      std::deque<std::pair<std::uint64_t, support::WallTimer>> inflight;
      std::size_t sent = 0;
      std::size_t received = 0;
      std::vector<std::uint8_t> burst;
      while (received < opts.requests_per_conn) {
        // Encode the whole window refill into one buffer and write it
        // with a single syscall — the generator's job is to saturate
        // the server, not to burn its own CPU on per-frame write()s.
        burst.clear();
        while (sent < opts.requests_per_conn &&
               inflight.size() < opts.window) {
          net::encode(burst, make_request(model, sent + 1, sent));
          inflight.emplace_back(sent + 1, support::WallTimer());
          ++sent;
          ++tally.sent;
        }
        if (!burst.empty()) client.send_bytes(burst.data(), burst.size());
        const net::ScoreResponse response = client.recv();
        latency.record(inflight.front().second.seconds());
        check_response(response, model, inflight.front().first,
                       static_cast<std::size_t>(inflight.front().first - 1),
                       tally);
        inflight.pop_front();
        ++received;
      }
      std::lock_guard lock(merge_mu);
      total.merge(tally);
    });
  }
  for (std::thread& t : threads) t.join();
  return total;
}

/// Result of running the closed loop one or more times against one
/// server: every round's responses stay in the accounting tally, the
/// throughput kept is the best round's.
struct ClosedRuns {
  Tally tally;
  double seconds = 0.0;  ///< summed over rounds (phase wall time)
  double best_rps = 0.0;
};

/// Runs the closed loop `rounds` times back to back.  Full runs use two
/// rounds per server: on a loaded (or single-core) host one round's
/// number is mostly scheduler noise plus cold-start — best-of-rounds,
/// applied identically to the completion path and the futures baseline,
/// compares the transports instead of which phase ran first.
ClosedRuns run_closed_rounds(const std::string& host, std::uint16_t port,
                             const std::vector<ModelUnderTest>& models,
                             const Options& opts, std::size_t rounds,
                             obs::Histogram& latency) {
  ClosedRuns out;
  for (std::size_t r = 0; r < rounds; ++r) {
    support::WallTimer timer;
    const Tally round = run_closed_loop(host, port, models, opts, latency);
    const double seconds = timer.seconds();
    if (seconds > 0.0) {
      out.best_rps = std::max(
          out.best_rps, static_cast<double>(round.sent) / seconds);
    }
    out.seconds += seconds;
    out.tally.merge(round);
  }
  return out;
}

/// Open loop: sends are paced by the clock, independent of responses
/// (which are drained opportunistically and by a final blocking sweep).
Tally run_open_loop(const std::string& host, std::uint16_t port,
                    const std::vector<ModelUnderTest>& models,
                    const Options& opts, obs::Histogram& latency) {
  using clock = std::chrono::steady_clock;
  const auto interval = std::chrono::nanoseconds(static_cast<long long>(
      1e9 * static_cast<double>(opts.open_connections) / opts.open_rate));
  Tally total;
  std::mutex merge_mu;
  std::vector<std::thread> threads;
  threads.reserve(opts.open_connections);
  for (std::size_t c = 0; c < opts.open_connections; ++c) {
    threads.emplace_back([&, c] {
      const ModelUnderTest& model = models[c % models.size()];
      net::Client client = net::Client::connect_to(host, port);
      Tally tally;
      std::deque<std::pair<std::uint64_t, support::WallTimer>> inflight;
      const auto handle_response = [&](const net::ScoreResponse& r) {
        latency.record(inflight.front().second.seconds());
        check_response(r, model, inflight.front().first,
                       static_cast<std::size_t>(inflight.front().first - 1),
                       tally);
        inflight.pop_front();
      };
      auto next_send = clock::now();
      for (std::size_t k = 0; k < opts.open_requests_per_conn; ++k) {
        net::ScoreResponse response;
        while (client.try_recv(response)) handle_response(response);
        std::this_thread::sleep_until(next_send);
        next_send += interval;
        client.send(make_request(model, k + 1, k));
        inflight.emplace_back(k + 1, support::WallTimer());
        ++tally.sent;
      }
      while (!inflight.empty()) handle_response(client.recv());
      std::lock_guard lock(merge_mu);
      total.merge(tally);
    });
  }
  for (std::thread& t : threads) t.join();
  return total;
}

/// Sum of every counter sample named `name`, across all label sets.
std::uint64_t sum_counters(const obs::MetricsSnapshot& snapshot,
                           const std::string& name) {
  std::uint64_t total = 0;
  for (const auto& c : snapshot.counters) {
    if (c.name == name) total += c.value;
  }
  return total;
}

/// Burst against a paused engine: the bounded queue fills, the
/// remainder must come back REJECTED (and nothing may be dropped).
/// The resume is gated on the server having *decided* (accepted or
/// rejected) every burst request — a client-side "all sent" signal
/// only means the bytes reached the kernel, and resuming on it lets
/// the drain race the tail of the burst and admit everything.
Tally run_burst(const std::string& host, std::uint16_t port,
                const std::vector<ModelUnderTest>& models,
                const Options& opts, runtime::InferenceEngine& engine,
                const obs::MetricsRegistry& server_metrics) {
  const auto decisions = [&] {
    const obs::MetricsSnapshot snapshot = server_metrics.snapshot();
    return sum_counters(snapshot, "net.accepted") +
           sum_counters(snapshot, "net.rejected");
  };
  const std::uint64_t decisions_before = decisions();
  const std::uint64_t burst_total =
      opts.burst_connections * opts.burst_per_conn;
  engine.pause();
  Tally total;
  std::mutex merge_mu;
  std::vector<std::thread> threads;
  threads.reserve(opts.burst_connections);
  for (std::size_t c = 0; c < opts.burst_connections; ++c) {
    threads.emplace_back([&, c] {
      const ModelUnderTest& model = models[c % models.size()];
      net::Client client = net::Client::connect_to(host, port);
      Tally tally;
      for (std::size_t k = 0; k < opts.burst_per_conn; ++k) {
        client.send(make_request(model, k + 1, k));
        ++tally.sent;
      }
      for (std::size_t k = 0; k < opts.burst_per_conn; ++k) {
        check_response(client.recv(), model, k + 1, k, tally);
      }
      std::lock_guard lock(merge_mu);
      total.merge(tally);
    });
  }
  while (decisions() - decisions_before < burst_total) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  engine.resume();
  for (std::thread& t : threads) t.join();
  return total;
}

void write_phase(support::JsonWriter& json, const char* phase,
                 std::size_t connections, const Tally& tally,
                 double seconds) {
  json.begin_object();
  json.kv("phase", phase);
  json.kv("connections", static_cast<std::uint64_t>(connections));
  json.kv("sent", tally.sent);
  json.kv("ok", tally.ok);
  json.kv("rejected", tally.rejected);
  json.kv("order_errors", tally.order_errors);
  json.kv("label_errors", tally.label_errors);
  json.kv("route_errors", tally.route_errors);
  json.kv("seconds", seconds);
  json.kv("throughput_rps",
          seconds > 0.0 ? static_cast<double>(tally.sent) / seconds : 0.0);
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const auto size_flag = [&](const char* name, std::size_t& out) {
      if (std::strcmp(argv[i], name) == 0 && i + 1 < argc) {
        out = static_cast<std::size_t>(std::atoll(argv[++i]));
        return true;
      }
      return false;
    };
    if (std::strcmp(argv[i], "--baseline-futures") == 0) {
      opts.baseline_futures = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      opts.smoke = true;
      opts.connections = 24;
      opts.requests_per_conn = 400;
      opts.window = 16;
      opts.open_connections = 8;
      opts.open_requests_per_conn = 100;
      opts.open_rate = 20000.0;
      opts.queue = 512;
      opts.compare_connections = 8;
      opts.compare_requests = 200;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      opts.out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--open-rate") == 0 && i + 1 < argc) {
      opts.open_rate = std::atof(argv[++i]);
    } else if (size_flag("--connections", opts.connections) ||
               size_flag("--requests", opts.requests_per_conn) ||
               size_flag("--window", opts.window) ||
               size_flag("--open-connections", opts.open_connections) ||
               size_flag("--open-requests", opts.open_requests_per_conn) ||
               size_flag("--io-threads", opts.io_threads) ||
               size_flag("--workers", opts.workers) ||
               size_flag("--queue", opts.queue) ||
               size_flag("--burst", opts.burst_per_conn) ||
               size_flag("--compare-connections",
                         opts.compare_connections) ||
               size_flag("--compare-requests", opts.compare_requests)) {
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--baseline-futures] [--out FILE] "
                   "[--connections C] "
                   "[--requests R] [--window W] [--open-connections C] "
                   "[--open-requests R] [--open-rate RPS] "
                   "[--io-threads N] [--workers N] [--queue N] "
                   "[--burst R] [--compare-connections C] "
                   "[--compare-requests R]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opts.burst_per_conn == 0) {
    // The burst must overfill the paused engine's queue, whatever size
    // was chosen, or the backpressure phase proves nothing.
    opts.burst_per_conn = opts.queue / opts.burst_connections + 512;
  }

  // Deterministic models: two word lengths under distinct names, so
  // traffic exercises multi-model routing on every other connection.
  support::Rng rng(42);
  const data::LabeledDataset dataset = data::make_synthetic(1500, rng);
  runtime::ModelRegistry registry;
  std::vector<ModelUnderTest> models;
  models.push_back(install_model(registry, "synthetic-w6", 6, dataset));
  models.push_back(install_model(registry, "synthetic-w8", 8, dataset));

  // Server + engine share one metrics registry: the BENCH artifact's
  // "server_metrics" block is the full runtime.* + net.* snapshot.
  obs::MetricsRegistry server_metrics;
  obs::Sink server_sink;
  server_sink.metrics = &server_metrics;
  runtime::EngineOptions engine_options;
  engine_options.workers = opts.workers;
  engine_options.queue_capacity = opts.queue;
  engine_options.max_batch = opts.max_batch;
  engine_options.sink = &server_sink;
  runtime::InferenceEngine engine(engine_options);

  net::ServerOptions server_options;
  server_options.port = 0;  // ephemeral
  server_options.io_threads = opts.io_threads;
  server_options.default_model = models[0].name;
  server_options.engine = &engine;
  server_options.registry = &registry;
  server_options.sink = &server_sink;
  net::Server server(server_options);
  server.start();
  const std::string host = server_options.host;
  const std::uint16_t port = server.port();
  std::printf("serve_load: %s:%u, %zu io threads, %zu workers, queue %zu\n",
              host.c_str(), port, opts.io_threads, opts.workers,
              opts.queue);

  obs::MetricsRegistry client_metrics;
  obs::Histogram& closed_latency = client_metrics.histogram(
      "load.latency", {{"phase", "closed"}});
  obs::Histogram& open_latency = client_metrics.histogram(
      "load.latency", {{"phase", "open"}});

  const std::size_t closed_rounds = opts.smoke ? 1 : 2;
  const ClosedRuns closed_runs = run_closed_rounds(
      host, port, models, opts, closed_rounds, closed_latency);
  const Tally& closed = closed_runs.tally;
  const double closed_seconds = closed_runs.seconds;

  support::WallTimer open_timer;
  const Tally open =
      run_open_loop(host, port, models, opts, open_latency);
  const double open_seconds = open_timer.seconds();

  support::WallTimer burst_timer;
  const Tally burst =
      run_burst(host, port, models, opts, engine, server_metrics);
  const double burst_seconds = burst_timer.seconds();

  // -- optional baseline: the legacy future-polling pipeline, in this
  // same binary against this same engine.  The comparison is a matched
  // pair: the completion path and the futures baseline each run an
  // identical closed loop at `compare_connections` (best of
  // `closed_rounds`), so the speedup number compares transports and
  // nothing else.
  Tally compare;
  Tally baseline;
  double compare_seconds = 0.0;
  double baseline_seconds = 0.0;
  double compare_best_rps = 0.0;
  double baseline_best_rps = 0.0;
  bool baseline_exact = true;
  bool baseline_clean = true;
  obs::MetricsRegistry baseline_metrics;
  if (opts.baseline_futures) {
    Options cmp = opts;
    cmp.connections = opts.compare_connections;
    cmp.requests_per_conn = opts.compare_requests;

    obs::Histogram& compare_latency = client_metrics.histogram(
        "load.latency", {{"phase", "closed-compare"}});
    const ClosedRuns compare_runs = run_closed_rounds(
        host, port, models, cmp, closed_rounds, compare_latency);
    compare = compare_runs.tally;
    compare_seconds = compare_runs.seconds;
    compare_best_rps = compare_runs.best_rps;

    obs::Sink baseline_sink;
    baseline_sink.metrics = &baseline_metrics;
    net::ServerOptions baseline_options;
    baseline_options.port = 0;
    baseline_options.io_threads = opts.io_threads;
    baseline_options.default_model = models[0].name;
    baseline_options.use_futures_baseline = true;
    baseline_options.engine = &engine;
    baseline_options.registry = &registry;
    baseline_options.sink = &baseline_sink;
    net::Server baseline_server(baseline_options);
    baseline_server.start();
    obs::Histogram& baseline_latency = client_metrics.histogram(
        "load.latency", {{"phase", "baseline-futures"}});
    const ClosedRuns baseline_runs =
        run_closed_rounds(host, baseline_server.port(), models, cmp,
                          closed_rounds, baseline_latency);
    baseline = baseline_runs.tally;
    baseline_seconds = baseline_runs.seconds;
    baseline_best_rps = baseline_runs.best_rps;
    baseline_server.stop();
    const obs::MetricsSnapshot snapshot = baseline_metrics.snapshot();
    baseline_exact =
        baseline.sent == baseline.ok + baseline.rejected &&
        snapshot.counter_value("net.responses_sent") == baseline.sent;
    baseline_clean = baseline.order_errors == 0 &&
                     baseline.label_errors == 0 &&
                     baseline.route_errors == 0 &&
                     snapshot.counter_value("net.protocol_errors") == 0;
  }

  server.stop();
  engine.shutdown();

  // -- accounting: every request sent is accounted exactly once --
  Tally all;
  all.merge(closed);
  all.merge(open);
  all.merge(burst);
  all.merge(compare);  // the matched comparison round hits the main server
  const obs::MetricsSnapshot server_snapshot = engine.stats().snapshot();
  const std::uint64_t protocol_errors =
      server_snapshot.counter_value("net.protocol_errors");
  const std::uint64_t responses_sent =
      server_snapshot.counter_value("net.responses_sent");
  const bool exact = all.sent == all.ok + all.rejected &&
                     responses_sent == all.sent;
  const bool clean = all.order_errors == 0 && all.label_errors == 0 &&
                     all.route_errors == 0 && protocol_errors == 0;
  const bool backpressure_seen = burst.rejected > 0;

  const auto closed_hist = closed_latency.snapshot();
  const auto open_hist = open_latency.snapshot();
  support::TextTable table({"phase", "conns", "sent", "ok", "rejected",
                            "rps", "p50", "p99", "p999"});
  const auto row = [&](const char* phase, std::size_t conns,
                       const Tally& t, double seconds,
                       const support::LatencyHistogram::Snapshot* hist) {
    table.add_row(
        {phase, std::to_string(conns), std::to_string(t.sent),
         std::to_string(t.ok), std::to_string(t.rejected),
         seconds > 0.0
             ? support::format_double(
                   static_cast<double>(t.sent) / seconds, 0)
             : "-",
         hist != nullptr
             ? support::format_double(hist->quantile(0.5) * 1e6, 1) + "us"
             : "-",
         hist != nullptr
             ? support::format_double(hist->quantile(0.99) * 1e6, 1) + "us"
             : "-",
         hist != nullptr
             ? support::format_double(hist->quantile(0.999) * 1e6, 1) +
                   "us"
             : "-"});
  };
  row("closed", opts.connections, closed, closed_seconds, &closed_hist);
  row("open", opts.open_connections, open, open_seconds, &open_hist);
  row("burst", opts.burst_connections, burst, burst_seconds, nullptr);
  if (opts.baseline_futures) {
    row("closed-compare", opts.compare_connections, compare,
        compare_seconds, nullptr);
    row("baseline-futures", opts.compare_connections, baseline,
        baseline_seconds, nullptr);
  }
  std::printf("%s\n", table.to_string().c_str());
  const double closed_rps = closed_runs.best_rps;
  const double speedup =
      baseline_best_rps > 0.0 ? compare_best_rps / baseline_best_rps : 0.0;
  if (opts.baseline_futures) {
    std::printf("completion path %.0f rps vs futures baseline %.0f rps "
                "at %zu conns (best of %zu): %.2fx\n",
                compare_best_rps, baseline_best_rps,
                opts.compare_connections, closed_rounds, speedup);
  }
  std::printf("accounting: sent %llu == ok %llu + rejected %llu : %s\n",
              static_cast<unsigned long long>(all.sent),
              static_cast<unsigned long long>(all.ok),
              static_cast<unsigned long long>(all.rejected),
              exact ? "exact" : "MISMATCH");
  std::printf("protocol errors %llu, order errors %llu, label errors "
              "%llu, route errors %llu, burst rejected %llu\n",
              static_cast<unsigned long long>(protocol_errors),
              static_cast<unsigned long long>(all.order_errors),
              static_cast<unsigned long long>(all.label_errors),
              static_cast<unsigned long long>(all.route_errors),
              static_cast<unsigned long long>(burst.rejected));

  std::ofstream out_file(opts.out_path);
  if (!out_file) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 opts.out_path.c_str());
    return 2;
  }
  support::JsonWriter json(out_file);
  json.begin_object();
  json.kv("bench", "serve_load");
  json.kv("smoke", opts.smoke);
  json.kv("io_threads", static_cast<std::uint64_t>(opts.io_threads));
  json.kv("workers", static_cast<std::uint64_t>(opts.workers));
  json.kv("queue_capacity", static_cast<std::uint64_t>(opts.queue));
  json.key("phases");
  json.begin_array();
  write_phase(json, "closed", opts.connections, closed, closed_seconds);
  write_phase(json, "open", opts.open_connections, open, open_seconds);
  write_phase(json, "burst", opts.burst_connections, burst,
              burst_seconds);
  if (opts.baseline_futures) {
    write_phase(json, "closed-compare", opts.compare_connections, compare,
                compare_seconds);
    write_phase(json, "baseline-futures", opts.compare_connections,
                baseline, baseline_seconds);
  }
  json.end_array();
  json.kv("baseline_futures", opts.baseline_futures);
  json.kv("closed_rounds", static_cast<std::uint64_t>(closed_rounds));
  json.kv("closed_rps_best", closed_rps);
  json.kv("compare_connections",
          static_cast<std::uint64_t>(opts.compare_connections));
  json.kv("compare_rps_best", compare_best_rps);
  json.kv("baseline_rps_best", baseline_best_rps);
  json.kv("speedup_vs_futures", speedup);
  // The adaptive micro-batcher's occupancy (per formed batch, fraction
  // of max_batch filled) — the CI smoke step exports this block.
  {
    const auto occupancy = engine.stats().batch_occupancy.snapshot();
    json.key("batch_occupancy");
    json.begin_object();
    json.kv("samples", engine.stats().batch_occupancy.count());
    json.kv("p50", occupancy.quantile(0.5));
    json.kv("p90", occupancy.quantile(0.9));
    json.end_object();
  }
  json.key("client_metrics");
  obs::write_json(json, client_metrics.snapshot());
  json.key("server_metrics");
  obs::write_json(json, server_snapshot);
  json.key("accounting");
  json.begin_object();
  json.kv("sent", all.sent);
  json.kv("ok", all.ok);
  json.kv("rejected", all.rejected);
  json.kv("responses_sent", responses_sent);
  json.kv("protocol_errors", protocol_errors);
  json.kv("exact", exact);
  json.kv("clean", clean);
  json.kv("backpressure_seen", backpressure_seen);
  json.kv("baseline_exact", baseline_exact);
  json.kv("baseline_clean", baseline_clean);
  json.end_object();
  json.end_object();
  out_file << '\n';
  std::printf("wrote %s\n", opts.out_path.c_str());

  if (!exact || !clean || !backpressure_seen || !baseline_exact ||
      !baseline_clean) {
    std::fprintf(stderr, "serve_load FAILED: exact=%d clean=%d "
                 "backpressure_seen=%d baseline_exact=%d "
                 "baseline_clean=%d\n",
                 exact, clean, backpressure_seen, baseline_exact,
                 baseline_clean);
    return 1;
  }
  // The perf gate: full runs with the baseline measured must show the
  // completion path at >= 1.3x the future-polling throughput.  Smoke
  // runs report the ratio but don't gate (tiny runs are noise).
  if (opts.baseline_futures && !opts.smoke && speedup < 1.3) {
    std::fprintf(stderr, "serve_load FAILED: completion-path speedup "
                 "%.2fx < 1.3x over --baseline-futures\n", speedup);
    return 1;
  }
  return 0;
}
