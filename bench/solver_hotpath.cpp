// Barrier-solver hot-path bench: tree-wide warm starts + shared problem
// structure + zero-alloc workspace (DESIGN.md §10) vs the cold baseline.
//
// For each (dataset, word length) case the LDA-FP trainer runs twice on
// identical inputs and budgets — once with bnb.warm_start_relaxations
// off (cold: every node solves phase I from the box center) and once on
// (warm: each child seeds phase II from its parent's relaxation optimum)
// — and reports wall time, node counts, and the deterministic solver
// counters (phase-I skips, Newton iterations, factorizations).  The two
// runs' trained results (weights/cost/threshold/status) are compared
// bitwise; grid rounding makes them identical on these problems even
// though interior relaxation trajectories differ.
//
// Results stream to BENCH_solver.json (see README for the schema).
// `--smoke` shrinks the budgets for CI and exits non-zero when the warm
// configuration is more than 10% slower than cold (a hot-path
// regression); the full run targets the >= 1.5x geometric-mean speedup
// documented in README.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/format_policy.h"
#include "core/ldafp.h"
#include "data/bci_synthetic.h"
#include "data/synthetic.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "stats/normal.h"
#include "support/json.h"
#include "support/str.h"
#include "support/table.h"
#include "support/timer.h"

namespace {

using namespace ldafp;

struct CaseSpec {
  std::string dataset;  // "synthetic" | "bci"
  int word_length;
  std::size_t max_nodes;
};

struct RunStats {
  double seconds = 0.0;
  core::LdaFpResult result;
};

/// Trains `repeats` times and keeps the fastest wall time (the runs are
/// deterministic, so only timing noise differs between them).
RunStats run_best(const core::TrainingSet& scaled,
                  const fixed::FixedFormat& format, std::size_t max_nodes,
                  bool warm, int repeats) {
  core::LdaFpOptions options;
  options.bnb.max_nodes = max_nodes;
  options.bnb.rel_gap = 1e-3;
  options.bnb.warm_start_relaxations = warm;
  // Grid coordinate-descent polish is identical work in both
  // configurations and would only dilute the solver measurement; the
  // bench isolates the barrier hot path.
  options.local_search = false;
  const core::LdaFpTrainer trainer(format, options);
  RunStats out;
  for (int rep = 0; rep < repeats; ++rep) {
    support::WallTimer timer;
    core::LdaFpResult result = trainer.train(scaled);
    const double seconds = timer.seconds();
    if (rep == 0 || seconds < out.seconds) {
      out.seconds = seconds;
      out.result = std::move(result);
    }
  }
  return out;
}

bool same_result(const core::LdaFpResult& a, const core::LdaFpResult& b) {
  if (a.found() != b.found()) return false;
  if (a.found()) {
    if (a.weights.size() != b.weights.size()) return false;
    for (std::size_t m = 0; m < a.weights.size(); ++m) {
      if (a.weights[m] != b.weights[m]) return false;
    }
    if (a.cost != b.cost || a.threshold != b.threshold) return false;
  }
  return a.search.status == b.search.status;
}

void write_run(support::JsonWriter& json, const char* name,
               const RunStats& run) {
  // The run's counters go through the uniform obs path: publish the
  // search result into a per-run registry, export the snapshot.  The
  // emitted keys are metric identities ("bnb.nodes_processed",
  // "solver.newton_iterations", ...) — the same names every other
  // subsystem reports under (README documents the schema).
  obs::MetricsRegistry metrics;
  opt::publish(run.result.search, metrics);
  metrics.gauge("bench.seconds").set(run.seconds);
  metrics.gauge("bench.cost").set(run.result.cost);
  json.key(name);
  json.begin_object();
  json.kv("status", opt::to_string(run.result.search.status));
  json.key("metrics");
  obs::write_json(json, metrics.snapshot());
  json.end_object();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--out FILE]\n", argv[0]);
      return 2;
    }
  }

  // Fixed seeds: the bench is deterministic end to end.
  support::Rng rng(42);
  const core::TrainingSet synthetic =
      data::make_synthetic(1500, rng).to_training_set();
  support::Rng bci_rng(7);
  const core::TrainingSet bci =
      data::make_bci_synthetic(bci_rng).to_training_set();
  const double beta = stats::confidence_beta(0.9999);

  // Node budgets are chosen (per case) past the point where the incumbent
  // stabilizes, so truncated cold and warm searches agree bitwise; with a
  // budget cut mid-plateau the two (equally valid) incumbents can differ
  // in low-order bits.  SCAN_CASE="<dataset> <W> <nodes>" overrides the
  // case list with a single case for such budget scans.
  std::vector<CaseSpec> cases;
  if (const char* scan = std::getenv("SCAN_CASE")) {
    int w = 0;
    unsigned long nodes = 0;
    char name[32];
    std::sscanf(scan, "%31s %d %lu", name, &w, &nodes);
    cases = {{name, w, nodes}};
  } else if (smoke) {
    cases = {{"synthetic", 6, 250},
             {"synthetic", 10, 1000},
             {"bci", 6, 12}};
  } else {
    for (const int w : {4, 6, 8, 10, 12, 16}) {
      cases.push_back({"synthetic", w, w == 12 ? 8000u : 2000u});
    }
    for (const int w : {6, 8}) {
      cases.push_back({"bci", w, 30});
    }
  }

  std::ofstream out_file(out_path);
  if (!out_file) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  support::JsonWriter json(out_file);
  json.begin_object();
  json.kv("bench", "solver_hotpath");
  json.kv("smoke", smoke);
  json.key("cases");
  json.begin_array();

  support::TextTable table({"Dataset", "W", "Cold s", "Warm s", "Speedup",
                            "P1 skips", "Newton cold", "Newton warm",
                            "Identical"});
  double log_speedup_sum = 0.0;
  std::size_t speedup_count = 0;
  bool all_identical = true;

  for (const CaseSpec& spec : cases) {
    const core::TrainingSet& raw =
        spec.dataset == "synthetic" ? synthetic : bci;
    const core::FormatChoice choice =
        core::choose_format(raw, spec.word_length, beta, 2);
    const core::TrainingSet scaled =
        core::scale_training_set(raw, choice.feature_scale);

    const int repeats = 3;
    const RunStats cold =
        run_best(scaled, choice.format, spec.max_nodes, false, repeats);
    const RunStats warm =
        run_best(scaled, choice.format, spec.max_nodes, true, repeats);

    const bool identical = same_result(cold.result, warm.result);
    all_identical = all_identical && identical;
    const double speedup =
        warm.seconds > 0.0 ? cold.seconds / warm.seconds : 1.0;
    if (speedup > 0.0) {
      log_speedup_sum += std::log(speedup);
      ++speedup_count;
    }
    const opt::NodeStats& ws = warm.result.search.solver_stats;
    const double skip_rate =
        ws.relaxations > 0 ? static_cast<double>(ws.phase1_skips) /
                                 static_cast<double>(ws.relaxations)
                           : 0.0;

    json.begin_object();
    json.kv("dataset", spec.dataset);
    json.kv("word_length", spec.word_length);
    json.kv("max_nodes", static_cast<std::uint64_t>(spec.max_nodes));
    write_run(json, "cold", cold);
    write_run(json, "warm", warm);
    json.kv("identical_result", identical);
    json.kv("speedup", speedup);
    json.kv("phase1_skip_rate", skip_rate);
    json.end_object();

    table.add_row(
        {spec.dataset, std::to_string(spec.word_length),
         support::format_double(cold.seconds, 3),
         support::format_double(warm.seconds, 3),
         support::format_double(speedup, 2) + "x",
         support::format_percent(skip_rate),
         std::to_string(cold.result.search.solver_stats.newton_iterations),
         std::to_string(ws.newton_iterations),
         identical ? "yes" : "NO"});
    std::fflush(stdout);
  }

  const double geomean =
      speedup_count > 0 ? std::exp(log_speedup_sum /
                                   static_cast<double>(speedup_count))
                        : 1.0;
  json.end_array();
  json.kv("geomean_speedup", geomean);
  json.kv("all_identical", all_identical);
  json.end_object();
  out_file << '\n';
  out_file.close();

  std::printf("Barrier-solver hot path: warm starts + shared structure + "
              "workspace vs cold baseline\n\n%s\n",
              table.to_string().c_str());
  std::printf("geometric-mean speedup: %.2fx; results identical: %s; "
              "wrote %s\n",
              geomean, all_identical ? "yes" : "NO", out_path.c_str());

  if (smoke && geomean < 0.9) {
    std::fprintf(stderr,
                 "SMOKE FAIL: warm geomean speedup %.2fx < 0.9x (hot-path "
                 "regression)\n",
                 geomean);
    return 1;
  }
  return 0;
}
