// Reproduces paper Table 1: classification error and LDA-FP runtime on
// the synthetic data set (Eqs. 30-32) as functions of the word length.
//
// Expected shape (the substrate differs from the authors' testbed, so
// absolute numbers shift):
//  * conventional LDA is stuck at chance (~50%) until the word length
//    can represent the 1:580 weight dynamic range (paper: 12 bits),
//  * LDA-FP delivers usable accuracy from 4 bits,
//  * both converge to the ~19.4% Bayes floor at long word lengths,
//  * LDA-FP runtime collapses once the rounded-LDA warm start is already
//    optimal (paper: 0.06 s at 14-16 bits vs minutes at 8-12).
#include <cstdio>
#include <string>

#include "data/synthetic.h"
#include "eval/experiment.h"
#include "support/str.h"
#include "support/table.h"

namespace {

struct PaperRow {
  int word_length;
  double lda_error;
  double ldafp_error;
  double runtime;
};

// Table 1 of the paper, for side-by-side comparison.
constexpr PaperRow kPaperTable1[] = {
    {4, 0.5000, 0.2704, 0.81},   {6, 0.5000, 0.2683, 5.87},
    {8, 0.5000, 0.2598, 20.42},  {10, 0.5000, 0.2262, 29.16},
    {12, 0.2446, 0.1960, 29.11}, {14, 0.1948, 0.1933, 0.06},
    {16, 0.1933, 0.1933, 0.06},
};

}  // namespace

int main() {
  using namespace ldafp;

  support::Rng rng(20140601);  // DAC'14 vintage seed
  const auto train = data::make_synthetic(4000, rng);
  const auto test = data::make_synthetic(20000, rng);

  eval::ExperimentConfig config;
  config.word_lengths = {4, 6, 8, 10, 12, 14, 16};
  config.ldafp.bnb.max_nodes = 20000;
  config.ldafp.bnb.max_seconds = 20.0;
  config.ldafp.bnb.rel_gap = 1e-4;

  std::printf("Table 1 — synthetic data set (Eqs. 30-32), %zu train / %zu "
              "test samples\n",
              train.size(), test.size());
  std::printf("Bayes floor of the float-optimal classifier: %s\n\n",
              support::format_percent(data::synthetic_bayes_error())
                  .c_str());

  support::TextTable table({"Word Length (Bit)", "LDA Error", "LDA-FP Error",
                            "LDA-FP Runtime (s)", "Gap", "Paper LDA",
                            "Paper LDA-FP", "Paper Runtime (s)"});
  for (std::size_t i = 0; i < config.word_lengths.size(); ++i) {
    const int w = config.word_lengths[i];
    const eval::TrialResult row = eval::run_trial(train, test, w, config);
    const PaperRow& paper = kPaperTable1[i];
    table.add_row({std::to_string(w),
                   support::format_percent(row.lda_error),
                   support::format_percent(row.ldafp_error),
                   support::format_double(row.ldafp_seconds, 2),
                   support::format_double(row.ldafp_gap, 3),
                   support::format_percent(paper.lda_error),
                   support::format_percent(paper.ldafp_error),
                   support::format_double(paper.runtime, 2)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf("Shape checks: LDA near chance at short word lengths, LDA-FP "
              "usable from 4 bits,\nboth at the Bayes floor by 16 bits.\n");
  return 0;
}
