// Reproduces paper Table 2: 5-fold cross-validated classification error
// and LDA-FP runtime on the brain-computer-interface workload, word
// lengths 3-8 bits.
//
// The paper's private ECoG recordings are replaced by the synthetic BCI
// generator (42 features, 70 trials per class — DESIGN.md §3); the
// branch-and-bound search runs under a node budget (the paper's own runs
// took up to ~50 minutes per word length on this workload), so rows
// report the achieved optimality gap.  Expected shape: LDA-FP error <=
// LDA error per word length, LDA-FP reaching LDA's 8-bit accuracy around
// 6 bits (the paper's 1.8x power claim), noise from the small data set.
#include <cstdio>
#include <string>

#include "data/bci_synthetic.h"
#include "eval/experiment.h"
#include "hw/power_model.h"
#include "support/str.h"
#include "support/table.h"

namespace {

struct PaperRow {
  int word_length;
  double lda_error;
  double ldafp_error;
  double runtime;
};

// Table 2 of the paper.
constexpr PaperRow kPaperTable2[] = {
    {3, 0.5000, 0.5214, 39.9},   {4, 0.4643, 0.3717, 219.7},
    {5, 0.4071, 0.3214, 1913.5}, {6, 0.3214, 0.2071, 2977.0},
    {7, 0.2143, 0.1929, 152.8},  {8, 0.2071, 0.2000, 221.1},
};

}  // namespace

int main() {
  using namespace ldafp;

  support::Rng rng(16);
  const auto dataset = data::make_bci_synthetic(rng);
  std::printf("Table 2 — BCI movement decoding (synthetic ECoG stand-in), "
              "%zu features, %zu trials/class, 5-fold CV\n\n",
              dataset.dim(), dataset.count(core::Label::kClassA));

  eval::ExperimentConfig config;
  config.word_lengths = {3, 4, 5, 6, 7, 8};
  config.ldafp.bnb.max_nodes = 400;  // anytime budget (42-dim search)
  config.ldafp.bnb.max_seconds = 30.0;
  config.ldafp.bnb.rel_gap = 1e-3;
  // Longer local-search steps pay off in 42 dimensions.
  config.ldafp.local_search_options.max_step_pow = 5;
  // Give the baseline its best shot: power-of-two gain filling the
  // weight range before rounding (the unit-norm variant never recovers
  // on this generator's weight dynamic range; see bench/ablation_baseline).
  config.lda_gain = core::LdaGainPolicy::kMaxRange;

  support::Rng cv_rng(17);
  support::TextTable table({"Word Length (Bit)", "LDA Error",
                            "LDA-FP Error", "LDA-FP Runtime (s)",
                            "Paper LDA", "Paper LDA-FP",
                            "Paper Runtime (s)"});
  std::vector<eval::CvTrialResult> rows;
  for (std::size_t i = 0; i < config.word_lengths.size(); ++i) {
    eval::ExperimentConfig one = config;
    one.word_lengths = {config.word_lengths[i]};
    const auto result = eval::run_cv_sweep(dataset, 5, one, cv_rng);
    rows.push_back(result.front());
    const auto& row = rows.back();
    const PaperRow& paper = kPaperTable2[i];
    table.add_row({std::to_string(row.word_length),
                   support::format_percent(row.lda_error),
                   support::format_percent(row.ldafp_error),
                   support::format_double(row.ldafp_seconds, 1),
                   support::format_percent(paper.lda_error),
                   support::format_percent(paper.ldafp_error),
                   support::format_double(paper.runtime, 1)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());

  // The paper's power conclusion: find the shortest LDA-FP word length
  // matching the best LDA error, convert to power with the quadratic
  // rule.
  double best_lda = 1.0;
  for (const auto& row : rows) best_lda = std::min(best_lda, row.lda_error);
  int lda_bits = 0;
  int fp_bits = 0;
  for (const auto& row : rows) {
    if (lda_bits == 0 && row.lda_error <= best_lda + 1e-9) {
      lda_bits = row.word_length;
    }
    if (fp_bits == 0 && row.ldafp_error <= best_lda + 0.005) {
      fp_bits = row.word_length;
    }
  }
  if (fp_bits != 0 && lda_bits != 0) {
    const hw::PowerModel power;
    std::printf("LDA needs %d bits for its best error (%s); LDA-FP matches "
                "it at %d bits -> %.2fx power reduction (paper: 8 -> 6 "
                "bits, 1.8x).\n",
                lda_bits, support::format_percent(best_lda).c_str(),
                fp_bits, power.power_ratio(lda_bits, fp_bits));
  }
  return 0;
}
