file(REMOVE_RECURSE
  "CMakeFiles/ablation_shrinkage.dir/ablation_shrinkage.cpp.o"
  "CMakeFiles/ablation_shrinkage.dir/ablation_shrinkage.cpp.o.d"
  "ablation_shrinkage"
  "ablation_shrinkage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shrinkage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
