# Empty compiler generated dependencies file for ablation_shrinkage.
# This may be replaced when dependencies are built.
