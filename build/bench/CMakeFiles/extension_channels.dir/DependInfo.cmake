
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/extension_channels.cpp" "bench/CMakeFiles/extension_channels.dir/extension_channels.cpp.o" "gcc" "bench/CMakeFiles/extension_channels.dir/extension_channels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ldafp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ldafp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ldafp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ldafp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ldafp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ldafp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ldafp_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ldafp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ldafp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
