file(REMOVE_RECURSE
  "CMakeFiles/extension_channels.dir/extension_channels.cpp.o"
  "CMakeFiles/extension_channels.dir/extension_channels.cpp.o.d"
  "extension_channels"
  "extension_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
