# Empty compiler generated dependencies file for extension_channels.
# This may be replaced when dependencies are built.
