file(REMOVE_RECURSE
  "CMakeFiles/extension_wordlength.dir/extension_wordlength.cpp.o"
  "CMakeFiles/extension_wordlength.dir/extension_wordlength.cpp.o.d"
  "extension_wordlength"
  "extension_wordlength.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_wordlength.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
