# Empty dependencies file for extension_wordlength.
# This may be replaced when dependencies are built.
