file(REMOVE_RECURSE
  "CMakeFiles/figure2_robustness.dir/figure2_robustness.cpp.o"
  "CMakeFiles/figure2_robustness.dir/figure2_robustness.cpp.o.d"
  "figure2_robustness"
  "figure2_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure2_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
