# Empty dependencies file for figure2_robustness.
# This may be replaced when dependencies are built.
