file(REMOVE_RECURSE
  "CMakeFiles/figure4_weights.dir/figure4_weights.cpp.o"
  "CMakeFiles/figure4_weights.dir/figure4_weights.cpp.o.d"
  "figure4_weights"
  "figure4_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/figure4_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
