# Empty dependencies file for figure4_weights.
# This may be replaced when dependencies are built.
