file(REMOVE_RECURSE
  "CMakeFiles/power_model.dir/power_model.cpp.o"
  "CMakeFiles/power_model.dir/power_model.cpp.o.d"
  "power_model"
  "power_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
