# Empty dependencies file for power_model.
# This may be replaced when dependencies are built.
