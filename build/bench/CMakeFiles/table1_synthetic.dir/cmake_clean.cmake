file(REMOVE_RECURSE
  "CMakeFiles/table1_synthetic.dir/table1_synthetic.cpp.o"
  "CMakeFiles/table1_synthetic.dir/table1_synthetic.cpp.o.d"
  "table1_synthetic"
  "table1_synthetic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_synthetic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
