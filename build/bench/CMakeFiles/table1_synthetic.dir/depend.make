# Empty dependencies file for table1_synthetic.
# This may be replaced when dependencies are built.
