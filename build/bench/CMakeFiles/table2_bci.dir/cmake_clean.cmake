file(REMOVE_RECURSE
  "CMakeFiles/table2_bci.dir/table2_bci.cpp.o"
  "CMakeFiles/table2_bci.dir/table2_bci.cpp.o.d"
  "table2_bci"
  "table2_bci.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_bci.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
