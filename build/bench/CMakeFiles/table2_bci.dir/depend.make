# Empty dependencies file for table2_bci.
# This may be replaced when dependencies are built.
