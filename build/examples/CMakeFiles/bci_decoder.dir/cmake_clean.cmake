file(REMOVE_RECURSE
  "CMakeFiles/bci_decoder.dir/bci_decoder.cpp.o"
  "CMakeFiles/bci_decoder.dir/bci_decoder.cpp.o.d"
  "bci_decoder"
  "bci_decoder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bci_decoder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
