# Empty compiler generated dependencies file for bci_decoder.
# This may be replaced when dependencies are built.
