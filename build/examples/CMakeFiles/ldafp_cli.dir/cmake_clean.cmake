file(REMOVE_RECURSE
  "CMakeFiles/ldafp_cli.dir/ldafp_cli.cpp.o"
  "CMakeFiles/ldafp_cli.dir/ldafp_cli.cpp.o.d"
  "ldafp_cli"
  "ldafp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldafp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
