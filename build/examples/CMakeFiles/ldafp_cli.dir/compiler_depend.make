# Empty compiler generated dependencies file for ldafp_cli.
# This may be replaced when dependencies are built.
