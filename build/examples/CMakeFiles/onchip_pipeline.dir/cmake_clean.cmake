file(REMOVE_RECURSE
  "CMakeFiles/onchip_pipeline.dir/onchip_pipeline.cpp.o"
  "CMakeFiles/onchip_pipeline.dir/onchip_pipeline.cpp.o.d"
  "onchip_pipeline"
  "onchip_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onchip_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
