# Empty dependencies file for onchip_pipeline.
# This may be replaced when dependencies are built.
