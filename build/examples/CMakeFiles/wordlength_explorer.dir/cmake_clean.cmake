file(REMOVE_RECURSE
  "CMakeFiles/wordlength_explorer.dir/wordlength_explorer.cpp.o"
  "CMakeFiles/wordlength_explorer.dir/wordlength_explorer.cpp.o.d"
  "wordlength_explorer"
  "wordlength_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordlength_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
