# Empty dependencies file for wordlength_explorer.
# This may be replaced when dependencies are built.
