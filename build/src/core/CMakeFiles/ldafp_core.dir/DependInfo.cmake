
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bit_allocation.cpp" "src/core/CMakeFiles/ldafp_core.dir/bit_allocation.cpp.o" "gcc" "src/core/CMakeFiles/ldafp_core.dir/bit_allocation.cpp.o.d"
  "/root/repo/src/core/classifier.cpp" "src/core/CMakeFiles/ldafp_core.dir/classifier.cpp.o" "gcc" "src/core/CMakeFiles/ldafp_core.dir/classifier.cpp.o.d"
  "/root/repo/src/core/constraints.cpp" "src/core/CMakeFiles/ldafp_core.dir/constraints.cpp.o" "gcc" "src/core/CMakeFiles/ldafp_core.dir/constraints.cpp.o.d"
  "/root/repo/src/core/feature_selection.cpp" "src/core/CMakeFiles/ldafp_core.dir/feature_selection.cpp.o" "gcc" "src/core/CMakeFiles/ldafp_core.dir/feature_selection.cpp.o.d"
  "/root/repo/src/core/format_policy.cpp" "src/core/CMakeFiles/ldafp_core.dir/format_policy.cpp.o" "gcc" "src/core/CMakeFiles/ldafp_core.dir/format_policy.cpp.o.d"
  "/root/repo/src/core/lda.cpp" "src/core/CMakeFiles/ldafp_core.dir/lda.cpp.o" "gcc" "src/core/CMakeFiles/ldafp_core.dir/lda.cpp.o.d"
  "/root/repo/src/core/ldafp.cpp" "src/core/CMakeFiles/ldafp_core.dir/ldafp.cpp.o" "gcc" "src/core/CMakeFiles/ldafp_core.dir/ldafp.cpp.o.d"
  "/root/repo/src/core/local_search.cpp" "src/core/CMakeFiles/ldafp_core.dir/local_search.cpp.o" "gcc" "src/core/CMakeFiles/ldafp_core.dir/local_search.cpp.o.d"
  "/root/repo/src/core/multiclass.cpp" "src/core/CMakeFiles/ldafp_core.dir/multiclass.cpp.o" "gcc" "src/core/CMakeFiles/ldafp_core.dir/multiclass.cpp.o.d"
  "/root/repo/src/core/training_set.cpp" "src/core/CMakeFiles/ldafp_core.dir/training_set.cpp.o" "gcc" "src/core/CMakeFiles/ldafp_core.dir/training_set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/opt/CMakeFiles/ldafp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ldafp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ldafp_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ldafp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ldafp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
