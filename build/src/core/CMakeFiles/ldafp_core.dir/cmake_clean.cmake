file(REMOVE_RECURSE
  "CMakeFiles/ldafp_core.dir/bit_allocation.cpp.o"
  "CMakeFiles/ldafp_core.dir/bit_allocation.cpp.o.d"
  "CMakeFiles/ldafp_core.dir/classifier.cpp.o"
  "CMakeFiles/ldafp_core.dir/classifier.cpp.o.d"
  "CMakeFiles/ldafp_core.dir/constraints.cpp.o"
  "CMakeFiles/ldafp_core.dir/constraints.cpp.o.d"
  "CMakeFiles/ldafp_core.dir/feature_selection.cpp.o"
  "CMakeFiles/ldafp_core.dir/feature_selection.cpp.o.d"
  "CMakeFiles/ldafp_core.dir/format_policy.cpp.o"
  "CMakeFiles/ldafp_core.dir/format_policy.cpp.o.d"
  "CMakeFiles/ldafp_core.dir/lda.cpp.o"
  "CMakeFiles/ldafp_core.dir/lda.cpp.o.d"
  "CMakeFiles/ldafp_core.dir/ldafp.cpp.o"
  "CMakeFiles/ldafp_core.dir/ldafp.cpp.o.d"
  "CMakeFiles/ldafp_core.dir/local_search.cpp.o"
  "CMakeFiles/ldafp_core.dir/local_search.cpp.o.d"
  "CMakeFiles/ldafp_core.dir/multiclass.cpp.o"
  "CMakeFiles/ldafp_core.dir/multiclass.cpp.o.d"
  "CMakeFiles/ldafp_core.dir/training_set.cpp.o"
  "CMakeFiles/ldafp_core.dir/training_set.cpp.o.d"
  "libldafp_core.a"
  "libldafp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldafp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
