file(REMOVE_RECURSE
  "libldafp_core.a"
)
