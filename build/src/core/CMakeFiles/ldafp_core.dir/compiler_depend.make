# Empty compiler generated dependencies file for ldafp_core.
# This may be replaced when dependencies are built.
