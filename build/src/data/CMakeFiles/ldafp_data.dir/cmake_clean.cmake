file(REMOVE_RECURSE
  "CMakeFiles/ldafp_data.dir/bci_synthetic.cpp.o"
  "CMakeFiles/ldafp_data.dir/bci_synthetic.cpp.o.d"
  "CMakeFiles/ldafp_data.dir/dataset.cpp.o"
  "CMakeFiles/ldafp_data.dir/dataset.cpp.o.d"
  "CMakeFiles/ldafp_data.dir/ecg_synthetic.cpp.o"
  "CMakeFiles/ldafp_data.dir/ecg_synthetic.cpp.o.d"
  "CMakeFiles/ldafp_data.dir/io.cpp.o"
  "CMakeFiles/ldafp_data.dir/io.cpp.o.d"
  "CMakeFiles/ldafp_data.dir/synthetic.cpp.o"
  "CMakeFiles/ldafp_data.dir/synthetic.cpp.o.d"
  "libldafp_data.a"
  "libldafp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldafp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
