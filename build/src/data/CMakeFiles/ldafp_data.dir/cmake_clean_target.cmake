file(REMOVE_RECURSE
  "libldafp_data.a"
)
