# Empty dependencies file for ldafp_data.
# This may be replaced when dependencies are built.
