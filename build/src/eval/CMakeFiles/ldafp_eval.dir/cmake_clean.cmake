file(REMOVE_RECURSE
  "CMakeFiles/ldafp_eval.dir/experiment.cpp.o"
  "CMakeFiles/ldafp_eval.dir/experiment.cpp.o.d"
  "CMakeFiles/ldafp_eval.dir/metrics.cpp.o"
  "CMakeFiles/ldafp_eval.dir/metrics.cpp.o.d"
  "libldafp_eval.a"
  "libldafp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldafp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
