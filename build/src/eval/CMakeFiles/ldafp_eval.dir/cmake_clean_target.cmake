file(REMOVE_RECURSE
  "libldafp_eval.a"
)
