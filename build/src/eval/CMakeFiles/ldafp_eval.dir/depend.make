# Empty dependencies file for ldafp_eval.
# This may be replaced when dependencies are built.
