
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fixed/dot.cpp" "src/fixed/CMakeFiles/ldafp_fixed.dir/dot.cpp.o" "gcc" "src/fixed/CMakeFiles/ldafp_fixed.dir/dot.cpp.o.d"
  "/root/repo/src/fixed/format.cpp" "src/fixed/CMakeFiles/ldafp_fixed.dir/format.cpp.o" "gcc" "src/fixed/CMakeFiles/ldafp_fixed.dir/format.cpp.o.d"
  "/root/repo/src/fixed/grid.cpp" "src/fixed/CMakeFiles/ldafp_fixed.dir/grid.cpp.o" "gcc" "src/fixed/CMakeFiles/ldafp_fixed.dir/grid.cpp.o.d"
  "/root/repo/src/fixed/mixed_dot.cpp" "src/fixed/CMakeFiles/ldafp_fixed.dir/mixed_dot.cpp.o" "gcc" "src/fixed/CMakeFiles/ldafp_fixed.dir/mixed_dot.cpp.o.d"
  "/root/repo/src/fixed/value.cpp" "src/fixed/CMakeFiles/ldafp_fixed.dir/value.cpp.o" "gcc" "src/fixed/CMakeFiles/ldafp_fixed.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ldafp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ldafp_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
