file(REMOVE_RECURSE
  "CMakeFiles/ldafp_fixed.dir/dot.cpp.o"
  "CMakeFiles/ldafp_fixed.dir/dot.cpp.o.d"
  "CMakeFiles/ldafp_fixed.dir/format.cpp.o"
  "CMakeFiles/ldafp_fixed.dir/format.cpp.o.d"
  "CMakeFiles/ldafp_fixed.dir/grid.cpp.o"
  "CMakeFiles/ldafp_fixed.dir/grid.cpp.o.d"
  "CMakeFiles/ldafp_fixed.dir/mixed_dot.cpp.o"
  "CMakeFiles/ldafp_fixed.dir/mixed_dot.cpp.o.d"
  "CMakeFiles/ldafp_fixed.dir/value.cpp.o"
  "CMakeFiles/ldafp_fixed.dir/value.cpp.o.d"
  "libldafp_fixed.a"
  "libldafp_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldafp_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
