file(REMOVE_RECURSE
  "libldafp_fixed.a"
)
