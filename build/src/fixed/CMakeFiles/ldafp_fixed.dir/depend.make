# Empty dependencies file for ldafp_fixed.
# This may be replaced when dependencies are built.
