
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/mac_datapath.cpp" "src/hw/CMakeFiles/ldafp_hw.dir/mac_datapath.cpp.o" "gcc" "src/hw/CMakeFiles/ldafp_hw.dir/mac_datapath.cpp.o.d"
  "/root/repo/src/hw/power_model.cpp" "src/hw/CMakeFiles/ldafp_hw.dir/power_model.cpp.o" "gcc" "src/hw/CMakeFiles/ldafp_hw.dir/power_model.cpp.o.d"
  "/root/repo/src/hw/rom_image.cpp" "src/hw/CMakeFiles/ldafp_hw.dir/rom_image.cpp.o" "gcc" "src/hw/CMakeFiles/ldafp_hw.dir/rom_image.cpp.o.d"
  "/root/repo/src/hw/verilog_gen.cpp" "src/hw/CMakeFiles/ldafp_hw.dir/verilog_gen.cpp.o" "gcc" "src/hw/CMakeFiles/ldafp_hw.dir/verilog_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ldafp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ldafp_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ldafp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ldafp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ldafp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ldafp_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
