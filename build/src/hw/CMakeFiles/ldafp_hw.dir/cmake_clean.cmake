file(REMOVE_RECURSE
  "CMakeFiles/ldafp_hw.dir/mac_datapath.cpp.o"
  "CMakeFiles/ldafp_hw.dir/mac_datapath.cpp.o.d"
  "CMakeFiles/ldafp_hw.dir/power_model.cpp.o"
  "CMakeFiles/ldafp_hw.dir/power_model.cpp.o.d"
  "CMakeFiles/ldafp_hw.dir/rom_image.cpp.o"
  "CMakeFiles/ldafp_hw.dir/rom_image.cpp.o.d"
  "CMakeFiles/ldafp_hw.dir/verilog_gen.cpp.o"
  "CMakeFiles/ldafp_hw.dir/verilog_gen.cpp.o.d"
  "libldafp_hw.a"
  "libldafp_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldafp_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
