file(REMOVE_RECURSE
  "libldafp_hw.a"
)
