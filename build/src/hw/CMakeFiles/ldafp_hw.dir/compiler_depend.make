# Empty compiler generated dependencies file for ldafp_hw.
# This may be replaced when dependencies are built.
