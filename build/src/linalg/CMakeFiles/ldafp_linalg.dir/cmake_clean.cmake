file(REMOVE_RECURSE
  "CMakeFiles/ldafp_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/ldafp_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/ldafp_linalg.dir/eigen_sym.cpp.o"
  "CMakeFiles/ldafp_linalg.dir/eigen_sym.cpp.o.d"
  "CMakeFiles/ldafp_linalg.dir/lu.cpp.o"
  "CMakeFiles/ldafp_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/ldafp_linalg.dir/matrix.cpp.o"
  "CMakeFiles/ldafp_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/ldafp_linalg.dir/ops.cpp.o"
  "CMakeFiles/ldafp_linalg.dir/ops.cpp.o.d"
  "CMakeFiles/ldafp_linalg.dir/qr.cpp.o"
  "CMakeFiles/ldafp_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/ldafp_linalg.dir/vector.cpp.o"
  "CMakeFiles/ldafp_linalg.dir/vector.cpp.o.d"
  "libldafp_linalg.a"
  "libldafp_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldafp_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
