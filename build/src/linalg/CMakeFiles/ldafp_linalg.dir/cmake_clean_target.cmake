file(REMOVE_RECURSE
  "libldafp_linalg.a"
)
