# Empty compiler generated dependencies file for ldafp_linalg.
# This may be replaced when dependencies are built.
