# Empty dependencies file for ldafp_linalg.
# This may be replaced when dependencies are built.
