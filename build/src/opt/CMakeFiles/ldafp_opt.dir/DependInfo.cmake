
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/barrier_solver.cpp" "src/opt/CMakeFiles/ldafp_opt.dir/barrier_solver.cpp.o" "gcc" "src/opt/CMakeFiles/ldafp_opt.dir/barrier_solver.cpp.o.d"
  "/root/repo/src/opt/bnb.cpp" "src/opt/CMakeFiles/ldafp_opt.dir/bnb.cpp.o" "gcc" "src/opt/CMakeFiles/ldafp_opt.dir/bnb.cpp.o.d"
  "/root/repo/src/opt/box.cpp" "src/opt/CMakeFiles/ldafp_opt.dir/box.cpp.o" "gcc" "src/opt/CMakeFiles/ldafp_opt.dir/box.cpp.o.d"
  "/root/repo/src/opt/convex_problem.cpp" "src/opt/CMakeFiles/ldafp_opt.dir/convex_problem.cpp.o" "gcc" "src/opt/CMakeFiles/ldafp_opt.dir/convex_problem.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/ldafp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ldafp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
