file(REMOVE_RECURSE
  "CMakeFiles/ldafp_opt.dir/barrier_solver.cpp.o"
  "CMakeFiles/ldafp_opt.dir/barrier_solver.cpp.o.d"
  "CMakeFiles/ldafp_opt.dir/bnb.cpp.o"
  "CMakeFiles/ldafp_opt.dir/bnb.cpp.o.d"
  "CMakeFiles/ldafp_opt.dir/box.cpp.o"
  "CMakeFiles/ldafp_opt.dir/box.cpp.o.d"
  "CMakeFiles/ldafp_opt.dir/convex_problem.cpp.o"
  "CMakeFiles/ldafp_opt.dir/convex_problem.cpp.o.d"
  "libldafp_opt.a"
  "libldafp_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldafp_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
