file(REMOVE_RECURSE
  "libldafp_opt.a"
)
