# Empty dependencies file for ldafp_opt.
# This may be replaced when dependencies are built.
