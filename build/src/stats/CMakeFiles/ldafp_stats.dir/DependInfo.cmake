
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/ldafp_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/ldafp_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/gaussian_model.cpp" "src/stats/CMakeFiles/ldafp_stats.dir/gaussian_model.cpp.o" "gcc" "src/stats/CMakeFiles/ldafp_stats.dir/gaussian_model.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/stats/CMakeFiles/ldafp_stats.dir/normal.cpp.o" "gcc" "src/stats/CMakeFiles/ldafp_stats.dir/normal.cpp.o.d"
  "/root/repo/src/stats/shrinkage.cpp" "src/stats/CMakeFiles/ldafp_stats.dir/shrinkage.cpp.o" "gcc" "src/stats/CMakeFiles/ldafp_stats.dir/shrinkage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/ldafp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ldafp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
