file(REMOVE_RECURSE
  "CMakeFiles/ldafp_stats.dir/descriptive.cpp.o"
  "CMakeFiles/ldafp_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/ldafp_stats.dir/gaussian_model.cpp.o"
  "CMakeFiles/ldafp_stats.dir/gaussian_model.cpp.o.d"
  "CMakeFiles/ldafp_stats.dir/normal.cpp.o"
  "CMakeFiles/ldafp_stats.dir/normal.cpp.o.d"
  "CMakeFiles/ldafp_stats.dir/shrinkage.cpp.o"
  "CMakeFiles/ldafp_stats.dir/shrinkage.cpp.o.d"
  "libldafp_stats.a"
  "libldafp_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldafp_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
