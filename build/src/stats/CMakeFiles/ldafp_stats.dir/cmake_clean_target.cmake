file(REMOVE_RECURSE
  "libldafp_stats.a"
)
