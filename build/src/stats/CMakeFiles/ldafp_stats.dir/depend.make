# Empty dependencies file for ldafp_stats.
# This may be replaced when dependencies are built.
