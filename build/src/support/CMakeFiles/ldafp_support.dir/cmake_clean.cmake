file(REMOVE_RECURSE
  "CMakeFiles/ldafp_support.dir/csv.cpp.o"
  "CMakeFiles/ldafp_support.dir/csv.cpp.o.d"
  "CMakeFiles/ldafp_support.dir/error.cpp.o"
  "CMakeFiles/ldafp_support.dir/error.cpp.o.d"
  "CMakeFiles/ldafp_support.dir/log.cpp.o"
  "CMakeFiles/ldafp_support.dir/log.cpp.o.d"
  "CMakeFiles/ldafp_support.dir/rng.cpp.o"
  "CMakeFiles/ldafp_support.dir/rng.cpp.o.d"
  "CMakeFiles/ldafp_support.dir/str.cpp.o"
  "CMakeFiles/ldafp_support.dir/str.cpp.o.d"
  "CMakeFiles/ldafp_support.dir/table.cpp.o"
  "CMakeFiles/ldafp_support.dir/table.cpp.o.d"
  "libldafp_support.a"
  "libldafp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldafp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
