file(REMOVE_RECURSE
  "libldafp_support.a"
)
