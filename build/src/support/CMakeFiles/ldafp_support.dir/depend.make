# Empty dependencies file for ldafp_support.
# This may be replaced when dependencies are built.
