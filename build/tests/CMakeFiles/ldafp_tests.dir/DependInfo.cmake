
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/bit_allocation_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/core/bit_allocation_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/core/bit_allocation_test.cpp.o.d"
  "/root/repo/tests/core/classifier_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/core/classifier_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/core/classifier_test.cpp.o.d"
  "/root/repo/tests/core/constraints_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/core/constraints_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/core/constraints_test.cpp.o.d"
  "/root/repo/tests/core/feature_selection_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/core/feature_selection_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/core/feature_selection_test.cpp.o.d"
  "/root/repo/tests/core/format_policy_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/core/format_policy_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/core/format_policy_test.cpp.o.d"
  "/root/repo/tests/core/lda_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/core/lda_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/core/lda_test.cpp.o.d"
  "/root/repo/tests/core/ldafp_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/core/ldafp_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/core/ldafp_test.cpp.o.d"
  "/root/repo/tests/core/local_search_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/core/local_search_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/core/local_search_test.cpp.o.d"
  "/root/repo/tests/core/multiclass_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/core/multiclass_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/core/multiclass_test.cpp.o.d"
  "/root/repo/tests/data/bci_synthetic_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/data/bci_synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/data/bci_synthetic_test.cpp.o.d"
  "/root/repo/tests/data/dataset_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/data/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/data/dataset_test.cpp.o.d"
  "/root/repo/tests/data/ecg_synthetic_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/data/ecg_synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/data/ecg_synthetic_test.cpp.o.d"
  "/root/repo/tests/data/io_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/data/io_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/data/io_test.cpp.o.d"
  "/root/repo/tests/data/synthetic_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/data/synthetic_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/data/synthetic_test.cpp.o.d"
  "/root/repo/tests/eval/experiment_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/eval/experiment_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/eval/experiment_test.cpp.o.d"
  "/root/repo/tests/eval/metrics_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/eval/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/eval/metrics_test.cpp.o.d"
  "/root/repo/tests/fixed/dot_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/fixed/dot_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/fixed/dot_test.cpp.o.d"
  "/root/repo/tests/fixed/exhaustive_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/fixed/exhaustive_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/fixed/exhaustive_test.cpp.o.d"
  "/root/repo/tests/fixed/format_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/fixed/format_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/fixed/format_test.cpp.o.d"
  "/root/repo/tests/fixed/grid_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/fixed/grid_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/fixed/grid_test.cpp.o.d"
  "/root/repo/tests/fixed/mixed_dot_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/fixed/mixed_dot_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/fixed/mixed_dot_test.cpp.o.d"
  "/root/repo/tests/fixed/value_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/fixed/value_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/fixed/value_test.cpp.o.d"
  "/root/repo/tests/hw/mac_datapath_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/hw/mac_datapath_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/hw/mac_datapath_test.cpp.o.d"
  "/root/repo/tests/hw/power_model_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/hw/power_model_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/hw/power_model_test.cpp.o.d"
  "/root/repo/tests/hw/rom_image_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/hw/rom_image_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/hw/rom_image_test.cpp.o.d"
  "/root/repo/tests/hw/verilog_gen_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/hw/verilog_gen_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/hw/verilog_gen_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/linalg/cholesky_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/linalg/cholesky_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/linalg/cholesky_test.cpp.o.d"
  "/root/repo/tests/linalg/eigen_sym_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/linalg/eigen_sym_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/linalg/eigen_sym_test.cpp.o.d"
  "/root/repo/tests/linalg/lu_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/linalg/lu_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/linalg/lu_test.cpp.o.d"
  "/root/repo/tests/linalg/matrix_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/linalg/matrix_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/linalg/matrix_test.cpp.o.d"
  "/root/repo/tests/linalg/qr_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/linalg/qr_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/linalg/qr_test.cpp.o.d"
  "/root/repo/tests/linalg/vector_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/linalg/vector_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/linalg/vector_test.cpp.o.d"
  "/root/repo/tests/opt/barrier_solver_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/opt/barrier_solver_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/opt/barrier_solver_test.cpp.o.d"
  "/root/repo/tests/opt/bnb_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/opt/bnb_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/opt/bnb_test.cpp.o.d"
  "/root/repo/tests/opt/box_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/opt/box_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/opt/box_test.cpp.o.d"
  "/root/repo/tests/opt/convex_problem_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/opt/convex_problem_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/opt/convex_problem_test.cpp.o.d"
  "/root/repo/tests/stats/descriptive_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/stats/descriptive_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/stats/descriptive_test.cpp.o.d"
  "/root/repo/tests/stats/gaussian_model_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/stats/gaussian_model_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/stats/gaussian_model_test.cpp.o.d"
  "/root/repo/tests/stats/normal_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/stats/normal_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/stats/normal_test.cpp.o.d"
  "/root/repo/tests/stats/shrinkage_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/stats/shrinkage_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/stats/shrinkage_test.cpp.o.d"
  "/root/repo/tests/support/csv_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/support/csv_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/support/csv_test.cpp.o.d"
  "/root/repo/tests/support/error_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/support/error_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/support/error_test.cpp.o.d"
  "/root/repo/tests/support/rng_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/support/rng_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/support/rng_test.cpp.o.d"
  "/root/repo/tests/support/str_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/support/str_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/support/str_test.cpp.o.d"
  "/root/repo/tests/support/table_test.cpp" "tests/CMakeFiles/ldafp_tests.dir/support/table_test.cpp.o" "gcc" "tests/CMakeFiles/ldafp_tests.dir/support/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ldafp_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/ldafp_data.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ldafp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/ldafp_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ldafp_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ldafp_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/fixed/CMakeFiles/ldafp_fixed.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/ldafp_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ldafp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
