# Empty compiler generated dependencies file for ldafp_tests.
# This may be replaced when dependencies are built.
