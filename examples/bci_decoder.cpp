// BCI movement decoder: the paper's Sec. 5.2 application end to end.
//
//   $ ./bci_decoder [dataset.csv]
//
// Loads a 42-feature left/right movement dataset (CSV rows: 42 features
// + 0/1 label) or generates the synthetic ECoG stand-in, then trains a
// 6-bit LDA-FP decoder with 5-fold cross-validation and reports the
// error and the implant power budget relative to an 8-bit conventional
// design.
#include <cstdio>
#include <string>

#include "data/bci_synthetic.h"
#include "data/io.h"
#include "eval/experiment.h"
#include "hw/power_model.h"
#include "support/rng.h"

int main(int argc, char** argv) {
  using namespace ldafp;

  support::Rng rng(2718);
  data::LabeledDataset dataset;
  if (argc > 1) {
    dataset = data::load_csv(argv[1]);
    std::printf("Loaded %zu trials x %zu features from %s\n",
                dataset.size(), dataset.dim(), argv[1]);
  } else {
    dataset = data::make_bci_synthetic(rng);
    std::printf("Generated synthetic ECoG stand-in: %zu trials x %zu "
                "features\n",
                dataset.size(), dataset.dim());
  }

  eval::ExperimentConfig config;
  config.word_lengths = {6, 8};
  config.ldafp.bnb.max_nodes = 250;  // anytime budget for the 42-dim MIP
  config.ldafp.bnb.max_seconds = 20.0;
  config.ldafp.bnb.rel_gap = 1e-3;

  support::Rng cv_rng(3141);
  const auto rows = eval::run_cv_sweep(dataset, 5, config, cv_rng);

  std::printf("\n5-fold cross-validated movement decoding error:\n");
  for (const auto& row : rows) {
    std::printf("  %d-bit: LDA %.2f%%  LDA-FP %.2f%%  (training %.1fs)\n",
                row.word_length, 100.0 * row.lda_error,
                100.0 * row.ldafp_error, row.ldafp_seconds);
  }

  const auto& six = rows[0];
  const auto& eight = rows[1];
  const hw::PowerModel power;
  if (six.ldafp_error <= eight.lda_error + 0.01) {
    std::printf("\nA 6-bit LDA-FP decoder matches the 8-bit conventional "
                "design:\n  -> %.2fx lower implant power (paper Table 2: "
                "1.8x).\n",
                power.power_ratio(8, 6));
  } else {
    std::printf("\n6-bit LDA-FP trails the 8-bit conventional design on "
                "this draw;\nincrease the node budget or the word "
                "length.\n");
  }
  return 0;
}
