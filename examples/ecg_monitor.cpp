// Wearable ECG monitor: the paper's introductory motivation, end to end.
//
//   $ ./ecg_monitor
//
// Simulated beat-classification task (normal vs premature ventricular
// contraction, 8 morphology/rhythm features), trained with LDA-FP at
// several word lengths; reports the error/power frontier a wearable
// design team would study, plus the battery-life multiple of the chosen
// design point.
#include <cstdio>
#include <string>

#include "data/ecg_synthetic.h"
#include "eval/experiment.h"
#include "hw/power_model.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/table.h"

int main() {
  using namespace ldafp;

  support::Rng rng(7777);
  data::EcgOptions ecg;
  ecg.separation = 0.28;  // overlap regime where word length matters
  const auto train = data::make_ecg_synthetic(2500, rng, ecg);
  const auto test = data::make_ecg_synthetic(5000, rng, ecg);
  std::printf("ECG beat classification (simulated): %zu train / %zu test "
              "beats, %zu features\n\n",
              train.size(), test.size(), train.dim());

  eval::ExperimentConfig config;
  config.word_lengths = {4, 5, 6, 8, 10};
  config.ldafp.bnb.max_nodes = 1500;
  config.ldafp.bnb.max_seconds = 15.0;
  config.ldafp.bnb.rel_gap = 1e-3;

  const hw::PowerModel power;
  support::TextTable table({"W", "LDA error", "LDA-FP error",
                            "Power (rel. 10-bit)"});
  double best_fp_error = 1.0;
  for (const int w : config.word_lengths) {
    const eval::TrialResult row = eval::run_trial(train, test, w, config);
    best_fp_error = std::min(best_fp_error, row.ldafp_error);
    table.add_row({std::to_string(w),
                   support::format_percent(row.lda_error),
                   support::format_percent(row.ldafp_error),
                   support::format_double(power.power(w) / power.power(10),
                                          3)});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());

  // Pick the cheapest LDA-FP design within 1% of the best accuracy.
  for (const int w : config.word_lengths) {
    const eval::TrialResult row = eval::run_trial(train, test, w, config);
    if (row.ldafp_error <= best_fp_error + 0.01) {
      std::printf("Design point: %d-bit LDA-FP at %s error — %.1fx the "
                  "battery life of a 10-bit design for the classifier "
                  "datapath.\n",
                  w, support::format_percent(row.ldafp_error).c_str(),
                  power.power_ratio(10, w));
      break;
    }
  }
  return 0;
}
