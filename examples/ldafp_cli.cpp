// Command-line trainer: the adoption path for users with their own data.
//
//   ldafp_cli train  <train.csv> <word_length> [--k K] [--rho R]
//                    [--nodes N] [--seconds S] [--threads T] [--rom out.hex]
//                    [--save out.ldafp] [--datapath fixed|lns]
//                    [--metrics-json FILE] [--trace FILE]
//   ldafp_cli eval   <rom.hex> <test.csv> [--scale S]
//   ldafp_cli sweep  <data.csv> <target_error_percent> [--folds F]
//                    [--threads T] [--datapath fixed|lns]
//                    [--metrics-json FILE] [--trace FILE]
//   ldafp_cli model inspect <file.ldafp>
//   ldafp_cli serve  [--port P] [--threads T] [--io-threads N]
//                    [--queue Q] [--batch B] [--linger-us U]
//                    [--model NAME=FILE ...]
//                    [--synthetic] [--retrain-data CSV] [--retrain-after N]
//                    [--retrain-mode streaming|ldafp] [--store DIR]
//                    [--metrics-json FILE]
//
// CSV rows are features... , label (0 = class A, 1 = class B).
// `train` fits LDA-FP, prints the baseline comparison, and optionally
// writes the weight ROM image and/or the versioned `.ldafp` model file
// (DESIGN.md §13: classifier bits + training provenance + CRC, with a
// JSON metadata sidecar).  `model inspect` pretty-prints a model file.
// `--datapath lns` deploys the trained weights on the logarithmic
// number system backend (fixed/datapath.h): training still searches the
// QK.F grid, the result is re-quantized to the log grid, and every
// reported error runs through the LNS datapath.  The combination rules
// live in validate_datapath() — LNS has no hex ROM form and needs
// word lengths >= 4 — and violations are rejected up front with a
// Status message, never half-executed.
// `--metrics-json` / `--trace` attach an obs::Sink to the run and dump
// the metrics snapshot / span timeline as JSON (README shows samples);
// the trained results are bit-identical with or without them.
// `serve` exposes the inference engine over the DESIGN.md §12 TCP
// protocol.  --model accepts weight-ROM `.hex` files or `.ldafp` model
// files (the latter carry their feature scale and provenance).  A model
// is required; pass --synthetic to opt into the load-testing fallback
// classifier instead.  --retrain-data streams a labeled CSV into the
// online retraining loop: every --retrain-after samples a candidate is
// trained, validated on the newest held-out window slice, and hot-
// promoted through the registry when it is no worse (durable versioned
// files land in --store).  SIGINT drains the engine and flushes the
// metrics snapshot — including the model.* lifecycle and drift gauges —
// before exiting.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/format_policy.h"
#include "core/lda.h"
#include "core/ldafp.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "hw/rom_image.h"
#include "hw/verilog_gen.h"
#include "model/model_io.h"
#include "model/retrainer.h"
#include "net/net.h"
#include "obs/export.h"
#include "obs/sink.h"
#include "runtime/runtime.h"
#include "sched/executor.h"
#include "stats/normal.h"
#include "support/error.h"
#include "support/rng.h"
#include "support/table.h"

namespace {

using namespace ldafp;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ldafp_cli train <train.csv> <word_length> [--k K] "
               "[--rho R] [--nodes N] [--seconds S] [--threads T] "
               "[--rom out.hex] [--save out.ldafp] "
               "[--datapath fixed|lns] "
               "[--metrics-json FILE] [--trace FILE]\n"
               "  ldafp_cli eval <rom.hex> <test.csv> [--scale S]\n"
               "  ldafp_cli sweep <data.csv> <target_error_percent> "
               "[--folds F] [--threads T] [--datapath fixed|lns] "
               "[--metrics-json FILE] "
               "[--trace FILE]\n"
               "  ldafp_cli model inspect <file.ldafp>\n"
               "  ldafp_cli serve [--port P] [--threads T] "
               "[--io-threads N] [--queue Q] [--batch B] "
               "[--linger-us U] "
               "[--model NAME=FILE.hex|FILE.ldafp ...] [--synthetic] "
               "[--retrain-data CSV] [--retrain-after N] "
               "[--retrain-mode streaming|ldafp] "
               "[--retrain-tolerance T] [--store DIR] "
               "[--metrics-json FILE]\n"
               "\n"
               "  --threads T   worker threads for training / the sweep\n"
               "                (default: all hardware threads; results\n"
               "                are bit-identical at any thread count)\n"
               "  --datapath D  arithmetic backend the classifier deploys\n"
               "                on: fixed (QK.F two's complement, default)\n"
               "                or lns (logarithmic number system; needs\n"
               "                word lengths >= 4, scores on the scalar\n"
               "                datapath, and has no --rom form)\n"
               "  --metrics-json FILE  dump solver/search counters as JSON\n"
               "  --trace FILE         dump the span timeline as JSON\n"
               "                (observability only; trained results are\n"
               "                identical with or without these flags)\n");
  return 2;
}

double flag_value(int argc, char** argv, const char* name,
                  double fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

const char* flag_string(int argc, char** argv, const char* name) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

bool flag_present(int argc, char** argv, const char* name) {
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

/// The --metrics-json / --trace flags as an obs::Sink: either flag
/// enables its facet; sink() stays null when neither is given, so the
/// instrumented paths cost a branch and nothing else.  write() dumps
/// the collected registry/trace as JSON after the command finishes.
struct ObsFlags {
  ObsFlags(int argc, char** argv)
      : metrics_path(flag_string(argc, argv, "--metrics-json")),
        trace_path(flag_string(argc, argv, "--trace")) {
    if (metrics_path != nullptr) sink_.metrics = &metrics_;
    if (trace_path != nullptr) sink_.tracer = &tracer_;
  }

  obs::Sink* sink() {
    return (metrics_path != nullptr || trace_path != nullptr) ? &sink_
                                                              : nullptr;
  }

  int write() {
    if (metrics_path != nullptr) {
      std::ofstream out(metrics_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", metrics_path);
        return 1;
      }
      obs::write_metrics_json(out, metrics_.snapshot());
      std::printf("Wrote metrics to %s\n", metrics_path);
    }
    if (trace_path != nullptr) {
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
        return 1;
      }
      obs::write_trace_json(out, tracer_.snapshot());
      std::printf("Wrote trace (%zu spans) to %s\n", tracer_.span_count(),
                  trace_path);
    }
    return 0;
  }

  const char* metrics_path;
  const char* trace_path;

 private:
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  obs::Sink sink_;
};

/// Parses --datapath (default: two's complement).  Returns false (after
/// printing the choices) on an unrecognized backend name.
bool datapath_flag(int argc, char** argv, fixed::DatapathKind* out) {
  *out = fixed::DatapathKind::kTwosComplement;
  const char* name = flag_string(argc, argv, "--datapath");
  if (name == nullptr) return true;
  if (fixed::parse_datapath_kind(name, out)) return true;
  std::fprintf(stderr, "--datapath expects 'fixed' or 'lns', got '%s'\n",
               name);
  return false;
}

/// Flag-combination rules for a non-default backend, as data (Status)
/// rather than scattered exits: LNS layouts need sign + >= 3 exponent
/// bits, and the hex ROM form stores QK.F grid reals that log-grid
/// (irrational) weights cannot round-trip through.
ldafp::Status validate_datapath(fixed::DatapathKind kind, int word_length,
                                bool rom_requested) {
  if (kind == fixed::DatapathKind::kTwosComplement) return {};
  if (word_length < 4) {
    return ldafp::Status::invalid(
        "--datapath lns needs a word length >= 4 "
        "(1 sign bit + >= 3 exponent bits)");
  }
  if (rom_requested) {
    return ldafp::Status::invalid(
        "--datapath lns cannot write --rom: hex ROM images hold QK.F "
        "grid values; save LNS models with --save out.ldafp instead");
  }
  return {};
}

/// The --threads flag as an executor: default 0 = all hardware threads,
/// 1 = today's single-threaded path, N > 1 = a pool of N workers.
/// Results are bit-identical at any thread count (DESIGN.md §9).
sched::Executor threads_flag(int argc, char** argv) {
  const auto threads =
      static_cast<std::size_t>(flag_value(argc, argv, "--threads", 0));
  return sched::Executor::pooled(threads);
}

int cmd_train(int argc, char** argv) {
  if (argc < 4) return usage();
  fixed::DatapathKind datapath;
  if (!datapath_flag(argc, argv, &datapath)) return 2;
  const int word_length = std::atoi(argv[3]);
  const ldafp::Status valid = validate_datapath(
      datapath, word_length, flag_string(argc, argv, "--rom") != nullptr);
  if (!valid.ok()) {
    std::fprintf(stderr, "error: %s\n", valid.message().c_str());
    return 2;
  }
  const data::LabeledDataset train = data::load_csv(argv[2]);
  const int k = static_cast<int>(flag_value(argc, argv, "--k", 2));
  const double rho = flag_value(argc, argv, "--rho", 0.9999);
  std::printf("Loaded %zu samples x %zu features\n", train.size(),
              train.dim());

  const double beta = stats::confidence_beta(rho);
  const core::TrainingSet raw = train.to_training_set();
  const core::FormatChoice choice =
      core::choose_format(raw, word_length, beta, k);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, choice.feature_scale);
  std::printf("Format %s, feature scale %g (apply at inference)\n",
              choice.format.to_string().c_str(), choice.feature_scale);

  ObsFlags obs_flags(argc, argv);
  core::LdaFpOptions options;
  options.rho = rho;
  options.bnb.max_nodes = static_cast<std::size_t>(
      flag_value(argc, argv, "--nodes", 5000));
  options.bnb.max_seconds = flag_value(argc, argv, "--seconds", 60);
  options.bnb.executor = threads_flag(argc, argv);
  options.bnb.sink = obs_flags.sink();
  const core::LdaFpTrainer trainer(choice.format, options);
  const core::LdaFpResult result = trainer.train(scaled);
  if (obs_flags.write() != 0) return 1;
  if (!result.found()) {
    std::printf("No feasible classifier at this format.\n");
    return 1;
  }
  // Deploy on the requested backend: the trained QK.F grid weights are
  // re-quantized onto the LNS log grid, and all scoring below runs
  // through that datapath (scalar — the SIMD kernels are QK.F-only).
  const core::FixedClassifier tc_clf = trainer.make_classifier(result);
  const core::FixedClassifier clf =
      datapath == fixed::DatapathKind::kTwosComplement
          ? tc_clf
          : core::FixedClassifier(tc_clf.format(), tc_clf.weights_real(),
                                  tc_clf.threshold_real(), tc_clf.rounding(),
                                  tc_clf.accumulator(), datapath);
  if (datapath != fixed::DatapathKind::kTwosComplement) {
    std::printf("Datapath %s: weights re-quantized to the log grid; "
                "scoring falls back to the scalar datapath (the SIMD "
                "kernels are QK.F-only)\n",
                fixed::to_string(datapath));
  }
  std::printf("LDA-FP: cost %.6g, %zu nodes, %.2fs, status %s, gap %.3g\n",
              result.cost, result.search.nodes_processed,
              result.train_seconds, opt::to_string(result.search.status),
              result.search.gap());
  const opt::NodeStats& solver = result.search.solver_stats;
  std::printf("Solver: %llu relaxations (%llu phase-I skips), "
              "%llu Newton iterations, %llu factorizations\n",
              static_cast<unsigned long long>(solver.relaxations),
              static_cast<unsigned long long>(solver.phase1_skips),
              static_cast<unsigned long long>(solver.newton_iterations),
              static_cast<unsigned long long>(solver.factorizations));

  // Training-set error comparison against the rounded-LDA baseline.
  const auto model = core::fit_two_class_model(
      core::quantize_training_set(scaled, choice.format));
  const core::FixedClassifier tc_baseline = core::quantize_lda(
      core::fit_lda(scaled), model, beta, choice.format,
      core::LdaGainPolicy::kMaxRange);
  // The baseline deploys on the same backend, so the comparison stays
  // apples to apples.
  const core::FixedClassifier baseline =
      datapath == fixed::DatapathKind::kTwosComplement
          ? tc_baseline
          : core::FixedClassifier(
                tc_baseline.format(), tc_baseline.weights_real(),
                tc_baseline.threshold_real(), tc_baseline.rounding(),
                tc_baseline.accumulator(), datapath);
  std::printf("Training-set error: LDA-FP %.2f%% vs rounded LDA %.2f%%\n",
              100.0 * eval::evaluate(clf, train,
                                     choice.feature_scale).error(),
              100.0 * eval::evaluate(baseline, train,
                                     choice.feature_scale).error());

  if (const char* rom = flag_string(argc, argv, "--rom")) {
    hw::save_rom_image(rom, clf);
    std::printf("Wrote weight ROM image to %s\n", rom);
  }
  if (const char* save = flag_string(argc, argv, "--save")) {
    model::TrainingProvenance pv;
    pv.name = "ldafp";
    pv.feature_scale = choice.feature_scale;
    pv.rho = rho;
    pv.beta = beta;
    pv.cv_accuracy =
        1.0 - eval::evaluate(clf, train, choice.feature_scale).error();
    pv.train_seconds = result.train_seconds;
    pv.cost = result.cost;
    pv.gap = result.search.gap();
    pv.word_length = static_cast<std::uint32_t>(word_length);
    pv.nodes_processed = result.search.nodes_processed;
    pv.relaxations = solver.relaxations;
    pv.phase1_skips = solver.phase1_skips;
    pv.newton_iterations = solver.newton_iterations;
    pv.factorizations = solver.factorizations;
    model::save_model(save, model::SavedModel{clf, pv});
    std::printf("Wrote model to %s (+ %s.json metadata sidecar)\n", save,
                save);
  }
  if (const char* rtl = flag_string(argc, argv, "--verilog")) {
    // RTL + self-checking testbench with golden vectors from the first
    // training samples (scaled like inference inputs).
    std::vector<linalg::Vector> probes;
    for (std::size_t i = 0; i < std::min<std::size_t>(train.size(), 16);
         ++i) {
      linalg::Vector x = train.samples[i];
      x *= choice.feature_scale;
      probes.push_back(std::move(x));
    }
    hw::save_verilog(rtl, clf, hw::make_golden_vectors(clf, probes));
    std::printf("Wrote Verilog module + testbench to %s/\n", rtl);
  }
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc < 4) return usage();
  const hw::RomImage image = hw::load_rom_image(argv[2]);
  const data::LabeledDataset test = data::load_csv(argv[3]);
  const double scale = flag_value(argc, argv, "--scale", 1.0);
  const core::FixedClassifier clf = image.classifier();
  fixed::DotDiagnostics diag;
  const eval::Confusion c = eval::evaluate(clf, test, scale, &diag);
  std::printf("Format %s, %zu weights\n", image.format.to_string().c_str(),
              image.weights.size());
  std::printf("Error %.2f%% on %zu samples (A->B %zu, B->A %zu)\n",
              100.0 * c.error(), c.total(), c.a_as_b, c.b_as_a);
  std::printf("Overflow events: %d product, %d accumulator wraps, final "
              "overflow %s\n",
              diag.product_overflows, diag.accumulator_wraps,
              diag.final_overflow ? "YES" : "no");
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 4) return usage();
  const data::LabeledDataset data = data::load_csv(argv[2]);
  const double target = std::atof(argv[3]) / 100.0;
  const auto folds = static_cast<std::size_t>(
      flag_value(argc, argv, "--folds", 5));

  fixed::DatapathKind datapath;
  if (!datapath_flag(argc, argv, &datapath)) return 2;

  ObsFlags obs_flags(argc, argv);
  eval::ExperimentConfig config;
  config.word_lengths = {3, 4, 5, 6, 7, 8, 10, 12};
  config.datapath = datapath;
  if (datapath == fixed::DatapathKind::kLns) {
    // The LNS layout needs sign + >= 3 exponent bits, so the sweep
    // starts at W = 4 (validate_datapath applies the same floor).
    config.word_lengths = {4, 5, 6, 7, 8, 10, 12};
    std::printf("Datapath lns: sweeping word lengths >= 4 on the "
                "log-domain backend (scalar scoring)\n");
  }
  config.ldafp.bnb.max_nodes = 1000;
  config.ldafp.bnb.max_seconds = 30.0;
  config.ldafp.bnb.rel_gap = 1e-3;
  config.executor = threads_flag(argc, argv);
  config.sink = obs_flags.sink();
  support::Rng rng(1);
  const auto choice =
      eval::select_min_word_length(data, folds, config, target, rng);
  if (obs_flags.write() != 0) return 1;
  if (!choice.has_value()) {
    std::printf("No swept word length meets %.2f%% error.\n",
                100.0 * target);
    return 1;
  }
  std::printf("Smallest word length meeting %.2f%%: %d bits "
              "(CV error %.2f%%)\n",
              100.0 * target, choice->word_length,
              100.0 * choice->cv_error);
  return 0;
}

int cmd_model(int argc, char** argv) {
  if (argc < 4 || std::strcmp(argv[2], "inspect") != 0) return usage();
  const char* path = argv[3];
  const model::DecodeResult loaded = model::load_model(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s: %s\n", path,
                 model::to_string(loaded.error));
    return 1;
  }
  const core::FixedClassifier& clf = loaded.model->classifier;
  const model::TrainingProvenance& pv = loaded.model->provenance;
  char buf[64];
  const auto num = [&buf](double v) {
    std::snprintf(buf, sizeof buf, "%g", v);
    return std::string(buf);
  };
  support::TextTable t({"field", "value"});
  t.add_row({"name", pv.name.empty() ? "(unnamed)" : pv.name});
  t.add_row({"model_version", std::to_string(pv.model_version)});
  t.add_row({"datapath", fixed::to_string(clf.datapath_kind())});
  t.add_row({"format", clf.format().to_string()});
  t.add_row({"dim", std::to_string(clf.dim())});
  t.add_row({"rounding", fixed::to_string(clf.rounding())});
  t.add_row({"accumulator", fixed::to_string(clf.accumulator())});
  t.add_row({"threshold", num(clf.threshold_real()) + "  (raw " +
                              std::to_string(clf.threshold_raw()) + ")"});
  t.add_row({"feature_scale", num(pv.feature_scale)});
  t.add_row({"rho / beta", num(pv.rho) + " / " + num(pv.beta)});
  t.add_row({"cv_accuracy", pv.cv_accuracy < 0.0 ? "(not measured)"
                                                 : num(pv.cv_accuracy)});
  t.add_row({"train_seconds", num(pv.train_seconds)});
  t.add_row({"cost / gap", num(pv.cost) + " / " + num(pv.gap)});
  t.add_row({"word_length", std::to_string(pv.word_length)});
  t.add_row({"nodes / relaxations",
             std::to_string(pv.nodes_processed) + " / " +
                 std::to_string(pv.relaxations)});
  t.add_row({"newton / factorizations",
             std::to_string(pv.newton_iterations) + " / " +
                 std::to_string(pv.factorizations)});
  std::printf("%s", t.to_string().c_str());
  support::TextTable w({"i", "weight", "raw"});
  const linalg::Vector weights = clf.weights_real();
  for (std::size_t i = 0; i < clf.dim(); ++i) {
    w.add_row({std::to_string(i), num(weights[i]),
               std::to_string(clf.weight_words()[i])});
  }
  std::printf("%s", w.to_string().c_str());
  return 0;
}

// SIGINT latch for `serve`: the handler only flips the flag; the main
// thread notices and runs the orderly drain (signal-safe by design).
std::atomic<bool> g_interrupted{false};

void on_sigint(int) { g_interrupted.store(true); }

/// Trains the synthetic fallback model served when no --model is given:
/// a conventional quantized-LDA classifier on the paper's 3-feature
/// synthetic task (fast — no branch-and-bound — and deterministic).
core::FixedClassifier train_synthetic_fallback(int word_length,
                                               double* scale_out) {
  support::Rng rng(1);
  const data::LabeledDataset dataset = data::make_synthetic(1500, rng);
  const double beta = stats::confidence_beta(0.9999);
  const core::TrainingSet raw = dataset.to_training_set();
  const core::FormatChoice choice =
      core::choose_format(raw, word_length, beta, 2);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, choice.feature_scale);
  const core::LdaModel lda = core::fit_lda(scaled);
  const auto model_stats = core::fit_two_class_model(
      core::quantize_training_set(scaled, choice.format));
  *scale_out = choice.feature_scale;
  return core::quantize_lda(lda, model_stats, beta, choice.format);
}

int cmd_serve(int argc, char** argv) {
  const auto port = static_cast<std::uint16_t>(
      flag_value(argc, argv, "--port", 7070));
  const auto workers = static_cast<std::size_t>(
      flag_value(argc, argv, "--threads", 4));
  const auto io_threads = static_cast<std::size_t>(
      flag_value(argc, argv, "--io-threads", 1));
  const auto queue = static_cast<std::size_t>(
      flag_value(argc, argv, "--queue", 1024));
  const auto batch = static_cast<std::size_t>(
      flag_value(argc, argv, "--batch", 64));
  // Micro-batch linger ceiling in microseconds; the engine scales the
  // effective wait with queue depth, so this is the loaded-engine
  // bound, not a per-request latency floor.
  const auto linger_us = static_cast<double>(
      flag_value(argc, argv, "--linger-us", 500));
  const char* metrics_path = flag_string(argc, argv, "--metrics-json");

  // One registry for the whole serving process: the engine's
  // "runtime.*" block and the transport's "net.*" block bind into it,
  // so the exit snapshot covers admission, batching, and the wire.
  obs::MetricsRegistry metrics;
  obs::Sink sink;
  sink.metrics = &metrics;

  const char* retrain_data = flag_string(argc, argv, "--retrain-data");
  const auto retrain_after = static_cast<std::size_t>(
      flag_value(argc, argv, "--retrain-after", 64));
  const char* store_dir = flag_string(argc, argv, "--store");
  const char* retrain_mode_name =
      flag_string(argc, argv, "--retrain-mode");
  const double retrain_tolerance =
      flag_value(argc, argv, "--retrain-tolerance", 0.0);

  runtime::ModelRegistry models;
  std::string default_model;
  // The default (first) model: kept aside so the retraining loop can
  // bootstrap it through the OnlineRetrainer (registry version 1)
  // instead of a plain install.
  std::optional<core::FixedClassifier> default_clf;
  model::TrainingProvenance default_pv;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--model") != 0) continue;
    const std::string spec = argv[i + 1];
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      std::fprintf(stderr,
                   "--model expects NAME=FILE.hex or NAME=FILE.ldafp, "
                   "got %s\n",
                   spec.c_str());
      return 2;
    }
    const std::string name = spec.substr(0, eq);
    const std::string file = spec.substr(eq + 1);
    std::optional<core::FixedClassifier> clf;
    model::TrainingProvenance pv;
    const bool is_model_file =
        file.size() > 6 && file.compare(file.size() - 6, 6, ".ldafp") == 0;
    if (is_model_file) {
      const model::DecodeResult loaded = model::load_model(file);
      if (!loaded.ok()) {
        std::fprintf(stderr, "error: %s: %s\n", file.c_str(),
                     model::to_string(loaded.error));
        return 1;
      }
      clf.emplace(loaded.model->classifier);
      pv = loaded.model->provenance;
      std::printf("installed %s from %s (%s, dim %zu, feature scale %g)\n",
                  name.c_str(), file.c_str(),
                  clf->format().to_string().c_str(), clf->dim(),
                  pv.feature_scale);
      if (clf->datapath_kind() != fixed::DatapathKind::kTwosComplement) {
        std::printf("  %s datapath: scoring uses the scalar backend "
                    "(SIMD kernels are QK.F-only)\n",
                    fixed::to_string(clf->datapath_kind()));
      }
    } else {
      const hw::RomImage image = hw::load_rom_image(file);
      clf.emplace(image.classifier());
      std::printf("installed %s (%s, %zu weights)\n", name.c_str(),
                  image.format.to_string().c_str(), image.weights.size());
    }
    if (default_model.empty()) {
      default_model = name;
      default_clf = *clf;
      default_pv = pv;
      // Defer the default model's install when retraining: the
      // OnlineRetrainer bootstraps it as registry version 1 below.
      if (retrain_data != nullptr) continue;
    }
    models.install(name, std::move(*clf));
  }
  if (default_model.empty()) {
    if (!flag_present(argc, argv, "--synthetic")) {
      std::fprintf(stderr,
                   "serve needs a model: pass --model NAME=FILE.hex or "
                   "NAME=FILE.ldafp (train one with `ldafp_cli train "
                   "... --save model.ldafp`), or opt into the "
                   "load-testing fallback with --synthetic\n");
      return 2;
    }
    double scale = 1.0;
    const core::FixedClassifier clf = train_synthetic_fallback(6, &scale);
    default_model = "synthetic";
    default_clf = clf;
    default_pv.name = "synthetic";
    default_pv.feature_scale = scale;
    if (retrain_data == nullptr) models.install("synthetic", clf);
    std::printf("installed synthetic fallback (%s, feature scale %g)\n",
                clf.format().to_string().c_str(), scale);
  }

  // Online-retraining loop: labeled CSV samples stream into the
  // retrainer's window; every --retrain-after samples a candidate is
  // trained and promoted when no worse on the held-out slice.
  data::LabeledDataset feed;
  std::unique_ptr<model::OnlineRetrainer> retrainer;
  if (retrain_data != nullptr) {
    // The retrainer trains two's-complement candidates and compares
    // them against the incumbent through QK.F projections; an LNS
    // incumbent cannot seed that loop.
    if (default_clf->datapath_kind() !=
        fixed::DatapathKind::kTwosComplement) {
      std::fprintf(stderr,
                   "error: --retrain-data needs a two's-complement "
                   "default model; '%s' uses the %s datapath\n",
                   default_model.c_str(),
                   fixed::to_string(default_clf->datapath_kind()));
      return 2;
    }
    feed = data::load_csv(retrain_data);
    model::RetrainerOptions ropt;
    ropt.model_name = default_model;
    ropt.format = default_clf->format();
    ropt.mode = model::RetrainMode::kStreamingLda;
    if (retrain_mode_name != nullptr &&
        std::strcmp(retrain_mode_name, "ldafp") == 0) {
      ropt.mode = model::RetrainMode::kLdaFp;
    }
    ropt.trainer.rho = default_pv.rho > 0.0 ? default_pv.rho : 0.9999;
    ropt.trainer.rounding = default_clf->rounding();
    ropt.accuracy_tolerance = retrain_tolerance;
    ropt.window_capacity = std::max<std::size_t>(8, feed.size());
    ropt.holdout = std::max<std::size_t>(
        1, std::min<std::size_t>(128, ropt.window_capacity / 5));
    ropt.min_class_samples = 2;
    ropt.store_dir = store_dir != nullptr ? store_dir : "";
    ropt.sink = &sink;
    retrainer =
        std::make_unique<model::OnlineRetrainer>(models, ropt);
    retrainer->bootstrap(*default_clf, default_pv);
    std::printf("retraining %s from %s: %zu samples, retrain every %zu, "
                "mode %s%s%s\n",
                default_model.c_str(), retrain_data, feed.size(),
                retrain_after, model::to_string(ropt.mode),
                store_dir != nullptr ? ", store " : "",
                store_dir != nullptr ? store_dir : "");
  }

  runtime::EngineOptions engine_options;
  engine_options.workers = workers;
  engine_options.queue_capacity = queue;
  engine_options.max_batch = batch;
  engine_options.max_wait_seconds = linger_us * 1e-6;
  engine_options.sink = &sink;
  runtime::InferenceEngine engine(engine_options);

  net::ServerOptions server_options;
  server_options.port = port;
  server_options.io_threads = io_threads;
  server_options.default_model = default_model;
  server_options.engine = &engine;
  server_options.registry = &models;
  server_options.sink = &sink;
  net::Server server(server_options);
  server.start();
  std::printf("serving on %s:%u (%zu io thread%s, %zu workers, "
              "default model \"%s\") — Ctrl-C to drain and exit\n",
              server_options.host.c_str(), server.port(), io_threads,
              io_threads == 1 ? "" : "s", workers,
              default_model.c_str());

  // The feeder streams the labeled CSV into the retraining loop while
  // the server keeps taking traffic — scores into the drift detector,
  // samples into the window, a synchronous retrain every
  // --retrain-after samples.
  std::thread feeder;
  if (retrainer != nullptr) {
    feeder = std::thread([&] {
      std::size_t since_retrain = 0;
      for (std::size_t i = 0; i < feed.size() && !g_interrupted.load();
           ++i) {
        linalg::Vector x = feed.samples[i];
        x *= default_pv.feature_scale;
        if (const runtime::ModelHandle h = models.get(default_model)) {
          retrainer->observe_score(h->classifier.project(x).to_real());
        }
        retrainer->observe(x, feed.labels[i]);
        if (++since_retrain >= retrain_after) {
          since_retrain = 0;
          const model::RetrainOutcome outcome = retrainer->retrain_now();
          std::printf("retrain #%llu: %s (candidate %.4f vs incumbent "
                      "%.4f)%s\n",
                      static_cast<unsigned long long>(
                          retrainer->retrains()),
                      outcome.reason.c_str(), outcome.candidate_error,
                      outcome.incumbent_error,
                      outcome.promoted
                          ? (" -> v" + std::to_string(outcome.version))
                                .c_str()
                          : "");
        }
      }
      retrainer->publish_drift();
    });
  }

  std::signal(SIGINT, on_sigint);
  std::signal(SIGTERM, on_sigint);
  while (!g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Orderly drain: stop admission at the socket, let in-flight
  // responses flush, then drain the engine queue, then report.
  std::printf("\ndraining...\n");
  if (feeder.joinable()) feeder.join();
  server.stop();
  engine.shutdown();
  const obs::MetricsSnapshot snapshot = engine.stats().snapshot();
  if (metrics_path != nullptr) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_path);
      return 1;
    }
    obs::write_metrics_json(out, snapshot);
    std::printf("Wrote metrics to %s\n", metrics_path);
  }
  std::printf("%s\n", obs::to_table(snapshot).c_str());
  if (retrainer != nullptr) {
    std::printf("retraining: %llu retrains, %llu promotions, "
                "%llu rollbacks (last: %s)\n",
                static_cast<unsigned long long>(retrainer->retrains()),
                static_cast<unsigned long long>(retrainer->promotions()),
                static_cast<unsigned long long>(retrainer->rollbacks()),
                retrainer->last_outcome().reason.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "train") == 0) return cmd_train(argc, argv);
    if (std::strcmp(argv[1], "eval") == 0) return cmd_eval(argc, argv);
    if (std::strcmp(argv[1], "sweep") == 0) return cmd_sweep(argc, argv);
    if (std::strcmp(argv[1], "model") == 0) return cmd_model(argc, argv);
    if (std::strcmp(argv[1], "serve") == 0) return cmd_serve(argc, argv);
  } catch (const ldafp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
