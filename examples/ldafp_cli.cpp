// Command-line trainer: the adoption path for users with their own data.
//
//   ldafp_cli train  <train.csv> <word_length> [--k K] [--rho R]
//                    [--nodes N] [--seconds S] [--threads T] [--rom out.hex]
//                    [--metrics-json FILE] [--trace FILE]
//   ldafp_cli eval   <rom.hex> <test.csv> [--scale S]
//   ldafp_cli sweep  <data.csv> <target_error_percent> [--folds F]
//                    [--threads T] [--metrics-json FILE] [--trace FILE]
//   ldafp_cli serve  [--port P] [--threads T] [--io-threads N]
//                    [--queue Q] [--batch B] [--model NAME=ROM.hex ...]
//                    [--metrics-json FILE]
//
// CSV rows are features... , label (0 = class A, 1 = class B).
// `train` fits LDA-FP, prints the baseline comparison, and optionally
// writes the weight ROM image (the feature scale is printed — apply the
// same scale at inference, or pass it to `eval`).
// `--metrics-json` / `--trace` attach an obs::Sink to the run and dump
// the metrics snapshot / span timeline as JSON (README shows samples);
// the trained results are bit-identical with or without them.
// `serve` exposes the inference engine over the DESIGN.md §12 TCP
// protocol; without --model it trains a synthetic fallback classifier
// so the server is load-testable out of the box.  SIGINT drains the
// engine and flushes the metrics snapshot before exiting.
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/format_policy.h"
#include "core/lda.h"
#include "core/ldafp.h"
#include "data/io.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "hw/rom_image.h"
#include "hw/verilog_gen.h"
#include "net/net.h"
#include "obs/export.h"
#include "obs/sink.h"
#include "runtime/runtime.h"
#include "sched/executor.h"
#include "stats/normal.h"
#include "support/error.h"
#include "support/rng.h"

namespace {

using namespace ldafp;

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  ldafp_cli train <train.csv> <word_length> [--k K] "
               "[--rho R] [--nodes N] [--seconds S] [--threads T] "
               "[--rom out.hex] [--metrics-json FILE] [--trace FILE]\n"
               "  ldafp_cli eval <rom.hex> <test.csv> [--scale S]\n"
               "  ldafp_cli sweep <data.csv> <target_error_percent> "
               "[--folds F] [--threads T] [--metrics-json FILE] "
               "[--trace FILE]\n"
               "  ldafp_cli serve [--port P] [--threads T] "
               "[--io-threads N] [--queue Q] [--batch B] "
               "[--model NAME=ROM.hex ...] [--metrics-json FILE]\n"
               "\n"
               "  --threads T   worker threads for training / the sweep\n"
               "                (default: all hardware threads; results\n"
               "                are bit-identical at any thread count)\n"
               "  --metrics-json FILE  dump solver/search counters as JSON\n"
               "  --trace FILE         dump the span timeline as JSON\n"
               "                (observability only; trained results are\n"
               "                identical with or without these flags)\n");
  return 2;
}

double flag_value(int argc, char** argv, const char* name,
                  double fallback) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atof(argv[i + 1]);
  }
  return fallback;
}

const char* flag_string(int argc, char** argv, const char* name) {
  for (int i = 0; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

/// The --metrics-json / --trace flags as an obs::Sink: either flag
/// enables its facet; sink() stays null when neither is given, so the
/// instrumented paths cost a branch and nothing else.  write() dumps
/// the collected registry/trace as JSON after the command finishes.
struct ObsFlags {
  ObsFlags(int argc, char** argv)
      : metrics_path(flag_string(argc, argv, "--metrics-json")),
        trace_path(flag_string(argc, argv, "--trace")) {
    if (metrics_path != nullptr) sink_.metrics = &metrics_;
    if (trace_path != nullptr) sink_.tracer = &tracer_;
  }

  obs::Sink* sink() {
    return (metrics_path != nullptr || trace_path != nullptr) ? &sink_
                                                              : nullptr;
  }

  int write() {
    if (metrics_path != nullptr) {
      std::ofstream out(metrics_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", metrics_path);
        return 1;
      }
      obs::write_metrics_json(out, metrics_.snapshot());
      std::printf("Wrote metrics to %s\n", metrics_path);
    }
    if (trace_path != nullptr) {
      std::ofstream out(trace_path);
      if (!out) {
        std::fprintf(stderr, "cannot open %s for writing\n", trace_path);
        return 1;
      }
      obs::write_trace_json(out, tracer_.snapshot());
      std::printf("Wrote trace (%zu spans) to %s\n", tracer_.span_count(),
                  trace_path);
    }
    return 0;
  }

  const char* metrics_path;
  const char* trace_path;

 private:
  obs::MetricsRegistry metrics_;
  obs::Tracer tracer_;
  obs::Sink sink_;
};

/// The --threads flag as an executor: default 0 = all hardware threads,
/// 1 = today's single-threaded path, N > 1 = a pool of N workers.
/// Results are bit-identical at any thread count (DESIGN.md §9).
sched::Executor threads_flag(int argc, char** argv) {
  const auto threads =
      static_cast<std::size_t>(flag_value(argc, argv, "--threads", 0));
  return sched::Executor::pooled(threads);
}

int cmd_train(int argc, char** argv) {
  if (argc < 4) return usage();
  const data::LabeledDataset train = data::load_csv(argv[2]);
  const int word_length = std::atoi(argv[3]);
  const int k = static_cast<int>(flag_value(argc, argv, "--k", 2));
  const double rho = flag_value(argc, argv, "--rho", 0.9999);
  std::printf("Loaded %zu samples x %zu features\n", train.size(),
              train.dim());

  const double beta = stats::confidence_beta(rho);
  const core::TrainingSet raw = train.to_training_set();
  const core::FormatChoice choice =
      core::choose_format(raw, word_length, beta, k);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, choice.feature_scale);
  std::printf("Format %s, feature scale %g (apply at inference)\n",
              choice.format.to_string().c_str(), choice.feature_scale);

  ObsFlags obs_flags(argc, argv);
  core::LdaFpOptions options;
  options.rho = rho;
  options.bnb.max_nodes = static_cast<std::size_t>(
      flag_value(argc, argv, "--nodes", 5000));
  options.bnb.max_seconds = flag_value(argc, argv, "--seconds", 60);
  options.bnb.executor = threads_flag(argc, argv);
  options.bnb.sink = obs_flags.sink();
  const core::LdaFpTrainer trainer(choice.format, options);
  const core::LdaFpResult result = trainer.train(scaled);
  if (obs_flags.write() != 0) return 1;
  if (!result.found()) {
    std::printf("No feasible classifier at this format.\n");
    return 1;
  }
  const core::FixedClassifier clf = trainer.make_classifier(result);
  std::printf("LDA-FP: cost %.6g, %zu nodes, %.2fs, status %s, gap %.3g\n",
              result.cost, result.search.nodes_processed,
              result.train_seconds, opt::to_string(result.search.status),
              result.search.gap());
  const opt::NodeStats& solver = result.search.solver_stats;
  std::printf("Solver: %llu relaxations (%llu phase-I skips), "
              "%llu Newton iterations, %llu factorizations\n",
              static_cast<unsigned long long>(solver.relaxations),
              static_cast<unsigned long long>(solver.phase1_skips),
              static_cast<unsigned long long>(solver.newton_iterations),
              static_cast<unsigned long long>(solver.factorizations));

  // Training-set error comparison against the rounded-LDA baseline.
  const auto model = core::fit_two_class_model(
      core::quantize_training_set(scaled, choice.format));
  const core::FixedClassifier baseline = core::quantize_lda(
      core::fit_lda(scaled), model, beta, choice.format,
      core::LdaGainPolicy::kMaxRange);
  std::printf("Training-set error: LDA-FP %.2f%% vs rounded LDA %.2f%%\n",
              100.0 * eval::evaluate(clf, train,
                                     choice.feature_scale).error(),
              100.0 * eval::evaluate(baseline, train,
                                     choice.feature_scale).error());

  if (const char* rom = flag_string(argc, argv, "--rom")) {
    hw::save_rom_image(rom, clf);
    std::printf("Wrote weight ROM image to %s\n", rom);
  }
  if (const char* rtl = flag_string(argc, argv, "--verilog")) {
    // RTL + self-checking testbench with golden vectors from the first
    // training samples (scaled like inference inputs).
    std::vector<linalg::Vector> probes;
    for (std::size_t i = 0; i < std::min<std::size_t>(train.size(), 16);
         ++i) {
      linalg::Vector x = train.samples[i];
      x *= choice.feature_scale;
      probes.push_back(std::move(x));
    }
    hw::save_verilog(rtl, clf, hw::make_golden_vectors(clf, probes));
    std::printf("Wrote Verilog module + testbench to %s/\n", rtl);
  }
  return 0;
}

int cmd_eval(int argc, char** argv) {
  if (argc < 4) return usage();
  const hw::RomImage image = hw::load_rom_image(argv[2]);
  const data::LabeledDataset test = data::load_csv(argv[3]);
  const double scale = flag_value(argc, argv, "--scale", 1.0);
  const core::FixedClassifier clf = image.classifier();
  fixed::DotDiagnostics diag;
  const eval::Confusion c = eval::evaluate(clf, test, scale, &diag);
  std::printf("Format %s, %zu weights\n", image.format.to_string().c_str(),
              image.weights.size());
  std::printf("Error %.2f%% on %zu samples (A->B %zu, B->A %zu)\n",
              100.0 * c.error(), c.total(), c.a_as_b, c.b_as_a);
  std::printf("Overflow events: %d product, %d accumulator wraps, final "
              "overflow %s\n",
              diag.product_overflows, diag.accumulator_wraps,
              diag.final_overflow ? "YES" : "no");
  return 0;
}

int cmd_sweep(int argc, char** argv) {
  if (argc < 4) return usage();
  const data::LabeledDataset data = data::load_csv(argv[2]);
  const double target = std::atof(argv[3]) / 100.0;
  const auto folds = static_cast<std::size_t>(
      flag_value(argc, argv, "--folds", 5));

  ObsFlags obs_flags(argc, argv);
  eval::ExperimentConfig config;
  config.word_lengths = {3, 4, 5, 6, 7, 8, 10, 12};
  config.ldafp.bnb.max_nodes = 1000;
  config.ldafp.bnb.max_seconds = 30.0;
  config.ldafp.bnb.rel_gap = 1e-3;
  config.executor = threads_flag(argc, argv);
  config.sink = obs_flags.sink();
  support::Rng rng(1);
  const auto choice =
      eval::select_min_word_length(data, folds, config, target, rng);
  if (obs_flags.write() != 0) return 1;
  if (!choice.has_value()) {
    std::printf("No swept word length meets %.2f%% error.\n",
                100.0 * target);
    return 1;
  }
  std::printf("Smallest word length meeting %.2f%%: %d bits "
              "(CV error %.2f%%)\n",
              100.0 * target, choice->word_length,
              100.0 * choice->cv_error);
  return 0;
}

// SIGINT latch for `serve`: the handler only flips the flag; the main
// thread notices and runs the orderly drain (signal-safe by design).
std::atomic<bool> g_interrupted{false};

void on_sigint(int) { g_interrupted.store(true); }

/// Trains the synthetic fallback model served when no --model is given:
/// a conventional quantized-LDA classifier on the paper's 3-feature
/// synthetic task (fast — no branch-and-bound — and deterministic).
core::FixedClassifier train_synthetic_fallback(int word_length,
                                               double* scale_out) {
  support::Rng rng(1);
  const data::LabeledDataset dataset = data::make_synthetic(1500, rng);
  const double beta = stats::confidence_beta(0.9999);
  const core::TrainingSet raw = dataset.to_training_set();
  const core::FormatChoice choice =
      core::choose_format(raw, word_length, beta, 2);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, choice.feature_scale);
  const core::LdaModel lda = core::fit_lda(scaled);
  const auto model_stats = core::fit_two_class_model(
      core::quantize_training_set(scaled, choice.format));
  *scale_out = choice.feature_scale;
  return core::quantize_lda(lda, model_stats, beta, choice.format);
}

int cmd_serve(int argc, char** argv) {
  const auto port = static_cast<std::uint16_t>(
      flag_value(argc, argv, "--port", 7070));
  const auto workers = static_cast<std::size_t>(
      flag_value(argc, argv, "--threads", 4));
  const auto io_threads = static_cast<std::size_t>(
      flag_value(argc, argv, "--io-threads", 1));
  const auto queue = static_cast<std::size_t>(
      flag_value(argc, argv, "--queue", 1024));
  const auto batch = static_cast<std::size_t>(
      flag_value(argc, argv, "--batch", 64));
  const char* metrics_path = flag_string(argc, argv, "--metrics-json");

  // One registry for the whole serving process: the engine's
  // "runtime.*" block and the transport's "net.*" block bind into it,
  // so the exit snapshot covers admission, batching, and the wire.
  obs::MetricsRegistry metrics;
  obs::Sink sink;
  sink.metrics = &metrics;

  runtime::ModelRegistry models;
  std::string default_model;
  for (int i = 2; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--model") != 0) continue;
    const std::string spec = argv[i + 1];
    const std::size_t eq = spec.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size()) {
      std::fprintf(stderr, "--model expects NAME=ROM.hex, got %s\n",
                   spec.c_str());
      return 2;
    }
    const std::string name = spec.substr(0, eq);
    const hw::RomImage image = hw::load_rom_image(spec.substr(eq + 1));
    models.install(name, image);
    if (default_model.empty()) default_model = name;
    std::printf("installed %s (%s, %zu weights)\n", name.c_str(),
                image.format.to_string().c_str(), image.weights.size());
  }
  if (models.size() == 0) {
    double scale = 1.0;
    const core::FixedClassifier clf =
        train_synthetic_fallback(6, &scale);
    models.install("synthetic", clf);
    default_model = "synthetic";
    std::printf("no --model given; installed synthetic fallback "
                "(%s, feature scale %g)\n",
                clf.format().to_string().c_str(), scale);
  }

  runtime::EngineOptions engine_options;
  engine_options.workers = workers;
  engine_options.queue_capacity = queue;
  engine_options.max_batch = batch;
  engine_options.sink = &sink;
  runtime::InferenceEngine engine(engine_options);

  net::ServerOptions server_options;
  server_options.port = port;
  server_options.io_threads = io_threads;
  server_options.default_model = default_model;
  server_options.engine = &engine;
  server_options.registry = &models;
  server_options.sink = &sink;
  net::Server server(server_options);
  server.start();
  std::printf("serving on %s:%u (%zu io thread%s, %zu workers, "
              "default model \"%s\") — Ctrl-C to drain and exit\n",
              server_options.host.c_str(), server.port(), io_threads,
              io_threads == 1 ? "" : "s", workers,
              default_model.c_str());

  std::signal(SIGINT, on_sigint);
  std::signal(SIGTERM, on_sigint);
  while (!g_interrupted.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  // Orderly drain: stop admission at the socket, let in-flight
  // responses flush, then drain the engine queue, then report.
  std::printf("\ndraining...\n");
  server.stop();
  engine.shutdown();
  const obs::MetricsSnapshot snapshot = engine.stats().snapshot();
  if (metrics_path != nullptr) {
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", metrics_path);
      return 1;
    }
    obs::write_metrics_json(out, snapshot);
    std::printf("Wrote metrics to %s\n", metrics_path);
  }
  std::printf("%s\n", obs::to_table(snapshot).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  try {
    if (std::strcmp(argv[1], "train") == 0) return cmd_train(argc, argv);
    if (std::strcmp(argv[1], "eval") == 0) return cmd_eval(argc, argv);
    if (std::strcmp(argv[1], "sweep") == 0) return cmd_sweep(argc, argv);
    if (std::strcmp(argv[1], "serve") == 0) return cmd_serve(argc, argv);
  } catch (const ldafp::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return usage();
}
