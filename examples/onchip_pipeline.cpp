// On-chip pipeline demo: trains an LDA-FP classifier, burns it into the
// cycle-level MAC datapath model, streams test samples through it, and
// reports the hardware-facing numbers a tapeout review would ask for:
// cycles, overflow events, energy per classification, and the wrapping
// behaviour the paper's two's-complement argument relies on.
//
//   $ ./onchip_pipeline
#include <cstdio>

#include "core/format_policy.h"
#include "core/ldafp.h"
#include "data/synthetic.h"
#include "hw/mac_datapath.h"
#include "hw/power_model.h"
#include "stats/normal.h"
#include "support/rng.h"

int main() {
  using namespace ldafp;

  // Train a 5-bit classifier on the synthetic workload.
  support::Rng rng(99);
  const data::LabeledDataset train = data::make_synthetic(2000, rng);
  const data::LabeledDataset test = data::make_synthetic(5000, rng);

  const double beta = stats::confidence_beta(0.9999);
  const core::TrainingSet raw = train.to_training_set();
  const core::FormatChoice choice = core::choose_format(raw, 5, beta, 2);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, choice.feature_scale);

  core::LdaFpOptions options;
  options.bnb.max_nodes = 3000;
  options.bnb.max_seconds = 10.0;
  const core::LdaFpTrainer trainer(choice.format, options);
  const core::LdaFpResult result = trainer.train(scaled);
  if (!result.found()) {
    std::printf("training found no feasible classifier\n");
    return 1;
  }

  // Burn the weights into the datapath ROM.
  const hw::MacDatapath datapath(choice.format, result.weights,
                                 result.threshold);
  std::printf("Datapath: %s, %zu weights, %lld cycles/classification\n",
              choice.format.to_string().c_str(), datapath.dim(),
              static_cast<long long>(datapath.cycles_per_classification()));

  // Stream the test set.
  std::size_t errors = 0;
  std::size_t harmless_wraps = 0;
  std::size_t corrupted = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    linalg::Vector x = test.samples[i];
    x *= choice.feature_scale;
    const hw::MacTrace trace = datapath.run(x);
    const bool truth_a = test.labels[i] == core::Label::kClassA;
    if (trace.decision_class_a != truth_a) ++errors;
    if (trace.accumulator_wraps > 0 && !trace.final_overflow) {
      ++harmless_wraps;  // the paper's two's-complement property in action
    }
    if (trace.final_overflow) ++corrupted;
  }

  const hw::PowerModel power;
  const double energy = power.energy_per_classification(
      choice.format.word_length(), datapath.cycles_per_classification());

  std::printf("Streamed %zu samples:\n", test.size());
  std::printf("  classification error     : %.2f%%\n",
              100.0 * static_cast<double>(errors) /
                  static_cast<double>(test.size()));
  std::printf("  harmless accumulator wraps (intermediate overflow, "
              "correct result): %zu\n", harmless_wraps);
  std::printf("  corrupted results (final overflow — bounded by 1-rho "
              "through Eq. 20): %zu\n", corrupted);
  std::printf("  energy/classification    : %.0f units (vs %.0f at "
              "16-bit)\n",
              energy,
              power.energy_per_classification(
                  16, datapath.cycles_per_classification()));
  return 0;
}
