// Quickstart: train a 6-bit fixed-point classifier with LDA-FP and
// compare it against conventional rounded LDA — the whole public API in
// ~60 lines.
//
//   $ ./quickstart
//
// Steps: generate data -> pick a QK.F format and feature scale -> train
// both classifiers -> score them through the identical fixed-point
// datapath.
#include <cstdio>

#include "core/format_policy.h"
#include "core/lda.h"
#include "core/ldafp.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "stats/normal.h"
#include "support/rng.h"

int main() {
  using namespace ldafp;

  // 1. Data: the paper's 3-feature synthetic task (only feature 1 is
  //    informative; features 2-3 enable noise cancellation).
  support::Rng rng(1234);
  const data::LabeledDataset train = data::make_synthetic(2000, rng);
  const data::LabeledDataset test = data::make_synthetic(8000, rng);

  // 2. Format: 6 total bits, 2 integer bits; scale features (power of
  //    two) so they fit the representable range at confidence rho.
  const double rho = 0.9999;
  const double beta = stats::confidence_beta(rho);
  const core::TrainingSet raw = train.to_training_set();
  const core::FormatChoice choice = core::choose_format(raw, 6, beta, 2);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, choice.feature_scale);
  std::printf("Format %s, feature scale %g, beta %.2f\n",
              choice.format.to_string().c_str(), choice.feature_scale,
              beta);

  // 3a. Conventional baseline: float LDA, then round the weights.
  const core::LdaModel lda = core::fit_lda(scaled);
  const auto model_stats = core::fit_two_class_model(
      core::quantize_training_set(scaled, choice.format));
  const core::FixedClassifier lda_fixed = core::quantize_lda(
      lda, model_stats, beta, choice.format, core::LdaGainPolicy::kUnitNorm);

  // 3b. LDA-FP: globally optimize the weights over the QK.F grid under
  //     the anti-overflow constraints (Eq. 21 of the paper).
  core::LdaFpOptions options;
  options.rho = rho;
  options.bnb.max_nodes = 5000;
  options.bnb.max_seconds = 10.0;
  const core::LdaFpTrainer trainer(choice.format, options);
  const core::LdaFpResult result = trainer.train(scaled);
  if (!result.found()) {
    std::printf("LDA-FP found no feasible classifier at this format.\n");
    return 1;
  }
  const core::FixedClassifier fp_fixed = trainer.make_classifier(result);
  std::printf("LDA-FP searched %zu nodes in %.2fs (status: %s)\n",
              result.search.nodes_processed, result.train_seconds,
              opt::to_string(result.search.status));

  // 4. Score both through the same fixed-point datapath.
  const double lda_error =
      eval::evaluate(lda_fixed, test, choice.feature_scale).error();
  const double fp_error =
      eval::evaluate(fp_fixed, test, choice.feature_scale).error();
  std::printf("\n6-bit test error:  rounded LDA %.2f%%  |  LDA-FP %.2f%%\n",
              100.0 * lda_error, 100.0 * fp_error);
  std::printf("LDA-FP weights: %s\n",
              result.weights.to_string(4).c_str());
  return fp_error <= lda_error ? 0 : 1;
}
