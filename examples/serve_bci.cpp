// BCI movement decoding as a *service*: train once, serve concurrent
// traffic through the runtime, hot-swap the model under load.
//
//   $ ./serve_bci
//
// Pipeline: generate the synthetic ECoG stand-in (42 features) ->
// train a conventional 6-bit fixed-point decoder -> export its bits as
// a weight-ROM snapshot -> install it in a ModelRegistry -> push
// concurrent trial traffic from several producer threads through the
// batched InferenceEngine.  Mid-run the example installs an 8-bit
// retrain under the same name; traffic picks up the new version at the
// next registry resolve while in-flight requests finish on the old
// bits.  Finishes by printing the engine's telemetry block and the
// served error rates per model version.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/format_policy.h"
#include "core/lda.h"
#include "data/bci_synthetic.h"
#include "hw/rom_image.h"
#include "runtime/runtime.h"
#include "stats/normal.h"
#include "support/rng.h"

namespace {

using namespace ldafp;

/// Conventional fixed-point decoder at `word_length` bits (the serving
/// layer does not care how the bits were trained; LDA-FP via
/// core::LdaFpTrainer plugs in identically but needs minutes at 42
/// features).
core::FixedClassifier train_decoder(const data::LabeledDataset& train,
                                    int word_length, double* scale_out) {
  const double rho = 0.9999;
  const double beta = stats::confidence_beta(rho);
  const core::TrainingSet raw = train.to_training_set();
  const core::FormatChoice choice =
      core::choose_format(raw, word_length, beta, 2);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, choice.feature_scale);
  const core::LdaModel lda = core::fit_lda(scaled);
  const auto model_stats = core::fit_two_class_model(
      core::quantize_training_set(scaled, choice.format));
  *scale_out = choice.feature_scale;
  return core::quantize_lda(lda, model_stats, beta, choice.format);
}

}  // namespace

int main() {
  // 1. Data + two decoder generations (6-bit v1, 8-bit v2).
  support::Rng rng(2718);
  const data::LabeledDataset dataset = data::make_bci_synthetic(rng);
  std::printf("dataset: %zu trials x %zu features\n", dataset.size(),
              dataset.dim());
  double scale6 = 1.0, scale8 = 1.0;
  const core::FixedClassifier decoder6 = train_decoder(dataset, 6, &scale6);
  const core::FixedClassifier decoder8 = train_decoder(dataset, 8, &scale8);

  // 2. Registry: v1 installs through the ROM-image snapshot hook — the
  //    same artifact a tapeout flow would burn, served as-is.
  runtime::ModelRegistry registry;
  const hw::RomImage rom = hw::RomImage::from_classifier(decoder6);
  registry.install("bci-movement", rom);
  std::printf("installed bci-movement v1: %s, %zu weights (from ROM "
              "image)\n",
              rom.format.to_string().c_str(), rom.weights.size());

  // 3. Engine + concurrent producers.  Each producer replays scaled
  //    trials and tallies decode errors against the trial labels, per
  //    model version it actually hit.
  runtime::InferenceEngine engine({.workers = 4, .queue_capacity = 256,
                                   .max_batch = 32,
                                   .max_wait_seconds = 200e-6});
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kTrialsPerProducer = 2000;
  std::atomic<std::uint64_t> errors_v1{0}, served_v1{0};
  std::atomic<std::uint64_t> errors_v2{0}, served_v2{0};
  std::atomic<std::uint64_t> shed{0};
  const double scales[2] = {scale6, scale8};

  std::vector<std::thread> producers;
  for (std::size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      support::Rng traffic_rng(1000 + p);
      for (std::size_t i = 0; i < kTrialsPerProducer; ++i) {
        const std::size_t trial = static_cast<std::size_t>(
            traffic_rng.uniform_int(0,
                                    static_cast<std::int64_t>(
                                        dataset.size()) - 1));
        // Resolve the current model each request — this is what makes
        // the hot swap take effect mid-traffic.
        const runtime::ModelHandle model = registry.get("bci-movement");
        const double scale = scales[model->version - 1];
        linalg::Vector x = dataset.samples[trial];
        x *= scale;  // the decoder's preprocessing (power-of-two shift)
        auto sub = engine.submit(model, std::move(x));
        if (sub.status != runtime::SubmitStatus::kAccepted) {
          shed.fetch_add(1);  // backpressure: drop this trial
          continue;
        }
        const auto results = sub.result.get();
        const bool wrong = results[0].label != dataset.labels[trial];
        if (model->version == 1) {
          served_v1.fetch_add(1);
          if (wrong) errors_v1.fetch_add(1);
        } else {
          served_v2.fetch_add(1);
          if (wrong) errors_v2.fetch_add(1);
        }
      }
    });
  }

  // 4. Hot swap: once traffic is flowing, publish the 8-bit retrain.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  registry.install("bci-movement", decoder8);
  std::printf("hot-swapped bci-movement to v2 (%s) under load\n",
              decoder8.format().to_string().c_str());

  for (auto& t : producers) t.join();
  engine.shutdown();

  // 5. Served quality + runtime telemetry.
  std::printf("\nserved traffic (training-set replay):\n");
  if (served_v1.load() > 0) {
    std::printf("  v1 (6-bit): %llu trials, %.2f%% decode error\n",
                static_cast<unsigned long long>(served_v1.load()),
                100.0 * static_cast<double>(errors_v1.load()) /
                    static_cast<double>(served_v1.load()));
  }
  if (served_v2.load() > 0) {
    std::printf("  v2 (8-bit): %llu trials, %.2f%% decode error\n",
                static_cast<unsigned long long>(served_v2.load()),
                100.0 * static_cast<double>(errors_v2.load()) /
                    static_cast<double>(served_v2.load()));
  }
  std::printf("  shed by backpressure: %llu\n\n",
              static_cast<unsigned long long>(shed.load()));
  std::printf("%s\n", engine.stats().report().c_str());
  for (const auto& info : registry.list()) {
    std::printf("registry: %s latest v%llu (%zu versions, %zu features, "
                "%s)\n",
                info.name.c_str(),
                static_cast<unsigned long long>(info.latest_version),
                info.version_count, info.dim, info.format.c_str());
  }
  return 0;
}
