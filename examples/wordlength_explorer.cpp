// Word-length explorer: the design-space tool a chip architect would
// actually run — sweep word lengths, find the cheapest format meeting an
// accuracy target, and report the power cost of each choice.
//
//   $ ./wordlength_explorer [target_error_percent] [dataset.csv]
//
// Defaults: 25% target on the paper's synthetic workload.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "data/io.h"
#include "data/synthetic.h"
#include "eval/experiment.h"
#include "hw/power_model.h"
#include "support/rng.h"
#include "support/str.h"
#include "support/table.h"

int main(int argc, char** argv) {
  using namespace ldafp;

  const double target =
      argc > 1 ? std::atof(argv[1]) / 100.0 : 0.25;

  support::Rng rng(555);
  data::LabeledDataset train;
  data::LabeledDataset test;
  if (argc > 2) {
    const data::LabeledDataset all = data::load_csv(argv[2]);
    support::Rng split_rng(556);
    const data::Split split = data::stratified_split(all, 0.7, split_rng);
    train = split.train;
    test = split.test;
    std::printf("Loaded %zu samples (%zu train / %zu test) from %s\n",
                all.size(), train.size(), test.size(), argv[2]);
  } else {
    train = data::make_synthetic(3000, rng);
    test = data::make_synthetic(10000, rng);
    std::printf("Using the synthetic workload (%zu train / %zu test)\n",
                train.size(), test.size());
  }
  std::printf("Accuracy target: error <= %s\n\n",
              support::format_percent(target).c_str());

  eval::ExperimentConfig config;
  config.word_lengths = {4, 5, 6, 7, 8, 10, 12};
  config.ldafp.bnb.max_nodes = 4000;
  config.ldafp.bnb.max_seconds = 15.0;
  config.ldafp.bnb.rel_gap = 1e-3;

  const hw::PowerModel power;
  support::TextTable table({"W", "Format", "LDA error", "LDA-FP error",
                            "Power (rel. 12-bit)", "Meets target?"});
  int cheapest_fp = 0;
  int cheapest_lda = 0;
  for (const int w : config.word_lengths) {
    const eval::TrialResult row = eval::run_trial(train, test, w, config);
    const bool fp_ok = row.ldafp_error <= target;
    const bool lda_ok = row.lda_error <= target;
    if (fp_ok && cheapest_fp == 0) cheapest_fp = w;
    if (lda_ok && cheapest_lda == 0) cheapest_lda = w;
    table.add_row({std::to_string(w),
                   row.format_choice.format.to_string(),
                   support::format_percent(row.lda_error),
                   support::format_percent(row.ldafp_error),
                   support::format_double(
                       power.power(w) / power.power(12), 3),
                   fp_ok ? (lda_ok ? "both" : "LDA-FP only")
                         : (lda_ok ? "LDA only" : "neither")});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.to_string().c_str());

  if (cheapest_fp != 0 && cheapest_lda != 0) {
    std::printf("Cheapest format meeting the target: LDA-FP %d bits vs "
                "conventional %d bits -> %.1fx power saving.\n",
                cheapest_fp, cheapest_lda,
                power.power_ratio(cheapest_lda, cheapest_fp));
  } else if (cheapest_fp != 0) {
    std::printf("Only LDA-FP meets the target (at %d bits) within the "
                "swept word lengths.\n", cheapest_fp);
  } else {
    std::printf("No swept word length meets the target; relax the target "
                "or extend the sweep.\n");
  }
  return 0;
}
