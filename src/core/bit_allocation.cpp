#include "core/bit_allocation.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/constraints.h"
#include "core/lda.h"
#include "core/local_search.h"
#include "stats/normal.h"
#include "support/error.h"

namespace ldafp::core {

MixedClassifier::MixedClassifier(fixed::MixedFormat layout,
                                 linalg::Vector weights, double threshold,
                                 fixed::FixedFormat feature_fmt,
                                 fixed::RoundingMode mode)
    : layout_(std::move(layout)),
      weights_(std::move(weights)),
      threshold_(fixed::Fixed::from_real_saturate(feature_fmt, threshold,
                                                  mode)),
      feature_fmt_(feature_fmt),
      mode_(mode) {
  LDAFP_CHECK(weights_.size() == layout_.size(),
              "mixed classifier dimension mismatch");
  LDAFP_CHECK(layout_.on_grid(weights_),
              "weights must be on their per-element grids");
}

Label MixedClassifier::classify(const linalg::Vector& x,
                                fixed::DotDiagnostics* diag) const {
  const fixed::Fixed y = fixed::mixed_dot_datapath(
      layout_, weights_, x, feature_fmt_, mode_, diag);
  return y.raw() >= threshold_.raw() ? Label::kClassA : Label::kClassB;
}

MixedClassifier BitAllocationResult::classifier(
    const fixed::FixedFormat& feature_fmt, fixed::RoundingMode mode) const {
  LDAFP_CHECK(found, "allocation did not produce a classifier");
  return MixedClassifier(layout, weights, threshold, feature_fmt, mode);
}

namespace {

/// Diagonal of the Hessian of cost(w) = wᵀSw / (dᵀw)² at w.
linalg::Vector cost_hessian_diagonal(const linalg::Matrix& sw,
                                     const linalg::Vector& diff,
                                     const linalg::Vector& w) {
  const double t = linalg::dot(diff, w);
  const double q = linalg::quadratic_form(sw, w);
  const linalg::Vector sw_w = sw * w;
  const std::size_t dim = w.size();
  linalg::Vector h(dim);
  const double t2 = t * t;
  for (std::size_t m = 0; m < dim; ++m) {
    const double d = diff[m];
    h[m] = 2.0 * sw(m, m) / t2 - 8.0 * sw_w[m] * d / (t2 * t) +
           6.0 * q * d * d / (t2 * t2);
  }
  return h;
}

}  // namespace

BitAllocationResult allocate_word_lengths(
    const TrainingSet& data, const fixed::FixedFormat& feature_fmt,
    int total_weight_bits, const BitAllocationOptions& options) {
  LDAFP_CHECK(data.valid(), "training set must have samples in both classes");
  LDAFP_CHECK(options.integer_bits >= 1 && options.min_frac_bits >= 0 &&
                  options.min_frac_bits <= options.max_frac_bits,
              "invalid bit-allocation options");
  const std::size_t dim = data.dim();
  const int floor_bits = static_cast<int>(dim) *
                         (options.integer_bits + options.min_frac_bits);
  LDAFP_CHECK(total_weight_bits >= floor_bits,
              "budget below K + min_frac_bits per weight");

  // Statistics from feature-quantized data, as in Algorithm 1.
  const TrainingSet quantized = quantize_training_set(data, feature_fmt);
  const stats::TwoClassModel model = fit_two_class_model(quantized);
  const linalg::Matrix sw = model.within_class_scatter();
  const linalg::Vector diff = model.mean_difference();
  const double beta = stats::confidence_beta(options.rho);

  // Reference float solution: the LDA direction, scaled by the largest
  // power-of-two gain that keeps it inside the Eq. 18/20 feasible region
  // of the widest per-element format (the K-bit range is what matters).
  const LdaModel lda = fit_lda(quantized);
  const fixed::FixedFormat wide_fmt(options.integer_bits,
                                    options.max_frac_bits);
  const double gain =
      lda_pow2_gain(lda, model, beta, wide_fmt, LdaGainPolicy::kOverflowAware);
  linalg::Vector reference = lda.weights;
  reference *= gain;
  // Orient toward class A (Eq. 12 needs t > 0; LDA already guarantees it,
  // keep the guard for degenerate fits).
  if (linalg::dot(diff, reference) < 0.0) reference *= -1.0;

  BitAllocationResult result;
  result.sensitivity = cost_hessian_diagonal(sw, diff, reference);

  // Greedy reverse water-filling: spend one fractional bit at a time on
  // the coordinate with the largest remaining expected quantization
  // damage s_m · 2^-2F_m (the 3/4 reduction factor is common to all, so
  // ranking by s_m 4^-F_m suffices).
  std::vector<int> frac(dim, options.min_frac_bits);
  int remaining = total_weight_bits - floor_bits;
  while (remaining > 0) {
    std::size_t best = dim;  // invalid
    double best_damage = -1.0;
    for (std::size_t m = 0; m < dim; ++m) {
      if (frac[m] >= options.max_frac_bits) continue;
      const double damage = std::max(result.sensitivity[m], 0.0) *
                            std::ldexp(1.0, -2 * frac[m]);
      if (damage > best_damage) {
        best_damage = damage;
        best = m;
      }
    }
    if (best == dim) break;  // every coordinate is at the cap
    ++frac[best];
    --remaining;
  }

  result.layout = fixed::MixedFormat(options.integer_bits, frac);
  linalg::Vector w = result.layout.snap(reference, options.rounding);
  // Snapping can zero the orientation-carrying coordinates; flip onto
  // the t > 0 side if needed (the polish below only explores that side).
  if (linalg::dot(diff, w) < 0.0) {
    w *= -1.0;
    w = result.layout.snap(w, options.rounding);
  }

  // Mixed-grid coordinate-descent polish (per-element ulp steps), with
  // the projection constraints as the feasibility gate.
  double cost = exact_cost(w, sw, diff);
  for (int sweep = 0; sweep < options.polish_sweeps; ++sweep) {
    bool improved = false;
    for (std::size_t m = 0; m < dim; ++m) {
      const fixed::FixedFormat fmt = result.layout.element_format(m);
      const double ulp = fmt.resolution();
      for (const double delta : {ulp, -ulp, 2.0 * ulp, -2.0 * ulp}) {
        const double cand = w[m] + delta;
        if (cand < fmt.min_value() || cand > fmt.max_value()) continue;
        linalg::Vector trial = w;
        trial[m] = cand;
        // The cost is symmetric under w -> -w, so a coordinate step can
        // silently cross t = 0 into the inverted-orientation half-space;
        // only the t > 0 side classifies per Eq. 12.
        if (linalg::dot(diff, trial) <= 0.0) continue;
        const double trial_cost = exact_cost(trial, sw, diff);
        if (trial_cost >= cost) continue;
        if (!satisfies_projection_constraints(trial, model, beta,
                                              feature_fmt, 1e-9)) {
          continue;
        }
        w = std::move(trial);
        cost = trial_cost;
        improved = true;
      }
    }
    if (!improved) break;
  }

  if (!std::isfinite(cost)) return result;  // found stays false
  result.weights = std::move(w);
  result.cost = cost;
  result.threshold =
      0.5 * (linalg::dot(result.weights, model.class_a.mu()) +
             linalg::dot(result.weights, model.class_b.mu()));
  result.found = true;
  return result;
}

}  // namespace ldafp::core
