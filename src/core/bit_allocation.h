// Per-feature word-length optimization — the paper's named future work
// ("different elements {w_m} of the weight vector w can be assigned
// different word lengths", Sec. 3), in the spirit of the word-length
// allocation literature it cites (Constantinides et al. [10]).
//
// Given a total weight-storage budget B = Σ (K + F_m), the allocator
// distributes fractional bits greedily by curvature: quantizing w_m with
// step δ_m = 2^-F_m inflates the Fisher cost by ≈ ½ H_mm δ_m²/12, where
// H_mm is the cost Hessian's diagonal at the float optimum, so each next
// bit goes to the coordinate with the largest remaining expected damage
// (classic reverse water-filling).  The rounded solution is then
// polished by coordinate descent on the mixed grid and deployed on the
// mixed-format datapath (fixed/mixed_dot.h).
#pragma once

#include "core/classifier.h"
#include "core/training_set.h"
#include "fixed/mixed_dot.h"
#include "linalg/vector.h"

namespace ldafp::core {

/// Classifier running the mixed-format datapath.
class MixedClassifier {
 public:
  /// Weights must be on their per-element grids.
  MixedClassifier(fixed::MixedFormat layout, linalg::Vector weights,
                  double threshold, fixed::FixedFormat feature_fmt,
                  fixed::RoundingMode mode =
                      fixed::RoundingMode::kNearestEven);

  const fixed::MixedFormat& layout() const { return layout_; }
  const linalg::Vector& weights() const { return weights_; }
  double threshold_real() const { return threshold_.to_real(); }
  std::size_t dim() const { return weights_.size(); }

  /// Eq. 12 decision through the mixed datapath.
  Label classify(const linalg::Vector& x,
                 fixed::DotDiagnostics* diag = nullptr) const;

 private:
  fixed::MixedFormat layout_;
  linalg::Vector weights_;
  fixed::Fixed threshold_;
  fixed::FixedFormat feature_fmt_;
  fixed::RoundingMode mode_;
};

/// Allocator knobs.
struct BitAllocationOptions {
  int integer_bits = 2;      ///< shared K
  int min_frac_bits = 0;     ///< floor for every F_m
  int max_frac_bits = 16;    ///< cap for every F_m
  double rho = 0.9999;       ///< confidence level for feasibility repair
  int polish_sweeps = 40;    ///< mixed-grid coordinate-descent budget
  fixed::RoundingMode rounding = fixed::RoundingMode::kNearestEven;
};

/// Allocation outcome.
struct BitAllocationResult {
  /// Chosen per-element formats (placeholder 1-element layout until a
  /// successful allocation overwrites it).
  fixed::MixedFormat layout = fixed::MixedFormat(1, {0});
  linalg::Vector weights;        ///< on the mixed grid
  double threshold = 0.0;
  double cost = 0.0;             ///< Fisher cost of the rounded weights
  linalg::Vector sensitivity;    ///< Hessian diagonal used for allocation
  bool found = false;

  /// The deployable classifier (requires found).
  MixedClassifier classifier(const fixed::FixedFormat& feature_fmt,
                             fixed::RoundingMode mode =
                                 fixed::RoundingMode::kNearestEven) const;
};

/// Allocates a total weight-storage budget of `total_weight_bits` across
/// the features of (already feature-scaled) `data`, quantizing against
/// `feature_fmt` (features share K with the weights).  Throws
/// InvalidArgumentError when the budget cannot cover K + min_frac_bits
/// per weight.
BitAllocationResult allocate_word_lengths(
    const TrainingSet& data, const fixed::FixedFormat& feature_fmt,
    int total_weight_bits,
    const BitAllocationOptions& options = BitAllocationOptions{});

}  // namespace ldafp::core
