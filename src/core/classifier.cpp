#include "core/classifier.h"

#include <algorithm>

#include "fixed/simd.h"
#include "support/error.h"

namespace ldafp::core {

LinearClassifier::LinearClassifier(linalg::Vector weights, double threshold)
    : weights_(std::move(weights)), threshold_(threshold) {
  LDAFP_CHECK(!weights_.empty(), "classifier needs at least one weight");
}

double LinearClassifier::project(const linalg::Vector& x) const {
  return linalg::dot(weights_, x);
}

Label LinearClassifier::classify(const linalg::Vector& x) const {
  return project(x) >= threshold_ ? Label::kClassA : Label::kClassB;
}

FixedClassifier::FixedClassifier(fixed::FixedFormat fmt,
                                 const linalg::Vector& weights,
                                 double threshold, fixed::RoundingMode mode,
                                 fixed::AccumulatorMode acc)
    : fmt_(fmt),
      threshold_(fixed::Fixed::from_real_saturate(fmt, threshold, mode)),
      mode_(mode),
      acc_(acc) {
  LDAFP_CHECK(weights.size() > 0, "classifier needs at least one weight");
  weights_.reserve(weights.size());
  for (std::size_t m = 0; m < weights.size(); ++m) {
    // Quantized with the classifier's rounding mode, exactly like the
    // threshold above.  Trained weights are already on the QK.F grid
    // (Eq. 13) and pass through bit-exactly under every mode; off-grid
    // weights land on the same word the ROM emitter and BatchScorer
    // snapshot, so all scoring paths stay in agreement.
    weights_.push_back(fixed::Fixed::from_real_saturate(fmt_, weights[m],
                                                        mode_));
  }
}

linalg::Vector FixedClassifier::weights_real() const {
  return fixed::to_real(weights_);
}

fixed::Fixed FixedClassifier::project(const linalg::Vector& x,
                                      fixed::DotDiagnostics* diag) const {
  const std::vector<fixed::Fixed> xq = fixed::quantize_vector(x, fmt_, mode_);
  return fixed::dot_datapath(weights_, xq, fmt_, mode_, acc_, diag);
}

Label FixedClassifier::classify(const linalg::Vector& x,
                                fixed::DotDiagnostics* diag) const {
  const fixed::Fixed y = project(x, diag);
  return y.raw() >= threshold_.raw() ? Label::kClassA : Label::kClassB;
}

std::vector<Label> FixedClassifier::classify_batch(
    const std::vector<linalg::Vector>& xs, fixed::DotDiagnostics* diag) const {
  std::vector<Label> out;
  out.reserve(xs.size());
  if (diag != nullptr) {
    // Diagnostics need the instrumented per-sample datapath; one scratch
    // buffer for the quantized features, refilled in place per sample.
    std::vector<fixed::Fixed> xq;
    xq.reserve(dim());
    for (const linalg::Vector& x : xs) {
      LDAFP_CHECK(x.size() == dim(), "classify_batch dimension mismatch");
      xq.clear();
      for (std::size_t m = 0; m < x.size(); ++m) {
        xq.push_back(fixed::Fixed::from_real_saturate(fmt_, x[m], mode_));
      }
      const fixed::Fixed y = fixed::dot_datapath(weights_, xq, fmt_, mode_,
                                                 acc_, diag);
      out.push_back(y.raw() >= threshold_.raw() ? Label::kClassA
                                                : Label::kClassB);
    }
    return out;
  }
  // Hot path: quantize into one AoSoA tile and run the vector kernels
  // (bit-identical to the loop above — DESIGN.md §14).
  namespace simd = fixed::simd;
  std::vector<std::int64_t> weight_words;
  weight_words.reserve(dim());
  for (const fixed::Fixed& w : weights_) weight_words.push_back(w.raw());
  const simd::DotPlan plan =
      simd::make_plan(weight_words.data(), dim(), fmt_, mode_, acc_);
  const std::int64_t threshold_raw = threshold_.raw();
  std::vector<std::int64_t> tile(dim() * simd::kLane, 0);
  std::int64_t y[simd::kLane];
  for (std::size_t base = 0; base < xs.size(); base += simd::kLane) {
    const std::size_t lanes = std::min(simd::kLane, xs.size() - base);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const linalg::Vector& x = xs[base + lane];
      LDAFP_CHECK(x.size() == dim(), "classify_batch dimension mismatch");
      for (std::size_t m = 0; m < dim(); ++m) {
        tile[m * simd::kLane + lane] = fmt_.quantize_saturate(x[m], mode_);
      }
    }
    simd::score_tile(plan, tile.data(), y, lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      out.push_back(y[lane] >= threshold_raw ? Label::kClassA
                                             : Label::kClassB);
    }
  }
  return out;
}

}  // namespace ldafp::core
