#include "core/classifier.h"

#include <algorithm>

#include "fixed/simd.h"
#include "fixed/value.h"
#include "support/error.h"

namespace ldafp::core {

LinearClassifier::LinearClassifier(linalg::Vector weights, double threshold)
    : weights_(std::move(weights)), threshold_(threshold) {
  LDAFP_CHECK(!weights_.empty(), "classifier needs at least one weight");
}

double LinearClassifier::project(const linalg::Vector& x) const {
  return linalg::dot(weights_, x);
}

Label LinearClassifier::classify(const linalg::Vector& x) const {
  return project(x) >= threshold_ ? Label::kClassA : Label::kClassB;
}

namespace {

std::vector<std::int64_t> quantize_words(const fixed::Datapath& dp,
                                         const linalg::Vector& weights) {
  LDAFP_CHECK(weights.size() > 0, "classifier needs at least one weight");
  std::vector<std::int64_t> words;
  words.reserve(weights.size());
  // Quantized with the classifier's rounding mode, exactly like the
  // threshold.  Trained weights are already on the backend's grid
  // (Eq. 13) and pass through bit-exactly under every mode; off-grid
  // weights land on the same word the ROM emitter and BatchScorer
  // snapshot, so all scoring paths stay in agreement.
  for (std::size_t m = 0; m < weights.size(); ++m) {
    words.push_back(dp.quantize(weights[m]));
  }
  return words;
}

}  // namespace

FixedClassifier::FixedClassifier(std::shared_ptr<const fixed::Datapath> dp,
                                 std::vector<std::int64_t> weight_words,
                                 std::int64_t threshold_word)
    : datapath_(std::move(dp)),
      weight_words_(std::move(weight_words)),
      threshold_word_(threshold_word) {
  LDAFP_CHECK(datapath_ != nullptr, "classifier needs a datapath");
  LDAFP_CHECK(!weight_words_.empty(), "classifier needs at least one weight");
  if (datapath_->kind() == fixed::DatapathKind::kTwosComplement) {
    const fixed::FixedFormat& fmt = datapath_->format();
    weights_.reserve(weight_words_.size());
    for (const std::int64_t w : weight_words_) {
      weights_.push_back(fixed::Fixed::from_raw(fmt, w));
    }
    threshold_mirror_.push_back(fixed::Fixed::from_raw(fmt, threshold_word_));
  }
}

FixedClassifier::FixedClassifier(fixed::FixedFormat fmt,
                                 const linalg::Vector& weights,
                                 double threshold, fixed::RoundingMode mode,
                                 fixed::AccumulatorMode acc,
                                 fixed::DatapathKind kind)
    : FixedClassifier(fixed::make_datapath(kind, fmt, mode, acc), weights,
                      threshold) {}

FixedClassifier::FixedClassifier(std::shared_ptr<const fixed::Datapath> dp,
                                 const linalg::Vector& weights,
                                 double threshold)
    : FixedClassifier(dp, quantize_words(*dp, weights),
                      dp->quantize(threshold)) {}

FixedClassifier FixedClassifier::from_raw_words(
    std::shared_ptr<const fixed::Datapath> datapath,
    std::vector<std::int64_t> weight_words, std::int64_t threshold_word) {
  return FixedClassifier(std::move(datapath), std::move(weight_words),
                         threshold_word);
}

linalg::Vector FixedClassifier::weights_real() const {
  linalg::Vector out(weight_words_.size());
  for (std::size_t m = 0; m < weight_words_.size(); ++m) {
    out[m] = datapath_->to_real(weight_words_[m]);
  }
  return out;
}

const std::vector<fixed::Fixed>& FixedClassifier::weights_fixed() const {
  LDAFP_CHECK(datapath_->kind() == fixed::DatapathKind::kTwosComplement,
              "weights_fixed: not a two's-complement classifier "
              "(use weight_words)");
  return weights_;
}

const fixed::Fixed& FixedClassifier::threshold_fixed() const {
  LDAFP_CHECK(datapath_->kind() == fixed::DatapathKind::kTwosComplement,
              "threshold_fixed: not a two's-complement classifier "
              "(use threshold_raw)");
  return threshold_mirror_.front();
}

std::int64_t FixedClassifier::project_raw(const linalg::Vector& x,
                                          fixed::DotDiagnostics* diag) const {
  LDAFP_CHECK(x.size() == dim(), "project dimension mismatch");
  std::vector<std::int64_t> xq(x.size());
  for (std::size_t m = 0; m < x.size(); ++m) {
    xq[m] = datapath_->quantize(x[m]);
  }
  return datapath_->dot(weight_words_.data(), xq.data(), xq.size(), diag);
}

fixed::Fixed FixedClassifier::project(const linalg::Vector& x,
                                      fixed::DotDiagnostics* diag) const {
  LDAFP_CHECK(datapath_->kind() == fixed::DatapathKind::kTwosComplement,
              "project: not a two's-complement classifier "
              "(use project_raw)");
  return fixed::Fixed::from_raw(datapath_->format(), project_raw(x, diag));
}

Label FixedClassifier::classify(const linalg::Vector& x,
                                fixed::DotDiagnostics* diag) const {
  const std::int64_t y = project_raw(x, diag);
  return datapath_->ge(y, threshold_word_) ? Label::kClassA : Label::kClassB;
}

std::vector<Label> FixedClassifier::classify_batch(
    const std::vector<linalg::Vector>& xs, fixed::DotDiagnostics* diag) const {
  std::vector<Label> out;
  out.reserve(xs.size());
  if (diag != nullptr ||
      datapath_->kind() != fixed::DatapathKind::kTwosComplement) {
    // Diagnostics need the instrumented per-sample datapath, and
    // backends without vector kernels (LNS) always score per sample;
    // one scratch buffer for the quantized features, refilled in place.
    fixed::DotDiagnostics total;
    std::vector<std::int64_t> xq(dim());
    for (const linalg::Vector& x : xs) {
      LDAFP_CHECK(x.size() == dim(), "classify_batch dimension mismatch");
      for (std::size_t m = 0; m < x.size(); ++m) {
        xq[m] = datapath_->quantize(x[m]);
      }
      fixed::DotDiagnostics step;
      const std::int64_t y = datapath_->dot(
          weight_words_.data(), xq.data(), xq.size(),
          diag != nullptr ? &step : nullptr);
      if (diag != nullptr) {
        total.product_overflows += step.product_overflows;
        total.accumulator_wraps += step.accumulator_wraps;
        total.final_overflow = total.final_overflow || step.final_overflow;
      }
      out.push_back(datapath_->ge(y, threshold_word_) ? Label::kClassA
                                                      : Label::kClassB);
    }
    if (diag != nullptr) *diag = total;
    return out;
  }
  // Hot path: quantize into one AoSoA tile and run the vector kernels
  // (bit-identical to the loop above — DESIGN.md §14).
  namespace simd = fixed::simd;
  const fixed::FixedFormat& fmt = datapath_->format();
  const fixed::RoundingMode mode = datapath_->rounding();
  const simd::DotPlan plan = simd::make_plan(
      weight_words_.data(), dim(), fmt, mode, datapath_->accumulator());
  std::vector<std::int64_t> tile(dim() * simd::kLane, 0);
  std::int64_t y[simd::kLane];
  for (std::size_t base = 0; base < xs.size(); base += simd::kLane) {
    const std::size_t lanes = std::min(simd::kLane, xs.size() - base);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      const linalg::Vector& x = xs[base + lane];
      LDAFP_CHECK(x.size() == dim(), "classify_batch dimension mismatch");
      for (std::size_t m = 0; m < dim(); ++m) {
        tile[m * simd::kLane + lane] = fmt.quantize_saturate(x[m], mode);
      }
    }
    simd::score_tile(plan, tile.data(), y, lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      out.push_back(y[lane] >= threshold_word_ ? Label::kClassA
                                               : Label::kClassB);
    }
  }
  return out;
}

}  // namespace ldafp::core
