#include "core/classifier.h"

#include "support/error.h"

namespace ldafp::core {

LinearClassifier::LinearClassifier(linalg::Vector weights, double threshold)
    : weights_(std::move(weights)), threshold_(threshold) {
  LDAFP_CHECK(!weights_.empty(), "classifier needs at least one weight");
}

double LinearClassifier::project(const linalg::Vector& x) const {
  return linalg::dot(weights_, x);
}

Label LinearClassifier::classify(const linalg::Vector& x) const {
  return project(x) >= threshold_ ? Label::kClassA : Label::kClassB;
}

FixedClassifier::FixedClassifier(fixed::FixedFormat fmt,
                                 const linalg::Vector& weights,
                                 double threshold, fixed::RoundingMode mode,
                                 fixed::AccumulatorMode acc)
    : fmt_(fmt),
      threshold_(fixed::Fixed::from_real_saturate(fmt, threshold, mode)),
      mode_(mode),
      acc_(acc) {
  LDAFP_CHECK(weights.size() > 0, "classifier needs at least one weight");
  weights_.reserve(weights.size());
  for (std::size_t m = 0; m < weights.size(); ++m) {
    LDAFP_CHECK(fmt_.representable(weights[m]),
                "weight is not representable in the classifier format; "
                "quantize explicitly first");
    weights_.push_back(fixed::Fixed::from_real_saturate(fmt_, weights[m]));
  }
}

linalg::Vector FixedClassifier::weights_real() const {
  return fixed::to_real(weights_);
}

fixed::Fixed FixedClassifier::project(const linalg::Vector& x,
                                      fixed::DotDiagnostics* diag) const {
  const std::vector<fixed::Fixed> xq = fixed::quantize_vector(x, fmt_, mode_);
  return fixed::dot_datapath(weights_, xq, fmt_, mode_, acc_, diag);
}

Label FixedClassifier::classify(const linalg::Vector& x,
                                fixed::DotDiagnostics* diag) const {
  const fixed::Fixed y = project(x, diag);
  return y.raw() >= threshold_.raw() ? Label::kClassA : Label::kClassB;
}

std::vector<Label> FixedClassifier::classify_batch(
    const std::vector<linalg::Vector>& xs, fixed::DotDiagnostics* diag) const {
  std::vector<Label> out;
  out.reserve(xs.size());
  // One scratch buffer for the quantized features, refilled in place per
  // sample; the weights were quantized once at construction.
  std::vector<fixed::Fixed> xq;
  xq.reserve(dim());
  for (const linalg::Vector& x : xs) {
    LDAFP_CHECK(x.size() == dim(), "classify_batch dimension mismatch");
    xq.clear();
    for (std::size_t m = 0; m < x.size(); ++m) {
      xq.push_back(fixed::Fixed::from_real_saturate(fmt_, x[m], mode_));
    }
    const fixed::Fixed y = fixed::dot_datapath(weights_, xq, fmt_, mode_,
                                               acc_, diag);
    out.push_back(y.raw() >= threshold_.raw() ? Label::kClassA
                                              : Label::kClassB);
  }
  return out;
}

}  // namespace ldafp::core
