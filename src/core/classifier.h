// Linear classifiers: the floating-point reference and the on-chip
// implementation over a configurable arithmetic datapath.
//
// Both evaluate the paper's decision rule (Eq. 12):
//     wᵀx - wᵀ(μ_A + μ_B)/2  >= 0  ->  class A, else class B.
// The on-chip version computes wᵀx with the selected backend's MAC
// datapath (fixed/datapath.h) and compares the W-bit result against
// the stored W-bit threshold with that backend's comparator.  The
// default backend is the paper's QK.F two's-complement datapath
// (per-product rounding, wrapping accumulation, exact magnitude
// comparator — the circuit the paper targets); the LNS backend swaps
// in add-for-multiply log-domain arithmetic behind the same interface.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fixed/datapath.h"
#include "fixed/dot.h"
#include "fixed/format.h"
#include "linalg/vector.h"

namespace ldafp::core {

/// Class labels of the binary problem.
enum class Label : std::uint8_t { kClassA = 0, kClassB = 1 };

/// Floating-point linear classifier (the conventional-LDA reference).
class LinearClassifier {
 public:
  /// Builds from a weight vector and decision threshold
  /// b = wᵀ(μ_A + μ_B)/2.
  LinearClassifier(linalg::Vector weights, double threshold);

  const linalg::Vector& weights() const { return weights_; }
  double threshold() const { return threshold_; }
  std::size_t dim() const { return weights_.size(); }

  /// Projection y = wᵀx.
  double project(const linalg::Vector& x) const;

  /// Decision rule of Eq. 12.
  Label classify(const linalg::Vector& x) const;

 private:
  linalg::Vector weights_;
  double threshold_;
};

/// Linear classifier executing an on-chip arithmetic datapath.
///
/// Named for the paper's fixed-point implementation it started as; with
/// the Datapath API it fronts any backend.  The two's-complement
/// accessors (weights_fixed, threshold_fixed, project) keep their exact
/// pre-API semantics and are only callable on two's-complement
/// classifiers; backend-agnostic callers use the raw-word accessors
/// (weight_words, threshold_raw, project_raw).
class FixedClassifier {
 public:
  /// Builds from real weights and a real threshold, both quantized
  /// internally with saturation under the classifier's rounding `mode`
  /// (the same words the ROM emitter and the serving BatchScorer see).
  /// Trained weights are already on the QK.F grid (Eq. 13) and pass
  /// through bit-exactly under every mode; callers that must own the
  /// rounding decision quantize first (fixed::snap_to_grid).  `kind`
  /// selects the arithmetic backend; for kLns the same QK.F descriptor
  /// keys the log-domain layout (fixed::LnsFormat::matched).
  FixedClassifier(fixed::FixedFormat fmt, const linalg::Vector& weights,
                  double threshold,
                  fixed::RoundingMode mode = fixed::RoundingMode::kNearestEven,
                  fixed::AccumulatorMode acc = fixed::AccumulatorMode::kWide,
                  fixed::DatapathKind kind =
                      fixed::DatapathKind::kTwosComplement);

  /// Builds over an existing datapath (shared, immutable), quantizing
  /// the real weights/threshold through it.
  FixedClassifier(std::shared_ptr<const fixed::Datapath> datapath,
                  const linalg::Vector& weights, double threshold);

  /// Rebuilds a classifier from already-quantized raw words — the
  /// model-file load path, which must reproduce the stored words
  /// bit-exactly without a real-value round trip (log-domain grids do
  /// not survive one).  Words must be in the backend's raw range.
  static FixedClassifier from_raw_words(
      std::shared_ptr<const fixed::Datapath> datapath,
      std::vector<std::int64_t> weight_words, std::int64_t threshold_word);

  const fixed::FixedFormat& format() const { return datapath_->format(); }
  /// The arithmetic backend (shared with BatchScorer snapshots).
  const fixed::Datapath& datapath() const { return *datapath_; }
  std::shared_ptr<const fixed::Datapath> datapath_ptr() const {
    return datapath_;
  }
  fixed::DatapathKind datapath_kind() const { return datapath_->kind(); }

  /// The quantized weights as reals (exact grid values, any backend).
  linalg::Vector weights_real() const;
  /// The quantized weight words (raw backend encoding, any backend).
  /// Hot-path callers (the serving runtime's BatchScorer, ROM export)
  /// read these instead of re-quantizing weights_real() on every call.
  const std::vector<std::int64_t>& weight_words() const {
    return weight_words_;
  }
  /// The quantized threshold as a real (exact grid value, any backend).
  double threshold_real() const {
    return datapath_->to_real(threshold_word_);
  }
  /// The threshold word (exact bits, for W-bit comparator clients).
  std::int64_t threshold_raw() const { return threshold_word_; }
  std::size_t dim() const { return weight_words_.size(); }

  /// The weight words as QK.F values.  Two's-complement backend only
  /// (LNS words are not QK.F integers); backend-agnostic callers use
  /// weight_words().
  const std::vector<fixed::Fixed>& weights_fixed() const;
  /// The threshold as a QK.F value.  Two's-complement backend only.
  const fixed::Fixed& threshold_fixed() const;

  /// Runs the datapath on a real feature vector (features are quantized
  /// with saturation first, as the paper's preprocessing prescribes)
  /// and returns the raw projection word.  Optional diagnostics report
  /// overflow events.  Works on every backend.
  std::int64_t project_raw(const linalg::Vector& x,
                           fixed::DotDiagnostics* diag = nullptr) const;

  /// project_raw as a QK.F value.  Two's-complement backend only.
  fixed::Fixed project(const linalg::Vector& x,
                       fixed::DotDiagnostics* diag = nullptr) const;

  /// Decision rule: datapath projection compared against the stored
  /// threshold with the backend's W-bit comparator.
  Label classify(const linalg::Vector& x,
                 fixed::DotDiagnostics* diag = nullptr) const;

  /// Batched decision rule: classifies every sample with the identical
  /// datapath (bit-for-bit equal to calling classify per sample).  On
  /// the two's-complement backend with no diagnostics requested the
  /// batch runs on the vectorized scoring kernels (fixed/simd.h); with
  /// diagnostics, or on backends without vector kernels (LNS), it takes
  /// the instrumented per-sample datapath, aggregating events over the
  /// whole batch.
  std::vector<Label> classify_batch(const std::vector<linalg::Vector>& xs,
                                    fixed::DotDiagnostics* diag =
                                        nullptr) const;

  /// The accumulator architecture this classifier models.
  fixed::AccumulatorMode accumulator() const {
    return datapath_->accumulator();
  }
  /// The rounding mode of the datapath's narrowing stages.
  fixed::RoundingMode rounding() const { return datapath_->rounding(); }

 private:
  FixedClassifier(std::shared_ptr<const fixed::Datapath> datapath,
                  std::vector<std::int64_t> weight_words,
                  std::int64_t threshold_word);

  std::shared_ptr<const fixed::Datapath> datapath_;
  std::vector<std::int64_t> weight_words_;
  std::int64_t threshold_word_;
  /// QK.F mirrors of the words above, kept only on the two's-complement
  /// backend for the legacy typed accessors.
  std::vector<fixed::Fixed> weights_;
  std::vector<fixed::Fixed> threshold_mirror_;  ///< empty or one word
};

}  // namespace ldafp::core
