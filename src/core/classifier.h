// Linear classifiers: the floating-point reference and the on-chip
// fixed-point implementation.
//
// Both evaluate the paper's decision rule (Eq. 12):
//     wᵀx - wᵀ(μ_A + μ_B)/2  >= 0  ->  class A, else class B.
// The fixed-point version computes wᵀx with the QK.F MAC datapath
// (per-product rounding, wrapping accumulation) and compares the W-bit
// result against the stored W-bit threshold with an exact magnitude
// comparator — the circuit the paper targets.
#pragma once

#include <cstdint>
#include <vector>

#include "fixed/dot.h"
#include "fixed/format.h"
#include "linalg/vector.h"

namespace ldafp::core {

/// Class labels of the binary problem.
enum class Label : std::uint8_t { kClassA = 0, kClassB = 1 };

/// Floating-point linear classifier (the conventional-LDA reference).
class LinearClassifier {
 public:
  /// Builds from a weight vector and decision threshold
  /// b = wᵀ(μ_A + μ_B)/2.
  LinearClassifier(linalg::Vector weights, double threshold);

  const linalg::Vector& weights() const { return weights_; }
  double threshold() const { return threshold_; }
  std::size_t dim() const { return weights_.size(); }

  /// Projection y = wᵀx.
  double project(const linalg::Vector& x) const;

  /// Decision rule of Eq. 12.
  Label classify(const linalg::Vector& x) const;

 private:
  linalg::Vector weights_;
  double threshold_;
};

/// Fixed-point linear classifier executing the on-chip datapath.
class FixedClassifier {
 public:
  /// Builds from real weights and a real threshold, both quantized
  /// internally with saturation under the classifier's rounding `mode`
  /// (the same words the ROM emitter and the serving BatchScorer see).
  /// Trained weights are already on the QK.F grid (Eq. 13) and pass
  /// through bit-exactly under every mode; callers that must own the
  /// rounding decision quantize first (fixed::snap_to_grid).
  FixedClassifier(fixed::FixedFormat fmt, const linalg::Vector& weights,
                  double threshold,
                  fixed::RoundingMode mode = fixed::RoundingMode::kNearestEven,
                  fixed::AccumulatorMode acc = fixed::AccumulatorMode::kWide);

  const fixed::FixedFormat& format() const { return fmt_; }
  /// The quantized weights as reals (exact grid values).
  linalg::Vector weights_real() const;
  /// The weight words quantized once at construction.  Hot-path callers
  /// (the serving runtime's BatchScorer, ROM export) read these instead
  /// of re-quantizing weights_real() on every call.
  const std::vector<fixed::Fixed>& weights_fixed() const { return weights_; }
  /// The quantized threshold as a real (exact grid value).
  double threshold_real() const { return threshold_.to_real(); }
  /// The threshold word (exact bits, for W-bit comparator clients).
  const fixed::Fixed& threshold_fixed() const { return threshold_; }
  std::size_t dim() const { return weights_.size(); }

  /// Runs the datapath on a real feature vector (features are quantized
  /// with saturation first, as the paper's preprocessing prescribes).
  /// Optional diagnostics report overflow events.
  fixed::Fixed project(const linalg::Vector& x,
                       fixed::DotDiagnostics* diag = nullptr) const;

  /// Decision rule: datapath projection compared against the stored
  /// threshold with an exact W-bit comparator.
  Label classify(const linalg::Vector& x,
                 fixed::DotDiagnostics* diag = nullptr) const;

  /// Batched decision rule: classifies every sample with the identical
  /// datapath (bit-for-bit equal to calling classify per sample).  With
  /// no diagnostics requested the batch runs on the vectorized scoring
  /// kernels (fixed/simd.h); with diagnostics it takes the instrumented
  /// per-sample datapath, aggregating events over the whole batch.
  std::vector<Label> classify_batch(const std::vector<linalg::Vector>& xs,
                                    fixed::DotDiagnostics* diag =
                                        nullptr) const;

  /// The accumulator architecture this classifier models.
  fixed::AccumulatorMode accumulator() const { return acc_; }
  /// The rounding mode of the datapath's narrowing stages.
  fixed::RoundingMode rounding() const { return mode_; }

 private:
  fixed::FixedFormat fmt_;
  std::vector<fixed::Fixed> weights_;
  fixed::Fixed threshold_;
  fixed::RoundingMode mode_;
  fixed::AccumulatorMode acc_;
};

}  // namespace ldafp::core
