#include "core/constraints.h"

#include <cmath>

#include "support/error.h"

namespace ldafp::core {
namespace {

/// Tightens `hi` (an upper bound for w >= 0) with the constraint
/// w * c <= bound, where bound >= 0.
void tighten_pos_le(double c, double bound, double& hi) {
  if (c > 0.0) hi = std::min(hi, bound / c);
}

/// Tightens `hi` with w * c >= bound for w >= 0, where bound <= 0.
void tighten_pos_ge(double c, double bound, double& hi) {
  if (c < 0.0) hi = std::min(hi, bound / c);
}

/// Tightens `lo` (a lower bound for w <= 0) with w * c <= bound,
/// bound >= 0.
void tighten_neg_le(double c, double bound, double& lo) {
  if (c < 0.0) lo = std::max(lo, bound / c);
}

/// Tightens `lo` with w * c >= bound for w <= 0, bound <= 0.
void tighten_neg_ge(double c, double bound, double& lo) {
  if (c > 0.0) lo = std::max(lo, bound / c);
}

}  // namespace

opt::Interval feasible_weight_interval(std::size_t m,
                                       const stats::TwoClassModel& model,
                                       double beta,
                                       const fixed::FixedFormat& fmt) {
  LDAFP_CHECK(m < model.class_a.dim(), "feature index out of range");
  LDAFP_CHECK(beta >= 0.0, "beta must be non-negative");
  const double lo_limit = fmt.min_value();   // -2^{K-1}  (< 0)
  const double hi_limit = fmt.max_value();   // 2^{K-1} - 2^-F  (>= 0)

  double hi = hi_limit;  // bound for the w >= 0 branch
  double lo = lo_limit;  // bound for the w <= 0 branch
  for (const stats::GaussianModel* cls : {&model.class_a, &model.class_b}) {
    const double mu = cls->mu()[m];
    const double sd = cls->marginal_sigma(m);
    // w >= 0: |w| = w.
    //   w*(mu - beta*sd) >= lo_limit  and  w*(mu + beta*sd) <= hi_limit
    tighten_pos_ge(mu - beta * sd, lo_limit, hi);
    tighten_pos_le(mu + beta * sd, hi_limit, hi);
    // w <= 0: |w| = -w.
    //   w*(mu + beta*sd) >= lo_limit  and  w*(mu - beta*sd) <= hi_limit
    tighten_neg_ge(mu + beta * sd, lo_limit, lo);
    tighten_neg_le(mu - beta * sd, hi_limit, lo);
  }
  // Zero always satisfies Eq. 18, so the branches join into one interval.
  hi = std::max(hi, 0.0);
  lo = std::min(lo, 0.0);
  return opt::Interval{lo, hi};
}

opt::Box feasible_weight_box(const stats::TwoClassModel& model, double beta,
                             const fixed::FixedFormat& fmt) {
  const std::size_t dim = model.class_a.dim();
  std::vector<opt::Interval> dims;
  dims.reserve(dim);
  for (std::size_t m = 0; m < dim; ++m) {
    dims.push_back(feasible_weight_interval(m, model, beta, fmt));
  }
  return opt::Box(std::move(dims));
}

bool satisfies_product_constraints(const linalg::Vector& w,
                                   const stats::TwoClassModel& model,
                                   double beta, const fixed::FixedFormat& fmt,
                                   double tol) {
  LDAFP_CHECK(tol >= 0.0, "tolerance must be non-negative");
  for (std::size_t m = 0; m < w.size(); ++m) {
    for (const stats::GaussianModel* cls :
         {&model.class_a, &model.class_b}) {
      const stats::Interval iv = cls->product_interval(w[m], m, beta);
      if (iv.lo < fmt.min_value() - tol) return false;
      if (iv.hi > fmt.max_value() + tol) return false;
    }
  }
  return true;
}

bool satisfies_projection_constraints(const linalg::Vector& w,
                                      const stats::TwoClassModel& model,
                                      double beta,
                                      const fixed::FixedFormat& fmt,
                                      double tol) {
  LDAFP_CHECK(tol >= 0.0, "tolerance must be non-negative");
  for (const stats::GaussianModel* cls : {&model.class_a, &model.class_b}) {
    const stats::Interval iv = cls->projection_interval(w, beta);
    if (iv.lo < fmt.min_value() - tol) return false;
    if (iv.hi > fmt.max_value() + tol) return false;
  }
  return true;
}

bool is_feasible_weight(const linalg::Vector& w,
                        const stats::TwoClassModel& model, double beta,
                        const fixed::FixedFormat& fmt, double tol) {
  return satisfies_product_constraints(w, model, beta, fmt, tol) &&
         satisfies_projection_constraints(w, model, beta, fmt, tol);
}

opt::Interval initial_t_interval(const linalg::Vector& mean_diff,
                                 const opt::Box& w_box) {
  LDAFP_CHECK(mean_diff.size() == w_box.size(),
              "t interval dimension mismatch");
  double lo = 0.0;
  double hi = 0.0;
  for (std::size_t m = 0; m < mean_diff.size(); ++m) {
    const double d = mean_diff[m];
    const double a = d * w_box[m].lo;
    const double b = d * w_box[m].hi;
    lo += std::min(a, b);
    hi += std::max(a, b);
  }
  return opt::Interval{lo, hi};
}

}  // namespace ldafp::core
