// LDA-FP's anti-overflow constraints (paper Eqs. 18 and 20) and the
// closed-form reduction of the per-element constraints to interval bounds.
//
// Key observation (DESIGN.md §5): each of the four Eq. 18 inequalities for
// feature m involves only w_m and |w_m|, is satisfied at w_m = 0, and is
// monotone in |w_m| on each sign branch — so the Eq. 18 feasible set for
// w_m is a single interval [lo_m, hi_m] containing 0, computable exactly.
// This turns Eq. 18 into box constraints for both the convex relaxation
// and grid enumeration.
#pragma once

#include "fixed/format.h"
#include "linalg/vector.h"
#include "opt/box.h"
#include "stats/gaussian_model.h"

namespace ldafp::core {

/// Exact feasible interval for w_m under Eq. 18 (both classes) intersected
/// with the format's representable range.  Always contains 0.
opt::Interval feasible_weight_interval(std::size_t m,
                                       const stats::TwoClassModel& model,
                                       double beta,
                                       const fixed::FixedFormat& fmt);

/// Box of feasible_weight_interval over all features — the w-part of the
/// branch-and-bound root box (Eq. 28 tightened by Eq. 18).
opt::Box feasible_weight_box(const stats::TwoClassModel& model, double beta,
                             const fixed::FixedFormat& fmt);

/// Direct check of the four Eq. 18 inequalities for every feature, with
/// slack tolerance `tol` (>= 0).
bool satisfies_product_constraints(const linalg::Vector& w,
                                   const stats::TwoClassModel& model,
                                   double beta, const fixed::FixedFormat& fmt,
                                   double tol = 0.0);

/// Direct check of the four Eq. 20 projection inequalities.
bool satisfies_projection_constraints(const linalg::Vector& w,
                                      const stats::TwoClassModel& model,
                                      double beta,
                                      const fixed::FixedFormat& fmt,
                                      double tol = 0.0);

/// Both Eq. 18 and Eq. 20.
bool is_feasible_weight(const linalg::Vector& w,
                        const stats::TwoClassModel& model, double beta,
                        const fixed::FixedFormat& fmt, double tol = 0.0);

/// Initial interval for the auxiliary variable t = (μ_A − μ_B)ᵀ w
/// (Eq. 29), computed from the w box via interval arithmetic (tighter
/// than the paper's L1-norm bound when Eq. 18 already shrinks the box).
opt::Interval initial_t_interval(const linalg::Vector& mean_diff,
                                 const opt::Box& w_box);

}  // namespace ldafp::core
