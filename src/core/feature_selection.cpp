#include "core/feature_selection.h"

#include "linalg/cholesky.h"
#include "linalg/ops.h"
#include "stats/descriptive.h"
#include "support/error.h"

namespace ldafp::core {
namespace {

/// J(S) = d_Sᵀ (S_W,S + ridge·I)⁻¹ d_S for the subset S.
double subset_criterion(const linalg::Matrix& sw, const linalg::Vector& d,
                        const std::vector<std::size_t>& subset,
                        double ridge) {
  const std::size_t k = subset.size();
  linalg::Matrix sub(k, k);
  linalg::Vector dsub(k);
  for (std::size_t i = 0; i < k; ++i) {
    dsub[i] = d[subset[i]];
    for (std::size_t j = 0; j < k; ++j) {
      sub(i, j) = sw(subset[i], subset[j]);
    }
    sub(i, i) += ridge;
  }
  const linalg::Vector x = linalg::solve_spd_or_lu(sub, dsub);
  return linalg::dot(dsub, x);
}

}  // namespace

FeatureSelectionResult select_features(const TrainingSet& data,
                                       std::size_t k) {
  LDAFP_CHECK(data.valid(), "training set must have samples in both classes");
  LDAFP_CHECK(k >= 1, "must select at least one feature");
  const std::size_t dim = data.dim();
  k = std::min(k, dim);

  const stats::TwoClassModel model = fit_two_class_model(data);
  const linalg::Matrix sw = model.within_class_scatter();
  const linalg::Vector d = model.mean_difference();
  double trace = 0.0;
  for (std::size_t i = 0; i < dim; ++i) trace += sw(i, i);
  const double ridge =
      1e-8 * std::max(trace / static_cast<double>(dim), 1e-300);

  FeatureSelectionResult result;
  std::vector<bool> used(dim, false);
  for (std::size_t step = 0; step < k; ++step) {
    std::size_t best = dim;
    double best_value = -1.0;
    for (std::size_t m = 0; m < dim; ++m) {
      if (used[m]) continue;
      std::vector<std::size_t> candidate = result.selected;
      candidate.push_back(m);
      const double value = subset_criterion(sw, d, candidate, ridge);
      if (value > best_value) {
        best_value = value;
        best = m;
      }
    }
    if (best == dim) break;
    used[best] = true;
    result.selected.push_back(best);
    result.criterion_path.push_back(best_value);
  }
  return result;
}

TrainingSet project_features(const TrainingSet& data,
                             const std::vector<std::size_t>& selected) {
  LDAFP_CHECK(!selected.empty(), "selection must be non-empty");
  for (const std::size_t m : selected) {
    LDAFP_CHECK(m < data.dim(), "selected feature index out of range");
  }
  auto project = [&](const std::vector<linalg::Vector>& samples) {
    std::vector<linalg::Vector> out;
    out.reserve(samples.size());
    for (const auto& x : samples) {
      linalg::Vector y(selected.size());
      for (std::size_t i = 0; i < selected.size(); ++i) {
        y[i] = x[selected[i]];
      }
      out.push_back(std::move(y));
    }
    return out;
  };
  TrainingSet out;
  out.class_a = project(data.class_a);
  out.class_b = project(data.class_b);
  return out;
}

}  // namespace ldafp::core
