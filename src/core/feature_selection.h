// Greedy feature (channel) selection for the fixed-point classifier.
//
// Every feature costs the implant a MAC cycle, a weight-ROM word, and an
// acquisition channel, so pruning features attacks the same power budget
// the paper attacks with word length — the two compose (select channels,
// then train LDA-FP on the survivors).  Selection is classic greedy
// forward search on the Fisher separation
//     J(S) = d_Sᵀ (S_W,S)⁻¹ d_S,
// the multivariate signal-to-noise of the selected subset S (the
// infinite-data optimum of the paper's Eq. 10 objective restricted
// to S).  J is monotone in S, so the reported per-step criterion traces
// the accuracy/channel-count frontier.
#pragma once

#include <vector>

#include "core/training_set.h"
#include "linalg/vector.h"

namespace ldafp::core {

/// Selection outcome.
struct FeatureSelectionResult {
  /// Selected feature indices, in the order the greedy search added them.
  std::vector<std::size_t> selected;
  /// J(S) after each addition: criterion_path[i] is the separation with
  /// the first i+1 features.
  std::vector<double> criterion_path;

  /// Final criterion value (0 when nothing was selected).
  double criterion() const {
    return criterion_path.empty() ? 0.0 : criterion_path.back();
  }
};

/// Greedily selects up to `k` features.  A small ridge stabilizes the
/// subset-scatter inverses.  Throws InvalidArgumentError on invalid data
/// or k == 0.
FeatureSelectionResult select_features(const TrainingSet& data,
                                       std::size_t k);

/// Restriction of a training set to the selected features (in `selected`
/// order).
TrainingSet project_features(const TrainingSet& data,
                             const std::vector<std::size_t>& selected);

}  // namespace ldafp::core
