#include "core/format_policy.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "support/error.h"

namespace ldafp::core {

FormatChoice choose_format(const TrainingSet& data, int word_length,
                           double beta, int integer_bits) {
  LDAFP_CHECK(data.valid(), "training set must have samples in both classes");
  LDAFP_CHECK(word_length >= 1, "word length must be >= 1");
  LDAFP_CHECK(integer_bits >= 1 && integer_bits <= word_length,
              "need 1 <= integer_bits <= word_length");
  LDAFP_CHECK(beta >= 0.0, "beta must be non-negative");

  const fixed::FixedFormat fmt(integer_bits, word_length - integer_bits);

  // Worst-case magnitude any feature can reach: β-confidence envelope of
  // the fitted per-class Gaussians, and the observed sample extremes.
  const stats::TwoClassModel model = fit_two_class_model(data);
  double reach = 0.0;
  const std::size_t dim = data.dim();
  for (std::size_t m = 0; m < dim; ++m) {
    for (const stats::GaussianModel* cls :
         {&model.class_a, &model.class_b}) {
      const double mu = cls->mu()[m];
      const double sd = cls->marginal_sigma(m);
      reach = std::max(reach, std::fabs(mu) + beta * sd);
    }
  }
  std::vector<linalg::Vector> all = data.class_a;
  all.insert(all.end(), data.class_b.begin(), data.class_b.end());
  const stats::FeatureRange range = stats::feature_range(all);
  reach = std::max({reach, range.min.norm_inf(), range.max.norm_inf()});

  FormatChoice choice{fmt, 1.0};
  if (reach > 0.0) {
    // Largest power of two with scale * reach <= min(|min_value|,
    // max_value); use the max side (smaller) so both signs fit.
    const double budget = std::min(-fmt.min_value(), fmt.max_value());
    const int exponent =
        static_cast<int>(std::floor(std::log2(budget / reach)));
    choice.feature_scale = std::ldexp(1.0, exponent);
  }
  return choice;
}

TrainingSet apply_format(const TrainingSet& data,
                         const FormatChoice& choice) {
  return quantize_training_set(
      scale_training_set(data, choice.feature_scale), choice.format);
}

}  // namespace ldafp::core
