// Word-length split policy: choosing QK.F and a feature pre-scale.
//
// The paper's experiments sweep the total word length W = K + F but do
// not publish the K/F split or the feature scaling.  This module fixes
// our documented policy (DESIGN.md §5):
//  * the caller picks K (default 2: one sign bit plus one magnitude bit
//    of integer headroom for products and the projection),
//  * features are pre-scaled by one global power of two chosen so every
//    feature's β-confidence interval AND observed sample range fit the
//    representable range — the "careful scaling" step the paper assigns
//    to preprocessing (Sec. 3).
// A power of two is free in hardware (bit shift) and keeps the scale
// exactly representable, so it cannot add rounding error of its own.
#pragma once

#include "core/training_set.h"
#include "fixed/format.h"

namespace ldafp::core {

/// A chosen format plus the feature pre-scale to apply before
/// quantization.
struct FormatChoice {
  fixed::FixedFormat format;
  double feature_scale = 1.0;  ///< multiply features by this (power of 2)
};

/// Picks QK.F with the given total word length and integer bits, and the
/// largest power-of-two feature scale under which all features fit (by
/// the β-confidence model *and* the observed min/max).
/// Requires 1 <= integer_bits <= word_length.
FormatChoice choose_format(const TrainingSet& data, int word_length,
                           double beta, int integer_bits = 2);

/// Applies a FormatChoice: scales the features then rounds them onto the
/// grid (Algorithm 1 step 1).
TrainingSet apply_format(const TrainingSet& data, const FormatChoice& choice);

}  // namespace ldafp::core
