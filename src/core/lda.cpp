#include "core/lda.h"

#include <cmath>

#include "core/constraints.h"
#include "fixed/grid.h"
#include "linalg/ops.h"
#include "stats/descriptive.h"
#include "support/error.h"

namespace ldafp::core {

const char* to_string(LdaGainPolicy policy) {
  switch (policy) {
    case LdaGainPolicy::kUnitNorm: return "unit-norm";
    case LdaGainPolicy::kMaxRange: return "max-range";
    case LdaGainPolicy::kOverflowAware: return "overflow-aware";
  }
  return "?";
}

namespace {

/// The shared back half of both fit_lda overloads: ridge-stabilized
/// S_W⁻¹(μ_A − μ_B), unit-normalized, with the Eq. 12 threshold.
LdaModel fit_from_scatter(const linalg::Vector& mu_a,
                          const linalg::Vector& mu_b, linalg::Matrix sw) {
  // Ridge proportional to the average eigenvalue keeps the solve stable
  // when features are collinear (quantized data often is).
  double trace = 0.0;
  for (std::size_t i = 0; i < sw.rows(); ++i) trace += sw(i, i);
  const double ridge =
      1e-10 * std::max(trace / static_cast<double>(sw.rows()), 1e-300);
  for (std::size_t i = 0; i < sw.rows(); ++i) sw(i, i) += ridge;

  const linalg::Vector diff = mu_a - mu_b;
  linalg::Vector w = linalg::solve_spd_or_lu(sw, diff);
  const double norm = w.norm2();
  LDAFP_CHECK(norm > 0.0, "LDA produced a zero weight vector "
                          "(identical class means?)");
  w /= norm;

  LdaModel model;
  model.threshold = 0.5 * (linalg::dot(w, mu_a) + linalg::dot(w, mu_b));
  model.weights = std::move(w);
  model.mu_a = mu_a;
  model.mu_b = mu_b;
  return model;
}

}  // namespace

LdaModel fit_lda(const TrainingSet& data,
                 stats::CovarianceEstimator estimator) {
  LDAFP_CHECK(data.valid(), "training set must have samples in both classes");
  const linalg::Vector mu_a = stats::sample_mean(data.class_a);
  const linalg::Vector mu_b = stats::sample_mean(data.class_b);
  const linalg::Matrix sigma_a =
      stats::estimate_covariance(data.class_a, mu_a, estimator);
  const linalg::Matrix sigma_b =
      stats::estimate_covariance(data.class_b, mu_b, estimator);
  return fit_from_scatter(mu_a, mu_b,
                          stats::within_class_scatter(sigma_a, sigma_b));
}

LdaModel fit_lda(const stats::TwoClassModel& model_stats) {
  return fit_from_scatter(model_stats.class_a.mu(), model_stats.class_b.mu(),
                          model_stats.within_class_scatter());
}

double lda_pow2_gain(const LdaModel& model,
                     const stats::TwoClassModel& model_stats, double beta,
                     const fixed::FixedFormat& fmt, LdaGainPolicy policy) {
  if (policy == LdaGainPolicy::kUnitNorm) return 1.0;

  const double max_abs_w = model.weights.norm_inf();
  LDAFP_CHECK(max_abs_w > 0.0, "zero weight vector");
  // Largest power of two with gain * max|w| <= max_value.
  const double limit = fmt.max_value() / max_abs_w;
  int exponent = static_cast<int>(std::floor(std::log2(limit)));
  double gain = std::ldexp(1.0, exponent);
  if (policy == LdaGainPolicy::kMaxRange) return gain;

  // Overflow-aware: back the gain off until the scaled weights satisfy
  // the Eq. 18/20 confidence constraints.  The constraints shrink
  // homogeneously with the gain, so halving terminates.  Stop once the
  // weights become smaller than one grid step — further shrinking only
  // rounds them all to zero anyway.
  const double floor_gain = fmt.resolution() / max_abs_w;
  while (gain > floor_gain) {
    linalg::Vector scaled = model.weights;
    scaled *= gain;
    if (is_feasible_weight(scaled, model_stats, beta, fmt)) break;
    gain *= 0.5;
  }
  return gain;
}

FixedClassifier quantize_lda(const LdaModel& model,
                             const stats::TwoClassModel& model_stats,
                             double beta, const fixed::FixedFormat& fmt,
                             LdaGainPolicy policy, fixed::RoundingMode mode) {
  const double gain = lda_pow2_gain(model, model_stats, beta, fmt, policy);
  linalg::Vector scaled = model.weights;
  scaled *= gain;
  const linalg::Vector rounded = fixed::snap_to_grid(scaled, fmt, mode);
  // The threshold scales with the same gain, then is recomputed from the
  // *rounded* weights so the boundary stays centered between the class
  // means (Eq. 12 with the quantized w).
  const double threshold =
      0.5 * (linalg::dot(rounded, model.mu_a) +
             linalg::dot(rounded, model.mu_b));
  return FixedClassifier(fmt, rounded, threshold, mode);
}

}  // namespace ldafp::core
