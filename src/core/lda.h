// Conventional linear discriminant analysis (paper Sec. 2) and its
// round-after-training fixed-point variant — the baseline LDA-FP is
// compared against in Tables 1 and 2.
#pragma once

#include "core/classifier.h"
#include "core/training_set.h"
#include "fixed/format.h"
#include "linalg/vector.h"
#include "stats/gaussian_model.h"

namespace ldafp::core {

/// Result of a conventional LDA fit.
struct LdaModel {
  linalg::Vector weights;   ///< w ∝ S_W⁻¹(μ_A − μ_B), normalized ‖w‖₂ = 1
  double threshold = 0.0;   ///< wᵀ(μ_A + μ_B)/2  (Eq. 12)
  linalg::Vector mu_a;
  linalg::Vector mu_b;

  /// Floating-point classifier view.
  LinearClassifier classifier() const {
    return LinearClassifier(weights, threshold);
  }
};

/// Fits conventional LDA: w = S_W⁻¹ (μ_A − μ_B) (Eq. 11) via Cholesky
/// (LU fallback), normalized to unit L2 length.  When S_W is singular a
/// small ridge (relative to trace) is added, mirroring standard practice.
/// The covariance estimator defaults to the paper's empirical one;
/// Ledoit-Wolf shrinkage helps small-sample regimes like the BCI set.
/// Throws InvalidArgumentError on an invalid training set.
LdaModel fit_lda(const TrainingSet& data,
                 stats::CovarianceEstimator estimator =
                     stats::CovarianceEstimator::kEmpirical);

/// Fits conventional LDA directly from the two-class Gaussian picture —
/// no pass over the samples, so sufficient statistics maintained
/// incrementally (stats::StreamingTwoClass) train in O(M³) regardless
/// of how many samples produced them.  Identical ridge and
/// normalization as the sample-based overload: feeding it the model
/// fitted from a sample set yields the same LdaModel bit for bit.
LdaModel fit_lda(const stats::TwoClassModel& model_stats);

/// How the float LDA weight vector is rescaled before rounding to the
/// grid.  A scalar gain on w (threshold scaled alongside) leaves the
/// floating-point decision unchanged, so the baseline gets to pick the
/// most favourable one; power-of-two gains keep the hardware story clean
/// (a barrel shift, not a multiplier).
enum class LdaGainPolicy {
  /// No rescale: round the unit-norm vector directly.  The naive
  /// baseline; collapses to all-zero weights once 2^-F > max|w|·2.
  kUnitNorm,
  /// Largest power-of-two gain keeping every weight representable.
  /// Maximizes resolution but ignores overflow of the projection.
  kMaxRange,
  /// Largest power-of-two gain that also keeps the Eq. 18 / Eq. 20
  /// confidence intervals inside the format range — the strongest
  /// conventional baseline ("careful manual scaling"); the default used
  /// for Tables 1 and 2.
  kOverflowAware,
};

/// Short display name of a gain policy.
const char* to_string(LdaGainPolicy policy);

/// The conventional path to a fixed-point classifier (paper Sec. 5
/// item (i)): fit in floating point, rescale per `policy`, round weights
/// and threshold to the format grid.  `model_stats` (per-class Gaussians
/// fitted from the quantized training data) and `beta` are used by the
/// overflow-aware policy; they are ignored by the other policies.
FixedClassifier quantize_lda(const LdaModel& model,
                             const stats::TwoClassModel& model_stats,
                             double beta, const fixed::FixedFormat& fmt,
                             LdaGainPolicy policy =
                                 LdaGainPolicy::kOverflowAware,
                             fixed::RoundingMode mode =
                                 fixed::RoundingMode::kNearestEven);

/// The power-of-two gain quantize_lda applies before rounding (exposed
/// for tests and the Figure 4 bench).
double lda_pow2_gain(const LdaModel& model,
                     const stats::TwoClassModel& model_stats, double beta,
                     const fixed::FixedFormat& fmt, LdaGainPolicy policy);

}  // namespace ldafp::core
