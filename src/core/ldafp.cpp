#include "core/ldafp.h"

#include <atomic>
#include <cmath>
#include <limits>

#include "core/constraints.h"
#include "core/lda.h"
#include "fixed/grid.h"
#include "linalg/eigen_sym.h"
#include "stats/normal.h"
#include "support/error.h"
#include "support/log.h"
#include "support/str.h"
#include "support/timer.h"

namespace ldafp::core {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Raw grid index of a grid-aligned value (value * 2^F).
std::int64_t grid_index(double value, const fixed::FixedFormat& fmt) {
  return static_cast<std::int64_t>(
      std::llround(std::ldexp(value, fmt.frac_bits())));
}

/// Number of grid points in a grid-aligned interval.
std::int64_t aligned_count(const opt::Interval& iv,
                           const fixed::FixedFormat& fmt) {
  if (iv.empty()) return 0;
  return grid_index(iv.hi, fmt) - grid_index(iv.lo, fmt) + 1;
}

/// The branch-and-bound problem: variables (w_1..w_M, t), objective
/// wᵀS_W w / t², w restricted to the QK.F grid, t = (μ_A-μ_B)ᵀw.
class LdaFpSearchProblem : public opt::BnbProblem {
 public:
  LdaFpSearchProblem(const stats::TwoClassModel& model, linalg::Matrix sw,
                     const fixed::FixedFormat& fmt, double beta,
                     const LdaFpOptions& options, double root_t_width)
      : model_(model),
        sw_(std::move(sw)),
        mean_diff_(model.mean_difference()),
        fmt_(fmt),
        beta_(beta),
        options_(options),
        solver_(options.barrier),
        min_t_width_(options.min_t_width_rel * root_t_width) {
    dim_ = mean_diff_.size();
    // λ_min(S_W) powers the degenerate-t secondary bound: any non-zero
    // grid point has ‖w‖₂ >= resolution, so cost >= λ_min·res²/η_sup.
    const linalg::SymmetricEigen eig = linalg::eigen_symmetric(sw_);
    lambda_min_ = std::max(eig.eigenvalues[0], 0.0);
    // Build the tree-invariant relaxation structure once (DESIGN.md §10):
    // Q = S_W, the two t-interval rows (per-node right-hand sides), and
    // the four Eq. 20 SOC cones.  Every node view shares it by pointer.
    opt::ConvexProblem builder(sw_);
    builder.add_linear({mean_diff_, 0.0});    // dᵀw <= u_t (rhs per node)
    builder.add_linear({-mean_diff_, 0.0});   // -dᵀw <= -l_t (rhs per node)
    // Eq. 20: four SOC constraints.  The smoothing eps slightly tightens
    // each cone, so the right-hand side is loosened by β√eps to keep
    // every truly feasible w inside the relaxation (bound validity).
    const double eps = 1e-12;
    const double slack = beta_ * std::sqrt(eps);
    for (const stats::GaussianModel* cls :
         {&model_.class_a, &model_.class_b}) {
      builder.add_soc({beta_, cls->sigma(), -cls->mu(),
                       -fmt_.min_value() + slack, eps});
      builder.add_soc({beta_, cls->sigma(), cls->mu(),
                       fmt_.max_value() + slack, eps});
    }
    structure_ = builder.share_structure();
  }

  std::size_t relaxations_solved() const { return relaxations_.load(); }

  opt::NodeBounds bound(const opt::Box& box) override {
    return bound(box, opt::BoundContext{});
  }

  opt::NodeBounds bound(const opt::Box& box,
                        const opt::BoundContext& ctx) override {
    opt::NodeBounds out;
    const opt::Interval tv = box[dim_];
    const double eta_sup = std::max(tv.lo * tv.lo, tv.hi * tv.hi);
    if (eta_sup <= 0.0) {
      out.lower = kInf;  // t == 0 only: no classifier lives here
      return out;
    }
    const double res = fmt_.resolution();
    const double secondary = lambda_min_ * res * res / eta_sup;

    const opt::ConvexProblem relaxation = build_relaxation(box);
    relaxations_.fetch_add(1, std::memory_order_relaxed);
    opt::BarrierResult solve =
        solver_.solve(relaxation, make_seed(ctx, box), &thread_workspace());
    out.stats.relaxations = 1;
    out.stats.newton_iterations =
        static_cast<std::uint64_t>(solve.newton_iterations);
    out.stats.factorizations =
        static_cast<std::uint64_t>(solve.factorizations);
    out.stats.phase1_skips = solve.phase1_skipped ? 1 : 0;
    if (solve.status == opt::SolveStatus::kInfeasible) {
      out.lower = kInf;
      return out;
    }
    double relax_lower = 0.0;  // wᵀS_W w >= 0 always holds
    if (solve.status == opt::SolveStatus::kOptimal) {
      relax_lower = std::max(solve.lower_bound, 0.0);
    }
    out.lower = std::max(relax_lower / eta_sup, secondary);

    // Upper-bound heuristic (paper's Eq. 27 step): the relaxation
    // minimizer is independent of η, so reuse it — round to the grid and
    // evaluate the exact cost.
    if (solve.x.size() == dim_) {
      const auto cand = try_candidate(solve.x);
      if (cand.has_value()) {
        out.candidate = cand->first;
        out.candidate_value = cand->second;
      }
      // Hand the relaxation optimum back to the driver: it becomes the
      // children's warm start (BoundContext).
      out.relaxation_point = std::move(solve.x);
    }
    return out;
  }

  bool is_terminal(const opt::Box& box) const override {
    std::int64_t product = 1;
    for (std::size_t m = 0; m < dim_; ++m) {
      const std::int64_t count = aligned_count(box[m], fmt_);
      if (count == 0) return true;  // empty: nothing to enumerate
      if (product > static_cast<std::int64_t>(options_.max_enum_points) /
                        count) {
        return false;  // saturating multiply would overflow the cap
      }
      product *= count;
    }
    return product <= static_cast<std::int64_t>(options_.max_enum_points);
  }

  opt::NodeBounds solve_terminal(const opt::Box& box) override {
    opt::NodeBounds out;
    out.lower = kInf;
    std::vector<std::vector<double>> axes(dim_);
    for (std::size_t m = 0; m < dim_; ++m) {
      axes[m] = fixed::grid_points(
          box[m].lo, box[m].hi, fmt_,
          static_cast<std::int64_t>(options_.max_enum_points));
      if (axes[m].empty()) return out;
    }
    const opt::Interval tv = box[dim_];
    const double t_tol = 1e-9 * (1.0 + std::fabs(tv.lo) + std::fabs(tv.hi));

    linalg::Vector w(dim_);
    std::vector<std::size_t> idx(dim_, 0);
    for (std::size_t m = 0; m < dim_; ++m) w[m] = axes[m][0];
    while (true) {
      const double t = linalg::dot(mean_diff_, w);
      if (t >= tv.lo - t_tol && t <= tv.hi + t_tol && t != 0.0 &&
          satisfies_projection_constraints(w, model_, beta_, fmt_, 1e-9)) {
        const double cost = exact_cost(w, sw_, mean_diff_);
        if (cost < out.candidate_value) {
          out.candidate = w;
          out.candidate_value = cost;
          out.lower = cost;
        }
      }
      // Odometer increment.
      std::size_t m = 0;
      while (m < dim_) {
        if (++idx[m] < axes[m].size()) {
          w[m] = axes[m][idx[m]];
          break;
        }
        idx[m] = 0;
        w[m] = axes[m][0];
        ++m;
      }
      if (m == dim_) break;
    }
    return out;
  }

  std::pair<opt::Box, opt::Box> branch(const opt::Box& box) override {
    const opt::Interval tv = box[dim_];
    // t-first branching: split while the η gap is what dominates the
    // relaxation looseness.
    if (options_.branch_t_first && tv.width() > min_t_width_) {
      bool split_t = tv.lo < 0.0 && tv.hi > 0.0;
      if (!split_t) {
        const double lo2 = tv.lo * tv.lo;
        const double hi2 = tv.hi * tv.hi;
        const double ratio = std::max(lo2, hi2) /
                             std::max(std::min(lo2, hi2), 1e-300);
        split_t = ratio > options_.t_gap_ratio;
      }
      if (split_t) {
        const double point =
            (tv.lo < 0.0 && tv.hi > 0.0) ? 0.0 : tv.mid();
        auto children = box.split(dim_, point);
        tighten_t(children.first);
        tighten_t(children.second);
        return children;
      }
    }

    // Otherwise split the w dimension with the most grid points at its
    // middle grid index, keeping both children grid-aligned and disjoint.
    std::size_t best = 0;
    std::int64_t best_count = 0;
    for (std::size_t m = 0; m < dim_; ++m) {
      const std::int64_t count = aligned_count(box[m], fmt_);
      if (count > best_count) {
        best_count = count;
        best = m;
      }
    }
    LDAFP_CHECK(best_count >= 2, "branch called on an enumerable box");
    const std::int64_t first = grid_index(box[best].lo, fmt_);
    const std::int64_t mid = first + (best_count - 1) / 2;
    const double left_hi = std::ldexp(static_cast<double>(mid),
                                      -fmt_.frac_bits());
    const double right_lo = std::ldexp(static_cast<double>(mid + 1),
                                       -fmt_.frac_bits());
    opt::Box left = box;
    opt::Box right = box;
    left[best].hi = left_hi;
    right[best].lo = right_lo;
    tighten_t(left);
    tighten_t(right);
    return {std::move(left), std::move(right)};
  }

  /// Rounds a relaxation point to the grid, repairs it into the Eq. 18
  /// intervals, verifies full feasibility, optionally polishes, and
  /// returns (w, exact cost).
  std::optional<std::pair<linalg::Vector, double>> try_candidate(
      const linalg::Vector& x) const {
    linalg::Vector w = fixed::snap_to_grid(x, fmt_, options_.rounding);
    // Orient toward class A: the Fisher cost is invariant under w -> -w,
    // but the Eq. 12 decision rule needs t = (μ_A-μ_B)ᵀw > 0.  The search
    // box is restricted to t >= 0, so flip mis-oriented candidates.
    if (linalg::dot(mean_diff_, w) < 0.0) {
      for (std::size_t m = 0; m < dim_; ++m) {
        w[m] = fmt_.round_to_grid(-w[m], options_.rounding);
      }
    }
    for (std::size_t m = 0; m < dim_; ++m) {
      const opt::Interval iv =
          feasible_weight_interval(m, model_, beta_, fmt_);
      w[m] = std::min(std::max(w[m], fixed::grid_ceil(iv.lo, fmt_)),
                      fixed::grid_floor(iv.hi, fmt_));
    }
    if (!satisfies_projection_constraints(w, model_, beta_, fmt_, 1e-9)) {
      return std::nullopt;
    }
    double cost = exact_cost(w, sw_, mean_diff_);
    if (options_.local_search) {
      const auto polished = polish(w, sw_, model_, beta_, fmt_,
                                   options_.local_search_options);
      if (polished.has_value() && polished->cost < cost) {
        w = polished->weights;
        cost = polished->cost;
      }
    }
    if (!std::isfinite(cost)) return std::nullopt;
    return std::make_pair(std::move(w), cost);
  }

 private:
  /// Intersects a child's t-interval with the interval-arithmetic range
  /// of (μ_A-μ_B)ᵀw over its w box (constraint propagation).
  void tighten_t(opt::Box& box) const {
    opt::Box wbox{std::vector<opt::Interval>(dim_)};
    for (std::size_t m = 0; m < dim_; ++m) wbox[m] = box[m];
    const opt::Interval range = initial_t_interval(mean_diff_, wbox);
    box[dim_].lo = std::max(box[dim_].lo, range.lo);
    box[dim_].hi = std::min(box[dim_].hi, range.hi);
  }

  /// Node view over the shared structure: O(m) — only the w box and the
  /// two t-interval right-hand sides differ between nodes.
  opt::ConvexProblem build_relaxation(const opt::Box& box) const {
    opt::Box wbox{std::vector<opt::Interval>(dim_)};
    for (std::size_t m = 0; m < dim_; ++m) wbox[m] = box[m];
    opt::ConvexProblem problem(structure_, std::move(wbox));
    const opt::Interval tv = box[dim_];
    problem.set_linear_rhs(0, tv.hi);    // dᵀw <= u_t
    problem.set_linear_rhs(1, -tv.lo);   // -dᵀw <= -l_t
    return problem;
  }

  /// Warm-start seed for this node: the parent's relaxation optimum
  /// clamped strictly inside the node's w box.  A pure function of
  /// (ctx, box), so it preserves the thread-invariance contract.  The
  /// seed may still violate the node's t rows or a SOC (the solver then
  /// falls back to phase I); clamping only repairs the box part.
  std::optional<linalg::Vector> make_seed(const opt::BoundContext& ctx,
                                          const opt::Box& box) const {
    if (ctx.parent_relaxation == nullptr ||
        ctx.parent_relaxation->size() != dim_) {
      return std::nullopt;
    }
    linalg::Vector seed = *ctx.parent_relaxation;
    const auto clamp_into_box = [&] {
      for (std::size_t m = 0; m < dim_; ++m) {
        const double lo = box[m].lo;
        const double hi = box[m].hi;
        const double width = hi - lo;
        if (width <= 0.0) {
          // Degenerate interval: the solver inflates it centered on the
          // midpoint, so the midpoint stays strictly interior.
          seed[m] = 0.5 * (lo + hi);
          continue;
        }
        const double margin = std::min(1e-7, 0.25 * width);
        seed[m] = std::min(std::max(seed[m], lo + margin), hi - margin);
      }
    };
    clamp_into_box();
    // Repair the t rows: after a t-split the parent's t = dᵀw usually
    // falls outside one child's interval, which would force a cold
    // solve.  Shift along d (the minimum-norm correction) so t lands
    // strictly inside, then re-clamp — if the clamp pushes t back out,
    // the solver's phase I fallback still guarantees correctness.
    const opt::Interval tv = box[dim_];
    if (tv.width() > 0.0) {
      const double t_now = linalg::dot(mean_diff_, seed);
      const double t_margin = std::min(1e-7, 0.25 * tv.width());
      const double t_target =
          std::min(std::max(t_now, tv.lo + t_margin), tv.hi - t_margin);
      if (t_target != t_now) {
        const double dd = linalg::dot(mean_diff_, mean_diff_);
        if (dd > 0.0) {
          seed.axpy((t_target - t_now) / dd, mean_diff_);
          clamp_into_box();
        }
      }
    }
    return seed;
  }

  /// One solver workspace per thread: bound() may run concurrently from
  /// speculation workers, and each solve needs exclusive scratch.
  static opt::SolverWorkspace& thread_workspace() {
    static thread_local opt::SolverWorkspace ws;
    return ws;
  }

  const stats::TwoClassModel& model_;
  linalg::Matrix sw_;
  linalg::Vector mean_diff_;
  fixed::FixedFormat fmt_;
  double beta_;
  LdaFpOptions options_;
  opt::BarrierSolver solver_;
  double min_t_width_;
  std::size_t dim_ = 0;
  double lambda_min_ = 0.0;
  /// Immutable relaxation structure shared by every node view.
  std::shared_ptr<const opt::ProblemStructure> structure_;
  /// bound() may run concurrently from the solver's speculation workers
  /// (the BnbProblem concurrency contract); this telemetry counter is
  /// the class's only mutable state, so an atomic keeps it honest.
  std::atomic<std::size_t> relaxations_{0};
};

}  // namespace

Status LdaFpOptions::validate() const {
  if (!(rho >= 0.0 && rho < 1.0)) {
    return Status::invalid("ldafp: confidence level rho must lie in [0, 1)");
  }
  if (!(t_gap_ratio > 0.0)) {
    return Status::invalid("ldafp: t_gap_ratio must be positive");
  }
  if (!(min_t_width_rel >= 0.0)) {
    return Status::invalid("ldafp: min_t_width_rel must be non-negative");
  }
  if (max_enum_points < 1) {
    return Status::invalid("ldafp: max_enum_points must be at least 1");
  }
  if (const Status s = bnb.validate(); !s.ok()) return s;
  return barrier.validate();
}

LdaFpTrainer::LdaFpTrainer(fixed::FixedFormat format, LdaFpOptions options)
    : format_(format), options_(std::move(options)) {
  throw_if_error(options_.validate());
}

LdaFpResult LdaFpTrainer::train(const TrainingSet& data) const {
  LDAFP_CHECK(data.valid(), "training set must have samples in both classes");
  support::WallTimer timer;
  // Tracing seam: pure observation, never consulted by the search, so a
  // sink cannot perturb weights/bounds/counters (tests/obs cross-check).
  obs::Tracer* tracer = obs::tracer_of(options_.bnb.sink);
  obs::ScopedSpan train_span(tracer, "ldafp.train");
  std::optional<obs::ScopedSpan> stage;
  stage.emplace(tracer, "ldafp.prepare");

  // Algorithm 1, steps 1-2: quantize the data, fit the statistics.
  const TrainingSet quantized = quantize_training_set(data, format_);
  const stats::TwoClassModel model =
      fit_two_class_model(quantized, options_.covariance);
  const linalg::Matrix sw = model.within_class_scatter();
  const linalg::Vector mean_diff = model.mean_difference();

  LdaFpResult result;
  result.beta = stats::confidence_beta(options_.rho);

  // Step 3: root box from Eq. 28 tightened by Eq. 18, and Eq. 29 for t.
  opt::Box w_box = feasible_weight_box(model, result.beta, format_);
  for (std::size_t m = 0; m < w_box.size(); ++m) {
    // Grid-aligned hull: keeps every split grid-aligned.
    w_box[m].lo = fixed::grid_ceil(w_box[m].lo, format_);
    w_box[m].hi = fixed::grid_floor(w_box[m].hi, format_);
  }
  // Restrict to t >= 0: the cost is symmetric under w -> -w, and only the
  // t > 0 orientation classifies class A on the correct side of Eq. 12.
  // This also halves the search space.
  opt::Interval t_root = initial_t_interval(mean_diff, w_box);
  t_root.lo = std::max(t_root.lo, 0.0);
  t_root.hi = std::max(t_root.hi, 0.0);

  std::vector<opt::Interval> dims;
  dims.reserve(w_box.size() + 1);
  for (std::size_t m = 0; m < w_box.size(); ++m) dims.push_back(w_box[m]);
  dims.push_back(t_root);
  const opt::Box root(std::move(dims));

  LdaFpSearchProblem problem(model, sw, format_, result.beta, options_,
                             std::max(t_root.width(), 1e-12));
  stage.emplace(tracer, "ldafp.warm_start");

  // Warm-start incumbent from the conventional baseline.
  std::optional<std::pair<linalg::Vector, double>> incumbent;
  if (options_.warm_start_from_lda) {
    try {
      const LdaModel lda = fit_lda(quantized, options_.covariance);
      const FixedClassifier baseline = quantize_lda(
          lda, model, result.beta, format_, LdaGainPolicy::kOverflowAware,
          options_.rounding);
      incumbent = problem.try_candidate(baseline.weights_real());
    } catch (const Error& e) {
      support::log_warn(std::string("LDA warm start failed: ") + e.what());
    }
  }

  // Steps 4-6: the branch-and-bound search.
  opt::BnbOptions bnb = options_.bnb;
  if (options_.log_progress && !bnb.progress) {
    bnb.progress = [](const opt::BnbResult& s) {
      support::log_info(
          "ldafp: nodes " + std::to_string(s.nodes_processed) +
          ", incumbent " + support::format_double(s.best_value, 6) +
          ", bound " + support::format_double(s.lower_bound, 6) + ", " +
          support::format_double(s.seconds, 1) + "s");
    };
  }
  stage.reset();  // the search traces itself as "bnb.run"
  const opt::BnbSolver solver(bnb);
  result.search = solver.run(problem, root, incumbent);
  result.train_seconds = timer.seconds();

  if (!result.search.best_point.has_value()) return result;  // not found
  result.weights = *result.search.best_point;
  result.cost = result.search.best_value;
  result.threshold =
      0.5 * (linalg::dot(result.weights, model.class_a.mu()) +
             linalg::dot(result.weights, model.class_b.mu()));
  return result;
}

FixedClassifier LdaFpTrainer::make_classifier(
    const LdaFpResult& result) const {
  LDAFP_CHECK(result.found(), "training did not find a feasible classifier");
  return FixedClassifier(format_, result.weights, result.threshold,
                         options_.rounding);
}

}  // namespace ldafp::core
