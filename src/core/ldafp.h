// LDA-FP: training a fixed-point LDA classifier by global optimization
// (the paper's primary contribution, Secs. 3-4).
//
// The trainer implements Algorithm 1:
//   1. round the training data to QK.F,
//   2. fit the per-class Gaussian statistics,
//   3. build the (w, t) root box from Eqs. 28-29 (tightened by the
//      closed-form Eq. 18 intervals),
//   4. run best-first branch-and-bound; each node is bounded by the
//      convex SOCP relaxation (Eq. 25) solved with the barrier method,
//      with η = sup t² for the lower bound (Eq. 26) and the relaxation
//      solution rounded onto the grid for the upper bound,
//   5. finish small boxes by exact enumeration.
// Heuristics (the paper's undisclosed "additional heuristics", ours
// documented in DESIGN.md §5): warm start from the rounded conventional
// LDA solution, grid coordinate-descent polish of every incumbent,
// t-interval-first branching, grid-aligned box tightening, and anytime
// node/time budgets with a reported optimality gap.
#pragma once

#include <optional>

#include "core/classifier.h"
#include "core/local_search.h"
#include "core/training_set.h"
#include "fixed/format.h"
#include "opt/barrier_solver.h"
#include "opt/bnb.h"
#include "stats/gaussian_model.h"

namespace ldafp::core {

/// Trainer configuration.
struct LdaFpOptions {
  /// Confidence level ρ of Eq. 16; β = Φ⁻¹(0.5 + 0.5ρ).
  double rho = 0.9999;

  /// Branch-and-bound budgets (node/time/gap).  The defaults prove
  /// optimality on small problems; large problems (e.g. the 42-feature
  /// BCI set) stop at the budget and report the achieved gap.
  /// `bnb.executor` selects the execution resource: the default inline
  /// executor trains single-threaded exactly as before, while
  /// sched::Executor::pooled(N) expands search nodes on N workers with
  /// bit-identical weights, cost, and certified gap (DESIGN.md §9).
  opt::BnbOptions bnb;

  /// Barrier solver tuning for the per-node relaxations.
  opt::BarrierOptions barrier;

  /// Seed the incumbent with the rounded conventional-LDA solution.
  bool warm_start_from_lda = true;

  /// Polish every incumbent candidate by grid coordinate descent.
  bool local_search = true;
  LocalSearchOptions local_search_options;

  /// Branch on t while its interval straddles 0 or sup t²/inf t² exceeds
  /// this ratio (set to +inf to disable t-branching — ablation knob).
  bool branch_t_first = true;
  double t_gap_ratio = 4.0;
  /// Never branch t below this fraction of the root t-interval width.
  double min_t_width_rel = 1e-3;

  /// A box is terminal (exactly enumerated) when the number of grid
  /// points it contains is at most this.
  std::size_t max_enum_points = 2048;

  /// Rounding mode used for data/weight quantization.
  fixed::RoundingMode rounding = fixed::RoundingMode::kNearestEven;

  /// Covariance estimator behind the Eq. 14 class models (empirical =
  /// the paper; Ledoit-Wolf shrinkage stabilizes small-sample fits like
  /// the 42-feature / 112-trial BCI folds).
  stats::CovarianceEstimator covariance =
      stats::CovarianceEstimator::kEmpirical;

  /// Log anytime progress (incumbent cost / bound / nodes) at INFO level
  /// every bnb.progress_interval nodes.  A custom bnb.progress callback,
  /// when set, takes precedence.
  bool log_progress = false;

  /// Checks the trainer knobs plus the nested bnb/barrier options;
  /// called once by the LdaFpTrainer constructor.  The observability
  /// seam rides in `bnb.sink`: when set, train() additionally traces
  /// its stages ("ldafp.train" → prepare / warm_start / bnb.run) and
  /// the search publishes its counters — results stay bit-identical.
  Status validate() const;
};

/// Training outcome.
struct LdaFpResult {
  linalg::Vector weights;        ///< on the QK.F grid, Eq. 18/20 feasible
  double threshold = 0.0;        ///< wᵀ(μ_A + μ_B)/2 on quantized data
  double cost = 0.0;             ///< Fisher cost of `weights` (Eq. 21)
  double beta = 0.0;             ///< the β actually used
  opt::BnbResult search;         ///< branch-and-bound statistics
  double train_seconds = 0.0;

  /// True when a feasible weight vector was found.
  bool found() const { return weights.size() > 0; }
};

/// The LDA-FP trainer for one fixed-point format.
class LdaFpTrainer {
 public:
  explicit LdaFpTrainer(fixed::FixedFormat format,
                        LdaFpOptions options = LdaFpOptions{});

  const fixed::FixedFormat& format() const { return format_; }
  const LdaFpOptions& options() const { return options_; }

  /// Trains on (already feature-scaled) data.  Quantizes the data,
  /// solves the mixed-integer program, returns the optimal grid weights.
  /// Throws InvalidArgumentError on invalid data.
  LdaFpResult train(const TrainingSet& data) const;

  /// The classifier for a training result (throws when !result.found()).
  FixedClassifier make_classifier(const LdaFpResult& result) const;

 private:
  fixed::FixedFormat format_;
  LdaFpOptions options_;
};

}  // namespace ldafp::core
