#include "core/local_search.h"

#include <cmath>
#include <limits>

#include "fixed/grid.h"

namespace ldafp::core {

double exact_cost(const linalg::Vector& w, const linalg::Matrix& sw,
                  const linalg::Vector& mean_diff) {
  const double t = linalg::dot(mean_diff, w);
  if (t == 0.0) return std::numeric_limits<double>::infinity();
  return linalg::quadratic_form(sw, w) / (t * t);
}

std::optional<LocalSearchResult> polish(const linalg::Vector& start,
                                        const linalg::Matrix& sw,
                                        const stats::TwoClassModel& model,
                                        double beta,
                                        const fixed::FixedFormat& fmt,
                                        const LocalSearchOptions& options) {
  if (!fixed::on_grid(start, fmt)) return std::nullopt;
  if (!is_feasible_weight(start, model, beta, fmt, options.feas_tol)) {
    return std::nullopt;
  }
  const linalg::Vector mean_diff = model.mean_difference();
  const double res = fmt.resolution();

  LocalSearchResult result;
  result.weights = start;
  result.cost = exact_cost(start, sw, mean_diff);

  // Per-coordinate Eq. 18 intervals never change, so hoist them.
  std::vector<opt::Interval> bounds;
  bounds.reserve(start.size());
  for (std::size_t m = 0; m < start.size(); ++m) {
    bounds.push_back(feasible_weight_interval(m, model, beta, fmt));
  }

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool improved = false;
    for (std::size_t m = 0; m < result.weights.size(); ++m) {
      double best_value = result.weights[m];
      double best_cost = result.cost;
      for (int p = 0; p < options.max_step_pow; ++p) {
        const double step = res * static_cast<double>(1 << p);
        for (const double delta : {step, -step}) {
          const double cand = result.weights[m] + delta;
          if (cand < bounds[m].lo - options.feas_tol ||
              cand > bounds[m].hi + options.feas_tol) {
            continue;
          }
          if (cand < fmt.min_value() || cand > fmt.max_value()) continue;
          linalg::Vector w = result.weights;
          w[m] = cand;
          const double cost = exact_cost(w, sw, mean_diff);
          if (cost >= best_cost) continue;
          if (!satisfies_projection_constraints(w, model, beta, fmt,
                                                options.feas_tol)) {
            continue;
          }
          best_cost = cost;
          best_value = cand;
        }
      }
      if (best_value != result.weights[m]) {
        result.weights[m] = best_value;
        result.cost = best_cost;
        improved = true;
        ++result.moves;
      }
    }
    ++result.sweeps;
    if (!improved) break;
  }
  return result;
}

}  // namespace ldafp::core
