// Grid coordinate-descent polish for incumbent solutions.
//
// One of the trainer's documented "additional heuristics" (the paper's
// Algorithm 1 mentions such heuristics without detailing them): starting
// from a feasible grid point, greedily move single coordinates by a few
// grid steps while the exact Fisher cost improves and all LDA-FP
// constraints stay satisfied.  This typically closes most of the gap
// between the rounded relaxation solution and the true discrete optimum,
// letting branch-and-bound prune far earlier.
#pragma once

#include <optional>

#include "core/constraints.h"
#include "fixed/format.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/gaussian_model.h"

namespace ldafp::core {

/// Options for the polish loop.
struct LocalSearchOptions {
  int max_sweeps = 50;          ///< full passes over all coordinates
  int max_step_pow = 3;         ///< tries steps of ±1, ±2, ... ±2^(p-1) ulp
  double feas_tol = 1e-9;       ///< slack on constraint checks
};

/// Result of a polish: the improved point and its exact cost.
struct LocalSearchResult {
  linalg::Vector weights;
  double cost = 0.0;
  int sweeps = 0;
  int moves = 0;
};

/// Exact LDA-FP cost wᵀ S_W w / ((μ_A-μ_B)ᵀ w)² with +inf at t = 0.
double exact_cost(const linalg::Vector& w, const linalg::Matrix& sw,
                  const linalg::Vector& mean_diff);

/// Polishes `start` (must already be feasible and on the grid — checked).
/// Returns nullopt when `start` itself is infeasible or off-grid.
std::optional<LocalSearchResult> polish(
    const linalg::Vector& start, const linalg::Matrix& sw,
    const stats::TwoClassModel& model, double beta,
    const fixed::FixedFormat& fmt,
    const LocalSearchOptions& options = LocalSearchOptions{});

}  // namespace ldafp::core
