#include "core/multiclass.h"

#include <cmath>

#include "support/error.h"

namespace ldafp::core {

std::size_t MulticlassSet::dim() const {
  for (const auto& cls : classes) {
    if (!cls.empty()) return cls.front().size();
  }
  return 0;
}

bool MulticlassSet::valid() const {
  if (classes.size() < 2) return false;
  const std::size_t d = dim();
  if (d == 0) return false;
  for (const auto& cls : classes) {
    if (cls.empty()) return false;
    for (const auto& x : cls) {
      if (x.size() != d) return false;
    }
  }
  return true;
}

MulticlassClassifier::MulticlassClassifier(
    std::vector<FixedClassifier> members, std::vector<double> inv_norms)
    : members_(std::move(members)), inv_norms_(std::move(inv_norms)) {
  LDAFP_CHECK(members_.size() >= 2, "need >= 2 member classifiers");
  LDAFP_CHECK(members_.size() == inv_norms_.size(),
              "members/normalizations length mismatch");
}

const FixedClassifier& MulticlassClassifier::member(std::size_t c) const {
  LDAFP_CHECK(c < members_.size(), "class index out of range");
  return members_[c];
}

std::vector<double> MulticlassClassifier::margins(
    const linalg::Vector& x) const {
  std::vector<double> out(members_.size());
  for (std::size_t c = 0; c < members_.size(); ++c) {
    // Datapath projection minus stored threshold, normalized by the
    // per-class constant 1/||w_c||.
    const double y = members_[c].project(x).to_real();
    out[c] = (y - members_[c].threshold_real()) * inv_norms_[c];
  }
  return out;
}

std::size_t MulticlassClassifier::classify(const linalg::Vector& x) const {
  const std::vector<double> m = margins(x);
  std::size_t best = 0;
  for (std::size_t c = 1; c < m.size(); ++c) {
    if (m[c] > m[best]) best = c;
  }
  return best;
}

std::optional<MulticlassClassifier> train_one_vs_rest(
    const MulticlassSet& data, const fixed::FixedFormat& format,
    const LdaFpOptions& options) {
  LDAFP_CHECK(data.valid(), "multiclass set needs >= 2 non-empty classes");
  const LdaFpTrainer trainer(format, options);

  std::vector<FixedClassifier> members;
  std::vector<double> inv_norms;
  members.reserve(data.num_classes());
  for (std::size_t c = 0; c < data.num_classes(); ++c) {
    TrainingSet binary;
    binary.class_a = data.classes[c];
    for (std::size_t other = 0; other < data.num_classes(); ++other) {
      if (other == c) continue;
      binary.class_b.insert(binary.class_b.end(),
                            data.classes[other].begin(),
                            data.classes[other].end());
    }
    const LdaFpResult result = trainer.train(binary);
    if (!result.found()) return std::nullopt;
    members.push_back(trainer.make_classifier(result));
    const double norm = result.weights.norm2();
    inv_norms.push_back(norm > 0.0 ? 1.0 / norm : 0.0);
  }
  return MulticlassClassifier(std::move(members), std::move(inv_norms));
}

double multiclass_error(const MulticlassClassifier& clf,
                        const MulticlassSet& data) {
  std::size_t errors = 0;
  std::size_t total = 0;
  for (std::size_t c = 0; c < data.num_classes(); ++c) {
    for (const auto& x : data.classes[c]) {
      if (clf.classify(x) != c) ++errors;
      ++total;
    }
  }
  LDAFP_CHECK(total > 0, "multiclass set is empty");
  return static_cast<double>(errors) / static_cast<double>(total);
}

}  // namespace ldafp::core
