// One-vs-rest multiclass extension of LDA-FP.
//
// The paper treats binary classification only; many of its motivating
// applications (seizure typing, multi-direction movement decoding) have
// more classes.  This wrapper trains one binary LDA-FP classifier per
// class (class c vs the rest), all sharing one QK.F format, and decides
// by the largest normalized margin.  On chip this is C copies of the
// paper's datapath plus a compare tree; the margin normalization factors
// 1/‖w_c‖₂ are computed at training time and folded into the comparator
// scaling (modeled in floating point here — they are per-class constants,
// not per-sample work).
#pragma once

#include <optional>
#include <vector>

#include "core/classifier.h"
#include "core/ldafp.h"
#include "core/training_set.h"
#include "fixed/format.h"
#include "linalg/vector.h"

namespace ldafp::core {

/// Multiclass training data: one sample list per class.
struct MulticlassSet {
  std::vector<std::vector<linalg::Vector>> classes;

  std::size_t num_classes() const { return classes.size(); }
  std::size_t dim() const;
  /// True when there are >= 2 classes, each non-empty, equal dimension.
  bool valid() const;
};

/// The trained one-vs-rest ensemble.
class MulticlassClassifier {
 public:
  /// One binary classifier + margin normalization per class.
  MulticlassClassifier(std::vector<FixedClassifier> members,
                       std::vector<double> inv_norms);

  std::size_t num_classes() const { return members_.size(); }
  std::size_t dim() const { return members_.front().dim(); }
  const FixedClassifier& member(std::size_t c) const;

  /// Index of the class with the largest normalized datapath margin.
  std::size_t classify(const linalg::Vector& x) const;

  /// All normalized margins (useful for rejection thresholds).
  std::vector<double> margins(const linalg::Vector& x) const;

 private:
  std::vector<FixedClassifier> members_;
  std::vector<double> inv_norms_;
};

/// Trains the ensemble: for each class c, a binary LDA-FP problem with
/// class A = c and class B = all other samples pooled.  Returns nullopt
/// when any member finds no feasible weights.  Options apply to every
/// member (budgets are per member).
std::optional<MulticlassClassifier> train_one_vs_rest(
    const MulticlassSet& data, const fixed::FixedFormat& format,
    const LdaFpOptions& options = LdaFpOptions{});

/// Multiclass error of the ensemble on labeled data (labels are class
/// indices into `data.classes`).
double multiclass_error(const MulticlassClassifier& clf,
                        const MulticlassSet& data);

}  // namespace ldafp::core
