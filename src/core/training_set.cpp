#include "core/training_set.h"

#include "fixed/grid.h"
#include "support/error.h"

namespace ldafp::core {

bool TrainingSet::valid() const {
  if (class_a.empty() || class_b.empty()) return false;
  const std::size_t m = class_a.front().size();
  if (m == 0) return false;
  for (const auto& x : class_a) {
    if (x.size() != m) return false;
  }
  for (const auto& x : class_b) {
    if (x.size() != m) return false;
  }
  return true;
}

TrainingSet quantize_training_set(const TrainingSet& data,
                                  const fixed::FixedFormat& fmt) {
  TrainingSet out;
  out.class_a.reserve(data.class_a.size());
  out.class_b.reserve(data.class_b.size());
  for (const auto& x : data.class_a) {
    out.class_a.push_back(fixed::snap_to_grid(x, fmt));
  }
  for (const auto& x : data.class_b) {
    out.class_b.push_back(fixed::snap_to_grid(x, fmt));
  }
  return out;
}

TrainingSet scale_training_set(const TrainingSet& data, double scale) {
  LDAFP_CHECK(scale > 0.0, "feature scale must be positive");
  TrainingSet out = data;
  for (auto& x : out.class_a) x *= scale;
  for (auto& x : out.class_b) x *= scale;
  return out;
}

stats::TwoClassModel fit_two_class_model(
    const TrainingSet& data, stats::CovarianceEstimator estimator) {
  LDAFP_CHECK(data.valid(), "training set must have samples in both classes");
  return stats::TwoClassModel{
      stats::GaussianModel::fit(data.class_a, estimator),
      stats::GaussianModel::fit(data.class_b, estimator)};
}

}  // namespace ldafp::core
