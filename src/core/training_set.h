// The two-class training data container consumed by both trainers.
#pragma once

#include <vector>

#include "fixed/format.h"
#include "linalg/vector.h"
#include "stats/gaussian_model.h"

namespace ldafp::core {

/// Two sets of feature vectors, one per class (paper Sec. 2 notation:
/// {x_A^(n)} and {x_B^(n)}).
struct TrainingSet {
  std::vector<linalg::Vector> class_a;
  std::vector<linalg::Vector> class_b;

  /// Feature count M (0 for an empty set).
  std::size_t dim() const {
    if (!class_a.empty()) return class_a.front().size();
    if (!class_b.empty()) return class_b.front().size();
    return 0;
  }

  /// True when both classes have at least one sample of equal dimension.
  bool valid() const;
};

/// Rounds every feature of every sample onto the format grid (saturating)
/// — Algorithm 1 step 1, "round the training data to their fixed-point
/// representations".
TrainingSet quantize_training_set(const TrainingSet& data,
                                  const fixed::FixedFormat& fmt);

/// Scales every feature by `scale` (used by the format policy's
/// power-of-two preconditioning).
TrainingSet scale_training_set(const TrainingSet& data, double scale);

/// Fits the per-class Gaussian models (Eq. 14) from the samples.
stats::TwoClassModel fit_two_class_model(
    const TrainingSet& data, stats::CovarianceEstimator estimator =
                                 stats::CovarianceEstimator::kEmpirical);

}  // namespace ldafp::core
