#include "data/bci_synthetic.h"

#include <cmath>

#include "stats/normal.h"
#include "support/error.h"

namespace ldafp::data {

double bci_group_shift(const BciOptions& options) {
  LDAFP_CHECK(options.groups > 0, "need at least one feature group");
  LDAFP_CHECK(options.target_bayes_error > 0.0 &&
                  options.target_bayes_error < 0.5,
              "target Bayes error must lie in (0, 0.5)");
  // With perfect noise cancellation each group contributes an independent
  // projection ±shift + noise_gain·ε, so the combined SNR grows with
  // sqrt(groups): error = Φ(−sqrt(G)·shift/noise_gain).
  const double z = -stats::normal_quantile(options.target_bayes_error);
  return z * options.noise_gain / std::sqrt(
      static_cast<double>(options.groups));
}

LabeledDataset make_bci_synthetic(support::Rng& rng,
                                  const BciOptions& options) {
  const double base_shift = bci_group_shift(options);
  const std::size_t dim = 3 * options.groups;

  // Per-dataset coefficient jitter: groups differ slightly, as real
  // electrode channels do.
  std::vector<double> gain(options.groups);
  std::vector<double> shift(options.groups);
  std::vector<double> leak(options.groups);
  for (std::size_t g = 0; g < options.groups; ++g) {
    const double jitter = 1.0 + options.coeff_jitter * rng.gaussian();
    gain[g] = options.noise_gain * std::max(jitter, 0.2);
    shift[g] = base_shift * std::max(1.0 + options.coeff_jitter *
                                               rng.gaussian(), 0.2);
    leak[g] = options.leak * std::max(1.0 + options.coeff_jitter *
                                                rng.gaussian(), 0.2);
  }

  LabeledDataset out;
  for (const auto label : {core::Label::kClassA, core::Label::kClassB}) {
    const double sign = label == core::Label::kClassA ? -1.0 : 1.0;
    for (std::size_t n = 0; n < options.trials_per_class; ++n) {
      linalg::Vector x(dim);
      for (std::size_t g = 0; g < options.groups; ++g) {
        // Same triad structure as the paper's Eqs. 30-32, independent
        // noise per group.
        const double e1 = rng.gaussian();
        const double e2 = rng.gaussian();
        const double e3 = rng.gaussian();
        x[3 * g + 0] = sign * shift[g] + gain[g] * (e1 + e2 + e3);
        x[3 * g + 1] = leak[g] * e2 + e3;
        x[3 * g + 2] = e3;
      }
      out.add(std::move(x), label);
    }
  }
  return out;
}

}  // namespace ldafp::data
