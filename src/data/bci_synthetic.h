// Synthetic stand-in for the paper's ECoG brain-computer-interface data
// (Sec. 5.2).
//
// The real data — 42 features extracted from electrocorticography while a
// tetraplegic subject imagined left/right movement, 70 trials per class
// (Wang et al. [16]) — is private.  This generator reproduces its
// *statistical role* in the experiment (DESIGN.md §3):
//
//  * 42 features grouped into 14 triads with the structure of the paper's
//    own synthetic construction (Eqs. 30-32): channel 3g carries a weak
//    class shift buried in noise shared with channels 3g+1 and 3g+2,
//    which themselves carry a near-collinear pair of noise factors.
//  * Optimal float LDA therefore needs large opposing weights on the
//    noise channels and tiny weights on the informative ones — the
//    weight-dynamic-range profile that makes rounded LDA collapse at
//    short word lengths while LDA-FP keeps working.
//  * Per-group shifts are calibrated so that *float LDA's 5-fold CV
//    error* on a 140-trial draw lands at the paper's observed ~19-20%
//    floor.  That measured floor includes LDA's estimation noise at
//    n=112 / p=42, so the generator's Bayes error target sits below it
//    (0.12 by default; the calibration sweep lives in
//    tests/data/bci_synthetic_test.cpp and DESIGN.md §3).
//  * 70 trials/class matches the paper, making the 5-fold CV noise
//    comparable ("not strictly monotonic due to the randomness of our
//    small data set").
#pragma once

#include "data/dataset.h"
#include "support/rng.h"

namespace ldafp::data {

/// Generator parameters (defaults match the paper's data set shape).
struct BciOptions {
  std::size_t groups = 14;        ///< feature triads (3 × 14 = 42 features)
  std::size_t trials_per_class = 70;
  /// Calibrates the per-group shift; 0.12 makes float LDA's 5-fold CV
  /// error match the paper's ~19-20% floor (estimation noise included).
  double target_bayes_error = 0.12;
  double noise_gain = 0.58;       ///< shared-noise coefficient (as Eq. 30)
  double leak = 0.02;             ///< factor leakage (as Eq. 31's 0.001)
  /// Relative jitter on per-group coefficients so groups are not
  /// identical copies (drawn once per generated dataset).
  double coeff_jitter = 0.2;
};

/// Draws one BCI-like dataset (42 features by default).
LabeledDataset make_bci_synthetic(support::Rng& rng,
                                  const BciOptions& options = BciOptions{});

/// The per-group class shift implied by the target Bayes error.
double bci_group_shift(const BciOptions& options = BciOptions{});

}  // namespace ldafp::data
