#include "data/dataset.h"

#include <algorithm>

#include "support/error.h"

namespace ldafp::data {

std::size_t LabeledDataset::count(core::Label label) const {
  std::size_t n = 0;
  for (const auto l : labels) {
    if (l == label) ++n;
  }
  return n;
}

core::TrainingSet LabeledDataset::to_training_set() const {
  LDAFP_CHECK(samples.size() == labels.size(),
              "dataset samples/labels length mismatch");
  core::TrainingSet out;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (labels[i] == core::Label::kClassA) {
      out.class_a.push_back(samples[i]);
    } else {
      out.class_b.push_back(samples[i]);
    }
  }
  return out;
}

void LabeledDataset::add(linalg::Vector sample, core::Label label) {
  LDAFP_CHECK(samples.empty() || sample.size() == dim(),
              "sample dimension mismatch");
  samples.push_back(std::move(sample));
  labels.push_back(label);
}

LabeledDataset LabeledDataset::merge(const LabeledDataset& a,
                                     const LabeledDataset& b) {
  LDAFP_CHECK(a.size() == 0 || b.size() == 0 || a.dim() == b.dim(),
              "cannot merge datasets of different dimension");
  LabeledDataset out = a;
  out.samples.insert(out.samples.end(), b.samples.begin(), b.samples.end());
  out.labels.insert(out.labels.end(), b.labels.begin(), b.labels.end());
  return out;
}

namespace {

/// Shuffled index list of the samples with the given label.
std::vector<std::size_t> class_indices(const LabeledDataset& data,
                                       core::Label label,
                                       support::Rng& rng) {
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.labels[i] == label) idx.push_back(i);
  }
  const std::vector<std::size_t> perm = rng.permutation(idx.size());
  std::vector<std::size_t> shuffled(idx.size());
  for (std::size_t i = 0; i < idx.size(); ++i) shuffled[i] = idx[perm[i]];
  return shuffled;
}

}  // namespace

std::vector<Split> stratified_k_fold(const LabeledDataset& data,
                                     std::size_t k, support::Rng& rng) {
  LDAFP_CHECK(k >= 2, "k-fold needs k >= 2");
  LDAFP_CHECK(data.count(core::Label::kClassA) >= k &&
                  data.count(core::Label::kClassB) >= k,
              "k-fold needs at least k samples per class");

  // Assign each sample a fold id, round-robin within its class.
  std::vector<std::size_t> fold_of(data.size());
  for (const auto label : {core::Label::kClassA, core::Label::kClassB}) {
    const auto idx = class_indices(data, label, rng);
    for (std::size_t i = 0; i < idx.size(); ++i) fold_of[idx[i]] = i % k;
  }

  std::vector<Split> splits(k);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t f = 0; f < k; ++f) {
      auto& part = fold_of[i] == f ? splits[f].test : splits[f].train;
      part.add(data.samples[i], data.labels[i]);
    }
  }
  return splits;
}

Split stratified_split(const LabeledDataset& data, double train_fraction,
                       support::Rng& rng) {
  LDAFP_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
              "train fraction must lie in (0, 1)");
  Split split;
  for (const auto label : {core::Label::kClassA, core::Label::kClassB}) {
    const auto idx = class_indices(data, label, rng);
    const auto n_train = static_cast<std::size_t>(
        train_fraction * static_cast<double>(idx.size()) + 0.5);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      auto& part = i < n_train ? split.train : split.test;
      part.add(data.samples[idx[i]], data.labels[idx[i]]);
    }
  }
  return split;
}

LabeledDataset project_features(const LabeledDataset& data,
                                const std::vector<std::size_t>& selected) {
  LDAFP_CHECK(!selected.empty(), "selection must be non-empty");
  for (const std::size_t m : selected) {
    LDAFP_CHECK(m < data.dim(), "selected feature index out of range");
  }
  LabeledDataset out;
  for (std::size_t i = 0; i < data.size(); ++i) {
    linalg::Vector y(selected.size());
    for (std::size_t j = 0; j < selected.size(); ++j) {
      y[j] = data.samples[i][selected[j]];
    }
    out.add(std::move(y), data.labels[i]);
  }
  return out;
}

}  // namespace ldafp::data
