// Labeled dataset container, splits, and stratified k-fold
// cross-validation (the paper's Table 2 protocol).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/training_set.h"
#include "linalg/vector.h"
#include "support/rng.h"

namespace ldafp::data {

/// Feature vectors with binary labels.
struct LabeledDataset {
  std::vector<linalg::Vector> samples;
  std::vector<core::Label> labels;

  std::size_t size() const { return samples.size(); }
  std::size_t dim() const { return samples.empty() ? 0
                                                   : samples.front().size(); }

  /// Counts per class.
  std::size_t count(core::Label label) const;

  /// Splits into the per-class TrainingSet view used by the trainers.
  core::TrainingSet to_training_set() const;

  /// Appends one labeled sample.
  void add(linalg::Vector sample, core::Label label);

  /// Concatenation of two datasets (dimensions must match).
  static LabeledDataset merge(const LabeledDataset& a,
                              const LabeledDataset& b);
};

/// One train/test partition.
struct Split {
  LabeledDataset train;
  LabeledDataset test;
};

/// Stratified k-fold partitions: each class's samples are shuffled with
/// `rng` and dealt round-robin into k folds, so every fold keeps the
/// class balance.  Requires 2 <= k <= min(class counts).
std::vector<Split> stratified_k_fold(const LabeledDataset& data,
                                     std::size_t k, support::Rng& rng);

/// Single stratified train/test split with the given train fraction.
Split stratified_split(const LabeledDataset& data, double train_fraction,
                       support::Rng& rng);

/// Restriction of a dataset to the given feature indices, in order
/// (companion of core::select_features for channel pruning).
LabeledDataset project_features(const LabeledDataset& data,
                                const std::vector<std::size_t>& selected);

}  // namespace ldafp::data
