#include "data/ecg_synthetic.h"

#include <cmath>

#include "support/error.h"

namespace ldafp::data {
namespace {

/// Per-class feature means (normal / PVC) in clinical units.
struct FeatureSpec {
  double normal_mean;
  double pvc_mean;
  double sigma;
};

// RR(s), QRS(ms), R(mV), P(mV), T(mV), ST(mV), QT(ms), energy.
constexpr FeatureSpec kSpecs[kEcgFeatureCount] = {
    {0.85, 0.60, 0.12},    // PVCs are premature
    {95.0, 150.0, 14.0},   // wide ventricular QRS
    {1.10, 1.60, 0.35},    // taller, more variable R
    {0.15, 0.02, 0.05},    // absent P
    {0.30, -0.25, 0.15},   // discordant T
    {0.02, 0.15, 0.08},    // ST shift
    {400.0, 430.0, 25.0},  // prolonged QT
    {1.00, 1.80, 0.40},    // higher energy
};

}  // namespace

LabeledDataset make_ecg_synthetic(std::size_t n_per_class,
                                  support::Rng& rng,
                                  const EcgOptions& options) {
  LDAFP_CHECK(options.separation >= 0.0, "separation must be >= 0");
  LDAFP_CHECK(options.label_noise >= 0.0 && options.label_noise < 0.5,
              "label noise must lie in [0, 0.5)");
  LabeledDataset out;
  for (const auto label : {core::Label::kClassA, core::Label::kClassB}) {
    const bool pvc = label == core::Label::kClassB;
    for (std::size_t n = 0; n < n_per_class; ++n) {
      // Shared physiologic latents: rate and electrode-contact gain.
      const double rate = rng.gaussian();        // beat-to-beat rate drift
      const double gain = 1.0 + 0.1 * rng.gaussian();  // amplitude gain

      linalg::Vector x(kEcgFeatureCount);
      for (std::size_t f = 0; f < kEcgFeatureCount; ++f) {
        const FeatureSpec& spec = kSpecs[f];
        // Interpolate class separation around the normal mean.
        const double mean =
            pvc ? spec.normal_mean +
                      options.separation * (spec.pvc_mean - spec.normal_mean)
                : spec.normal_mean;
        double value = mean + spec.sigma * rng.gaussian();
        // Correlations: RR and QT shorten together with rate; amplitudes
        // share the contact gain.
        if (f == kRrInterval) value += 0.08 * rate;
        if (f == kQtInterval) value += 12.0 * rate;
        if (f == kRAmplitude || f == kPAmplitude || f == kTAmplitude ||
            f == kEnergy) {
          value *= gain;
        }
        // Z-score against the normal-class scale so all features land in
        // comparable numeric ranges for the fixed-point front end.
        x[f] = (value - spec.normal_mean) / (spec.sigma + 1e-12);
      }
      const bool flip = rng.bernoulli(options.label_noise);
      const core::Label assigned =
          flip ? (pvc ? core::Label::kClassA : core::Label::kClassB)
               : label;
      out.add(std::move(x), assigned);
    }
  }
  return out;
}

}  // namespace ldafp::data
