// Synthetic ECG beat-classification workload.
//
// The paper's introduction motivates on-chip classifiers with wearable
// ECG monitors [3]-[4]; public arrhythmia corpora (e.g. MIT-BIH) are not
// available offline, so this generator simulates the standard
// beat-classification feature set: per-beat morphology/rhythm features
// for normal sinus beats (class A) vs premature ventricular contractions
// (class B).  Feature means/spreads follow textbook electrophysiology
// (PVCs: premature RR, wide QRS, absent P wave, discordant T, larger
// amplitude variability), with physiologic correlations (QRS width vs QT,
// RR vs QT via rate adaptation).  Units are z-scored clinical ranges, so
// the fixed-point preprocessing path is exercised realistically.
#pragma once

#include "data/dataset.h"
#include "support/rng.h"

namespace ldafp::data {

/// Feature indices of the generated beats.
enum EcgFeature : std::size_t {
  kRrInterval = 0,    ///< preceding RR interval (s)
  kQrsDuration = 1,   ///< QRS width (ms)
  kRAmplitude = 2,    ///< R peak amplitude (mV)
  kPAmplitude = 3,    ///< P wave amplitude (mV; ~0 for PVC)
  kTAmplitude = 4,    ///< T wave amplitude (mV; discordant for PVC)
  kStDeviation = 5,   ///< ST segment deviation (mV)
  kQtInterval = 6,    ///< QT interval (ms)
  kEnergy = 7,        ///< beat energy (a.u.)
  kEcgFeatureCount = 8,
};

/// Generator parameters.
struct EcgOptions {
  /// Scales how separated PVCs are from normal beats (1 = defaults,
  /// giving a Bayes error of a few percent, as beat classifiers achieve).
  double separation = 1.0;
  /// Fraction of label noise (mislabeled beats), emulating annotation
  /// slips in real corpora.
  double label_noise = 0.01;
};

/// Draws n_per_class beats of each class (class A = normal, B = PVC).
LabeledDataset make_ecg_synthetic(std::size_t n_per_class,
                                  support::Rng& rng,
                                  const EcgOptions& options = EcgOptions{});

}  // namespace ldafp::data
