#include "data/io.h"

#include "support/csv.h"
#include "support/error.h"

namespace ldafp::data {

LabeledDataset load_csv(const std::string& path, bool has_header) {
  const support::CsvTable table = support::read_csv(path, has_header);
  LabeledDataset out;
  for (std::size_t r = 0; r < table.rows.size(); ++r) {
    const auto& row = table.rows[r];
    if (row.size() < 2) {
      throw IoError("dataset csv: row " + std::to_string(r) +
                    " needs at least one feature and a label");
    }
    const double label_cell = row.back();
    core::Label label;
    if (label_cell == 0.0) {
      label = core::Label::kClassA;
    } else if (label_cell == 1.0) {
      label = core::Label::kClassB;
    } else {
      throw IoError("dataset csv: label must be 0 or 1, got " +
                    std::to_string(label_cell));
    }
    linalg::Vector x(row.size() - 1);
    for (std::size_t c = 0; c + 1 < row.size(); ++c) x[c] = row[c];
    out.add(std::move(x), label);
  }
  return out;
}

void save_csv(const std::string& path, const LabeledDataset& data) {
  support::CsvTable table;
  table.rows.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::vector<double> row(data.samples[i].values());
    row.push_back(data.labels[i] == core::Label::kClassA ? 0.0 : 1.0);
    table.rows.push_back(std::move(row));
  }
  support::write_csv(path, table);
}

}  // namespace ldafp::data
