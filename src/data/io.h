// Dataset import/export as CSV (features..., label), enabling users to
// run the trainers on their own recordings.
#pragma once

#include <string>

#include "data/dataset.h"

namespace ldafp::data {

/// Loads a dataset from CSV.  Every row is M feature cells followed by a
/// label cell (0 = class A, 1 = class B).  A '#' header comment and an
/// optional header row are allowed.  Throws IoError on malformed input.
LabeledDataset load_csv(const std::string& path, bool has_header = false);

/// Writes a dataset in the same layout.  Throws IoError on failure.
void save_csv(const std::string& path, const LabeledDataset& data);

}  // namespace ldafp::data
