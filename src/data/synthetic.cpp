#include "data/synthetic.h"

#include "stats/normal.h"

namespace ldafp::data {

LabeledDataset make_synthetic(std::size_t n_per_class, support::Rng& rng,
                              const SyntheticOptions& options) {
  LabeledDataset out;
  for (const auto label : {core::Label::kClassA, core::Label::kClassB}) {
    const double shift =
        label == core::Label::kClassA ? -options.class_shift
                                      : options.class_shift;
    for (std::size_t n = 0; n < n_per_class; ++n) {
      const double e1 = rng.gaussian();
      const double e2 = rng.gaussian();
      const double e3 = rng.gaussian();
      linalg::Vector x(3);
      x[0] = shift + options.noise_gain * (e1 + e2 + e3);  // Eq. 30
      x[1] = options.leak * e2 + e3;                       // Eq. 31
      x[2] = e3;                                           // Eq. 32
      out.add(std::move(x), label);
    }
  }
  return out;
}

double synthetic_bayes_error(const SyntheticOptions& options) {
  // After perfect ε2/ε3 cancellation the projection is
  // ±shift + noise_gain·ε1, so the error is Φ(-shift/noise_gain).
  return stats::normal_cdf(-options.class_shift / options.noise_gain);
}

}  // namespace ldafp::data
