// The paper's synthetic data set (Sec. 5.1, Eqs. 30-32).
//
//   x1 = ∓0.5 + 0.58(ε1 + ε2 + ε3)   (class A: -0.5, class B: +0.5)
//   x2 = 0.001 ε2 + ε3
//   x3 = ε3
//
// Only x1 carries class information; x2 and x3 exist so a classifier with
// enough weight dynamic range can cancel the ε2/ε3 noise (which demands
// w2, w3 ≈ ∓580·w1 — the dynamic range that breaks rounded LDA at short
// word lengths, Fig. 4).  The Bayes-optimal float error is
// Φ(-0.5/0.58) ≈ 19.4%, matching the paper's 19.33% floor in Table 1.
#pragma once

#include "data/dataset.h"
#include "support/rng.h"

namespace ldafp::data {

/// Generator parameters (defaults = the paper's Eqs. 30-32).
struct SyntheticOptions {
  double class_shift = 0.5;   ///< ±shift on x1
  double noise_gain = 0.58;   ///< shared-noise coefficient on x1
  double leak = 0.001;        ///< ε2 leakage into x2
};

/// Draws n_per_class samples of each class.
LabeledDataset make_synthetic(std::size_t n_per_class, support::Rng& rng,
                              const SyntheticOptions& options =
                                  SyntheticOptions{});

/// The infinite-data Bayes error of the float-optimal linear classifier,
/// Φ(-shift/noise_gain): the floor both algorithms approach at large
/// word lengths.
double synthetic_bayes_error(const SyntheticOptions& options =
                                 SyntheticOptions{});

}  // namespace ldafp::data
