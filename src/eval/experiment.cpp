#include "eval/experiment.h"
#include <algorithm>

#include "eval/metrics.h"
#include "stats/normal.h"
#include "support/error.h"

namespace ldafp::eval {

TrialResult run_trial(const data::LabeledDataset& train,
                      const data::LabeledDataset& test, int word_length,
                      const ExperimentConfig& config) {
  LDAFP_CHECK(train.size() > 0, "empty training set");
  TrialResult row;
  row.word_length = word_length;

  const core::TrainingSet raw = train.to_training_set();
  const double beta = stats::confidence_beta(config.ldafp.rho);

  // Shared preprocessing: pick QK.F and the power-of-two feature scale,
  // then quantize the (scaled) training data once for both algorithms.
  row.format_choice = core::choose_format(raw, word_length, beta,
                                          config.integer_bits);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, row.format_choice.feature_scale);
  const core::TrainingSet quantized =
      core::quantize_training_set(scaled, row.format_choice.format);
  const stats::TwoClassModel model =
      core::fit_two_class_model(quantized, config.covariance);

  // Conventional baseline: float LDA (Eq. 11) on the scaled float data —
  // the paper's item (i), which does not model data quantization — with
  // the weights then rounded to the grid.
  const core::LdaModel lda = core::fit_lda(scaled, config.covariance);
  const core::FixedClassifier lda_fixed =
      core::quantize_lda(lda, model, beta, row.format_choice.format,
                         config.lda_gain, config.ldafp.rounding);
  row.lda_weights = lda_fixed.weights_real();
  row.lda_threshold = lda_fixed.threshold_real();
  row.lda_error =
      evaluate(lda_fixed, test, row.format_choice.feature_scale).error();

  // LDA-FP.
  core::LdaFpOptions fp_options = config.ldafp;
  fp_options.covariance = config.covariance;
  const core::LdaFpTrainer trainer(row.format_choice.format, fp_options);
  const core::LdaFpResult fp = trainer.train(scaled);
  row.ldafp_seconds = fp.train_seconds;
  row.ldafp_status = fp.search.status;
  row.ldafp_nodes = fp.search.nodes_processed;
  row.ldafp_gap = fp.search.gap();
  if (fp.found()) {
    const core::FixedClassifier fp_fixed = trainer.make_classifier(fp);
    row.ldafp_weights = fp_fixed.weights_real();
    row.ldafp_threshold = fp_fixed.threshold_real();
    row.ldafp_error =
        evaluate(fp_fixed, test, row.format_choice.feature_scale).error();
  } else {
    row.ldafp_error = 0.5;  // chance level: no feasible classifier found
  }
  return row;
}

std::vector<TrialResult> run_sweep(const data::LabeledDataset& train,
                                   const data::LabeledDataset& test,
                                   const ExperimentConfig& config) {
  std::vector<TrialResult> rows;
  rows.reserve(config.word_lengths.size());
  for (const int w : config.word_lengths) {
    rows.push_back(run_trial(train, test, w, config));
  }
  return rows;
}

std::vector<CvTrialResult> run_cv_sweep(const data::LabeledDataset& data,
                                        std::size_t folds,
                                        const ExperimentConfig& config,
                                        support::Rng& rng) {
  const std::vector<data::Split> splits =
      data::stratified_k_fold(data, folds, rng);
  std::vector<CvTrialResult> rows;
  rows.reserve(config.word_lengths.size());
  for (const int w : config.word_lengths) {
    CvTrialResult row;
    row.word_length = w;
    double lda_weighted = 0.0;
    double fp_weighted = 0.0;
    std::size_t total = 0;
    for (const auto& split : splits) {
      const TrialResult fold = run_trial(split.train, split.test, w, config);
      const std::size_t n = split.test.size();
      lda_weighted += fold.lda_error * static_cast<double>(n);
      fp_weighted += fold.ldafp_error * static_cast<double>(n);
      total += n;
      row.ldafp_seconds += fold.ldafp_seconds;
      row.max_gap = std::max(row.max_gap, fold.ldafp_gap);
    }
    row.lda_error = lda_weighted / static_cast<double>(total);
    row.ldafp_error = fp_weighted / static_cast<double>(total);
    rows.push_back(row);
  }
  return rows;
}

std::optional<WordLengthChoice> select_min_word_length(
    const data::LabeledDataset& data, std::size_t folds,
    const ExperimentConfig& config, double target_error,
    support::Rng& rng) {
  LDAFP_CHECK(target_error >= 0.0 && target_error <= 1.0,
              "target error must lie in [0, 1]");
  std::vector<int> sorted = config.word_lengths;
  std::sort(sorted.begin(), sorted.end());
  for (const int w : sorted) {
    ExperimentConfig one = config;
    one.word_lengths = {w};
    const auto rows = run_cv_sweep(data, folds, one, rng);
    if (!rows.empty() && rows.front().ldafp_error <= target_error) {
      return WordLengthChoice{w, rows.front().ldafp_error};
    }
  }
  return std::nullopt;
}

}  // namespace ldafp::eval
