#include "eval/experiment.h"
#include <algorithm>
#include <limits>

#include "eval/metrics.h"
#include "sched/parallel_for.h"
#include "stats/normal.h"
#include "support/error.h"
#include "support/timer.h"

namespace ldafp::eval {

namespace {

// Per-trial telemetry, labeled by word length so sweep rows stay
// distinguishable in one shared registry.  Counters/gauges only —
// registration is idempotent and updates are atomic, so concurrent
// trials (pooled executor) need no coordination.
void publish_trial(const TrialResult& row, obs::MetricsRegistry& metrics) {
  const obs::Labels by_w = {{"w", std::to_string(row.word_length)}};
  metrics.counter("eval.trials", by_w).increment();
  metrics.gauge("eval.lda_error", by_w).set(row.lda_error);
  metrics.gauge("eval.ldafp_error", by_w).set(row.ldafp_error);
  metrics.gauge("eval.ldafp_gap", by_w).set(row.ldafp_gap);
  metrics.counter("eval.train_nodes", by_w).add(row.ldafp_nodes);
  metrics.histogram("eval.train_seconds").record(row.ldafp_seconds);
}

}  // namespace

TrialResult run_trial(const data::LabeledDataset& train,
                      const data::LabeledDataset& test, int word_length,
                      const ExperimentConfig& config) {
  LDAFP_CHECK(train.size() > 0, "empty training set");
  obs::ScopedSpan span(obs::tracer_of(config.sink), "eval.trial");
  TrialResult row;
  row.word_length = word_length;

  const core::TrainingSet raw = train.to_training_set();
  const double beta = stats::confidence_beta(config.ldafp.rho);

  // Shared preprocessing: pick QK.F and the power-of-two feature scale,
  // then quantize the (scaled) training data once for both algorithms.
  row.format_choice = core::choose_format(raw, word_length, beta,
                                          config.integer_bits);
  const core::TrainingSet scaled =
      core::scale_training_set(raw, row.format_choice.feature_scale);
  const core::TrainingSet quantized =
      core::quantize_training_set(scaled, row.format_choice.format);
  const stats::TwoClassModel model =
      core::fit_two_class_model(quantized, config.covariance);

  // Deployment backend: the trainers produce QK.F-grid classifiers; a
  // non-default backend re-quantizes those trained weights onto its own
  // grid (for LNS, the nearest log-domain point) and scores through its
  // datapath, keeping the word-length budget W identical.
  const auto deploy = [&config](const core::FixedClassifier& clf) {
    if (config.datapath == fixed::DatapathKind::kTwosComplement) return clf;
    return core::FixedClassifier(clf.format(), clf.weights_real(),
                                 clf.threshold_real(), clf.rounding(),
                                 clf.accumulator(), config.datapath);
  };

  // Conventional baseline: float LDA (Eq. 11) on the scaled float data —
  // the paper's item (i), which does not model data quantization — with
  // the weights then rounded to the grid.
  const core::LdaModel lda = core::fit_lda(scaled, config.covariance);
  const core::FixedClassifier lda_fixed = deploy(
      core::quantize_lda(lda, model, beta, row.format_choice.format,
                         config.lda_gain, config.ldafp.rounding));
  row.lda_weights = lda_fixed.weights_real();
  row.lda_threshold = lda_fixed.threshold_real();
  row.lda_error =
      evaluate(lda_fixed, test, row.format_choice.feature_scale).error();

  // LDA-FP.  The sink rides into the trainer through the BnbOptions
  // seam: the search traces and publishes itself; results are identical
  // with or without it.
  core::LdaFpOptions fp_options = config.ldafp;
  fp_options.covariance = config.covariance;
  fp_options.bnb.sink = config.sink;
  const core::LdaFpTrainer trainer(row.format_choice.format, fp_options);
  const core::LdaFpResult fp = trainer.train(scaled);
  row.ldafp_seconds = fp.train_seconds;
  row.ldafp_status = fp.search.status;
  row.ldafp_nodes = fp.search.nodes_processed;
  row.ldafp_gap = fp.search.gap();
  if (fp.found()) {
    const core::FixedClassifier fp_fixed = deploy(trainer.make_classifier(fp));
    row.ldafp_weights = fp_fixed.weights_real();
    row.ldafp_threshold = fp_fixed.threshold_real();
    row.ldafp_error =
        evaluate(fp_fixed, test, row.format_choice.feature_scale).error();
  } else {
    row.ldafp_error = 0.5;  // chance level: no feasible classifier found
  }
  if (obs::MetricsRegistry* metrics = obs::metrics_of(config.sink)) {
    publish_trial(row, *metrics);
  }
  return row;
}

std::vector<TrialResult> run_sweep(const data::LabeledDataset& train,
                                   const data::LabeledDataset& test,
                                   const ExperimentConfig& config) {
  // Each trial is a pure function of (train, test, w, config), so the
  // fan-out is bit-deterministic at any thread count; parallel_map
  // returns results in word-length order regardless of finish order.
  return sched::parallel_map(
      config.executor, config.word_lengths.size(), [&](std::size_t i) {
        return run_trial(train, test, config.word_lengths[i], config);
      });
}

std::vector<CvTrialResult> run_cv_sweep(const data::LabeledDataset& data,
                                        std::size_t folds,
                                        const ExperimentConfig& config,
                                        support::Rng& rng) {
  // All randomness is consumed here, before the fan-out: the fold
  // assignment is the sweep's only stochastic input, so the caller's
  // Rng advances exactly as in sequential execution and every trial
  // below is a pure function of its (train, test, w, config) inputs.
  const std::vector<data::Split> splits =
      data::stratified_k_fold(data, folds, rng);

  // Flatten the (word length × fold) grid so a slow word length cannot
  // serialize the sweep, and timestamp each trial against one shared
  // clock for the per-row wall-time spans.
  struct TimedTrial {
    TrialResult trial;
    double start = 0.0;  ///< seconds since sweep start
    double end = 0.0;
  };
  const std::size_t n_words = config.word_lengths.size();
  support::WallTimer sweep_timer;
  const std::vector<TimedTrial> trials = sched::parallel_map(
      config.executor, n_words * splits.size(), [&](std::size_t flat) {
        const int w = config.word_lengths[flat / splits.size()];
        const data::Split& split = splits[flat % splits.size()];
        TimedTrial timed;
        timed.start = sweep_timer.seconds();
        timed.trial = run_trial(split.train, split.test, w, config);
        timed.end = sweep_timer.seconds();
        return timed;
      });

  // Aggregate per row in fold order — the identical floating-point
  // summation order as the sequential loop.
  std::vector<CvTrialResult> rows;
  rows.reserve(n_words);
  for (std::size_t i = 0; i < n_words; ++i) {
    CvTrialResult row;
    row.word_length = config.word_lengths[i];
    double lda_weighted = 0.0;
    double fp_weighted = 0.0;
    std::size_t total = 0;
    double first_start = std::numeric_limits<double>::infinity();
    double last_end = 0.0;
    for (std::size_t f = 0; f < splits.size(); ++f) {
      const TimedTrial& timed = trials[i * splits.size() + f];
      const TrialResult& fold = timed.trial;
      const std::size_t n = splits[f].test.size();
      lda_weighted += fold.lda_error * static_cast<double>(n);
      fp_weighted += fold.ldafp_error * static_cast<double>(n);
      total += n;
      row.ldafp_seconds += fold.ldafp_seconds;
      row.max_gap = std::max(row.max_gap, fold.ldafp_gap);
      first_start = std::min(first_start, timed.start);
      last_end = std::max(last_end, timed.end);
    }
    row.lda_error = lda_weighted / static_cast<double>(total);
    row.ldafp_error = fp_weighted / static_cast<double>(total);
    row.wall_seconds = last_end - first_start;
    rows.push_back(row);
  }
  return rows;
}

std::optional<WordLengthChoice> select_min_word_length(
    const data::LabeledDataset& data, std::size_t folds,
    const ExperimentConfig& config, double target_error,
    support::Rng& rng) {
  LDAFP_CHECK(target_error >= 0.0 && target_error <= 1.0,
              "target error must lie in [0, 1]");
  std::vector<int> sorted = config.word_lengths;
  std::sort(sorted.begin(), sorted.end());
  for (const int w : sorted) {
    ExperimentConfig one = config;
    one.word_lengths = {w};
    const auto rows = run_cv_sweep(data, folds, one, rng);
    if (!rows.empty() && rows.front().ldafp_error <= target_error) {
      return WordLengthChoice{w, rows.front().ldafp_error};
    }
  }
  return std::nullopt;
}

}  // namespace ldafp::eval
