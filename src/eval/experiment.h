// The word-length sweep harness shared by the paper-table benches and the
// examples: for each word length W, train conventional LDA (round after
// training) and LDA-FP on the same quantized data, evaluate both through
// the identical fixed-point datapath, and report the paper's table rows.
#pragma once

#include <optional>
#include <vector>

#include "core/format_policy.h"
#include "core/lda.h"
#include "fixed/datapath.h"
#include "core/ldafp.h"
#include "data/dataset.h"
#include "obs/sink.h"
#include "sched/executor.h"
#include "support/rng.h"

namespace ldafp::eval {

/// Sweep configuration.
struct ExperimentConfig {
  std::vector<int> word_lengths;          ///< total bits W = K + F
  int integer_bits = 2;                   ///< the K of QK.F
  core::LdaFpOptions ldafp;               ///< trainer budgets/heuristics
  /// Arithmetic backend the trained classifiers are deployed on.  Both
  /// trainers always search the QK.F grid (Eq. 13 is a two's-complement
  /// formulation); with kLns the trained grid weights are then
  /// re-quantized to the nearest log-grid point and every reported
  /// error is measured through the LNS datapath at the same word length
  /// — the train-then-requantize deployment flow bench/lns_sweep
  /// compares against the fixed-point rows.
  fixed::DatapathKind datapath = fixed::DatapathKind::kTwosComplement;
  /// Baseline rescale policy.  The paper's baseline solves Eq. 11,
  /// normalizes, and rounds — kUnitNorm.  The stronger policies are
  /// ablation variants (bench/ablation_baseline).
  core::LdaGainPolicy lda_gain = core::LdaGainPolicy::kUnitNorm;

  /// Covariance estimator applied symmetrically to baseline and LDA-FP
  /// (empirical = the paper's Eqs. 5-6).
  stats::CovarianceEstimator covariance =
      stats::CovarianceEstimator::kEmpirical;

  /// Execution resource for the sweep harness: run_sweep and
  /// run_cv_sweep fan their (word length × fold) trials over this
  /// executor.  The default inline executor runs them one after another
  /// exactly as before; a pooled executor runs them concurrently with
  /// every reported number (errors, weights, gaps, statuses) bit-
  /// identical to sequential execution — all randomness is drawn from
  /// the caller's Rng *before* the fan-out, trials are pure functions of
  /// their inputs, and per-fold errors are folded in fold order.  Only
  /// the timing fields differ.  Independent of `ldafp.bnb.executor`
  /// (intra-trial search parallelism); sharing one pooled executor
  /// between both layers is safe — waiters help instead of blocking.
  sched::Executor executor;

  /// Observability seam (may be null).  run_trial forwards the sink into
  /// the trainer (`ldafp.bnb.sink`), so every trial's search publishes
  /// its solver/bnb counters into the shared registry, and additionally
  /// publishes per-trial "eval.*" metrics labeled by word length.  The
  /// registry's hot path is lock-free and label-disjoint per (w, fold),
  /// so a pooled executor needs no extra coordination, and attaching a
  /// sink never changes any reported number (tests/obs holds this).
  obs::Sink* sink = nullptr;
};

/// One row of a paper-style table.
struct TrialResult {
  int word_length = 0;
  core::FormatChoice format_choice{fixed::FixedFormat(1, 0), 1.0};
  double lda_error = 0.0;      ///< conventional LDA, fixed-point datapath
  double ldafp_error = 0.0;    ///< LDA-FP, fixed-point datapath
  double ldafp_seconds = 0.0;  ///< training runtime (the paper reports it)
  double ldafp_gap = 0.0;      ///< branch-and-bound optimality gap at exit
  opt::BnbStatus ldafp_status = opt::BnbStatus::kNoSolution;
  std::size_t ldafp_nodes = 0;
  /// Quantized weight vectors (Figure 4 plots these) and the decision
  /// thresholds that complete each boundary (Eq. 12).
  linalg::Vector lda_weights;
  linalg::Vector ldafp_weights;
  double lda_threshold = 0.0;
  double ldafp_threshold = 0.0;
};

/// Trains both algorithms on `train` at word length W and scores them on
/// `test` (train/test protocol, Table 1).
TrialResult run_trial(const data::LabeledDataset& train,
                      const data::LabeledDataset& test, int word_length,
                      const ExperimentConfig& config);

/// run_trial for every configured word length.
std::vector<TrialResult> run_sweep(const data::LabeledDataset& train,
                                   const data::LabeledDataset& test,
                                   const ExperimentConfig& config);

/// One row of a cross-validated sweep (Table 2 protocol).
struct CvTrialResult {
  int word_length = 0;
  double lda_error = 0.0;      ///< mean test error over folds
  double ldafp_error = 0.0;
  /// Summed training time over folds — the paper's Table 2 runtime
  /// convention, invariant (up to scheduler noise) under parallelism.
  double ldafp_seconds = 0.0;
  /// Wall-clock span from the row's first fold starting to its last
  /// fold finishing; with a pooled executor this is what actually
  /// elapsed, and the ldafp_seconds / wall_seconds ratio is the row's
  /// effective parallel speedup.
  double wall_seconds = 0.0;
  double max_gap = 0.0;        ///< worst fold's optimality gap
};

/// Stratified k-fold evaluation of both algorithms at each word length.
std::vector<CvTrialResult> run_cv_sweep(const data::LabeledDataset& data,
                                        std::size_t folds,
                                        const ExperimentConfig& config,
                                        support::Rng& rng);

/// Word-length selection: the smallest configured word length whose
/// cross-validated LDA-FP error meets `target_error`, or nullopt when
/// none does.  This is the design-flow entry point the paper's power
/// argument implies (pick bits by accuracy, convert to power).
struct WordLengthChoice {
  int word_length = 0;
  double cv_error = 0.0;
};
std::optional<WordLengthChoice> select_min_word_length(
    const data::LabeledDataset& data, std::size_t folds,
    const ExperimentConfig& config, double target_error,
    support::Rng& rng);

}  // namespace ldafp::eval
