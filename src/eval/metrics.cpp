#include "eval/metrics.h"

#include "support/error.h"

namespace ldafp::eval {
namespace {

void tally(Confusion& confusion, core::Label truth, core::Label predicted) {
  if (truth == core::Label::kClassA) {
    (predicted == core::Label::kClassA ? confusion.a_as_a
                                       : confusion.a_as_b)++;
  } else {
    (predicted == core::Label::kClassA ? confusion.b_as_a
                                       : confusion.b_as_b)++;
  }
}

}  // namespace

double Confusion::error() const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(a_as_b + b_as_a) / static_cast<double>(n);
}

Confusion evaluate(const core::LinearClassifier& clf,
                   const data::LabeledDataset& data, double feature_scale) {
  LDAFP_CHECK(data.dim() == clf.dim() || data.size() == 0,
              "dataset/classifier dimension mismatch");
  Confusion confusion;
  for (std::size_t i = 0; i < data.size(); ++i) {
    linalg::Vector x = data.samples[i];
    x *= feature_scale;
    tally(confusion, data.labels[i], clf.classify(x));
  }
  return confusion;
}

Confusion evaluate(const core::FixedClassifier& clf,
                   const data::LabeledDataset& data, double feature_scale,
                   fixed::DotDiagnostics* overflow_events) {
  LDAFP_CHECK(data.dim() == clf.dim() || data.size() == 0,
              "dataset/classifier dimension mismatch");
  Confusion confusion;
  for (std::size_t i = 0; i < data.size(); ++i) {
    linalg::Vector x = data.samples[i];
    x *= feature_scale;
    fixed::DotDiagnostics diag;
    tally(confusion, data.labels[i], clf.classify(x, &diag));
    if (overflow_events != nullptr) {
      overflow_events->product_overflows += diag.product_overflows;
      overflow_events->accumulator_wraps += diag.accumulator_wraps;
      overflow_events->final_overflow |= diag.final_overflow;
    }
  }
  return confusion;
}

}  // namespace ldafp::eval
