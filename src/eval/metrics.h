// Classification metrics.
#pragma once

#include "core/classifier.h"
#include "data/dataset.h"

namespace ldafp::eval {

/// Confusion counts for the binary problem.
struct Confusion {
  std::size_t a_as_a = 0;
  std::size_t a_as_b = 0;
  std::size_t b_as_a = 0;
  std::size_t b_as_b = 0;

  std::size_t total() const { return a_as_a + a_as_b + b_as_a + b_as_b; }
  /// Misclassification rate in [0, 1].
  double error() const;
};

/// Evaluates a floating-point classifier.  `feature_scale` is applied to
/// every sample first (the preprocessing scale chosen at training time).
Confusion evaluate(const core::LinearClassifier& clf,
                   const data::LabeledDataset& data,
                   double feature_scale = 1.0);

/// Evaluates a fixed-point classifier through the on-chip datapath.
/// `overflow_events`, when non-null, accumulates inference-time overflow
/// diagnostics across the whole set.
Confusion evaluate(const core::FixedClassifier& clf,
                   const data::LabeledDataset& data,
                   double feature_scale = 1.0,
                   fixed::DotDiagnostics* overflow_events = nullptr);

}  // namespace ldafp::eval
