#include "fixed/datapath.h"

#include "fixed/lns.h"
#include "support/error.h"

namespace ldafp::fixed {

const char* to_string(DatapathKind kind) {
  switch (kind) {
    case DatapathKind::kTwosComplement: return "fixed";
    case DatapathKind::kLns: return "lns";
  }
  return "?";
}

bool parse_datapath_kind(const std::string& text, DatapathKind* out) {
  if (text == "fixed" || text == "twos-complement") {
    *out = DatapathKind::kTwosComplement;
    return true;
  }
  if (text == "lns") {
    *out = DatapathKind::kLns;
    return true;
  }
  return false;
}

namespace {

/// The paper's QK.F datapath: quantize/dot/compare are exactly the
/// pre-API fixed-point operations (FixedFormat::quantize_saturate and
/// dot_datapath_raw), so results are bit-identical to the legacy path.
class TwosComplementDatapath final : public Datapath {
 public:
  TwosComplementDatapath(const FixedFormat& fmt, RoundingMode mode,
                         AccumulatorMode acc)
      : fmt_(fmt), mode_(mode), acc_(acc) {
    LDAFP_CHECK(fmt.integer_bits() + 2 * fmt.frac_bits() <= 62,
                "TwosComplementDatapath requires K + 2F <= 62");
    LDAFP_CHECK(fmt.word_length() <= 31,
                "TwosComplementDatapath limited to word lengths <= 31");
  }

  DatapathKind kind() const override { return DatapathKind::kTwosComplement; }
  const FixedFormat& format() const override { return fmt_; }
  RoundingMode rounding() const override { return mode_; }
  AccumulatorMode accumulator() const override { return acc_; }

  std::int64_t quantize(double value) const override {
    return fmt_.quantize_saturate(value, mode_);
  }

  double to_real(std::int64_t raw) const override {
    return fmt_.to_real(raw);
  }

  std::int64_t dot(const std::int64_t* w, const std::int64_t* x,
                   std::size_t n, DotDiagnostics* diag) const override {
    if (diag != nullptr) *diag = DotDiagnostics{};
    return dot_datapath_raw(w, x, n, fmt_, mode_, acc_, diag);
  }

  bool ge(std::int64_t a, std::int64_t b) const override {
    // Raw words are sign-extended two's complement: integer order is
    // value order.
    return a >= b;
  }

 private:
  FixedFormat fmt_;
  RoundingMode mode_;
  AccumulatorMode acc_;
};

/// The LNS backend: word layout derived from the QK.F descriptor via
/// LnsFormat::matched, arithmetic from fixed/lns.h.
class LnsDatapath final : public Datapath {
 public:
  LnsDatapath(const FixedFormat& fmt, RoundingMode mode, AccumulatorMode acc)
      : fmt_(fmt), lns_(LnsFormat::matched(fmt)), mode_(mode), acc_(acc) {}

  DatapathKind kind() const override { return DatapathKind::kLns; }
  const FixedFormat& format() const override { return fmt_; }
  RoundingMode rounding() const override { return mode_; }
  AccumulatorMode accumulator() const override { return acc_; }

  std::int64_t quantize(double value) const override {
    return lns_quantize(lns_, value, mode_);
  }

  double to_real(std::int64_t raw) const override {
    return lns_to_real(lns_, raw);
  }

  std::int64_t dot(const std::int64_t* w, const std::int64_t* x,
                   std::size_t n, DotDiagnostics* diag) const override {
    return lns_dot_raw(lns_, w, x, n, acc_, diag);
  }

  bool ge(std::int64_t a, std::int64_t b) const override {
    return lns_ge(lns_, a, b);
  }

  const LnsFormat& lns_format() const { return lns_; }

 private:
  FixedFormat fmt_;
  LnsFormat lns_;
  RoundingMode mode_;
  AccumulatorMode acc_;
};

}  // namespace

std::shared_ptr<const Datapath> make_datapath(DatapathKind kind,
                                              const FixedFormat& fmt,
                                              RoundingMode mode,
                                              AccumulatorMode acc) {
  switch (kind) {
    case DatapathKind::kTwosComplement:
      return std::make_shared<TwosComplementDatapath>(fmt, mode, acc);
    case DatapathKind::kLns:
      return std::make_shared<LnsDatapath>(fmt, mode, acc);
  }
  throw InvalidArgumentError("make_datapath: unknown datapath kind");
}

}  // namespace ldafp::fixed
