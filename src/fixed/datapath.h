// Backend-agnostic arithmetic datapath API (DESIGN.md §16).
//
// A Datapath bundles everything the classifier stack needs to know
// about one on-chip arithmetic implementation: the word layout (keyed
// by the QK.F descriptor the trainer optimizes), how reals quantize to
// raw words and back, the dot/MAC semantics under the configured
// rounding and accumulator modes, the decision comparator, and a
// stable serialization tag.  `FixedClassifier`, `runtime::BatchScorer`,
// `hw::MacDatapath`, `hw::PowerModel`, and `hw::verilog_gen` all
// consume this interface, so a new arithmetic backend lands by
// implementing it once.
//
// Two backends ship today:
//  * kTwosComplement — the paper's QK.F datapath.  Bit-identical to the
//    pre-API `fixed::dot_datapath` scalar path (it *is* that path,
//    reached through `dot_datapath_raw`), and batch callers still hit
//    the SIMD kernels of fixed/simd.h.
//  * kLns — sign + fixed-point log2 magnitude (fixed/lns.h), layout
//    derived deterministically from the same QK.F descriptor via
//    LnsFormat::matched.  Scalar only; batch callers fall back to a
//    per-sample loop.
//
// All values cross this interface as raw int64 words (sign-extended
// W-bit patterns), so buffers, model files, and the wire format stay
// backend-agnostic; only a Datapath interprets the bits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "fixed/dot.h"
#include "fixed/format.h"
#include "fixed/rounding.h"

namespace ldafp::fixed {

/// Which arithmetic backend a Datapath implements.  Values are stable
/// wire codes (model format v2 datapath section, DESIGN.md §16).
enum class DatapathKind : std::uint8_t {
  kTwosComplement = 0,  ///< QK.F two's complement (the paper's datapath)
  kLns = 1,             ///< logarithmic number system (fixed/lns.h)
};

/// Stable display / serialization tag ("fixed", "lns").
const char* to_string(DatapathKind kind);

/// Parses a datapath tag ("fixed"/"twos-complement" or "lns").
/// Returns false on unknown tags.
bool parse_datapath_kind(const std::string& text, DatapathKind* out);

/// One arithmetic backend, fully configured (format + rounding +
/// accumulator).  Immutable and thread-safe: every method is const and
/// touches no shared mutable state, so one instance may serve any
/// number of threads (the determinism tests in tests/lns rely on it).
class Datapath {
 public:
  virtual ~Datapath() = default;

  /// Backend identity.
  virtual DatapathKind kind() const = 0;

  /// The QK.F descriptor this datapath was derived from.  For the
  /// two's-complement backend this is the storage layout itself; for
  /// LNS it is the design-space key that LnsFormat::matched maps to the
  /// log-domain layout.  Word length is the same either way — it is
  /// what the power model charges for.
  virtual const FixedFormat& format() const = 0;

  /// Rounding mode used by quantize() and by the dot's rounding stages.
  virtual RoundingMode rounding() const = 0;

  /// Accumulator register model used by dot().
  virtual AccumulatorMode accumulator() const = 0;

  /// Stable serialization tag, to_string(kind()).
  std::string tag() const { return to_string(kind()); }

  /// Quantizes a real value to this backend's nearest raw word
  /// (saturating at the representable range).  NaN throws
  /// InvalidArgumentError.
  virtual std::int64_t quantize(double value) const = 0;

  /// Real value of a raw word.
  virtual double to_real(std::int64_t raw) const = 0;

  /// The on-chip dot product over raw words, with this backend's MAC
  /// semantics under rounding()/accumulator().  Deterministic: a pure
  /// function of the operand words.  `diag` (optional) receives the
  /// backend's overflow taxonomy (see fixed/dot.h and lns_dot_raw).
  virtual std::int64_t dot(const std::int64_t* w, const std::int64_t* x,
                           std::size_t n,
                           DotDiagnostics* diag = nullptr) const = 0;

  /// Value-order comparison a >= b on raw words — the threshold
  /// comparator of the decision stage.
  virtual bool ge(std::int64_t a, std::int64_t b) const = 0;
};

/// Builds the datapath for `kind` over the QK.F descriptor `fmt`.
/// Two's-complement requires the dot envelope (W <= 31, K + 2F <= 62);
/// LNS requires W >= 4.  The result is immutable and shareable.
std::shared_ptr<const Datapath> make_datapath(
    DatapathKind kind, const FixedFormat& fmt,
    RoundingMode mode = RoundingMode::kNearestEven,
    AccumulatorMode acc = AccumulatorMode::kWide);

}  // namespace ldafp::fixed
