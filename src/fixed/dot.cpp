#include "fixed/dot.h"

#include "support/error.h"

namespace ldafp::fixed {

const char* to_string(AccumulatorMode mode) {
  switch (mode) {
    case AccumulatorMode::kWide: return "wide";
    case AccumulatorMode::kNarrow: return "narrow";
  }
  return "?";
}

namespace {

/// Narrow datapath: every product rounded to QK.F, accumulator wraps in
/// QK.F.
std::int64_t dot_narrow(const std::int64_t* w, const std::int64_t* x,
                        std::size_t n, const FixedFormat& fmt,
                        RoundingMode mode, DotDiagnostics* diag) {
  std::int64_t acc = 0;  // QK.F raw, wrapped
  // Exact (unbounded) sum of the wrapped products, to report whether the
  // final value is corrupted; narrowed products fit ~W bits so any
  // realistic feature count fits int64.
  std::int64_t exact_sum = 0;
  for (std::size_t m = 0; m < n; ++m) {
    // The narrowed (pre-wrap) product decides the overflow diagnostic: a
    // value outside [raw_min, raw_max] overflowed even if the wrap lands
    // back on an in-range word.
    const std::int64_t narrowed =
        Fixed::narrow_raw(w[m] * x[m], fmt.frac_bits(), mode);
    if (diag != nullptr &&
        (narrowed < fmt.raw_min() || narrowed > fmt.raw_max())) {
      ++diag->product_overflows;
    }
    const std::int64_t prod = fmt.wrap_raw(narrowed);
    const std::int64_t next = acc + prod;
    if (diag != nullptr && (next < fmt.raw_min() || next > fmt.raw_max())) {
      ++diag->accumulator_wraps;
    }
    exact_sum += prod;
    acc = fmt.wrap_raw(next);
  }
  if (diag != nullptr) {
    diag->final_overflow =
        exact_sum < fmt.raw_min() || exact_sum > fmt.raw_max();
  }
  return acc;
}

/// Wide datapath: exact products at 2F fractional bits, accumulator with
/// K integer + 2F fractional bits (wrapping), one final rounding to QK.F.
std::int64_t dot_wide(const std::int64_t* w, const std::int64_t* x,
                      std::size_t n, const FixedFormat& fmt,
                      RoundingMode mode, DotDiagnostics* diag) {
  const FixedFormat wide(fmt.integer_bits(), 2 * fmt.frac_bits());
  std::int64_t acc = 0;  // wide raw, scale 2^-2F, wrapped
  // Unwrapped exact sum at the same scale, for the final-overflow
  // diagnostic.  Products reach 2^(2W-2) <= 2^60, so an int64 running
  // sum could itself overflow after a handful of terms on the widest
  // legal formats — keep the diagnostic in 128 bits.
  __int128 exact_sum = 0;
  for (std::size_t m = 0; m < n; ++m) {
    const std::int64_t product = w[m] * x[m];  // scale 2^-2F
    if (diag != nullptr &&
        (product < wide.raw_min() || product > wide.raw_max())) {
      ++diag->product_overflows;
    }
    exact_sum += product;
    const std::int64_t next = acc + product;
    const std::int64_t wrapped = wide.wrap_raw(next);
    if (diag != nullptr && wrapped != next) ++diag->accumulator_wraps;
    acc = wrapped;
  }
  if (diag != nullptr) {
    diag->final_overflow =
        exact_sum < wide.raw_min() || exact_sum > wide.raw_max();
  }
  // Final rounding stage: drop F fractional bits, wrap into QK.F.
  return fmt.wrap_raw(Fixed::narrow_raw(acc, fmt.frac_bits(), mode));
}

}  // namespace

std::int64_t dot_datapath_raw(const std::int64_t* w, const std::int64_t* x,
                              std::size_t n, const FixedFormat& fmt,
                              RoundingMode mode, AccumulatorMode acc,
                              DotDiagnostics* diag) {
  LDAFP_CHECK(fmt.integer_bits() + 2 * fmt.frac_bits() <= 62,
              "dot_datapath requires K + 2F <= 62");
  // Signed-overflow envelope: a raw product needs 2W-1 bits, and the
  // wrapped wide accumulator plus one product needs K+2F+1 more head
  // room; W <= 31 together with K+2F <= 62 keeps every intermediate
  // inside int64 (same bound as Fixed::mul_wrap).
  LDAFP_CHECK(fmt.word_length() <= 31,
              "dot_datapath limited to word lengths <= 31 bits "
              "(raw products must fit int64)");
  return acc == AccumulatorMode::kWide ? dot_wide(w, x, n, fmt, mode, diag)
                                       : dot_narrow(w, x, n, fmt, mode, diag);
}

Fixed dot_datapath(const std::vector<Fixed>& w, const std::vector<Fixed>& x,
                   const FixedFormat& fmt, RoundingMode mode,
                   AccumulatorMode acc, DotDiagnostics* diag) {
  LDAFP_CHECK(w.size() == x.size(), "dot_datapath dimension mismatch");
  for (std::size_t m = 0; m < w.size(); ++m) {
    LDAFP_CHECK(w[m].format() == fmt && x[m].format() == fmt,
                "dot_datapath format mismatch");
  }
  // Compat shim: restripe into raw words and run the raw core.
  std::vector<std::int64_t> wr(w.size()), xr(x.size());
  for (std::size_t m = 0; m < w.size(); ++m) {
    wr[m] = w[m].raw();
    xr[m] = x[m].raw();
  }
  return Fixed::from_raw(
      fmt, dot_datapath_raw(wr.data(), xr.data(), wr.size(), fmt, mode, acc,
                            diag));
}

Fixed dot_datapath_real(const linalg::Vector& w, const linalg::Vector& x,
                        const FixedFormat& fmt, RoundingMode mode,
                        AccumulatorMode acc, DotDiagnostics* diag) {
  return dot_datapath(quantize_vector(w, fmt, mode),
                      quantize_vector(x, fmt, mode), fmt, mode, acc, diag);
}

std::vector<Fixed> quantize_vector(const linalg::Vector& v,
                                   const FixedFormat& fmt,
                                   RoundingMode mode) {
  std::vector<Fixed> out;
  out.reserve(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out.push_back(Fixed::from_real_saturate(fmt, v[i], mode));
  }
  return out;
}

linalg::Vector to_real(const std::vector<Fixed>& v) {
  linalg::Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) out[i] = v[i].to_real();
  return out;
}

}  // namespace ldafp::fixed
