// Fixed-point dot product with the paper's MAC datapath semantics.
//
// y = Σ_m w_m · x_m computed in QK.F.  Two accumulator designs are
// modeled (both standard in DSP hardware, Padgett & Anderson ch. 6):
//
//  * kWide (default): the multiplier's exact double-precision product
//    (2F fractional bits) is accumulated in a wide register that wraps on
//    the K integer bits; the sum is rounded to QK.F once at the end.
//    Matches the paper's evaluation behaviour — weight-grid rounding and
//    overflow are the only non-idealities that matter.
//  * kNarrow: every product is rounded to QK.F before accumulation
//    (cheapest datapath, adds per-product rounding noise).  Kept for the
//    ablation bench.
//
// In both designs the accumulator wraps modulo the integer range — the
// paper's two's-complement property (intermediate overflow is harmless
// when the final sum fits) holds and is exercised by the tests.
#pragma once

#include <cstdint>
#include <vector>

#include "fixed/format.h"
#include "fixed/value.h"
#include "linalg/vector.h"

namespace ldafp::fixed {

/// Accumulator architecture of the MAC datapath.
enum class AccumulatorMode {
  kWide,    ///< exact products, one final rounding (default)
  kNarrow,  ///< products rounded to QK.F before accumulation
};

/// Short display name ("wide"/"narrow").
const char* to_string(AccumulatorMode mode);

/// Diagnostics accumulated while evaluating a fixed-point dot product.
struct DotDiagnostics {
  /// Products whose value left the representable QK.F range (an Eq. 18
  /// violation at inference time; wraps in kNarrow, flagged-only in
  /// kWide).
  int product_overflows = 0;
  /// Accumulator additions that wrapped.  Harmless when the final sum
  /// fits (the paper's two's-complement wrapping property), harmful
  /// otherwise.
  int accumulator_wraps = 0;
  /// True when the mathematically exact sum of the accumulated products
  /// lies outside the representable range, i.e. the returned y is
  /// corrupted (an Eq. 20 violation at inference time).
  bool final_overflow = false;
};

/// The two's-complement MAC core over raw QK.F words: computes the
/// on-chip dot product of two already-quantized raw-word sequences and
/// returns the raw QK.F result.  This is the function the
/// TwosComplementDatapath (fixed/datapath.h) dispatches to — the
/// wrapped `Fixed` overload below produces bit-identical results by
/// construction.  The format must satisfy fmt.word_length() <= 31 and
/// fmt.integer_bits() + 2*fmt.frac_bits() <= 62 so every raw product
/// and wrapped accumulator step fits int64 (checked, see the
/// signed-overflow audit in tests/fixed/dot_test.cpp).
std::int64_t dot_datapath_raw(const std::int64_t* w, const std::int64_t* x,
                              std::size_t n, const FixedFormat& fmt,
                              RoundingMode mode = RoundingMode::kNearestEven,
                              AccumulatorMode acc = AccumulatorMode::kWide,
                              DotDiagnostics* diag = nullptr);

/// DEPRECATED compat shim over dot_datapath_raw (kept for one release;
/// migrate to the Datapath interface in fixed/datapath.h or to
/// dot_datapath_raw — DESIGN.md §16 has the mapping).  Formats of all
/// words must equal `fmt`.
Fixed dot_datapath(const std::vector<Fixed>& w, const std::vector<Fixed>& x,
                   const FixedFormat& fmt,
                   RoundingMode mode = RoundingMode::kNearestEven,
                   AccumulatorMode acc = AccumulatorMode::kWide,
                   DotDiagnostics* diag = nullptr);

/// DEPRECATED compat shim (see dot_datapath): quantizes the real
/// vectors (saturating) and runs the two's-complement datapath.
Fixed dot_datapath_real(const linalg::Vector& w, const linalg::Vector& x,
                        const FixedFormat& fmt,
                        RoundingMode mode = RoundingMode::kNearestEven,
                        AccumulatorMode acc = AccumulatorMode::kWide,
                        DotDiagnostics* diag = nullptr);

/// Quantizes a real vector into fixed words (saturating).
std::vector<Fixed> quantize_vector(const linalg::Vector& v,
                                   const FixedFormat& fmt,
                                   RoundingMode mode =
                                       RoundingMode::kNearestEven);

/// Real values of a fixed word vector.
linalg::Vector to_real(const std::vector<Fixed>& v);

}  // namespace ldafp::fixed
