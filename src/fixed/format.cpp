#include "fixed/format.h"

#include <cmath>

#include "support/error.h"
#include "support/str.h"

namespace ldafp::fixed {

const char* to_string(RoundingMode mode) {
  switch (mode) {
    case RoundingMode::kNearestEven: return "nearest-even";
    case RoundingMode::kNearestAway: return "nearest-away";
    case RoundingMode::kTowardZero: return "toward-zero";
    case RoundingMode::kFloor: return "floor";
  }
  return "?";
}

FixedFormat::FixedFormat(int integer_bits, int frac_bits)
    : integer_bits_(integer_bits), frac_bits_(frac_bits) {
  LDAFP_CHECK(integer_bits >= 1, "QK.F needs at least the sign bit (K >= 1)");
  LDAFP_CHECK(frac_bits >= 0, "QK.F needs F >= 0");
  LDAFP_CHECK(integer_bits + frac_bits <= 62,
              "QK.F word length limited to 62 bits");
}

FixedFormat FixedFormat::parse(const std::string& text) {
  const std::string t = support::trim(text);
  LDAFP_CHECK(t.size() >= 4 && (t[0] == 'Q' || t[0] == 'q'),
              "fixed format must look like 'Q4.3'");
  const auto dotpos = t.find('.');
  LDAFP_CHECK(dotpos != std::string::npos && dotpos > 1 &&
                  dotpos + 1 < t.size(),
              "fixed format must look like 'Q4.3'");
  int k = 0;
  int f = 0;
  try {
    k = std::stoi(t.substr(1, dotpos - 1));
    f = std::stoi(t.substr(dotpos + 1));
  } catch (const std::exception&) {
    throw ldafp::InvalidArgumentError("cannot parse fixed format '" + text +
                                      "'");
  }
  return FixedFormat(k, f);
}

double FixedFormat::resolution() const { return std::ldexp(1.0, -frac_bits_); }

double FixedFormat::min_value() const {
  return -std::ldexp(1.0, integer_bits_ - 1);
}

double FixedFormat::max_value() const {
  return std::ldexp(1.0, integer_bits_ - 1) - resolution();
}

std::int64_t FixedFormat::level_count() const {
  return std::int64_t{1} << word_length();
}

std::int64_t FixedFormat::raw_min() const {
  return -(std::int64_t{1} << (word_length() - 1));
}

std::int64_t FixedFormat::raw_max() const {
  return (std::int64_t{1} << (word_length() - 1)) - 1;
}

bool FixedFormat::representable(double value) const {
  if (value < min_value() || value > max_value()) return false;
  const double scaled = std::ldexp(value, frac_bits_);
  return scaled == std::nearbyint(scaled) && std::isfinite(scaled);
}

double FixedFormat::to_real(std::int64_t raw) const {
  return std::ldexp(static_cast<double>(raw), -frac_bits_);
}

std::int64_t round_real_to_int(double value, RoundingMode mode) {
  switch (mode) {
    case RoundingMode::kNearestEven: {
      const double r = std::nearbyint(value);  // assumes FE_TONEAREST
      return static_cast<std::int64_t>(r);
    }
    case RoundingMode::kNearestAway:
      return static_cast<std::int64_t>(std::round(value));
    case RoundingMode::kTowardZero:
      return static_cast<std::int64_t>(std::trunc(value));
    case RoundingMode::kFloor:
      return static_cast<std::int64_t>(std::floor(value));
  }
  return 0;
}

std::int64_t FixedFormat::quantize_saturate(double value,
                                            RoundingMode mode) const {
  LDAFP_CHECK(!std::isnan(value), "cannot quantize NaN");
  // Saturate before scaling so huge doubles do not overflow the shift.
  if (value <= min_value()) return raw_min();
  if (value >= max_value()) return raw_max();
  const std::int64_t raw =
      round_real_to_int(std::ldexp(value, frac_bits_), mode);
  if (raw < raw_min()) return raw_min();
  if (raw > raw_max()) return raw_max();
  return raw;
}

std::int64_t FixedFormat::quantize_wrap(double value,
                                        RoundingMode mode) const {
  LDAFP_CHECK(!std::isnan(value), "cannot quantize NaN");
  const double scaled = std::ldexp(value, frac_bits_);
  LDAFP_CHECK(std::fabs(scaled) < 9.0e18,
              "value too large to wrap through int64");
  return wrap_raw(round_real_to_int(scaled, mode));
}

double FixedFormat::round_to_grid(double value, RoundingMode mode) const {
  return to_real(quantize_saturate(value, mode));
}

std::int64_t FixedFormat::wrap_raw(std::int64_t raw) const {
  const int w = word_length();
  const auto uraw = static_cast<std::uint64_t>(raw);
  const std::uint64_t mask = (std::uint64_t{1} << w) - 1;
  std::uint64_t wrapped = uraw & mask;
  // Sign-extend bit w-1.
  const std::uint64_t sign_bit = std::uint64_t{1} << (w - 1);
  if (wrapped & sign_bit) wrapped |= ~mask;
  return static_cast<std::int64_t>(wrapped);
}

std::string FixedFormat::to_string() const {
  return "Q" + std::to_string(integer_bits_) + "." +
         std::to_string(frac_bits_);
}

}  // namespace ldafp::fixed
