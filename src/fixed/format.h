// QK.F two's-complement fixed-point format (paper Fig. 3).
//
// A format has K integer bits (sign bit included) and F fractional bits;
// word length W = K + F.  A word with raw integer value r (two's complement
// in W bits) represents the real number r * 2^-F.  The representable range
// is [-2^(K-1), 2^(K-1) - 2^-F] with resolution 2^-F — exactly the set Ω of
// Eq. 13 that LDA-FP constrains the weight vector to.
#pragma once

#include <cstdint>
#include <string>

#include "fixed/rounding.h"

namespace ldafp::fixed {

/// Value-type descriptor of a QK.F format.
class FixedFormat {
 public:
  /// Creates QK.F.  Requires K >= 1 (sign bit), F >= 0, K + F <= 62
  /// (so products of two words fit int64 before narrowing).
  FixedFormat(int integer_bits, int frac_bits);

  /// Parses "Q4.3" style strings.  Throws InvalidArgumentError on syntax
  /// errors or out-of-range bit counts.
  static FixedFormat parse(const std::string& text);

  /// K: integer bits including the sign bit.
  int integer_bits() const { return integer_bits_; }
  /// F: fractional bits.
  int frac_bits() const { return frac_bits_; }
  /// W = K + F.
  int word_length() const { return integer_bits_ + frac_bits_; }

  /// Grid resolution 2^-F (one unit in the last place).
  double resolution() const;
  /// Smallest representable value, -2^(K-1).
  double min_value() const;
  /// Largest representable value, 2^(K-1) - 2^-F.
  double max_value() const;
  /// Number of representable values, 2^W.
  std::int64_t level_count() const;

  /// Raw-integer range [-2^(W-1), 2^(W-1) - 1].
  std::int64_t raw_min() const;
  std::int64_t raw_max() const;

  /// True when `value` lies exactly on the representable grid.
  bool representable(double value) const;

  /// Real value of raw word r (no range check; callers wrap first).
  double to_real(std::int64_t raw) const;

  /// Nearest raw word for `value` under `mode`, saturated to the raw
  /// range.  NaN throws InvalidArgumentError.
  std::int64_t quantize_saturate(double value, RoundingMode mode) const;

  /// Nearest raw word for `value` under `mode`, wrapped (two's complement
  /// overflow) into the raw range.  NaN throws InvalidArgumentError.
  std::int64_t quantize_wrap(double value, RoundingMode mode) const;

  /// Rounds `value` to the nearest representable real (saturating), the
  /// "round after training" operation of conventional LDA.
  double round_to_grid(double value,
                       RoundingMode mode = RoundingMode::kNearestEven) const;

  /// Wraps an arbitrary int64 into this format's two's-complement raw
  /// range (the hardware adder/register behaviour).
  std::int64_t wrap_raw(std::int64_t raw) const;

  /// "QK.F" display form.
  std::string to_string() const;

  friend bool operator==(const FixedFormat& a, const FixedFormat& b) {
    return a.integer_bits_ == b.integer_bits_ && a.frac_bits_ == b.frac_bits_;
  }
  friend bool operator!=(const FixedFormat& a, const FixedFormat& b) {
    return !(a == b);
  }

 private:
  int integer_bits_;
  int frac_bits_;
};

/// Rounds a real `value` to an integer according to `mode` (unit grid).
/// Exposed for reuse by the product-narrowing path.
std::int64_t round_real_to_int(double value, RoundingMode mode);

}  // namespace ldafp::fixed
