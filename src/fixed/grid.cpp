#include "fixed/grid.h"

#include <cmath>

#include "support/error.h"

namespace ldafp::fixed {

linalg::Vector snap_to_grid(const linalg::Vector& v, const FixedFormat& fmt,
                            RoundingMode mode) {
  linalg::Vector out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = fmt.round_to_grid(v[i], mode);
  }
  return out;
}

bool on_grid(const linalg::Vector& v, const FixedFormat& fmt) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!fmt.representable(v[i])) return false;
  }
  return true;
}

double grid_floor(double x, const FixedFormat& fmt) {
  if (x <= fmt.min_value()) return fmt.min_value();
  if (x >= fmt.max_value()) return fmt.max_value();
  const double scaled = std::ldexp(x, fmt.frac_bits());
  return std::ldexp(std::floor(scaled), -fmt.frac_bits());
}

double grid_ceil(double x, const FixedFormat& fmt) {
  if (x <= fmt.min_value()) return fmt.min_value();
  if (x >= fmt.max_value()) return fmt.max_value();
  const double scaled = std::ldexp(x, fmt.frac_bits());
  return std::ldexp(std::ceil(scaled), -fmt.frac_bits());
}

std::int64_t grid_count(double lo, double hi, const FixedFormat& fmt) {
  LDAFP_CHECK(lo <= hi, "grid_count requires lo <= hi");
  // Clip to the representable range first.
  const double clo = std::max(lo, fmt.min_value());
  const double chi = std::min(hi, fmt.max_value());
  if (clo > chi) return 0;
  const auto first = static_cast<std::int64_t>(
      std::ceil(std::ldexp(clo, fmt.frac_bits()) - 1e-12));
  const auto last = static_cast<std::int64_t>(
      std::floor(std::ldexp(chi, fmt.frac_bits()) + 1e-12));
  return last < first ? 0 : last - first + 1;
}

std::vector<double> grid_points(double lo, double hi, const FixedFormat& fmt,
                                std::int64_t max_points) {
  const std::int64_t count = grid_count(lo, hi, fmt);
  LDAFP_CHECK(count <= max_points, "grid_points: interval has too many points");
  std::vector<double> out;
  if (count == 0) return out;
  out.reserve(static_cast<std::size_t>(count));
  const double clo = std::max(lo, fmt.min_value());
  const auto first = static_cast<std::int64_t>(
      std::ceil(std::ldexp(clo, fmt.frac_bits()) - 1e-12));
  for (std::int64_t i = 0; i < count; ++i) {
    out.push_back(std::ldexp(static_cast<double>(first + i),
                             -fmt.frac_bits()));
  }
  return out;
}

double grid_split_point(double lo, double hi, const FixedFormat& fmt) {
  LDAFP_CHECK(lo <= hi, "grid_split_point requires lo <= hi");
  const double mid = 0.5 * (lo + hi);
  double snapped = grid_floor(mid, fmt);
  // Keep the split strictly inside (lo, hi] so both children shrink.
  if (snapped <= lo) snapped = grid_ceil(std::nextafter(lo, hi), fmt);
  if (snapped > hi) snapped = grid_floor(hi, fmt);
  return snapped;
}

}  // namespace ldafp::fixed
