// Quantization-grid utilities over a QK.F format.
//
// LDA-FP's feasible set Ω (Eq. 13) is this grid; the branch-and-bound
// solver enumerates and snaps against it through these helpers.
#pragma once

#include <cstdint>
#include <vector>

#include "fixed/format.h"
#include "linalg/vector.h"

namespace ldafp::fixed {

/// Rounds every element of `v` onto the format grid (saturating), the
/// conventional-LDA "train in float, round the weights" step.
linalg::Vector snap_to_grid(const linalg::Vector& v, const FixedFormat& fmt,
                            RoundingMode mode = RoundingMode::kNearestEven);

/// True when every element of `v` is exactly representable in `fmt`.
bool on_grid(const linalg::Vector& v, const FixedFormat& fmt);

/// The largest grid value <= x, clamped to the format range.
double grid_floor(double x, const FixedFormat& fmt);

/// The smallest grid value >= x, clamped to the format range.
double grid_ceil(double x, const FixedFormat& fmt);

/// Number of grid points in the closed interval [lo, hi] (0 when the
/// interval contains none).
std::int64_t grid_count(double lo, double hi, const FixedFormat& fmt);

/// All grid points in [lo, hi], ascending.  Throws InvalidArgumentError
/// when the count exceeds `max_points` (guards accidental enumeration of
/// huge ranges).
std::vector<double> grid_points(double lo, double hi, const FixedFormat& fmt,
                                std::int64_t max_points = 1 << 20);

/// Midpoint of [lo, hi] snapped to the grid, biased so both halves remain
/// non-empty when the interval spans at least two grid points.  Used as
/// the branch-and-bound split point.
double grid_split_point(double lo, double hi, const FixedFormat& fmt);

}  // namespace ldafp::fixed
