#include "fixed/lns.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "fixed/value.h"
#include "support/error.h"

namespace ldafp::fixed {

LnsFormat::LnsFormat(int exp_integer_bits, int exp_frac_bits)
    : exp_integer_bits_(exp_integer_bits), exp_frac_bits_(exp_frac_bits) {
  if (exp_integer_bits < 2) {
    throw InvalidArgumentError("LnsFormat: exponent integer bits must be >= 2");
  }
  if (exp_frac_bits < 0) {
    throw InvalidArgumentError("LnsFormat: exponent frac bits must be >= 0");
  }
  if (1 + exp_integer_bits + exp_frac_bits > 62) {
    throw InvalidArgumentError("LnsFormat: word length must be <= 62");
  }
}

LnsFormat LnsFormat::matched(const FixedFormat& fmt) {
  const int w = fmt.word_length();
  if (w < 4) {
    throw InvalidArgumentError(
        "LnsFormat::matched requires word length >= 4, got " +
        fmt.to_string());
  }
  const int exp_bits = w - 1;
  // Integer exponent range must reach the QK.F maximum 2^(K-1) above and
  // the squared resolution 2^-2F below: 2^(Ke-1) >= max(K, 2F).
  const int need = std::max({fmt.integer_bits(), 2 * fmt.frac_bits(), 2});
  int ke = 2;
  while ((std::int64_t{1} << (ke - 1)) < need) ++ke;
  if (ke > exp_bits) ke = exp_bits;  // short word: keep range, lose grid
  return LnsFormat(ke, exp_bits - ke);
}

std::int64_t LnsFormat::exp_raw_min() const {
  return -(std::int64_t{1} << (exp_bits() - 1));
}

std::int64_t LnsFormat::exp_raw_max() const {
  return (std::int64_t{1} << (exp_bits() - 1)) - 1;
}

double LnsFormat::min_magnitude() const {
  return std::exp2(static_cast<double>(exp_raw_min_normal()) /
                   static_cast<double>(std::int64_t{1} << exp_frac_bits_));
}

double LnsFormat::max_magnitude() const {
  return std::exp2(static_cast<double>(exp_raw_max()) /
                   static_cast<double>(std::int64_t{1} << exp_frac_bits_));
}

std::string LnsFormat::to_string() const {
  std::ostringstream os;
  os << 'L' << word_length() << 'e' << exp_integer_bits_ << '.'
     << exp_frac_bits_;
  return os.str();
}

namespace {

std::uint64_t exp_field_mask(const LnsFormat& fmt) {
  return (std::uint64_t{1} << fmt.exp_bits()) - 1;
}

/// Sign-extends the low `bits` bits of `word` into a full int64.
std::int64_t sign_extend(std::uint64_t word, int bits) {
  const std::uint64_t m = std::uint64_t{1} << (bits - 1);
  word &= (std::uint64_t{1} << bits) - 1;
  return static_cast<std::int64_t>((word ^ m) - m);
}

/// Clamps an unbounded exponent to the nonzero storage range,
/// flushing underflow to exact zero and saturating overflow at the
/// largest magnitude.  `saturated` is set (not cleared) on overflow.
LnsValue saturate_exp(const LnsFormat& fmt, bool negative, std::int64_t e,
                      bool* saturated) {
  if (e < fmt.exp_raw_min_normal()) return LnsValue{};  // flush to zero
  if (e > fmt.exp_raw_max()) {
    if (saturated != nullptr) *saturated = true;
    return LnsValue{false, negative, fmt.exp_raw_max()};
  }
  return LnsValue{false, negative, e};
}

}  // namespace

std::int64_t lns_zero_word(const LnsFormat& fmt) {
  return lns_pack(fmt, LnsValue{});
}

std::int64_t lns_pack(const LnsFormat& fmt, const LnsValue& value) {
  std::uint64_t word;
  if (value.zero) {
    word = static_cast<std::uint64_t>(fmt.exp_raw_min()) & exp_field_mask(fmt);
  } else {
    LDAFP_CHECK(value.exp_raw >= fmt.exp_raw_min_normal() &&
                    value.exp_raw <= fmt.exp_raw_max(),
                "lns_pack: exponent out of range");
    word = static_cast<std::uint64_t>(value.exp_raw) & exp_field_mask(fmt);
    if (value.negative) word |= std::uint64_t{1} << fmt.exp_bits();
  }
  return sign_extend(word, fmt.word_length());
}

LnsValue lns_unpack(const LnsFormat& fmt, std::int64_t raw) {
  const std::uint64_t word = static_cast<std::uint64_t>(raw) &
                             ((std::uint64_t{1} << fmt.word_length()) - 1);
  const std::int64_t exp = sign_extend(word, fmt.exp_bits());
  if (exp == fmt.exp_raw_min()) return LnsValue{};
  LnsValue out;
  out.zero = false;
  out.negative = (word >> fmt.exp_bits()) & 1;
  out.exp_raw = exp;
  return out;
}

std::int64_t lns_quantize(const LnsFormat& fmt, double value,
                          RoundingMode mode) {
  if (std::isnan(value)) {
    throw InvalidArgumentError("lns_quantize: NaN is not representable");
  }
  const bool negative = std::signbit(value);
  const double mag = std::fabs(value);
  if (mag == 0.0) return lns_zero_word(fmt);
  LnsValue out;
  out.zero = false;
  out.negative = negative;
  if (std::isinf(value)) {
    out.exp_raw = fmt.exp_raw_max();
    return lns_pack(fmt, out);
  }
  // Round on the exponent's fixed-point grid (log-domain rounding).
  const double scaled =
      std::log2(mag) * static_cast<double>(std::int64_t{1} << fmt.exp_frac_bits());
  if (scaled >= static_cast<double>(fmt.exp_raw_max())) {
    out.exp_raw = fmt.exp_raw_max();
    return lns_pack(fmt, out);
  }
  if (scaled <= static_cast<double>(fmt.exp_raw_min_normal()) - 1.0) {
    return lns_zero_word(fmt);  // flush to zero
  }
  std::int64_t e = round_real_to_int(scaled, mode);
  if (e < fmt.exp_raw_min_normal()) return lns_zero_word(fmt);
  if (e > fmt.exp_raw_max()) e = fmt.exp_raw_max();
  out.exp_raw = e;
  return lns_pack(fmt, out);
}

double lns_to_real(const LnsFormat& fmt, std::int64_t raw) {
  const LnsValue v = lns_unpack(fmt, raw);
  if (v.zero) return 0.0;
  const double mag =
      std::exp2(static_cast<double>(v.exp_raw) /
                static_cast<double>(std::int64_t{1} << fmt.exp_frac_bits()));
  return v.negative ? -mag : mag;
}

bool lns_ge(const LnsFormat& fmt, std::int64_t a, std::int64_t b) {
  const LnsValue va = lns_unpack(fmt, a);
  const LnsValue vb = lns_unpack(fmt, b);
  // Rank by sign class first: negative < zero < positive.
  const int ra = va.zero ? 0 : (va.negative ? -1 : 1);
  const int rb = vb.zero ? 0 : (vb.negative ? -1 : 1);
  if (ra != rb) return ra > rb;
  if (ra == 0) return true;  // both zero
  // Same nonzero sign: exponent order, inverted for two negatives.
  return ra > 0 ? va.exp_raw >= vb.exp_raw : va.exp_raw <= vb.exp_raw;
}

LnsValue lns_add(const LnsFormat& fmt, const LnsValue& a, const LnsValue& b) {
  if (a.zero) return b;
  if (b.zero) return a;
  // Order so hi has the larger magnitude (larger exponent).
  const LnsValue& hi = a.exp_raw >= b.exp_raw ? a : b;
  const LnsValue& lo = a.exp_raw >= b.exp_raw ? b : a;
  const std::int64_t fe = fmt.exp_frac_bits();
  const std::int64_t one = std::int64_t{1} << fe;  // 1.0 in exponent units
  const std::int64_t d = hi.exp_raw - lo.exp_raw;  // >= 0, raw units
  const std::int64_t d_int = d >> fe;
  const std::int64_t d_frac = d & (one - 1);
  // Mitchell antilog of the aligned addend: r = 2^-(d_int + f)
  // = 2^(1-f) / 2^(d_int+1) ≈ (2 - f) / 2^(d_int+1), f = d_frac·2^-Fe.
  // r_raw holds r in Fe-fraction units, rounded to nearest-even at the
  // shift; r_raw ∈ [0, 2^Fe], hitting 2^Fe exactly when d = 0.
  const std::int64_t r_raw =
      d_int + 1 >= 62
          ? 0
          : Fixed::narrow_raw(2 * one - d_frac, static_cast<int>(d_int) + 1,
                              RoundingMode::kNearestEven);
  if (hi.negative == lo.negative) {
    // Mitchell log: log2(1 + r) ≈ r.
    return LnsValue{false, hi.negative, hi.exp_raw + r_raw};
  }
  // Opposite signs: y = 1 - r, renormalized to m · 2^-k with m ∈ [1, 2);
  // log2(y) ≈ -k + (m - 1).
  const std::int64_t y_raw = one - r_raw;
  if (y_raw == 0) return LnsValue{};  // equal magnitudes cancel exactly
  const int k =
      fe + 1 - std::bit_width(static_cast<std::uint64_t>(y_raw));
  const std::int64_t m_raw = y_raw << k;
  return LnsValue{false, hi.negative,
                  hi.exp_raw - std::int64_t{k} * one + (m_raw - one)};
}

std::int64_t lns_dot_raw(const LnsFormat& fmt, const std::int64_t* w,
                         const std::int64_t* x, std::size_t n,
                         AccumulatorMode acc, DotDiagnostics* diag) {
  if (diag != nullptr) *diag = DotDiagnostics{};
  LnsValue sum;  // exact zero
  for (std::size_t m = 0; m < n; ++m) {
    const LnsValue wm = lns_unpack(fmt, w[m]);
    const LnsValue xm = lns_unpack(fmt, x[m]);
    if (wm.zero || xm.zero) continue;  // product is exact zero
    LnsValue prod;
    prod.zero = false;
    prod.negative = wm.negative != xm.negative;
    prod.exp_raw = wm.exp_raw + xm.exp_raw;  // multiply = exponent add
    if (acc == AccumulatorMode::kNarrow) {
      // Narrow datapath: the product register is a storage-width word,
      // so the exponent adder saturates here.
      bool clipped = false;
      prod = saturate_exp(fmt, prod.negative, prod.exp_raw, &clipped);
      if (clipped && diag != nullptr) ++diag->product_overflows;
      if (prod.zero) continue;
    }
    sum = lns_add(fmt, sum, prod);
    if (acc == AccumulatorMode::kNarrow && !sum.zero) {
      bool clipped = false;
      sum = saturate_exp(fmt, sum.negative, sum.exp_raw, &clipped);
      if (clipped && diag != nullptr) ++diag->accumulator_wraps;
    }
  }
  if (sum.zero) return lns_zero_word(fmt);
  bool clipped = false;
  const LnsValue out = saturate_exp(fmt, sum.negative, sum.exp_raw, &clipped);
  if (clipped && diag != nullptr) diag->final_overflow = true;
  return lns_pack(fmt, out);
}

}  // namespace ldafp::fixed
