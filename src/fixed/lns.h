// Logarithmic number system (LNS) format and arithmetic — the second
// arithmetic backend behind the Datapath API (DESIGN.md §16).
//
// An LNS word is sign-magnitude with the magnitude stored as a
// fixed-point base-2 logarithm: a W-bit word holds 1 sign bit and an
// E = W - 1 bit exponent field, itself a two's-complement fixed-point
// number with Ke integer bits (sign included) and Fe fractional bits
// (E = Ke + Fe).  A word with sign s and exponent raw value e
// represents (-1)^s · 2^(e · 2^-Fe); the exponent field's most negative
// code is reserved as the exact-zero flag (sign 0), so zero is
// representable exactly and unambiguously.
//
// Why LNS: multiplication is an exponent *addition* (a W-bit adder
// instead of the O(W²) array multiplier that dominates fixed-point MAC
// power — hw/power_model.h models both), at the price of a harder
// addition.  Sums are computed in the log domain with the classic
// Mitchell approximations (log2(1+x) ≈ x and 2^f ≈ 1+f on [0,1]),
// implemented in pure integer arithmetic so accumulation is
// deterministic on every platform and at any thread count.  The
// approximation and its error bound are documented at lns_add.
#pragma once

#include <cstdint>
#include <string>

#include "fixed/dot.h"
#include "fixed/format.h"
#include "fixed/rounding.h"

namespace ldafp::fixed {

/// Value-type descriptor of an LNS word layout.
class LnsFormat {
 public:
  /// Sign bit + exponent field of Ke integer (sign included) and Fe
  /// fractional bits.  Requires Ke >= 2, Fe >= 0, 1 + Ke + Fe <= 62.
  LnsFormat(int exp_integer_bits, int exp_frac_bits);

  /// The canonical LNS layout matched to a QK.F fixed-point descriptor:
  /// same word length W = K + F, exponent split chosen so the log grid
  /// covers the QK.F dynamic range — magnitudes from the QK.F
  /// resolution 2^-F down to its square 2^-2F (headroom for products)
  /// up to the QK.F maximum 2^(K-1).  For very short words the split is
  /// clamped so Fe >= 0 (the grid keeps the range, coarsens the
  /// resolution).  Deterministic, so a (K, F) descriptor fully
  /// identifies the LNS layout across serialization.  Requires W >= 4.
  static LnsFormat matched(const FixedFormat& fmt);

  int exp_integer_bits() const { return exp_integer_bits_; }
  int exp_frac_bits() const { return exp_frac_bits_; }
  /// E = Ke + Fe, the exponent field width.
  int exp_bits() const { return exp_integer_bits_ + exp_frac_bits_; }
  /// W = 1 + E.
  int word_length() const { return 1 + exp_bits(); }

  /// Exponent raw range.  The most negative code is the zero flag;
  /// nonzero magnitudes use [exp_raw_min() + 1, exp_raw_max()].
  std::int64_t exp_raw_min() const;
  std::int64_t exp_raw_max() const;
  /// Smallest nonzero exponent code, exp_raw_min() + 1.
  std::int64_t exp_raw_min_normal() const { return exp_raw_min() + 1; }

  /// Smallest/largest representable nonzero magnitude.
  double min_magnitude() const;
  double max_magnitude() const;

  /// "L<W>e<Ke>.<Fe>" display form (e.g. "L8e4.3").
  std::string to_string() const;

  friend bool operator==(const LnsFormat& a, const LnsFormat& b) {
    return a.exp_integer_bits_ == b.exp_integer_bits_ &&
           a.exp_frac_bits_ == b.exp_frac_bits_;
  }
  friend bool operator!=(const LnsFormat& a, const LnsFormat& b) {
    return !(a == b);
  }

 private:
  int exp_integer_bits_;
  int exp_frac_bits_;
};

/// One unpacked LNS value.  `exp_raw` is meaningful only when !zero.
struct LnsValue {
  bool zero = true;
  bool negative = false;
  std::int64_t exp_raw = 0;
};

/// The canonical raw word for exact zero (sign 0, zero-flag exponent
/// code), sign-extended into W-bit two's complement like every raw word
/// this module produces.
std::int64_t lns_zero_word(const LnsFormat& fmt);

/// Packs an unpacked value into its W-bit raw word (sign-extended int64
/// representative, so LNS words travel through the same buffers, ROM
/// sections, and wire fields as two's-complement words).
std::int64_t lns_pack(const LnsFormat& fmt, const LnsValue& value);

/// Unpacks a raw word (only the low W bits are read, so sign-extended
/// and zero-extended representatives decode identically).  A zero-flag
/// exponent code decodes as exact zero regardless of the sign bit.
LnsValue lns_unpack(const LnsFormat& fmt, std::int64_t raw);

/// Quantizes a real value to the nearest log-grid point under `mode`
/// (rounding happens in the log domain, i.e. on the exponent's
/// fixed-point grid).  Magnitudes below the smallest representable
/// nonzero magnitude flush to exact zero; magnitudes above the largest
/// (including ±inf) saturate to it.  NaN throws InvalidArgumentError.
/// Monotone in `value` for the nearest-rounding modes (asserted by
/// tests/lns/lns_format_test.cpp).
std::int64_t lns_quantize(const LnsFormat& fmt, double value,
                          RoundingMode mode = RoundingMode::kNearestEven);

/// Real value of a raw LNS word.
double lns_to_real(const LnsFormat& fmt, std::int64_t raw);

/// Value-order comparison a >= b on raw words (the LNS comparator:
/// sign/zero resolve first, then exponent order, inverted for two
/// negatives).  Total order consistent with lns_to_real.
bool lns_ge(const LnsFormat& fmt, std::int64_t a, std::int64_t b);

/// Log-domain addition of two unpacked values — the Mitchell
/// approximation the LNS accumulator implements, exposed so tests and
/// the RTL generator share one definition:
///
///   |a| >= |b|, d = e_a - e_b (exponent raw units).  The aligned
///   addend r = 2^-(d·2^-Fe) is formed with Mitchell's antilog
///   (2^f ≈ 1 + f on [0,1]):  r_raw = (2^(Fe+1) - d_frac) >> (d_int+1)
///   with round-to-nearest-even at the shift.  Same signs:
///   log2(1 + r) ≈ r (Mitchell log), so e = e_a + r_raw.  Opposite
///   signs: y = 1 - r is renormalized to m · 2^-k, m ∈ [1, 2), and
///   log2(y) ≈ -k + (m - 1), so e = e_a - k·2^Fe + (m_raw - 2^Fe);
///   d = 0 cancels to exact zero.  Every step is integer arithmetic.
///
///   Error bound: Mitchell's log and antilog each err by at most
///   0.0861 in the exponent (attained near x = 1/ln2 - 1), and the
///   alignment shift rounds within 2^-Fe/2, so one addition perturbs
///   the result exponent by at most 0.1722 + 2^-(Fe+1) + the exponent
///   grid's own half-ulp — a relative magnitude error of at most
///   2^(0.1722 + 2^-Fe) - 1 (≈ 12.7% + O(2^-Fe)) per step, amplified
///   at catastrophic cancellation (d small, opposite signs) like every
///   LNS adder without a wide correction table.  DESIGN.md §16 carries
///   the derivation.
LnsValue lns_add(const LnsFormat& fmt, const LnsValue& a, const LnsValue& b);

/// LNS dot product over raw words: multiplies become exponent
/// additions, accumulation runs left to right through lns_add — a fixed
/// sequential order, so the result is a pure function of the operands
/// (bit-identical at any thread count).  `acc` selects the accumulator
/// register model: kWide keeps the running exponent in an unclamped
/// guard-bit register and saturates to the storage grid once at the
/// end; kNarrow saturates after every addition.  Diagnostics map the
/// fixed-point taxonomy onto LNS events: product_overflows counts
/// exponent-adder saturations (the LNS analog of a product leaving the
/// range; LNS hardware clamps instead of wrapping), accumulator_wraps
/// counts accumulator saturations, final_overflow reports a saturated
/// final magnitude.
std::int64_t lns_dot_raw(const LnsFormat& fmt, const std::int64_t* w,
                         const std::int64_t* x, std::size_t n,
                         AccumulatorMode acc = AccumulatorMode::kWide,
                         DotDiagnostics* diag = nullptr);

}  // namespace ldafp::fixed
