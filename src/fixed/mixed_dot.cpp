#include "fixed/mixed_dot.h"

#include <algorithm>

#include "support/error.h"

namespace ldafp::fixed {

MixedFormat::MixedFormat(int integer_bits, std::vector<int> frac_bits)
    : integer_bits_(integer_bits), frac_bits_(std::move(frac_bits)) {
  LDAFP_CHECK(integer_bits_ >= 1, "mixed format needs K >= 1");
  LDAFP_CHECK(!frac_bits_.empty(), "mixed format needs >= 1 element");
  for (const int f : frac_bits_) {
    LDAFP_CHECK(f >= 0, "fractional bits must be >= 0");
    max_frac_ = std::max(max_frac_, f);
  }
  LDAFP_CHECK(integer_bits_ + max_frac_ <= 62,
              "mixed format word too wide");
}

FixedFormat MixedFormat::element_format(std::size_t m) const {
  LDAFP_CHECK(m < size(), "mixed format index out of range");
  return FixedFormat(integer_bits_, frac_bits_[m]);
}

int MixedFormat::total_bits() const {
  int total = 0;
  for (const int f : frac_bits_) total += integer_bits_ + f;
  return total;
}

linalg::Vector MixedFormat::snap(const linalg::Vector& w,
                                 RoundingMode mode) const {
  LDAFP_CHECK(w.size() == size(), "mixed snap dimension mismatch");
  linalg::Vector out(w.size());
  for (std::size_t m = 0; m < w.size(); ++m) {
    out[m] = element_format(m).round_to_grid(w[m], mode);
  }
  return out;
}

bool MixedFormat::on_grid(const linalg::Vector& w) const {
  LDAFP_CHECK(w.size() == size(), "mixed on_grid dimension mismatch");
  for (std::size_t m = 0; m < w.size(); ++m) {
    if (!element_format(m).representable(w[m])) return false;
  }
  return true;
}

Fixed mixed_dot_datapath(const MixedFormat& layout,
                         const linalg::Vector& weights,
                         const linalg::Vector& x,
                         const FixedFormat& feature_fmt, RoundingMode mode,
                         DotDiagnostics* diag) {
  LDAFP_CHECK(weights.size() == layout.size() && x.size() == layout.size(),
              "mixed dot dimension mismatch");
  LDAFP_CHECK(feature_fmt.integer_bits() == layout.integer_bits(),
              "feature format must share the layout's integer bits");
  LDAFP_CHECK(layout.on_grid(weights),
              "weights must be on their per-element grids");
  const int acc_frac = layout.max_frac_bits() + feature_fmt.frac_bits();
  LDAFP_CHECK(layout.integer_bits() + acc_frac <= 62,
              "mixed accumulator too wide");
  const FixedFormat acc_fmt(layout.integer_bits(), acc_frac);

  std::int64_t acc = 0;
  std::int64_t exact_sum = 0;
  for (std::size_t m = 0; m < layout.size(); ++m) {
    const FixedFormat wfmt = layout.element_format(m);
    const std::int64_t w_raw = wfmt.quantize_saturate(weights[m], mode);
    const std::int64_t x_raw = feature_fmt.quantize_saturate(x[m], mode);
    // Product at scale 2^-(F_m + F_x); align to the accumulator scale.
    const std::int64_t product =
        (w_raw * x_raw) << (layout.max_frac_bits() - wfmt.frac_bits());
    if (diag != nullptr &&
        (product < acc_fmt.raw_min() || product > acc_fmt.raw_max())) {
      ++diag->product_overflows;
    }
    exact_sum += product;
    const std::int64_t next = acc + product;
    const std::int64_t wrapped = acc_fmt.wrap_raw(next);
    if (diag != nullptr && wrapped != next) ++diag->accumulator_wraps;
    acc = wrapped;
  }
  if (diag != nullptr) {
    diag->final_overflow =
        exact_sum < acc_fmt.raw_min() || exact_sum > acc_fmt.raw_max();
  }
  // Output stage: round the accumulator down to the feature format.
  const std::int64_t narrowed =
      Fixed::narrow_raw(acc, layout.max_frac_bits(), mode);
  return Fixed::from_raw(feature_fmt, narrowed);
}

}  // namespace ldafp::fixed
