// Mixed-format MAC datapath: per-weight fractional widths.
//
// The paper notes (Sec. 3) that "different elements of the weight vector
// can be assigned different word lengths" and leaves word-length
// optimization as future work; core/bit_allocation.h implements that
// optimizer and this is its hardware model.  Weights share K integer
// bits but each w_m carries its own F_m fractional bits (a cheaper ROM
// and multiplier for coarse weights); features arrive in a common QK.F_x
// format.  Products at scale 2^-(F_m+F_x) are left-shifted to the common
// scale 2^-(F_max+F_x) (a fixed wiring, not a barrel shifter), then
// accumulated in a wide wrapping register and rounded once into QK.F_x.
#pragma once

#include <cstdint>
#include <vector>

#include "fixed/dot.h"
#include "fixed/format.h"
#include "linalg/vector.h"

namespace ldafp::fixed {

/// Per-weight fixed-point layout: shared integer bits, per-element
/// fractional bits.
class MixedFormat {
 public:
  /// Creates the layout.  Requires K >= 1, every F_m >= 0, and the
  /// accumulator width K + max(F_m) + F_x <= 62 (checked at dot time).
  MixedFormat(int integer_bits, std::vector<int> frac_bits);

  int integer_bits() const { return integer_bits_; }
  std::size_t size() const { return frac_bits_.size(); }
  int frac_bits(std::size_t m) const { return frac_bits_[m]; }
  const std::vector<int>& frac_bits() const { return frac_bits_; }
  int max_frac_bits() const { return max_frac_; }

  /// Per-element scalar format QK.F_m.
  FixedFormat element_format(std::size_t m) const;

  /// Total weight-storage bits Σ (K + F_m) — the cost the allocator
  /// spends.
  int total_bits() const;

  /// Rounds a real weight vector onto the per-element grids (saturating).
  linalg::Vector snap(const linalg::Vector& w,
                      RoundingMode mode = RoundingMode::kNearestEven) const;

  /// True when every element is exactly representable in its format.
  bool on_grid(const linalg::Vector& w) const;

 private:
  int integer_bits_;
  std::vector<int> frac_bits_;
  int max_frac_ = 0;
};

/// Mixed-format dot product against features in `feature_fmt` (must share
/// the integer-bit count).  Weights must be on their grids.  Result is in
/// `feature_fmt`.  Diagnostics as in dot_datapath.
Fixed mixed_dot_datapath(const MixedFormat& layout,
                         const linalg::Vector& weights,
                         const linalg::Vector& x,
                         const FixedFormat& feature_fmt,
                         RoundingMode mode = RoundingMode::kNearestEven,
                         DotDiagnostics* diag = nullptr);

}  // namespace ldafp::fixed
