// Rounding modes for float -> fixed-point conversion and for narrowing
// products back to the working format.
#pragma once

namespace ldafp::fixed {

/// How a real value is mapped to the nearest representable grid point.
enum class RoundingMode {
  /// Round to nearest; ties to the even grid point (IEEE default, the
  /// lowest-bias choice and our default).
  kNearestEven,
  /// Round to nearest; ties away from zero (common in DSP hardware).
  kNearestAway,
  /// Truncate toward zero (cheapest hardware, largest bias).
  kTowardZero,
  /// Round toward negative infinity (arithmetic right-shift semantics).
  kFloor,
};

/// Short human-readable name ("nearest-even", ...).
const char* to_string(RoundingMode mode);

}  // namespace ldafp::fixed
