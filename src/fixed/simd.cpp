#include "fixed/simd.h"

#include <atomic>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "fixed/value.h"
#include "support/error.h"

namespace ldafp::fixed::simd {

namespace {

/// Best compiled backend the running CPU supports.
Backend detect_backend() {
#if defined(LDAFP_HAVE_AVX2)
  if (__builtin_cpu_supports("avx2")) return Backend::kAvx2;
#endif
#if defined(LDAFP_HAVE_NEON)
  return Backend::kNeon;
#endif
  return Backend::kScalar;
}

/// LDAFP_SIMD environment selection, resolved once.  Unknown or
/// unavailable values warn once and fall back to detection so a typo in
/// a deployment environment degrades performance, never correctness.
Backend env_or_detected() {
  const char* env = std::getenv("LDAFP_SIMD");
  if (env == nullptr || std::strcmp(env, "auto") == 0 || env[0] == '\0') {
    return detect_backend();
  }
  for (const Backend b :
       {Backend::kScalar, Backend::kAvx2, Backend::kNeon}) {
    if (std::strcmp(env, to_string(b)) == 0) {
      if (backend_available(b)) return b;
      std::fprintf(stderr,
                   "ldafp: LDAFP_SIMD=%s not available on this build/CPU; "
                   "using %s\n",
                   env, to_string(detect_backend()));
      return detect_backend();
    }
  }
  std::fprintf(stderr,
               "ldafp: unknown LDAFP_SIMD=%s (want scalar|avx2|neon|auto); "
               "using %s\n",
               env, to_string(detect_backend()));
  return detect_backend();
}

/// -1 = no override, else static_cast<int>(Backend).
std::atomic<int> g_override{-1};

Backend resolve_backend() {
  const int forced = g_override.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Backend>(forced);
  static const Backend chosen = env_or_detected();
  return chosen;
}

}  // namespace

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kScalar: return "scalar";
    case Backend::kAvx2: return "avx2";
    case Backend::kNeon: return "neon";
  }
  return "?";
}

bool backend_available(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return true;
    case Backend::kAvx2:
#if defined(LDAFP_HAVE_AVX2)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Backend::kNeon:
#if defined(LDAFP_HAVE_NEON)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Backend active_backend() { return resolve_backend(); }

void set_backend_override(Backend backend) {
  LDAFP_CHECK(backend_available(backend),
              "simd backend not compiled in or not supported by this CPU");
  g_override.store(static_cast<int>(backend), std::memory_order_relaxed);
}

void clear_backend_override() {
  g_override.store(-1, std::memory_order_relaxed);
}

DotPlan make_plan(const std::int64_t* weights, std::size_t dim,
                  const FixedFormat& fmt, RoundingMode mode,
                  AccumulatorMode acc) {
  LDAFP_CHECK(weights != nullptr && dim > 0,
              "dot plan needs at least one weight");
  // Signed-overflow envelope of the raw-integer datapath: a product of
  // two W-bit words needs 2W-1 bits and the per-step wrapped accumulator
  // holds K+2F bits, so W <= 31 and K+2F <= 62 keep every intermediate
  // inside int64.  Larger formats are legal FixedFormats but cannot be
  // scored on this datapath (same bound as Fixed::mul_wrap).
  LDAFP_CHECK(fmt.word_length() <= 31,
              "scoring datapath limited to word lengths <= 31 bits "
              "(raw products must fit int64)");
  LDAFP_CHECK(fmt.integer_bits() + 2 * fmt.frac_bits() <= 62,
              "scoring datapath requires K + 2F <= 62");
  DotPlan plan;
  plan.weights = weights;
  plan.dim = dim;
  plan.frac_bits = fmt.frac_bits();
  plan.word_length = fmt.word_length();
  plan.wide_word_length = fmt.integer_bits() + 2 * fmt.frac_bits();
  plan.mode = mode;
  plan.acc = acc;
  // Wrap deferral is safe when the unwrapped sum of all dim terms fits
  // int64 with a sign bit to spare.  Magnitude bound per term:
  //   wide:   |w·x| <= 2^(2W-2)             (exact product)
  //   narrow: |round(w·x / 2^F)| <= 2^(2W-2-F) + 1 <= 2^(2W-1-F)
  const int w = plan.word_length;
  const int term_bits = acc == AccumulatorMode::kWide
                            ? 2 * (w - 1)
                            : 2 * (w - 1) - plan.frac_bits + 1;
  const int dim_bits = std::bit_width(dim);
  plan.defer_safe = term_bits + dim_bits <= 62;
  return plan;
}

void score_tile_scalar(const DotPlan& plan, const std::int64_t* x,
                       std::int64_t* y, std::size_t lanes) {
  const std::int64_t* w = plan.weights;
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    std::int64_t y_raw;
    if (plan.acc == AccumulatorMode::kWide) {
      // Mirrors fixed::dot_wide: exact products at scale 2^-2F, wrapping
      // accumulation in the K.2F register, one final rounding to QK.F.
      std::int64_t acc = 0;
      for (std::size_t m = 0; m < plan.dim; ++m) {
        acc = wrap_word(acc + w[m] * x[m * kLane + lane],
                        plan.wide_word_length);
      }
      y_raw = wrap_word(Fixed::narrow_raw(acc, plan.frac_bits, plan.mode),
                        plan.word_length);
    } else {
      // Mirrors fixed::dot_narrow: every product rounded to QK.F and
      // wrapped, accumulator wraps in QK.F.
      std::int64_t acc = 0;
      for (std::size_t m = 0; m < plan.dim; ++m) {
        const std::int64_t prod =
            wrap_word(Fixed::narrow_raw(w[m] * x[m * kLane + lane],
                                        plan.frac_bits, plan.mode),
                      plan.word_length);
        acc = wrap_word(acc + prod, plan.word_length);
      }
      y_raw = acc;
    }
    y[lane] = y_raw;
  }
}

void score_tile(const DotPlan& plan, const std::int64_t* x, std::int64_t* y,
                std::size_t lanes) {
  // Vector kernels run only full tiles whose wrap sequence is provably
  // deferrable; everything else takes the per-step-wrap reference.
  if (lanes == kLane && plan.defer_safe) {
    switch (resolve_backend()) {
#if defined(LDAFP_HAVE_AVX2)
      case Backend::kAvx2:
        score_tile_avx2(plan, x, y);
        return;
#endif
#if defined(LDAFP_HAVE_NEON)
      case Backend::kNeon:
        score_tile_neon(plan, x, y);
        return;
#endif
      default:
        break;
    }
  }
  score_tile_scalar(plan, x, y, lanes);
}

}  // namespace ldafp::fixed::simd
