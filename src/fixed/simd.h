// Portable SIMD kernels for the batch-scoring hot path (DESIGN.md §14).
//
// The serving path evaluates y_r = Σ_m w_m · x_{r,m} on the QK.F MAC
// datapath for whole batches of samples.  Because fixed-point inference
// is exact integer math, the kernel can be vectorized across samples
// with zero numerical risk: each vector lane executes the same integer
// operation sequence the scalar datapath executes for one sample, so
// lanes cannot change results.  The tests assert bit-identity between
// every compiled backend and the scalar reference across the full
// FixedFormat × RoundingMode × AccumulatorMode sweep.
//
// Layout: batches are packed AoSoA — tiles of kLane samples, feature-
// major within a tile (word (r, m) lives at tile[m * kLane + r % kLane]).
// One tile is the unit of work; a kernel call scores kLane samples.
// kLane is a fixed layout constant (not the vector width of the chosen
// backend) so packed buffers are identical on every architecture.
//
// Wrap deferral: the scalar datapath wraps the accumulator into its
// register width after every addition.  Two's-complement wrapping is
// reduction mod 2^W, and modular reduction commutes with addition, so
// the wraps can all be deferred to one final reduction — provided the
// unwrapped int64 sum cannot overflow (which would be UB, not wrapping).
// make_plan() decides this per classifier (DotPlan::defer_safe) from the
// word length and feature count; when deferral is not provably safe the
// dispatcher falls back to the per-step-wrap scalar reference, keeping
// the vector path exact-by-construction everywhere it runs.
//
// Backends: AVX2 (x86-64, runtime-detected), NEON (aarch64), scalar.
// Dispatch picks the best compiled+supported backend once; tests and the
// CI scalar-fallback leg can force a backend with set_backend_override()
// or the LDAFP_SIMD environment variable (scalar|avx2|neon|auto).
#pragma once

#include <cstddef>
#include <cstdint>

#include "fixed/dot.h"
#include "fixed/format.h"

namespace ldafp::fixed::simd {

/// AoSoA tile width in samples.  A layout constant shared by every
/// backend: AVX2 runs a tile as two 4×int64 vectors, NEON as four
/// 2×int64 vectors, scalar as a lane loop.
inline constexpr std::size_t kLane = 8;

/// Kernel implementation selected at runtime.
enum class Backend { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Short display name ("scalar"/"avx2"/"neon").
const char* to_string(Backend backend);

/// True when `backend` was compiled in and the CPU supports it.
bool backend_available(Backend backend);

/// The backend score_tile dispatches to (override > LDAFP_SIMD env >
/// best detected).
Backend active_backend();

/// Forces a backend for this process (test / bench hook).  Throws
/// InvalidArgumentError when the backend is unavailable.
void set_backend_override(Backend backend);

/// Returns dispatch to automatic detection.
void clear_backend_override();

/// Immutable description of one classifier's dot kernel.  Holds a
/// borrowed pointer to the weight words — build one per score call (it
/// is a handful of ints); do not store it past the weights' lifetime.
struct DotPlan {
  const std::int64_t* weights = nullptr;  ///< dim raw QK.F words
  std::size_t dim = 0;
  int frac_bits = 0;         ///< F
  int word_length = 0;       ///< W = K + F
  int wide_word_length = 0;  ///< K + 2F, the wide accumulator register
  RoundingMode mode = RoundingMode::kNearestEven;
  AccumulatorMode acc = AccumulatorMode::kWide;
  /// True when every intermediate wrap may be deferred to the end of
  /// the reduction without risking int64 overflow (see file comment).
  bool defer_safe = false;
};

/// Validates the format against the scoring datapath's integer-overflow
/// envelope and precomputes the wrap-deferral decision.  Throws
/// InvalidArgumentError unless W <= 31 and K + 2F <= 62 (the bounds
/// under which every raw product and wrapped accumulator step fits
/// int64 — see the signed-overflow audit in tests/fixed/dot_test.cpp).
DotPlan make_plan(const std::int64_t* weights, std::size_t dim,
                  const FixedFormat& fmt, RoundingMode mode,
                  AccumulatorMode acc);

/// Scores `lanes` (1..kLane) samples of one AoSoA tile into y[0..lanes).
/// `x` holds dim * kLane words, feature-major; y receives the QK.F
/// projection words after the datapath's final rounding and wrap.
/// Vector backends run only full tiles (lanes == kLane) with
/// defer_safe plans; everything else takes the scalar reference, so
/// results are bit-identical to FixedClassifier::classify per sample
/// no matter which backend is active.
void score_tile(const DotPlan& plan, const std::int64_t* x, std::int64_t* y,
                std::size_t lanes = kLane);

/// The per-step-wrap scalar reference (exactly the fixed::dot_datapath
/// sequence).  Always available; exposed so tests can pin the baseline.
void score_tile_scalar(const DotPlan& plan, const std::int64_t* x,
                       std::int64_t* y, std::size_t lanes = kLane);

/// Wraps a value into W-bit two's complement (sign-extended
/// representative), the hardware register/adder behaviour.  Same
/// function as FixedFormat::wrap_raw, available without a format object
/// so kernels can call it on hot paths.
constexpr std::int64_t wrap_word(std::int64_t v, int word_length) {
  const int shift = 64 - word_length;
  // C++20 guarantees arithmetic right shift on signed types; the left
  // shift goes through uint64 to avoid signed-overflow UB.
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(v) << shift) >>
         shift;
}

#if defined(LDAFP_HAVE_AVX2)
/// AVX2 kernel (full defer_safe tiles only; compiled with -mavx2 in its
/// own TU, called only after a runtime CPU check).
void score_tile_avx2(const DotPlan& plan, const std::int64_t* x,
                     std::int64_t* y);
#endif
#if defined(LDAFP_HAVE_NEON)
/// NEON kernel (full defer_safe tiles only).
void score_tile_neon(const DotPlan& plan, const std::int64_t* x,
                     std::int64_t* y);
#endif

}  // namespace ldafp::fixed::simd
