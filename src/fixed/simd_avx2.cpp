// AVX2 batch-scoring kernel.  Compiled with -mavx2 in its own TU; the
// dispatcher in simd.cpp calls score_tile_avx2 only after a runtime
// __builtin_cpu_supports("avx2") check, so the rest of the binary stays
// baseline-ISA clean.
//
// One AoSoA tile (kLane = 8 samples) is processed as two 4×int64
// vectors.  Raw words fit int32 (make_plan enforces W <= 31), so the
// exact 64-bit product comes from _mm256_mul_epi32 on the low halves.
// Intermediate wraps are deferred to the end of the reduction — the
// dispatcher only routes defer_safe plans here (see simd.h), which is
// what makes the kernel bit-identical to the per-step-wrap scalar
// reference by modular arithmetic, not by accident of the data.
#include "fixed/simd.h"

#if defined(LDAFP_HAVE_AVX2)

#include <immintrin.h>

namespace ldafp::fixed::simd {

namespace {

/// Arithmetic right shift of 4×int64 by n in [1, 63] (AVX2 has no
/// native 64-bit srai; OR the logical shift with the sign fill).
inline __m256i srai64(__m256i v, int n) {
  const __m256i sign = _mm256_cmpgt_epi64(_mm256_setzero_si256(), v);
  return _mm256_or_si256(_mm256_srli_epi64(v, n),
                         _mm256_slli_epi64(sign, 64 - n));
}

/// wrap_word on 4 lanes: keep the low `w` bits, sign-extended.
inline __m256i wrap64(__m256i v, int w) {
  const int shift = 64 - w;  // w <= 62, so shift >= 2
  return srai64(_mm256_slli_epi64(v, shift), shift);
}

/// Exact product of two int32-range values held in 64-bit lanes.
inline __m256i mul_words(__m256i a, __m256i b) {
  return _mm256_mul_epi32(a, b);
}

/// Fixed::narrow_raw on 4 lanes: drop f low-order bits with rounding.
inline __m256i narrow_round(__m256i v, int f, RoundingMode mode) {
  if (f == 0) return v;
  const __m256i q = srai64(v, f);  // floor(v / 2^f)
  if (mode == RoundingMode::kFloor) return q;
  const __m256i zero = _mm256_setzero_si256();
  const __m256i rem = _mm256_and_si256(
      v, _mm256_set1_epi64x((std::int64_t{1} << f) - 1));  // in [0, 2^f)
  __m256i bump;  // lanes are -1 where floor must be incremented
  switch (mode) {
    case RoundingMode::kTowardZero: {
      // floor + 1 where v < 0 and a remainder exists.
      const __m256i neg = _mm256_cmpgt_epi64(zero, v);
      const __m256i rem_zero = _mm256_cmpeq_epi64(rem, zero);
      bump = _mm256_andnot_si256(rem_zero, neg);
      break;
    }
    case RoundingMode::kNearestAway: {
      const __m256i half = _mm256_set1_epi64x(std::int64_t{1} << (f - 1));
      const __m256i gt = _mm256_cmpgt_epi64(rem, half);
      const __m256i tie = _mm256_cmpeq_epi64(rem, half);
      const __m256i nonneg = _mm256_cmpgt_epi64(v, _mm256_set1_epi64x(-1));
      bump = _mm256_or_si256(gt, _mm256_and_si256(tie, nonneg));
      break;
    }
    case RoundingMode::kNearestEven:
    default: {
      const __m256i one = _mm256_set1_epi64x(1);
      const __m256i half = _mm256_set1_epi64x(std::int64_t{1} << (f - 1));
      const __m256i gt = _mm256_cmpgt_epi64(rem, half);
      const __m256i tie = _mm256_cmpeq_epi64(rem, half);
      const __m256i odd = _mm256_cmpeq_epi64(_mm256_and_si256(q, one), one);
      bump = _mm256_or_si256(gt, _mm256_and_si256(tie, odd));
      break;
    }
  }
  return _mm256_sub_epi64(q, bump);  // q - (-1) = q + 1 on bumped lanes
}

}  // namespace

void score_tile_avx2(const DotPlan& plan, const std::int64_t* x,
                     std::int64_t* y) {
  const std::int64_t* w = plan.weights;
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  if (plan.acc == AccumulatorMode::kWide) {
    for (std::size_t m = 0; m < plan.dim; ++m) {
      const __m256i wv = _mm256_set1_epi64x(w[m]);
      const __m256i x0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(x + m * kLane));
      const __m256i x1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(x + m * kLane + 4));
      acc0 = _mm256_add_epi64(acc0, mul_words(wv, x0));
      acc1 = _mm256_add_epi64(acc1, mul_words(wv, x1));
    }
    acc0 = wrap64(acc0, plan.wide_word_length);
    acc1 = wrap64(acc1, plan.wide_word_length);
    acc0 = narrow_round(acc0, plan.frac_bits, plan.mode);
    acc1 = narrow_round(acc1, plan.frac_bits, plan.mode);
  } else {
    for (std::size_t m = 0; m < plan.dim; ++m) {
      const __m256i wv = _mm256_set1_epi64x(w[m]);
      const __m256i x0 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(x + m * kLane));
      const __m256i x1 = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(x + m * kLane + 4));
      acc0 = _mm256_add_epi64(
          acc0, narrow_round(mul_words(wv, x0), plan.frac_bits, plan.mode));
      acc1 = _mm256_add_epi64(
          acc1, narrow_round(mul_words(wv, x1), plan.frac_bits, plan.mode));
    }
  }
  acc0 = wrap64(acc0, plan.word_length);
  acc1 = wrap64(acc1, plan.word_length);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(y), acc0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(y + 4), acc1);
}

}  // namespace ldafp::fixed::simd

#endif  // LDAFP_HAVE_AVX2
