// NEON batch-scoring kernel (aarch64).  Same structure as the AVX2
// kernel: one AoSoA tile (kLane = 8 samples) as four 2×int64 vectors,
// exact products via the 32×32→64 multiplier (make_plan enforces
// W <= 31 so raw words fit int32), wraps deferred to the end of the
// reduction — the dispatcher only routes defer_safe plans here.
#include "fixed/simd.h"

#if defined(LDAFP_HAVE_NEON)

#include <arm_neon.h>

namespace ldafp::fixed::simd {

namespace {

/// Arithmetic right shift of 2×int64 by n in [1, 63].
inline int64x2_t srai64(int64x2_t v, int n) {
  return vshlq_s64(v, vdupq_n_s64(-n));
}

/// wrap_word on 2 lanes: keep the low `w` bits, sign-extended.
inline int64x2_t wrap64(int64x2_t v, int w) {
  const int shift = 64 - w;  // w <= 62, so shift >= 2
  return srai64(vshlq_s64(v, vdupq_n_s64(shift)), shift);
}

/// Exact product of two int32-range values held in 64-bit lanes.
inline int64x2_t mul_words(int64x2_t a, int64x2_t b) {
  return vmull_s32(vmovn_s64(a), vmovn_s64(b));
}

/// Subtracts an all-ones/all-zeros mask, i.e. adds 1 on set lanes.
inline int64x2_t bump_where(int64x2_t q, uint64x2_t mask) {
  return vsubq_s64(q, vreinterpretq_s64_u64(mask));
}

/// Fixed::narrow_raw on 2 lanes: drop f low-order bits with rounding.
inline int64x2_t narrow_round(int64x2_t v, int f, RoundingMode mode) {
  if (f == 0) return v;
  const int64x2_t q = srai64(v, f);  // floor(v / 2^f)
  if (mode == RoundingMode::kFloor) return q;
  const int64x2_t zero = vdupq_n_s64(0);
  const int64x2_t rem =
      vandq_s64(v, vdupq_n_s64((std::int64_t{1} << f) - 1));  // in [0, 2^f)
  switch (mode) {
    case RoundingMode::kTowardZero: {
      // floor + 1 where v < 0 and a remainder exists.
      const uint64x2_t neg = vcltq_s64(v, zero);
      // NEON has no 64-bit bitwise NOT; complement the r==0 mask via XOR.
      const uint64x2_t has_rem =
          veorq_u64(vceqq_s64(rem, zero), vdupq_n_u64(~std::uint64_t{0}));
      return bump_where(q, vandq_u64(neg, has_rem));
    }
    case RoundingMode::kNearestAway: {
      const int64x2_t half = vdupq_n_s64(std::int64_t{1} << (f - 1));
      const uint64x2_t gt = vcgtq_s64(rem, half);
      const uint64x2_t tie = vceqq_s64(rem, half);
      const uint64x2_t nonneg = vcgeq_s64(v, zero);
      return bump_where(q, vorrq_u64(gt, vandq_u64(tie, nonneg)));
    }
    case RoundingMode::kNearestEven:
    default: {
      const int64x2_t one = vdupq_n_s64(1);
      const int64x2_t half = vdupq_n_s64(std::int64_t{1} << (f - 1));
      const uint64x2_t gt = vcgtq_s64(rem, half);
      const uint64x2_t tie = vceqq_s64(rem, half);
      const uint64x2_t odd = vceqq_s64(vandq_s64(q, one), one);
      return bump_where(q, vorrq_u64(gt, vandq_u64(tie, odd)));
    }
  }
}

}  // namespace

void score_tile_neon(const DotPlan& plan, const std::int64_t* x,
                     std::int64_t* y) {
  const std::int64_t* w = plan.weights;
  int64x2_t acc[4] = {vdupq_n_s64(0), vdupq_n_s64(0), vdupq_n_s64(0),
                      vdupq_n_s64(0)};
  if (plan.acc == AccumulatorMode::kWide) {
    for (std::size_t m = 0; m < plan.dim; ++m) {
      const int64x2_t wv = vdupq_n_s64(w[m]);
      for (int v = 0; v < 4; ++v) {
        const int64x2_t xv = vld1q_s64(x + m * kLane + 2 * v);
        acc[v] = vaddq_s64(acc[v], mul_words(wv, xv));
      }
    }
    for (int v = 0; v < 4; ++v) {
      acc[v] = wrap64(acc[v], plan.wide_word_length);
      acc[v] = narrow_round(acc[v], plan.frac_bits, plan.mode);
    }
  } else {
    for (std::size_t m = 0; m < plan.dim; ++m) {
      const int64x2_t wv = vdupq_n_s64(w[m]);
      for (int v = 0; v < 4; ++v) {
        const int64x2_t xv = vld1q_s64(x + m * kLane + 2 * v);
        acc[v] = vaddq_s64(
            acc[v], narrow_round(mul_words(wv, xv), plan.frac_bits,
                                 plan.mode));
      }
    }
  }
  for (int v = 0; v < 4; ++v) {
    acc[v] = wrap64(acc[v], plan.word_length);
    vst1q_s64(y + 2 * v, acc[v]);
  }
}

}  // namespace ldafp::fixed::simd

#endif  // LDAFP_HAVE_NEON
