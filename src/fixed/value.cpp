#include "fixed/value.h"

#include <cmath>

#include "support/error.h"

namespace ldafp::fixed {

Fixed::Fixed(FixedFormat format) : format_(format), raw_(0) {}

Fixed Fixed::from_raw(FixedFormat format, std::int64_t raw) {
  return Fixed(format, format.wrap_raw(raw));
}

Fixed Fixed::from_real_saturate(FixedFormat format, double value,
                                RoundingMode mode) {
  return Fixed(format, format.quantize_saturate(value, mode));
}

Fixed Fixed::from_real_wrap(FixedFormat format, double value,
                            RoundingMode mode) {
  return Fixed(format, format.quantize_wrap(value, mode));
}

Fixed Fixed::add_wrap(const Fixed& rhs) const {
  LDAFP_CHECK(format_ == rhs.format_, "fixed add: format mismatch");
  // Raw sums of two <=62-bit words fit in int64, so compute exactly and
  // wrap.
  return Fixed(format_, format_.wrap_raw(raw_ + rhs.raw_));
}

Fixed Fixed::sub_wrap(const Fixed& rhs) const {
  LDAFP_CHECK(format_ == rhs.format_, "fixed sub: format mismatch");
  return Fixed(format_, format_.wrap_raw(raw_ - rhs.raw_));
}

Fixed Fixed::negate_wrap() const {
  return Fixed(format_, format_.wrap_raw(-raw_));
}

Fixed Fixed::add_saturate(const Fixed& rhs) const {
  LDAFP_CHECK(format_ == rhs.format_, "fixed add: format mismatch");
  std::int64_t sum = raw_ + rhs.raw_;
  if (sum < format_.raw_min()) sum = format_.raw_min();
  if (sum > format_.raw_max()) sum = format_.raw_max();
  return Fixed(format_, sum);
}

std::int64_t Fixed::narrow_raw(std::int64_t wide, int frac_bits,
                                   RoundingMode mode) {
  if (frac_bits == 0) return wide;
  const std::int64_t unit = std::int64_t{1} << frac_bits;
  // floor division and remainder in [0, unit).
  std::int64_t q = wide >> frac_bits;  // arithmetic shift = floor for 2^k
  const std::int64_t r = wide - (q << frac_bits);
  switch (mode) {
    case RoundingMode::kFloor:
      return q;
    case RoundingMode::kTowardZero:
      // floor for positives; for negatives with a remainder, bump up.
      if (wide < 0 && r != 0) ++q;
      return q;
    case RoundingMode::kNearestAway: {
      const std::int64_t half = unit >> 1;
      if (r > half || (r == half && wide >= 0)) ++q;
      // tie on a negative value rounds away from zero = down = keep floor
      return q;
    }
    case RoundingMode::kNearestEven: {
      const std::int64_t half = unit >> 1;
      if (r > half || (r == half && (q & 1) != 0)) ++q;
      return q;
    }
  }
  return q;
}

Fixed Fixed::mul_wrap(const Fixed& rhs, RoundingMode mode) const {
  LDAFP_CHECK(format_ == rhs.format_, "fixed mul: format mismatch");
  // |raw| < 2^61, so the product can exceed int64 for wide formats; guard
  // by checking word length (<= 31 bits each side is always exact).
  LDAFP_CHECK(format_.word_length() <= 31,
              "fixed mul limited to word lengths <= 31 bits");
  const std::int64_t wide = raw_ * rhs.raw_;  // scale 2^-2F, exact
  const std::int64_t narrowed =
      narrow_raw(wide, format_.frac_bits(), mode);
  return Fixed(format_, format_.wrap_raw(narrowed));
}

Fixed Fixed::mul_saturate(const Fixed& rhs, RoundingMode mode) const {
  LDAFP_CHECK(format_ == rhs.format_, "fixed mul: format mismatch");
  LDAFP_CHECK(format_.word_length() <= 31,
              "fixed mul limited to word lengths <= 31 bits");
  const std::int64_t wide = raw_ * rhs.raw_;
  std::int64_t narrowed = narrow_raw(wide, format_.frac_bits(), mode);
  if (narrowed < format_.raw_min()) narrowed = format_.raw_min();
  if (narrowed > format_.raw_max()) narrowed = format_.raw_max();
  return Fixed(format_, narrowed);
}

bool Fixed::add_overflows(const Fixed& rhs) const {
  LDAFP_CHECK(format_ == rhs.format_, "fixed add: format mismatch");
  const std::int64_t sum = raw_ + rhs.raw_;
  return sum < format_.raw_min() || sum > format_.raw_max();
}

}  // namespace ldafp::fixed
