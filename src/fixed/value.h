// Fixed-point value type with the wrapping two's-complement semantics the
// paper assumes for the on-chip datapath.
//
// Addition/subtraction wrap modulo 2^W — this is what makes the paper's
// observation work that intermediate sums may overflow without corrupting a
// final result that fits (the Q3.0 example "3 + 3 - 4 = 2" in Sec. 3).
// Multiplication computes the exact double-width product and narrows it back
// to the working format with a configurable rounding mode, then wraps.
#pragma once

#include <cstdint>

#include "fixed/format.h"

namespace ldafp::fixed {

/// One QK.F word.  Carries its format; mixed-format arithmetic is a
/// precondition violation (the paper's datapath uses one shared format).
class Fixed {
 public:
  /// Zero in the given format.
  explicit Fixed(FixedFormat format);

  /// Word from a raw two's-complement integer (wrapped into range).
  static Fixed from_raw(FixedFormat format, std::int64_t raw);

  /// Word from a real value, rounded then saturated.
  static Fixed from_real_saturate(
      FixedFormat format, double value,
      RoundingMode mode = RoundingMode::kNearestEven);

  /// Word from a real value, rounded then wrapped (hardware register
  /// load without saturation logic).
  static Fixed from_real_wrap(FixedFormat format, double value,
                              RoundingMode mode = RoundingMode::kNearestEven);

  /// The format this word is encoded in.
  const FixedFormat& format() const { return format_; }

  /// Raw two's-complement integer in [raw_min, raw_max].
  std::int64_t raw() const { return raw_; }

  /// Real value raw * 2^-F.
  double to_real() const { return format_.to_real(raw_); }

  /// Wrapping add: (a + b) mod 2^W.  Formats must match.
  Fixed add_wrap(const Fixed& rhs) const;

  /// Wrapping subtract.  Formats must match.
  Fixed sub_wrap(const Fixed& rhs) const;

  /// Wrapping negate (note: -raw_min wraps back to raw_min, as in
  /// hardware).
  Fixed negate_wrap() const;

  /// Saturating add (clamps at the format limits).  Formats must match.
  Fixed add_saturate(const Fixed& rhs) const;

  /// Multiply: exact double-width product, narrowed to this format with
  /// `mode`, then wrapped.  Formats must match.
  Fixed mul_wrap(const Fixed& rhs,
                 RoundingMode mode = RoundingMode::kNearestEven) const;

  /// Multiply with saturation instead of wrapping on overflow.
  Fixed mul_saturate(const Fixed& rhs,
                     RoundingMode mode = RoundingMode::kNearestEven) const;

  /// True when adding rhs would leave the representable range before
  /// wrapping (i.e. the wrap actually fires).
  bool add_overflows(const Fixed& rhs) const;

  /// Drops `frac_bits` low-order bits from a raw value with rounding —
  /// the multiplier's product-narrowing stage (scale 2^-2F -> 2^-F), also
  /// used by the wide accumulator's final rounding.  Pure integer
  /// arithmetic, no wrapping.
  static std::int64_t narrow_raw(std::int64_t wide, int frac_bits,
                                 RoundingMode mode);

  friend bool operator==(const Fixed& a, const Fixed& b) {
    return a.format_ == b.format_ && a.raw_ == b.raw_;
  }
  friend bool operator!=(const Fixed& a, const Fixed& b) { return !(a == b); }

 private:
  Fixed(FixedFormat format, std::int64_t raw) : format_(format), raw_(raw) {}

  FixedFormat format_;
  std::int64_t raw_;
};

}  // namespace ldafp::fixed
