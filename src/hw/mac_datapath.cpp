#include "hw/mac_datapath.h"

#include "fixed/lns.h"
#include "support/error.h"

namespace ldafp::hw {

MacDatapath::MacDatapath(fixed::FixedFormat fmt,
                         const linalg::Vector& weights, double threshold,
                         fixed::RoundingMode mode, fixed::AccumulatorMode acc,
                         fixed::DatapathKind kind)
    : fmt_(fmt),
      kind_(kind),
      datapath_(fixed::make_datapath(kind, fmt, mode, acc)),
      threshold_word_(datapath_->quantize(threshold)),
      mode_(mode),
      acc_(acc) {
  LDAFP_CHECK(weights.size() > 0, "datapath needs at least one weight");
  weight_words_.reserve(weights.size());
  for (std::size_t m = 0; m < weights.size(); ++m) {
    if (kind_ == fixed::DatapathKind::kTwosComplement) {
      LDAFP_CHECK(fmt_.representable(weights[m]),
                  "weight is not representable in the datapath format");
    }
    weight_words_.push_back(datapath_->quantize(weights[m]));
  }
}

MacTrace MacDatapath::run(const linalg::Vector& x) const {
  LDAFP_CHECK(x.size() == dim(), "feature dimension mismatch");
  return kind_ == fixed::DatapathKind::kTwosComplement
             ? run_twos_complement(x)
             : run_lns(x);
}

MacTrace MacDatapath::run_twos_complement(const linalg::Vector& x) const {
  MacTrace trace;
  // Accumulator register: QK.F in narrow mode, QK.(2F) in wide mode.
  const fixed::FixedFormat acc_fmt =
      acc_ == fixed::AccumulatorMode::kWide
          ? fixed::FixedFormat(fmt_.integer_bits(), 2 * fmt_.frac_bits())
          : fmt_;
  std::int64_t acc = 0;        // raw, wrapped into acc_fmt each cycle
  std::int64_t exact_sum = 0;  // same scale, never wrapped
  for (std::size_t m = 0; m < dim(); ++m) {
    // Input register: quantize the incoming feature (saturating ADC
    // front-end).
    const std::int64_t xm = fmt_.quantize_saturate(x[m], mode_);
    // Multiplier stage: exact product at 2F fractional bits.
    const std::int64_t wide_product = weight_words_[m] * xm;
    std::int64_t product;  // in accumulator scale
    if (acc_ == fixed::AccumulatorMode::kWide) {
      product = wide_product;
      const fixed::FixedFormat wide(fmt_.integer_bits(),
                                    2 * fmt_.frac_bits());
      if (product < wide.raw_min() || product > wide.raw_max()) {
        ++trace.product_overflows;
      }
    } else {
      // Rounding stage narrows the product to QK.F before the adder.
      const std::int64_t narrowed =
          fixed::Fixed::narrow_raw(wide_product, fmt_.frac_bits(), mode_);
      if (narrowed < fmt_.raw_min() || narrowed > fmt_.raw_max()) {
        ++trace.product_overflows;
      }
      product = fmt_.wrap_raw(narrowed);
    }
    // Accumulator register (wrapping adder).
    const std::int64_t next = acc + product;
    const std::int64_t wrapped = acc_fmt.wrap_raw(next);
    if (wrapped != next) ++trace.accumulator_wraps;
    exact_sum += product;
    acc = wrapped;
    ++trace.cycles;
  }
  trace.final_overflow =
      exact_sum < acc_fmt.raw_min() || exact_sum > acc_fmt.raw_max();
  // Output stage: in wide mode the accumulator is rounded to QK.F.
  std::int64_t result = acc;
  if (acc_ == fixed::AccumulatorMode::kWide) {
    result = fmt_.wrap_raw(
        fixed::Fixed::narrow_raw(acc, fmt_.frac_bits(), mode_));
  }
  trace.result_raw = result;
  // Comparator cycle.
  trace.decision_class_a = result >= threshold_word_;
  ++trace.cycles;
  return trace;
}

namespace {

/// The LNS saturation stage: exponents past the top of the storage
/// range clamp (setting `clipped`), exponents below the smallest normal
/// flush to exact zero — the same rule lns_dot_raw applies.
fixed::LnsValue lns_saturate(const fixed::LnsFormat& fmt, bool negative,
                             std::int64_t e, bool* clipped) {
  if (e < fmt.exp_raw_min_normal()) return fixed::LnsValue{};
  if (e > fmt.exp_raw_max()) {
    if (clipped != nullptr) *clipped = true;
    return fixed::LnsValue{false, negative, fmt.exp_raw_max()};
  }
  return fixed::LnsValue{false, negative, e};
}

}  // namespace

MacTrace MacDatapath::run_lns(const linalg::Vector& x) const {
  const fixed::LnsFormat lns = fixed::LnsFormat::matched(fmt_);
  MacTrace trace;
  fixed::LnsValue sum;  // exact zero
  for (std::size_t m = 0; m < dim(); ++m) {
    ++trace.cycles;
    // Input register: quantize onto the log grid (saturating).
    const fixed::LnsValue xm =
        fixed::lns_unpack(lns, fixed::lns_quantize(lns, x[m], mode_));
    const fixed::LnsValue wm = fixed::lns_unpack(lns, weight_words_[m]);
    if (wm.zero || xm.zero) continue;  // product register holds zero
    // Multiplier stage: one exponent add.
    fixed::LnsValue prod;
    prod.zero = false;
    prod.negative = wm.negative != xm.negative;
    prod.exp_raw = wm.exp_raw + xm.exp_raw;
    if (acc_ == fixed::AccumulatorMode::kNarrow) {
      // Narrow datapath: storage-width product register saturates.
      bool clipped = false;
      prod = lns_saturate(lns, prod.negative, prod.exp_raw, &clipped);
      if (clipped) ++trace.product_overflows;
      if (prod.zero) continue;
    }
    // Accumulator register: Mitchell log-domain adder.
    sum = fixed::lns_add(lns, sum, prod);
    if (acc_ == fixed::AccumulatorMode::kNarrow && !sum.zero) {
      bool clipped = false;
      sum = lns_saturate(lns, sum.negative, sum.exp_raw, &clipped);
      if (clipped) ++trace.accumulator_wraps;
    }
  }
  // Output stage: saturate the (wide-mode guard-bit) accumulator to the
  // storage grid.
  std::int64_t result;
  if (sum.zero) {
    result = fixed::lns_zero_word(lns);
  } else {
    bool clipped = false;
    const fixed::LnsValue out =
        lns_saturate(lns, sum.negative, sum.exp_raw, &clipped);
    trace.final_overflow = clipped;
    result = fixed::lns_pack(lns, out);
  }
  trace.result_raw = result;
  // Comparator cycle.
  trace.decision_class_a = fixed::lns_ge(lns, result, threshold_word_);
  ++trace.cycles;
  return trace;
}

}  // namespace ldafp::hw
