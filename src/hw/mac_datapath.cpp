#include "hw/mac_datapath.h"

#include "support/error.h"

namespace ldafp::hw {

MacDatapath::MacDatapath(fixed::FixedFormat fmt,
                         const linalg::Vector& weights, double threshold,
                         fixed::RoundingMode mode,
                         fixed::AccumulatorMode acc)
    : fmt_(fmt),
      threshold_(fixed::Fixed::from_real_saturate(fmt, threshold, mode)),
      mode_(mode),
      acc_(acc) {
  LDAFP_CHECK(weights.size() > 0, "datapath needs at least one weight");
  LDAFP_CHECK(fmt.integer_bits() + 2 * fmt.frac_bits() <= 62,
              "datapath requires K + 2F <= 62");
  weights_.reserve(weights.size());
  for (std::size_t m = 0; m < weights.size(); ++m) {
    LDAFP_CHECK(fmt_.representable(weights[m]),
                "weight is not representable in the datapath format");
    weights_.push_back(fixed::Fixed::from_real_saturate(fmt_, weights[m]));
  }
}

MacTrace MacDatapath::run(const linalg::Vector& x) const {
  LDAFP_CHECK(x.size() == dim(), "feature dimension mismatch");
  MacTrace trace;
  // Accumulator register: QK.F in narrow mode, QK.(2F) in wide mode.
  const fixed::FixedFormat acc_fmt =
      acc_ == fixed::AccumulatorMode::kWide
          ? fixed::FixedFormat(fmt_.integer_bits(), 2 * fmt_.frac_bits())
          : fmt_;
  std::int64_t acc = 0;        // raw, wrapped into acc_fmt each cycle
  std::int64_t exact_sum = 0;  // same scale, never wrapped
  for (std::size_t m = 0; m < dim(); ++m) {
    // Input register: quantize the incoming feature (saturating ADC
    // front-end).
    const fixed::Fixed xm =
        fixed::Fixed::from_real_saturate(fmt_, x[m], mode_);
    // Multiplier stage: exact product at 2F fractional bits.
    const std::int64_t wide_product = weights_[m].raw() * xm.raw();
    std::int64_t product;  // in accumulator scale
    if (acc_ == fixed::AccumulatorMode::kWide) {
      product = wide_product;
      const fixed::FixedFormat wide(fmt_.integer_bits(),
                                    2 * fmt_.frac_bits());
      if (product < wide.raw_min() || product > wide.raw_max()) {
        ++trace.product_overflows;
      }
    } else {
      // Rounding stage narrows the product to QK.F before the adder.
      const std::int64_t narrowed =
          fixed::Fixed::narrow_raw(wide_product, fmt_.frac_bits(), mode_);
      if (narrowed < fmt_.raw_min() || narrowed > fmt_.raw_max()) {
        ++trace.product_overflows;
      }
      product = fmt_.wrap_raw(narrowed);
    }
    // Accumulator register (wrapping adder).
    const std::int64_t next = acc + product;
    const std::int64_t wrapped = acc_fmt.wrap_raw(next);
    if (wrapped != next) ++trace.accumulator_wraps;
    exact_sum += product;
    acc = wrapped;
    ++trace.cycles;
  }
  trace.final_overflow =
      exact_sum < acc_fmt.raw_min() || exact_sum > acc_fmt.raw_max();
  // Output stage: in wide mode the accumulator is rounded to QK.F.
  std::int64_t result = acc;
  if (acc_ == fixed::AccumulatorMode::kWide) {
    result = fmt_.wrap_raw(
        fixed::Fixed::narrow_raw(acc, fmt_.frac_bits(), mode_));
  }
  trace.result_raw = result;
  // Comparator cycle.
  trace.decision_class_a = result >= threshold_.raw();
  ++trace.cycles;
  return trace;
}

}  // namespace ldafp::hw
