// Cycle-level model of the on-chip classifier datapath.
//
// Two circuit families are modeled behind one interface, selected by
// fixed::DatapathKind:
//
//  * Two's complement (the paper's target): a serial multiply-accumulate
//    engine in one shared QK.F format — per cycle one product w_m·x_m is
//    formed, rounded to QK.F, and added (wrapping two's complement) into
//    the accumulator; a final W-bit compare against the stored threshold
//    yields the class bit.
//  * LNS: the multiplier collapses to an exponent adder (one W-1 bit
//    add per product) and the accumulator becomes the Mitchell
//    log-domain adder of fixed/lns.h (shift, two adds, priority encode);
//    saturating instead of wrapping, as LNS hardware clamps.
//
// This module executes the schedule register by register, counts cycles
// and overflow events, and is checked bit-for-bit against the
// functional model (the Datapath dot of fixed/datapath.h) by the test
// suite.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fixed/datapath.h"
#include "fixed/dot.h"
#include "fixed/format.h"
#include "fixed/value.h"
#include "linalg/vector.h"

namespace ldafp::hw {

/// Execution trace of one classification.
struct MacTrace {
  std::int64_t cycles = 0;        ///< MAC cycles + 1 compare cycle
  int product_overflows = 0;      ///< products that wrapped/saturated
  int accumulator_wraps = 0;      ///< adds that wrapped/saturated
  bool final_overflow = false;    ///< exact/final sum left the range
  std::int64_t result_raw = 0;    ///< accumulator at the end (raw word)
  bool decision_class_a = false;  ///< comparator output
};

/// The serial MAC datapath with weight ROM and threshold register.
class MacDatapath {
 public:
  /// Loads the weight ROM.  On the two's-complement backend weights
  /// must be exactly representable; on LNS they are quantized to the
  /// nearest log-grid point (the grid's reals are irrational, so exact
  /// representability is not a meaningful contract there).
  MacDatapath(fixed::FixedFormat fmt, const linalg::Vector& weights,
              double threshold,
              fixed::RoundingMode mode = fixed::RoundingMode::kNearestEven,
              fixed::AccumulatorMode acc = fixed::AccumulatorMode::kWide,
              fixed::DatapathKind kind =
                  fixed::DatapathKind::kTwosComplement);

  const fixed::FixedFormat& format() const { return fmt_; }
  fixed::DatapathKind kind() const { return kind_; }
  std::size_t dim() const { return weight_words_.size(); }

  /// Runs one classification on a real feature vector (features are
  /// quantized on the input interface, saturating).  result_raw and the
  /// decision bit are bit-identical to the functional Datapath's
  /// dot + ge (asserted by tests/hw/mac_datapath_test.cpp and
  /// tests/lns/lns_hw_test.cpp).
  MacTrace run(const linalg::Vector& x) const;

  /// Number of cycles one classification takes (M MACs + 1 compare).
  std::int64_t cycles_per_classification() const {
    return static_cast<std::int64_t>(dim()) + 1;
  }

 private:
  MacTrace run_twos_complement(const linalg::Vector& x) const;
  MacTrace run_lns(const linalg::Vector& x) const;

  fixed::FixedFormat fmt_;
  fixed::DatapathKind kind_;
  std::shared_ptr<const fixed::Datapath> datapath_;
  std::vector<std::int64_t> weight_words_;
  std::int64_t threshold_word_;
  fixed::RoundingMode mode_;
  fixed::AccumulatorMode acc_;
};

}  // namespace ldafp::hw
