// Cycle-level model of the on-chip classifier datapath.
//
// The circuit the paper targets is a serial multiply-accumulate engine in
// one shared QK.F format: per cycle one product w_m·x_m is formed, rounded
// to QK.F, and added (wrapping two's complement) into the accumulator; a
// final W-bit compare against the stored threshold yields the class bit.
// This module executes that schedule register by register, counts cycles
// and overflow events, and is checked bit-for-bit against the functional
// model (fixed::dot_datapath) by the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "fixed/dot.h"
#include "fixed/format.h"
#include "fixed/value.h"
#include "linalg/vector.h"

namespace ldafp::hw {

/// Execution trace of one classification.
struct MacTrace {
  std::int64_t cycles = 0;        ///< MAC cycles + 1 compare cycle
  int product_overflows = 0;      ///< products that wrapped after narrowing
  int accumulator_wraps = 0;      ///< adds that wrapped
  bool final_overflow = false;    ///< exact sum of products left the range
  std::int64_t result_raw = 0;    ///< accumulator at the end (two's compl.)
  bool decision_class_a = false;  ///< comparator output
};

/// The serial MAC datapath with weight ROM and threshold register.
class MacDatapath {
 public:
  /// Loads the weight ROM.  Weights must be exactly representable.
  MacDatapath(fixed::FixedFormat fmt, const linalg::Vector& weights,
              double threshold,
              fixed::RoundingMode mode = fixed::RoundingMode::kNearestEven,
              fixed::AccumulatorMode acc = fixed::AccumulatorMode::kWide);

  const fixed::FixedFormat& format() const { return fmt_; }
  std::size_t dim() const { return weights_.size(); }

  /// Runs one classification on a real feature vector (features are
  /// quantized on the input interface, saturating).
  MacTrace run(const linalg::Vector& x) const;

  /// Number of cycles one classification takes (M MACs + 1 compare).
  std::int64_t cycles_per_classification() const {
    return static_cast<std::int64_t>(dim()) + 1;
  }

 private:
  fixed::FixedFormat fmt_;
  std::vector<fixed::Fixed> weights_;
  fixed::Fixed threshold_;
  fixed::RoundingMode mode_;
  fixed::AccumulatorMode acc_;
};

}  // namespace ldafp::hw
