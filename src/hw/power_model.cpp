#include "hw/power_model.h"

#include "support/error.h"

namespace ldafp::hw {

PowerModel::PowerModel(PowerModelOptions options) : options_(options) {
  LDAFP_CHECK(options_.quadratic_coeff >= 0.0 && options_.linear_coeff >= 0.0,
              "power model coefficients must be non-negative");
  LDAFP_CHECK(options_.quadratic_coeff > 0.0 || options_.linear_coeff > 0.0,
              "power model must have a positive term");
}

double PowerModel::power(int word_length) const {
  LDAFP_CHECK(word_length >= 1, "word length must be >= 1");
  const double w = static_cast<double>(word_length);
  return options_.quadratic_coeff * w * w + options_.linear_coeff * w;
}

double PowerModel::power_ratio(int baseline_word_length,
                               int candidate_word_length) const {
  return power(baseline_word_length) / power(candidate_word_length);
}

double PowerModel::energy_per_classification(int word_length,
                                             std::int64_t cycles) const {
  LDAFP_CHECK(cycles >= 0, "cycle count must be non-negative");
  return power(word_length) * static_cast<double>(cycles);
}

}  // namespace ldafp::hw
