#include "hw/power_model.h"

#include <algorithm>
#include <cmath>

#include "support/error.h"

namespace ldafp::hw {

PowerModel::PowerModel(PowerModelOptions options) : options_(options) {
  LDAFP_CHECK(options_.quadratic_coeff >= 0.0 && options_.linear_coeff >= 0.0,
              "power model coefficients must be non-negative");
  LDAFP_CHECK(options_.quadratic_coeff > 0.0 || options_.linear_coeff > 0.0,
              "power model must have a positive term");
  LDAFP_CHECK(options_.lns_mul_coeff >= 0.0 &&
                  options_.lns_add_coeff >= 0.0 &&
                  options_.lns_lut_coeff >= 0.0,
              "power model coefficients must be non-negative");
  LDAFP_CHECK(options_.lns_mul_coeff > 0.0 || options_.lns_add_coeff > 0.0 ||
                  options_.lns_lut_coeff > 0.0,
              "LNS power model must have a positive term");
  LDAFP_CHECK(options_.lns_lut_cap_bits >= 0,
              "LUT cap must be non-negative");
}

double PowerModel::power(int word_length) const {
  return power(fixed::DatapathKind::kTwosComplement, word_length);
}

double PowerModel::power(fixed::DatapathKind kind, int word_length) const {
  LDAFP_CHECK(word_length >= 1, "word length must be >= 1");
  const double w = static_cast<double>(word_length);
  switch (kind) {
    case fixed::DatapathKind::kTwosComplement:
      return options_.quadratic_coeff * w * w + options_.linear_coeff * w;
    case fixed::DatapathKind::kLns: {
      const int lut_bits =
          std::min(word_length - 1, options_.lns_lut_cap_bits);
      const double lut = options_.lns_lut_coeff == 0.0
                             ? 0.0
                             : options_.lns_lut_coeff * std::exp2(lut_bits);
      return (options_.lns_mul_coeff + options_.lns_add_coeff) * w + lut;
    }
  }
  throw InvalidArgumentError("power: unknown datapath kind");
}

double PowerModel::power_ratio(int baseline_word_length,
                               int candidate_word_length) const {
  return power(baseline_word_length) / power(candidate_word_length);
}

double PowerModel::power_ratio(fixed::DatapathKind baseline_kind,
                               int baseline_word_length,
                               fixed::DatapathKind candidate_kind,
                               int candidate_word_length) const {
  return power(baseline_kind, baseline_word_length) /
         power(candidate_kind, candidate_word_length);
}

double PowerModel::energy_per_classification(int word_length,
                                             std::int64_t cycles) const {
  return energy_per_classification(fixed::DatapathKind::kTwosComplement,
                                   word_length, cycles);
}

double PowerModel::energy_per_classification(fixed::DatapathKind kind,
                                             int word_length,
                                             std::int64_t cycles) const {
  LDAFP_CHECK(cycles >= 0, "cycle count must be non-negative");
  return power(kind, word_length) * static_cast<double>(cycles);
}

}  // namespace ldafp::hw
