// Analytic power/energy/area model for the fixed-point classifier.
//
// The paper's power claims rest on one rule (Sec. 5.1, citing Padgett &
// Anderson [13]): the power of on-chip fixed-point arithmetic is almost a
// quadratic function of the word length.  A W-bit array multiplier has
// O(W²) full adders, which dominates the MAC; the W-bit ripple adder and
// registers add an O(W) term.  We expose both the paper's pure-quadratic
// rule and a slightly richer quadratic+linear model, plus the derived
// ratios ("3x shorter words -> 9x less power").
#pragma once

#include <cstdint>

namespace ldafp::hw {

/// Coefficients of P(W) = quad · W² + lin · W  (arbitrary units unless
/// calibrated; only ratios are meaningful, as in the paper).
struct PowerModelOptions {
  double quadratic_coeff = 1.0;  ///< multiplier array term
  double linear_coeff = 0.0;     ///< adder/register term (0 = paper's rule)
};

/// The model.
class PowerModel {
 public:
  PowerModel() = default;
  explicit PowerModel(PowerModelOptions options);

  /// Power of a W-bit MAC datapath (arbitrary units).
  double power(int word_length) const;

  /// Power ratio P(baseline) / P(candidate) — "how many times less power
  /// the candidate burns".  The paper's headline: ratio(12, 4) = 9.
  double power_ratio(int baseline_word_length,
                     int candidate_word_length) const;

  /// Energy of one classification: power × cycles (serial MAC: M+1
  /// cycles), in arbitrary units.
  double energy_per_classification(int word_length,
                                   std::int64_t cycles) const;

 private:
  PowerModelOptions options_;
};

}  // namespace ldafp::hw
