// Analytic power/energy/area model for the on-chip classifier.
//
// Two's complement: the paper's power claims rest on one rule (Sec. 5.1,
// citing Padgett & Anderson [13]): the power of on-chip fixed-point
// arithmetic is almost a quadratic function of the word length.  A W-bit
// array multiplier has O(W²) full adders, which dominates the MAC; the
// W-bit ripple adder and registers add an O(W) term.  We expose both the
// paper's pure-quadratic rule and a slightly richer quadratic+linear
// model, plus the derived ratios ("3x shorter words -> 9x less power").
//
// LNS: the multiplier collapses to a (W-1)-bit exponent adder, so the
// MAC loses its quadratic term — cost is linear in W (exponent adder,
// Mitchell shift-and-add log adder, registers) plus the comparison/
// normalization logic.  Classic table-based LNS adders also carry a
// Gaussian-log LUT that grows exponentially with the exponent's
// fractional bits; the Mitchell adder here has none, but the model keeps
// a capped LUT term (default coefficient 0) so table-based designs can
// be explored with the same sweep.  Net effect: fixed wins at very
// short words (no per-word overhead), LNS wins as W grows and the O(W²)
// multiplier takes over — bench/lns_sweep plots the crossover.
#pragma once

#include <cstdint>

#include "fixed/datapath.h"

namespace ldafp::hw {

/// Coefficients of the per-backend power rules (arbitrary units unless
/// calibrated; only ratios are meaningful, as in the paper):
///   two's complement: P(W) = quad · W² + lin · W
///   LNS:              P(W) = (lns_add + lns_mul) · W
///                            + lns_lut · 2^min(W-1, lns_lut_cap_bits)
struct PowerModelOptions {
  double quadratic_coeff = 1.0;  ///< TC multiplier array term
  double linear_coeff = 0.0;     ///< TC adder/register term (0 = paper)
  /// LNS exponent adder (the "multiplier") — one W-bit add.
  double lns_mul_coeff = 0.4;
  /// LNS Mitchell log-adder datapath (align shift, two adds, priority
  /// encoder) + registers, per bit.
  double lns_add_coeff = 2.2;
  /// Optional Gaussian-log LUT term for table-based LNS adders
  /// (0 = the Mitchell adder modeled here, which has no table).
  double lns_lut_coeff = 0.0;
  /// LUT address-width cap (designs fold the table past this).
  int lns_lut_cap_bits = 10;
};

/// The model.
class PowerModel {
 public:
  PowerModel() = default;
  explicit PowerModel(PowerModelOptions options);

  /// Power of a W-bit two's-complement MAC datapath (arbitrary units).
  double power(int word_length) const;

  /// Power of a W-bit MAC on the given backend (arbitrary units).
  double power(fixed::DatapathKind kind, int word_length) const;

  /// Power ratio P(baseline) / P(candidate) — "how many times less power
  /// the candidate burns".  The paper's headline: ratio(12, 4) = 9.
  double power_ratio(int baseline_word_length,
                     int candidate_word_length) const;

  /// Cross-backend power ratio at possibly different word lengths.
  double power_ratio(fixed::DatapathKind baseline_kind,
                     int baseline_word_length,
                     fixed::DatapathKind candidate_kind,
                     int candidate_word_length) const;

  /// Energy of one classification: power × cycles (serial MAC: M+1
  /// cycles), in arbitrary units.
  double energy_per_classification(int word_length,
                                   std::int64_t cycles) const;

  /// Energy of one classification on the given backend.
  double energy_per_classification(fixed::DatapathKind kind, int word_length,
                                   std::int64_t cycles) const;

 private:
  PowerModelOptions options_;
};

}  // namespace ldafp::hw
