#include "hw/rom_image.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace ldafp::hw {
namespace {

/// Hex digits needed for a W-bit word.
int hex_width(const fixed::FixedFormat& fmt) {
  return (fmt.word_length() + 3) / 4;
}

/// Raw word -> zero-padded hex (masked to the word length).
std::string to_hex(std::int64_t raw, const fixed::FixedFormat& fmt) {
  const auto mask =
      (std::uint64_t{1} << fmt.word_length()) - 1;
  const auto bits = static_cast<std::uint64_t>(raw) & mask;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%0*llx", hex_width(fmt),
                static_cast<unsigned long long>(bits));
  return buf;
}

/// Hex -> sign-extended raw word.
std::int64_t from_hex(const std::string& text,
                      const fixed::FixedFormat& fmt) {
  std::uint64_t bits = 0;
  for (const char c : text) {
    if (!std::isxdigit(static_cast<unsigned char>(c))) {
      throw ldafp::IoError("rom image: bad hex word '" + text + "'");
    }
    bits = bits * 16 +
           static_cast<std::uint64_t>(
               std::isdigit(static_cast<unsigned char>(c))
                   ? c - '0'
                   : std::tolower(static_cast<unsigned char>(c)) - 'a' +
                         10);
  }
  if (bits >> fmt.word_length()) {
    throw ldafp::IoError("rom image: word '" + text +
                         "' wider than the format");
  }
  return fmt.wrap_raw(static_cast<std::int64_t>(bits));
}

}  // namespace

RomImage RomImage::from_classifier(const core::FixedClassifier& clf) {
  // The image stores exact QK.F grid reals; a log-grid classifier has
  // no such representation (its grid points are irrational), so LNS
  // models travel through the .ldafp format instead (DESIGN.md §16).
  LDAFP_CHECK(
      clf.datapath_kind() == fixed::DatapathKind::kTwosComplement,
      "rom image: only two's-complement classifiers have a hex ROM form "
      "(save LNS models as .ldafp)");
  RomImage image;
  image.format = clf.format();
  image.weights = clf.weights_real();
  image.threshold = clf.threshold_real();
  return image;
}

core::FixedClassifier RomImage::classifier(
    fixed::RoundingMode mode, fixed::AccumulatorMode acc) const {
  return core::FixedClassifier(format, weights, threshold, mode, acc);
}

std::string rom_image_text(const core::FixedClassifier& clf) {
  LDAFP_CHECK(
      clf.datapath_kind() == fixed::DatapathKind::kTwosComplement,
      "rom image: only two's-complement classifiers have a hex ROM form "
      "(save LNS models as .ldafp)");
  const fixed::FixedFormat& fmt = clf.format();
  std::ostringstream os;
  os << "// ldafp weight ROM\n";
  os << "// format " << fmt.to_string() << "\n";
  os << "// words " << clf.dim() << " weights + 1 threshold\n";
  // The classifier stores its words quantized; emit those bits directly
  // instead of re-quantizing the real values per call.
  for (const fixed::Fixed& w : clf.weights_fixed()) {
    os << to_hex(w.raw(), fmt) << "\n";
  }
  os << to_hex(clf.threshold_fixed().raw(), fmt) << "\n";
  return os.str();
}

void save_rom_image(const std::string& path,
                    const core::FixedClassifier& clf) {
  std::ofstream file(path);
  if (!file) throw ldafp::IoError("rom image: cannot create '" + path + "'");
  file << rom_image_text(clf);
  if (!file) throw ldafp::IoError("rom image: write failed for '" + path +
                                  "'");
}

RomImage parse_rom_image(const std::string& text) {
  std::istringstream stream(text);
  std::string line;
  bool have_format = false;
  std::size_t expected_words = 0;
  fixed::FixedFormat fmt(1, 0);
  std::vector<double> values;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    const std::string t = support::trim(line);
    if (t.empty()) continue;
    if (t.rfind("//", 0) == 0) {
      const auto parts = support::split(t.substr(2), ' ');
      std::vector<std::string> tokens;
      for (const auto& p : parts) {
        if (!support::trim(p).empty()) tokens.push_back(support::trim(p));
      }
      if (tokens.size() >= 2 && tokens[0] == "format") {
        fmt = fixed::FixedFormat::parse(tokens[1]);
        have_format = true;
      }
      if (tokens.size() >= 2 && tokens[0] == "words") {
        expected_words = static_cast<std::size_t>(
            std::stoul(tokens[1])) + 1;  // "+ 1 threshold"
      }
      continue;
    }
    if (!have_format) {
      throw ldafp::IoError("rom image: data before the format header");
    }
    values.push_back(fmt.to_real(from_hex(t, fmt)));
  }
  if (!have_format) throw ldafp::IoError("rom image: missing format header");
  if (values.size() < 2) {
    throw ldafp::IoError("rom image: needs >= 1 weight and a threshold");
  }
  if (expected_words != 0 && values.size() != expected_words) {
    throw ldafp::IoError("rom image: word count does not match header");
  }
  RomImage image;
  image.format = fmt;
  image.threshold = values.back();
  values.pop_back();
  image.weights = linalg::Vector(std::move(values));
  return image;
}

RomImage load_rom_image(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw ldafp::IoError("rom image: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_rom_image(buffer.str());
}

}  // namespace ldafp::hw
