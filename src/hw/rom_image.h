// Weight-ROM image export/import.
//
// The deliverable of LDA-FP training is a set of QK.F words to burn into
// the classifier's weight ROM.  This module serializes a trained
// classifier to the plain-hex format synthesis flows consume ($readmemh
// in Verilog): a comment header recording the format/threshold metadata,
// then one two's-complement word per line, weights first, threshold
// last.  The loader round-trips the image so software and RTL test
// benches score the identical bits.
#pragma once

#include <string>

#include "core/classifier.h"
#include "fixed/format.h"
#include "linalg/vector.h"

namespace ldafp::hw {

/// A parsed ROM image.
struct RomImage {
  fixed::FixedFormat format{1, 0};
  linalg::Vector weights;      ///< exact grid values
  double threshold = 0.0;      ///< exact grid value

  /// Captures a trained classifier's exact bits as an image — the
  /// snapshot hook the serving runtime uses to export/install models
  /// without a text round-trip.
  static RomImage from_classifier(const core::FixedClassifier& clf);

  /// The classifier these bits implement.
  core::FixedClassifier classifier(
      fixed::RoundingMode mode = fixed::RoundingMode::kNearestEven,
      fixed::AccumulatorMode acc = fixed::AccumulatorMode::kWide) const;
};

/// Renders the $readmemh-style image text for a classifier.
std::string rom_image_text(const core::FixedClassifier& clf);

/// Writes the image to `path`.  Throws IoError on failure.
void save_rom_image(const std::string& path,
                    const core::FixedClassifier& clf);

/// Parses image text.  Throws IoError on malformed input.
RomImage parse_rom_image(const std::string& text);

/// Loads an image from `path`.  Throws IoError on failure.
RomImage load_rom_image(const std::string& path);

}  // namespace ldafp::hw
