// Synthesizable Verilog generation for the trained classifier.
//
// Emits the circuit the paper targets as RTL: a serial MAC datapath in
// QK.F with a wrapping wide accumulator (K + 2F bits), a weight ROM
// initialized from the trained coefficients, a final rounding stage, and
// the threshold comparator — one classification every M+1 cycles.  A
// self-checking testbench generator produces golden vectors from the
// cycle-level C++ model (hw::MacDatapath), so RTL simulation directly
// cross-checks this library's arithmetic.
//
// The generated code is plain Verilog-2001 (no vendor primitives); this
// repository validates the *generator* (structure, ROM contents, golden
// vectors) — running an HDL simulator is up to the user's flow.
#pragma once

#include <string>
#include <vector>

#include "core/classifier.h"
#include "linalg/vector.h"

namespace ldafp::hw {

/// Generation knobs.
struct VerilogOptions {
  std::string module_name = "ldafp_classifier";
};

/// The classifier module: streams one feature word per cycle
/// (x_valid/x_data), asserts done with the class-A decision after the
/// compare cycle.
std::string generate_classifier_verilog(const core::FixedClassifier& clf,
                                        const VerilogOptions& options =
                                            VerilogOptions{});

/// A golden input/output pair for the testbench.
struct GoldenVector {
  linalg::Vector features;       ///< real-valued inputs (quantized by TB)
  bool expected_class_a = false; ///< decision from the C++ datapath model
};

/// Builds golden vectors by running the C++ datapath on `inputs`.
std::vector<GoldenVector> make_golden_vectors(
    const core::FixedClassifier& clf,
    const std::vector<linalg::Vector>& inputs);

/// Self-checking testbench: drives each golden vector through the DUT
/// and $fatals on any mismatch.
std::string generate_testbench_verilog(const core::FixedClassifier& clf,
                                       const std::vector<GoldenVector>&
                                           vectors,
                                       const VerilogOptions& options =
                                           VerilogOptions{});

/// Writes module + testbench to `<dir>/<module>.v` and
/// `<dir>/<module>_tb.v`.  Throws IoError on failure.
void save_verilog(const std::string& dir,
                  const core::FixedClassifier& clf,
                  const std::vector<GoldenVector>& vectors,
                  const VerilogOptions& options = VerilogOptions{});

}  // namespace ldafp::hw
