#include "linalg/cholesky.h"

#include <cmath>

#include "support/error.h"

namespace ldafp::linalg {

Cholesky::Cholesky(const Matrix& a) {
  LDAFP_CHECK(a.square(), "cholesky requires a square matrix");
  LDAFP_CHECK(a.is_symmetric(1e-9 * (1.0 + a.norm_max())),
              "cholesky requires a symmetric matrix");
  const std::size_t n = a.rows();
  l_ = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (!(diag > 0.0)) {
      throw ldafp::NumericalError(
          "cholesky: matrix is not positive definite (pivot " +
          std::to_string(diag) + " at index " + std::to_string(j) + ")");
    }
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / ljj;
    }
  }
}

Cholesky Cholesky::with_jitter(const Matrix& a, double jitter,
                               double max_jitter, double* used_jitter) {
  LDAFP_CHECK(jitter >= 0.0 && max_jitter >= jitter,
              "with_jitter requires 0 <= jitter <= max_jitter");
  double current = jitter;
  while (true) {
    Matrix shifted = a;
    for (std::size_t i = 0; i < a.rows(); ++i) shifted(i, i) += current;
    try {
      Cholesky chol(shifted);
      if (used_jitter != nullptr) *used_jitter = current;
      return chol;
    } catch (const ldafp::NumericalError&) {
      if (current >= max_jitter) throw;
      current = current == 0.0 ? 1e-12 : current * 10.0;
      if (current > max_jitter) current = max_jitter;
    }
  }
}

Vector Cholesky::solve(const Vector& b) const {
  return solve_upper(solve_lower(b));
}

Vector Cholesky::solve_lower(const Vector& b) const {
  LDAFP_CHECK(b.size() == size(), "cholesky solve dimension mismatch");
  const std::size_t n = size();
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l_(i, k) * y[k];
    y[i] = s / l_(i, i);
  }
  return y;
}

Vector Cholesky::solve_upper(const Vector& y) const {
  LDAFP_CHECK(y.size() == size(), "cholesky solve dimension mismatch");
  const std::size_t n = size();
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l_(k, i) * x[k];
    x[i] = s / l_(i, i);
  }
  return x;
}

double Cholesky::log_det() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix Cholesky::inverse() const {
  const std::size_t n = size();
  Matrix inv(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    Vector e(n);
    e[c] = 1.0;
    inv.set_col(c, solve(e));
  }
  inv.symmetrize();
  return inv;
}

}  // namespace ldafp::linalg
