// Cholesky (L Lᵀ) factorization of symmetric positive-definite matrices.
//
// Used for: solving the conventional-LDA linear system (Eq. 11 of the
// paper), Newton steps inside the barrier solver, sampling from multivariate
// Gaussians, and log-determinants.
#pragma once

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ldafp::linalg {

/// Lower-triangular Cholesky factor of an SPD matrix.
class Cholesky {
 public:
  /// Factors `a` (must be square and symmetric).  Throws NumericalError
  /// when a pivot is <= 0, i.e. `a` is not positive definite.
  explicit Cholesky(const Matrix& a);

  /// Factors `a + jitter * I`, escalating `jitter` by 10x (up to
  /// `max_jitter`) until the factorization succeeds.  Returns the jitter
  /// actually used through `used_jitter`.  Throws NumericalError when even
  /// the largest jitter fails.
  static Cholesky with_jitter(const Matrix& a, double jitter,
                              double max_jitter, double* used_jitter);

  /// Dimension of the factored matrix.
  std::size_t size() const { return l_.rows(); }

  /// The lower-triangular factor L with A = L Lᵀ.
  const Matrix& factor() const { return l_; }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Solves L y = b (forward substitution).
  Vector solve_lower(const Vector& b) const;

  /// Solves Lᵀ x = y (backward substitution).
  Vector solve_upper(const Vector& y) const;

  /// log(det(A)) = 2 * sum(log(L_ii)).
  double log_det() const;

  /// A⁻¹ formed column-by-column (small systems only).
  Matrix inverse() const;

 private:
  Cholesky() = default;
  Matrix l_;
};

}  // namespace ldafp::linalg
