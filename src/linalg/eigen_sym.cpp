#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.h"

namespace ldafp::linalg {

SymmetricEigen eigen_symmetric(const Matrix& a) {
  LDAFP_CHECK(a.square(), "eigen_symmetric requires a square matrix");
  LDAFP_CHECK(a.is_symmetric(1e-9 * (1.0 + a.norm_max())),
              "eigen_symmetric requires a symmetric matrix");
  const std::size_t n = a.rows();
  Matrix d = a;
  d.symmetrize();
  Matrix v = Matrix::identity(n);

  const int max_sweeps = 100;
  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Sum of off-diagonal magnitudes decides convergence.
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += std::fabs(d(p, q));
    }
    if (off == 0.0) break;
    const double threshold =
        sweep < 3 ? 0.2 * off / static_cast<double>(n * n) : 0.0;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = d(p, q);
        const double small = 100.0 * std::fabs(apq);
        // Skip rotations that cannot change the diagonal at double
        // precision.
        if (sweep > 3 &&
            small <= 1e-15 * std::fabs(d(p, p)) &&
            small <= 1e-15 * std::fabs(d(q, q))) {
          d(p, q) = 0.0;
          d(q, p) = 0.0;
          continue;
        }
        if (std::fabs(apq) <= threshold) continue;

        const double theta = (d(q, q) - d(p, p)) / (2.0 * apq);
        double t;
        if (std::fabs(theta) > 1e12) {
          t = 0.5 / theta;
        } else {
          t = 1.0 / (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
          if (theta < 0.0) t = -t;
        }
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        const double tau = s / (1.0 + c);

        const double dpp = d(p, p);
        const double dqq = d(q, q);
        d(p, p) = dpp - t * apq;
        d(q, q) = dqq + t * apq;
        d(p, q) = 0.0;
        d(q, p) = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
          if (i != p && i != q) {
            const double dip = d(i, p);
            const double diq = d(i, q);
            d(i, p) = dip - s * (diq + tau * dip);
            d(p, i) = d(i, p);
            d(i, q) = diq + s * (dip - tau * diq);
            d(q, i) = d(i, q);
          }
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = vip - s * (viq + tau * vip);
          v(i, q) = viq + s * (vip - tau * viq);
        }
      }
    }
    if (sweep + 1 == max_sweeps) {
      throw ldafp::NumericalError("eigen_symmetric: jacobi did not converge");
    }
  }

  // Sort ascending, permuting eigenvector columns alongside.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return d(i, i) < d(j, j);
  });
  SymmetricEigen out;
  out.eigenvalues = Vector(n);
  out.eigenvectors = Matrix(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = d(order[j], order[j]);
    out.eigenvectors.set_col(j, v.col(order[j]));
  }
  return out;
}

Matrix project_psd(const Matrix& a, double floor) {
  LDAFP_CHECK(floor >= 0.0, "project_psd floor must be non-negative");
  const SymmetricEigen eig = eigen_symmetric(a);
  const std::size_t n = a.rows();
  Matrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const double lambda = std::max(eig.eigenvalues[k], floor);
    if (lambda == 0.0) continue;
    const Vector vk = eig.eigenvectors.col(k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        out(i, j) += lambda * vk[i] * vk[j];
      }
    }
  }
  out.symmetrize();
  return out;
}

Matrix sqrt_psd(const Matrix& a, double tol) {
  const SymmetricEigen eig = eigen_symmetric(a);
  const std::size_t n = a.rows();
  Matrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    double lambda = eig.eigenvalues[k];
    if (lambda < -tol * (1.0 + a.norm_max())) {
      throw ldafp::NumericalError("sqrt_psd: matrix has negative eigenvalue " +
                                  std::to_string(lambda));
    }
    lambda = std::max(lambda, 0.0);
    const double root = std::sqrt(lambda);
    if (root == 0.0) continue;
    const Vector vk = eig.eigenvectors.col(k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        out(i, j) += root * vk[i] * vk[j];
      }
    }
  }
  out.symmetrize();
  return out;
}

double condition_number_sym(const Matrix& a) {
  const SymmetricEigen eig = eigen_symmetric(a);
  const double lo = eig.eigenvalues[0];
  const double hi = eig.eigenvalues[eig.eigenvalues.size() - 1];
  if (!(lo > 0.0)) {
    throw ldafp::NumericalError(
        "condition_number_sym: matrix is not positive definite");
  }
  return hi / lo;
}

}  // namespace ldafp::linalg
