// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Needed for: PSD projection of estimated covariance matrices, whitening,
// validating that scatter matrices are well conditioned, and the
// matrix-square-root used by the Gaussian sampler.  Jacobi is slow for very
// large matrices but unbeatable for the small (M <= a few hundred) symmetric
// problems here, and its accuracy on tiny eigenvalues is excellent.
#pragma once

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ldafp::linalg {

/// Result of a symmetric eigendecomposition A = V diag(λ) Vᵀ.
struct SymmetricEigen {
  Vector eigenvalues;   ///< ascending order
  Matrix eigenvectors;  ///< columns match eigenvalues
};

/// Decomposes a symmetric matrix.  Throws InvalidArgumentError when `a` is
/// not square/symmetric; throws NumericalError when Jacobi fails to
/// converge within the internal sweep limit (practically unreachable).
SymmetricEigen eigen_symmetric(const Matrix& a);

/// Projects a symmetric matrix onto the PSD cone by clipping negative
/// eigenvalues to `floor` (>= 0).
Matrix project_psd(const Matrix& a, double floor = 0.0);

/// Symmetric square root A^{1/2} of a PSD matrix (eigenvalues below
/// -tol throw NumericalError; small negatives are clipped to 0).
Matrix sqrt_psd(const Matrix& a, double tol = 1e-9);

/// Spectral condition number λ_max / λ_min of a symmetric PD matrix.
/// Throws NumericalError when λ_min <= 0.
double condition_number_sym(const Matrix& a);

}  // namespace ldafp::linalg
