#include "linalg/lu.h"

#include <cmath>

#include "support/error.h"

namespace ldafp::linalg {

Lu::Lu(const Matrix& a) : lu_(a) {
  LDAFP_CHECK(a.square(), "lu requires a square matrix");
  const std::size_t n = a.rows();
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot: largest magnitude in this column at or below the
    // diagonal.
    std::size_t pivot = col;
    double best = std::fabs(lu_(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double mag = std::fabs(lu_(r, col));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best == 0.0) {
      throw ldafp::NumericalError("lu: matrix is singular at column " +
                                  std::to_string(col));
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(pivot, c), lu_(col, c));
      }
      std::swap(perm_[pivot], perm_[col]);
      sign_ = -sign_;
    }
    const double inv_pivot = 1.0 / lu_(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = lu_(r, col) * inv_pivot;
      lu_(r, col) = factor;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu_(r, c) -= factor * lu_(col, c);
      }
    }
  }
}

Vector Lu::solve(const Vector& b) const {
  LDAFP_CHECK(b.size() == size(), "lu solve dimension mismatch");
  const std::size_t n = size();
  // Forward substitution with the permuted right-hand side (L has a unit
  // diagonal).
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t k = 0; k < i; ++k) s -= lu_(i, k) * y[k];
    y[i] = s;
  }
  // Backward substitution against U.
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= lu_(i, k) * x[k];
    x[i] = s / lu_(i, i);
  }
  return x;
}

Matrix Lu::solve(const Matrix& b) const {
  LDAFP_CHECK(b.rows() == size(), "lu solve dimension mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    x.set_col(c, solve(b.col(c)));
  }
  return x;
}

double Lu::det() const {
  double d = sign_;
  for (std::size_t i = 0; i < size(); ++i) d *= lu_(i, i);
  return d;
}

Matrix Lu::inverse() const { return solve(Matrix::identity(size())); }

double Lu::rcond_estimate() const {
  double min_pivot = std::fabs(lu_(0, 0));
  double max_pivot = min_pivot;
  for (std::size_t i = 1; i < size(); ++i) {
    const double p = std::fabs(lu_(i, i));
    min_pivot = std::min(min_pivot, p);
    max_pivot = std::max(max_pivot, p);
  }
  return max_pivot == 0.0 ? 0.0 : min_pivot / max_pivot;
}

}  // namespace ldafp::linalg
