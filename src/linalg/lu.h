// LU factorization with partial pivoting.
//
// This is the general linear solver behind conventional LDA's Eq. 11 when
// the within-class scatter is indefinite/nearly singular, and behind matrix
// inversion in tests.  Partial pivoting is the classic mitigation for
// elimination round-off the paper alludes to in its introduction.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ldafp::linalg {

/// P A = L U factorization of a square matrix with row partial pivoting.
class Lu {
 public:
  /// Factors `a` (must be square).  Throws NumericalError when a zero
  /// pivot column makes the matrix exactly singular.
  explicit Lu(const Matrix& a);

  /// Dimension of the factored matrix.
  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// det(A), including the pivot sign.
  double det() const;

  /// A⁻¹ (small systems only).
  Matrix inverse() const;

  /// Reciprocal condition estimate in the max norm: a cheap lower bound
  /// based on pivot magnitudes; 0 means numerically singular.
  double rcond_estimate() const;

 private:
  Matrix lu_;                     // L (unit diagonal, below) and U (above)
  std::vector<std::size_t> perm_; // row permutation: solve uses b[perm_[i]]
  int sign_ = 1;
};

}  // namespace ldafp::linalg
