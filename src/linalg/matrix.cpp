#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace ldafp::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    LDAFP_CHECK(row.size() == cols_, "matrix initializer rows ragged");
    data_.insert(data_.end(), row.begin(), row.end());
  }
  count_alloc(data_.size());
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::diagonal(const Vector& diag) {
  Matrix out(diag.size(), diag.size());
  for (std::size_t i = 0; i < diag.size(); ++i) out(i, i) = diag[i];
  return out;
}

Matrix Matrix::outer(const Vector& a, const Vector& b) {
  Matrix out(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < b.size(); ++j) out(i, j) = a[i] * b[j];
  }
  return out;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  LDAFP_CHECK(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  LDAFP_CHECK(r < rows_ && c < cols_, "matrix index out of range");
  return (*this)(r, c);
}

Vector Matrix::row(std::size_t r) const {
  LDAFP_CHECK(r < rows_, "row index out of range");
  Vector out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

Vector Matrix::col(std::size_t c) const {
  LDAFP_CHECK(c < cols_, "col index out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Vector Matrix::diag() const {
  const std::size_t n = std::min(rows_, cols_);
  Vector out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = (*this)(i, i);
  return out;
}

void Matrix::set_row(std::size_t r, const Vector& values) {
  LDAFP_CHECK(r < rows_, "row index out of range");
  LDAFP_CHECK(values.size() == cols_, "set_row dimension mismatch");
  for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = values[c];
}

void Matrix::set_col(std::size_t c, const Vector& values) {
  LDAFP_CHECK(c < cols_, "col index out of range");
  LDAFP_CHECK(values.size() == rows_, "set_col dimension mismatch");
  for (std::size_t r = 0; r < rows_; ++r) (*this)(r, c) = values[r];
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  LDAFP_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
              "matrix += shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  LDAFP_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_,
              "matrix -= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scale) {
  for (auto& v : data_) v *= scale;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  }
  return out;
}

double Matrix::norm_frobenius() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::norm_max() const {
  double s = 0.0;
  for (double v : data_) s = std::max(s, std::fabs(v));
  return s;
}

bool Matrix::is_symmetric(double tol) const {
  if (!square()) return false;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      if (std::fabs((*this)(r, c) - (*this)(c, r)) > tol) return false;
    }
  }
  return true;
}

void Matrix::symmetrize() {
  LDAFP_CHECK(square(), "symmetrize requires a square matrix");
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
  }
}

std::string Matrix::to_string(int digits) const {
  std::ostringstream os;
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c != 0) os << ", ";
      os << support::format_double((*this)(r, c), digits);
    }
    os << (r + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

Matrix operator+(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out += b;
  return out;
}

Matrix operator-(const Matrix& a, const Matrix& b) {
  Matrix out = a;
  out -= b;
  return out;
}

Matrix operator*(double scale, const Matrix& a) {
  Matrix out = a;
  out *= scale;
  return out;
}

Matrix operator*(const Matrix& a, double scale) { return scale * a; }

Vector operator*(const Matrix& a, const Vector& x) {
  LDAFP_CHECK(a.cols() == x.size(), "matvec dimension mismatch");
  Vector out(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) s += a(r, c) * x[c];
    out[r] = s;
  }
  return out;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  LDAFP_CHECK(a.cols() == b.rows(), "matmul dimension mismatch");
  Matrix out(a.rows(), b.cols());
  // i-k-j loop order keeps the inner loop contiguous for row-major data.
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += aik * b(k, j);
      }
    }
  }
  return out;
}

double quadratic_form(const Matrix& a, const Vector& x) {
  LDAFP_CHECK(a.square() && a.rows() == x.size(),
              "quadratic_form dimension mismatch");
  double s = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double rowdot = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) rowdot += a(r, c) * x[c];
    s += x[r] * rowdot;
  }
  return s;
}

Vector transpose_times(const Matrix& a, const Vector& x) {
  LDAFP_CHECK(a.rows() == x.size(), "transpose_times dimension mismatch");
  Vector out(a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < a.cols(); ++c) out[c] += a(r, c) * xr;
  }
  return out;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  LDAFP_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "max_abs_diff shape mismatch");
  double s = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      s = std::max(s, std::fabs(a(r, c) - b(r, c)));
    }
  }
  return s;
}

}  // namespace ldafp::linalg
