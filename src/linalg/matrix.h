// Dense double-precision matrix (row-major).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "linalg/vector.h"

namespace ldafp::linalg {

/// Dense real matrix with value semantics, stored row-major.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Zero matrix of the given shape.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {
    count_alloc(data_.size());
  }

  /// Matrix of the given shape filled with `value`.
  Matrix(std::size_t rows, std::size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {
    count_alloc(data_.size());
  }

  /// Matrix from nested initializer lists; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

#ifdef LDAFP_COUNT_ALLOCS
  Matrix(const Matrix& other)
      : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
    count_alloc(data_.size());
  }
  Matrix& operator=(const Matrix& other) {
    if (this != &other && data_.capacity() < other.data_.size()) {
      count_alloc(other.data_.size());
    }
    rows_ = other.rows_;
    cols_ = other.cols_;
    data_ = other.data_;
    return *this;
  }
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;
#endif

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& diag);

  /// Rank-1 outer product a bᵀ.
  static Matrix outer(const Vector& a, const Vector& b);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }
  /// True when rows() == cols().
  bool square() const { return rows_ == cols_; }

  /// Unchecked element access.
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access (throws InvalidArgumentError).
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Raw row-major storage.
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// Copy of row r as a vector.
  Vector row(std::size_t r) const;
  /// Copy of column c as a vector.
  Vector col(std::size_t c) const;
  /// Copy of the main diagonal (square not required; length = min(r,c)).
  Vector diag() const;

  /// Overwrites row r; dimension must equal cols().
  void set_row(std::size_t r, const Vector& values);
  /// Overwrites column c; dimension must equal rows().
  void set_col(std::size_t c, const Vector& values);

  /// In-place arithmetic; shapes must match.
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double scale);

  /// Transposed copy.
  Matrix transposed() const;

  /// Frobenius norm.
  double norm_frobenius() const;
  /// Max absolute entry.
  double norm_max() const;

  /// True when |A - Aᵀ| <= tol element-wise (requires square()).
  bool is_symmetric(double tol = 1e-12) const;

  /// Replaces A with (A + Aᵀ)/2 (requires square()).
  void symmetrize();

  /// Multi-line string for logging.
  std::string to_string(int digits = 6) const;

 private:
#ifdef LDAFP_COUNT_ALLOCS
  static void count_alloc(std::size_t n) {
    if (n > 0) linalg_alloc_count().fetch_add(1, std::memory_order_relaxed);
  }
#else
  static void count_alloc(std::size_t) {}
#endif

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Element-wise sum/difference; shapes must match.
Matrix operator+(const Matrix& a, const Matrix& b);
Matrix operator-(const Matrix& a, const Matrix& b);
/// Scaling.
Matrix operator*(double scale, const Matrix& a);
Matrix operator*(const Matrix& a, double scale);

/// Matrix-vector product A x; x.size() must equal A.cols().
Vector operator*(const Matrix& a, const Vector& x);

/// Matrix product A B; A.cols() must equal B.rows().
Matrix operator*(const Matrix& a, const Matrix& b);

/// Quadratic form xᵀ A x (requires square A matching x).
double quadratic_form(const Matrix& a, const Vector& x);

/// Aᵀ x without forming the transpose.
Vector transpose_times(const Matrix& a, const Vector& x);

/// Max |a(i,j) - b(i,j)|; shapes must match.
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace ldafp::linalg
