#include "linalg/ops.h"

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/qr.h"
#include "support/error.h"

namespace ldafp::linalg {

Vector solve_spd_or_lu(const Matrix& a, const Vector& b) {
  try {
    return Cholesky(a).solve(b);
  } catch (const ldafp::NumericalError&) {
    return Lu(a).solve(b);
  }
}

double sym_matvec_quad(const Matrix& a, const Vector& x, Vector& out) {
  LDAFP_CHECK(a.square() && a.rows() == x.size() && out.size() == x.size(),
              "sym_matvec_quad dimension mismatch");
  const std::size_t n = x.size();
  double quad = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < n; ++c) s += a(r, c) * x[c];
    out[r] = s;
    quad += x[r] * s;
  }
  return quad;
}

void sym_rank1_update(Matrix& h, double alpha, const Vector& v) {
  LDAFP_CHECK(h.square() && h.rows() == v.size(),
              "sym_rank1_update dimension mismatch");
  const std::size_t n = v.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double avi = alpha * v[i];
    if (avi == 0.0) continue;
    for (std::size_t j = 0; j < n; ++j) h(i, j) += avi * v[j];
  }
}

void add_scaled_matrix(Matrix& h, double alpha, const Matrix& a) {
  LDAFP_CHECK(h.rows() == a.rows() && h.cols() == a.cols(),
              "add_scaled_matrix shape mismatch");
  const std::size_t count = h.rows() * h.cols();
  double* hd = h.data();
  const double* ad = a.data();
  for (std::size_t i = 0; i < count; ++i) hd[i] += alpha * ad[i];
}

bool cholesky_factor_in_place(Matrix& a) {
  LDAFP_CHECK(a.square(), "cholesky_factor_in_place requires square matrix");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (!(diag > 0.0)) return false;
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }
  return true;
}

void cholesky_solve_in_place(const Matrix& l, Vector& b) {
  LDAFP_CHECK(l.square() && l.rows() == b.size(),
              "cholesky_solve_in_place dimension mismatch");
  const std::size_t n = b.size();
  // Forward substitution L y = b, in place.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * b[k];
    b[i] = s / l(i, i);
  }
  // Backward substitution Lᵀ x = y, in place.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l(k, i) * b[k];
    b[i] = s / l(i, i);
  }
}

Matrix random_gaussian_matrix(std::size_t rows, std::size_t cols,
                              support::Rng& rng) {
  Matrix out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) out(r, c) = rng.gaussian();
  }
  return out;
}

Matrix random_orthogonal(std::size_t n, support::Rng& rng) {
  const Matrix g = random_gaussian_matrix(n, n, rng);
  const Qr qr(g);
  Matrix q = qr.thin_q();
  const Matrix r = qr.thin_r();
  // Multiply each column by sign(R_jj) so the distribution does not favor
  // one orientation.
  for (std::size_t j = 0; j < n; ++j) {
    if (r(j, j) < 0.0) {
      for (std::size_t i = 0; i < n; ++i) q(i, j) = -q(i, j);
    }
  }
  return q;
}

Matrix random_spd(std::size_t n, double lambda_min, double lambda_max,
                  support::Rng& rng) {
  LDAFP_CHECK(0.0 < lambda_min && lambda_min <= lambda_max,
              "random_spd requires 0 < lambda_min <= lambda_max");
  const Matrix q = random_orthogonal(n, rng);
  Vector lambda(n);
  for (std::size_t i = 0; i < n; ++i) {
    lambda[i] = rng.uniform(lambda_min, lambda_max);
  }
  Matrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const Vector qk = q.col(k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        out(i, j) += lambda[k] * qk[i] * qk[j];
      }
    }
  }
  out.symmetrize();
  return out;
}

}  // namespace ldafp::linalg
