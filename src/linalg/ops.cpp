#include "linalg/ops.h"

#include "linalg/cholesky.h"
#include "linalg/lu.h"
#include "linalg/qr.h"
#include "support/error.h"

namespace ldafp::linalg {

Vector solve_spd_or_lu(const Matrix& a, const Vector& b) {
  try {
    return Cholesky(a).solve(b);
  } catch (const ldafp::NumericalError&) {
    return Lu(a).solve(b);
  }
}

Matrix random_gaussian_matrix(std::size_t rows, std::size_t cols,
                              support::Rng& rng) {
  Matrix out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) out(r, c) = rng.gaussian();
  }
  return out;
}

Matrix random_orthogonal(std::size_t n, support::Rng& rng) {
  const Matrix g = random_gaussian_matrix(n, n, rng);
  const Qr qr(g);
  Matrix q = qr.thin_q();
  const Matrix r = qr.thin_r();
  // Multiply each column by sign(R_jj) so the distribution does not favor
  // one orientation.
  for (std::size_t j = 0; j < n; ++j) {
    if (r(j, j) < 0.0) {
      for (std::size_t i = 0; i < n; ++i) q(i, j) = -q(i, j);
    }
  }
  return q;
}

Matrix random_spd(std::size_t n, double lambda_min, double lambda_max,
                  support::Rng& rng) {
  LDAFP_CHECK(0.0 < lambda_min && lambda_min <= lambda_max,
              "random_spd requires 0 < lambda_min <= lambda_max");
  const Matrix q = random_orthogonal(n, rng);
  Vector lambda(n);
  for (std::size_t i = 0; i < n; ++i) {
    lambda[i] = rng.uniform(lambda_min, lambda_max);
  }
  Matrix out(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const Vector qk = q.col(k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        out(i, j) += lambda[k] * qk[i] * qk[j];
      }
    }
  }
  out.symmetrize();
  return out;
}

}  // namespace ldafp::linalg
