// Assorted matrix utilities built on the factorizations.
#pragma once

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "support/rng.h"

namespace ldafp::linalg {

/// Solves A x = b for symmetric positive-definite A via Cholesky, falling
/// back to pivoted LU when A is not PD (e.g. semidefinite scatter from
/// degenerate data).  This is the solve used by conventional LDA (Eq. 11).
Vector solve_spd_or_lu(const Matrix& a, const Vector& b);

// --- In-place kernels for the barrier solver's zero-allocation Newton
// --- loop (DESIGN.md §10).  All of them write into caller-owned storage;
// --- none touches the heap.

/// Fused symmetric matvec + quadratic form: writes A x into `out`
/// (which must already have x's dimension) and returns xᵀ A x.
double sym_matvec_quad(const Matrix& a, const Vector& x, Vector& out);

/// h += alpha * v vᵀ (symmetric rank-1 update; shapes must match).
void sym_rank1_update(Matrix& h, double alpha, const Vector& v);

/// h += alpha * a (same shape; no temporary).
void add_scaled_matrix(Matrix& h, double alpha, const Matrix& a);

/// In-place Cholesky: overwrites the lower triangle of `a` (diagonal
/// included) with the factor L of A = L Lᵀ, reading only the lower
/// triangle.  Returns false when a pivot is <= 0, i.e. the matrix is not
/// positive definite — no exception, so hot loops can retry with jitter.
bool cholesky_factor_in_place(Matrix& a);

/// Solves L Lᵀ x = b in place (b becomes x) given a factor produced by
/// cholesky_factor_in_place.
void cholesky_solve_in_place(const Matrix& l, Vector& b);

/// Random matrix with i.i.d. standard normal entries.
Matrix random_gaussian_matrix(std::size_t rows, std::size_t cols,
                              support::Rng& rng);

/// Random orthogonal matrix from the QR factorization of a Gaussian matrix
/// (sign-corrected so the distribution is Haar-like).  Used to build
/// structured covariances in the data generators and tests.
Matrix random_orthogonal(std::size_t n, support::Rng& rng);

/// Random symmetric positive-definite matrix with eigenvalues drawn
/// uniformly from [lambda_min, lambda_max].
Matrix random_spd(std::size_t n, double lambda_min, double lambda_max,
                  support::Rng& rng);

}  // namespace ldafp::linalg
