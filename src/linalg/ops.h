// Assorted matrix utilities built on the factorizations.
#pragma once

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "support/rng.h"

namespace ldafp::linalg {

/// Solves A x = b for symmetric positive-definite A via Cholesky, falling
/// back to pivoted LU when A is not PD (e.g. semidefinite scatter from
/// degenerate data).  This is the solve used by conventional LDA (Eq. 11).
Vector solve_spd_or_lu(const Matrix& a, const Vector& b);

/// Random matrix with i.i.d. standard normal entries.
Matrix random_gaussian_matrix(std::size_t rows, std::size_t cols,
                              support::Rng& rng);

/// Random orthogonal matrix from the QR factorization of a Gaussian matrix
/// (sign-corrected so the distribution is Haar-like).  Used to build
/// structured covariances in the data generators and tests.
Matrix random_orthogonal(std::size_t n, support::Rng& rng);

/// Random symmetric positive-definite matrix with eigenvalues drawn
/// uniformly from [lambda_min, lambda_max].
Matrix random_spd(std::size_t n, double lambda_min, double lambda_max,
                  support::Rng& rng);

}  // namespace ldafp::linalg
