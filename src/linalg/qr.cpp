#include "linalg/qr.h"

#include <cmath>

#include "support/error.h"

namespace ldafp::linalg {

Qr::Qr(const Matrix& a)
    : rows_(a.rows()), cols_(a.cols()), qr_(a), tau_(a.cols()) {
  LDAFP_CHECK(rows_ >= cols_, "qr requires rows >= cols");
  for (std::size_t k = 0; k < cols_; ++k) {
    // Build the Householder reflector annihilating column k below the
    // diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < rows_; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      tau_[k] = 0.0;
      continue;
    }
    const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
    const double vk = qr_(k, k) - alpha;
    qr_(k, k) = alpha;
    // Store v (scaled so v_k = 1) below the diagonal.
    for (std::size_t i = k + 1; i < rows_; ++i) qr_(i, k) /= vk;
    tau_[k] = -vk / alpha;  // classic tau = 2 / (vᵀv) with v_k = 1 scaling
    // Apply the reflector to the remaining columns.
    for (std::size_t j = k + 1; j < cols_; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < rows_; ++i) {
        s += qr_(i, k) * qr_(i, j);
      }
      s *= tau_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < rows_; ++i) {
        qr_(i, j) -= s * qr_(i, k);
      }
    }
  }
}

void Qr::apply_qt(Vector& v) const {
  LDAFP_CHECK(v.size() == rows_, "qr apply dimension mismatch");
  for (std::size_t k = 0; k < cols_; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = v[k];
    for (std::size_t i = k + 1; i < rows_; ++i) s += qr_(i, k) * v[i];
    s *= tau_[k];
    v[k] -= s;
    for (std::size_t i = k + 1; i < rows_; ++i) v[i] -= s * qr_(i, k);
  }
}

Matrix Qr::thin_q() const {
  // Accumulate Q e_j for the first cols_ basis vectors by applying the
  // reflectors in reverse.
  Matrix q(rows_, cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    Vector e(rows_);
    e[j] = 1.0;
    for (std::size_t kk = cols_; kk > 0; --kk) {
      const std::size_t k = kk - 1;
      if (tau_[k] == 0.0) continue;
      double s = e[k];
      for (std::size_t i = k + 1; i < rows_; ++i) s += qr_(i, k) * e[i];
      s *= tau_[k];
      e[k] -= s;
      for (std::size_t i = k + 1; i < rows_; ++i) e[i] -= s * qr_(i, k);
    }
    q.set_col(j, e);
  }
  return q;
}

Matrix Qr::thin_r() const {
  Matrix r(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) r(i, j) = qr_(i, j);
  }
  return r;
}

Vector Qr::solve_least_squares(const Vector& b) const {
  LDAFP_CHECK(b.size() == rows_, "qr solve dimension mismatch");
  Vector y = b;
  apply_qt(y);
  Vector x(cols_);
  for (std::size_t ii = cols_; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    if (qr_(i, i) == 0.0) {
      throw ldafp::NumericalError("qr: rank-deficient least squares");
    }
    double s = y[i];
    for (std::size_t k = i + 1; k < cols_; ++k) s -= qr_(i, k) * x[k];
    x[i] = s / qr_(i, i);
  }
  return x;
}

}  // namespace ldafp::linalg
