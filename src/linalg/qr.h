// Householder QR factorization and least-squares solves.
//
// Used by tests (orthogonality properties, random rotation generation for
// dataset construction) and by the whitening utilities in stats.
#pragma once

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ldafp::linalg {

/// A = Q R with Q orthonormal (rows x rows) and R upper trapezoidal.
/// Requires rows() >= cols() (tall or square).
class Qr {
 public:
  /// Factors `a`.  Throws InvalidArgumentError when rows < cols.
  explicit Qr(const Matrix& a);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Thin Q factor (rows x cols, orthonormal columns).
  Matrix thin_q() const;

  /// Thin R factor (cols x cols, upper triangular).
  Matrix thin_r() const;

  /// Minimum-norm least squares solution of min ||A x - b||_2.
  /// Throws NumericalError when R is numerically singular.
  Vector solve_least_squares(const Vector& b) const;

 private:
  /// Applies Qᵀ to a vector in place.
  void apply_qt(Vector& v) const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Matrix qr_;       // R above the diagonal, Householder vectors below
  Vector tau_;      // Householder scales
};

}  // namespace ldafp::linalg
