#include "linalg/vector.h"

#include <cmath>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace ldafp::linalg {

#ifdef LDAFP_COUNT_ALLOCS
std::atomic<std::uint64_t>& linalg_alloc_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}
#endif

double& Vector::at(std::size_t i) {
  LDAFP_CHECK(i < data_.size(), "vector index out of range");
  return data_[i];
}

double Vector::at(std::size_t i) const {
  LDAFP_CHECK(i < data_.size(), "vector index out of range");
  return data_[i];
}

void Vector::fill(double value) {
  for (auto& v : data_) v = value;
}

Vector& Vector::operator+=(const Vector& rhs) {
  LDAFP_CHECK(size() == rhs.size(), "vector += dimension mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  LDAFP_CHECK(size() == rhs.size(), "vector -= dimension mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs[i];
  return *this;
}

Vector& Vector::operator*=(double scale) {
  for (auto& v : data_) v *= scale;
  return *this;
}

Vector& Vector::operator/=(double scale) {
  for (auto& v : data_) v /= scale;
  return *this;
}

void Vector::axpy(double alpha, const Vector& x) {
  LDAFP_CHECK(size() == x.size(), "axpy dimension mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += alpha * x[i];
}

double Vector::norm2() const {
  // Scaled two-pass form to avoid overflow on extreme inputs.
  double maxabs = 0.0;
  for (double v : data_) maxabs = std::max(maxabs, std::fabs(v));
  if (maxabs == 0.0) return 0.0;
  double sumsq = 0.0;
  for (double v : data_) {
    const double r = v / maxabs;
    sumsq += r * r;
  }
  return maxabs * std::sqrt(sumsq);
}

double Vector::norm1() const {
  double s = 0.0;
  for (double v : data_) s += std::fabs(v);
  return s;
}

double Vector::norm_inf() const {
  double s = 0.0;
  for (double v : data_) s = std::max(s, std::fabs(v));
  return s;
}

double Vector::sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

std::string Vector::to_string(int digits) const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < size(); ++i) {
    if (i != 0) os << ", ";
    os << support::format_double(data_[i], digits);
  }
  os << "]";
  return os.str();
}

Vector operator+(const Vector& a, const Vector& b) {
  Vector out = a;
  out += b;
  return out;
}

Vector operator-(const Vector& a, const Vector& b) {
  Vector out = a;
  out -= b;
  return out;
}

Vector operator-(const Vector& a) {
  Vector out = a;
  out *= -1.0;
  return out;
}

Vector operator*(double scale, const Vector& a) {
  Vector out = a;
  out *= scale;
  return out;
}

Vector operator*(const Vector& a, double scale) { return scale * a; }

Vector operator/(const Vector& a, double scale) {
  Vector out = a;
  out /= scale;
  return out;
}

double dot(const Vector& a, const Vector& b) {
  LDAFP_CHECK(a.size() == b.size(), "dot dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

Vector hadamard(const Vector& a, const Vector& b) {
  LDAFP_CHECK(a.size() == b.size(), "hadamard dimension mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  LDAFP_CHECK(a.size() == b.size(), "max_abs_diff dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s = std::max(s, std::fabs(a[i] - b[i]));
  }
  return s;
}

}  // namespace ldafp::linalg
