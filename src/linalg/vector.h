// Dense double-precision vector.
//
// The entire reproduction works with small dense problems (M <= a few
// hundred features), so a straightforward value-semantic vector over
// std::vector<double> is the right tool: no expression templates, no
// allocator games, predictable performance.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#ifdef LDAFP_COUNT_ALLOCS
#include <atomic>
#include <cstdint>
#endif

namespace ldafp::linalg {

#ifdef LDAFP_COUNT_ALLOCS
/// Debug-only telemetry (builds configured with -DLDAFP_COUNT_ALLOCS=ON):
/// counts every fresh heap buffer acquired by Vector/Matrix, so tests can
/// assert that the barrier solver's workspace-backed Newton loop performs
/// zero steady-state allocations (DESIGN.md §10).  Copy-assignments that
/// reuse existing capacity do not count; moves never count.
std::atomic<std::uint64_t>& linalg_alloc_count();
#endif

/// Dense real vector with value semantics.
class Vector {
 public:
  /// Empty vector.
  Vector() = default;

  /// Zero vector of dimension n.
  explicit Vector(std::size_t n) : data_(n, 0.0) { count_alloc(n); }

  /// Vector of dimension n filled with `value`.
  Vector(std::size_t n, double value) : data_(n, value) { count_alloc(n); }

  /// Vector from an initializer list: Vector{1.0, 2.0}.
  Vector(std::initializer_list<double> values) : data_(values) {
    count_alloc(data_.size());
  }

  /// Vector adopting an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

#ifdef LDAFP_COUNT_ALLOCS
  Vector(const Vector& other) : data_(other.data_) {
    count_alloc(data_.size());
  }
  Vector& operator=(const Vector& other) {
    if (this != &other && data_.capacity() < other.data_.size()) {
      count_alloc(other.data_.size());
    }
    data_ = other.data_;
    return *this;
  }
  Vector(Vector&&) noexcept = default;
  Vector& operator=(Vector&&) noexcept = default;
#endif

  /// Dimension.
  std::size_t size() const { return data_.size(); }
  /// True when size() == 0.
  bool empty() const { return data_.empty(); }

  /// Unchecked element access.
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked element access (throws InvalidArgumentError).
  double& at(std::size_t i);
  double at(std::size_t i) const;

  /// Raw storage access (contiguous).
  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  const std::vector<double>& values() const { return data_; }

  auto begin() { return data_.begin(); }
  auto end() { return data_.end(); }
  auto begin() const { return data_.begin(); }
  auto end() const { return data_.end(); }

  /// Sets every element to `value`.
  void fill(double value);

  /// In-place arithmetic; dimensions must match.
  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double scale);
  Vector& operator/=(double scale);

  /// this += alpha * x (BLAS axpy); dimensions must match.
  void axpy(double alpha, const Vector& x);

  /// Euclidean (L2) norm.
  double norm2() const;
  /// Sum of absolute values (L1 norm).
  double norm1() const;
  /// Max absolute value (L-infinity norm).
  double norm_inf() const;
  /// Sum of elements.
  double sum() const;

  /// "[v0, v1, ...]" with `digits` decimals, for logging.
  std::string to_string(int digits = 6) const;

 private:
#ifdef LDAFP_COUNT_ALLOCS
  static void count_alloc(std::size_t n) {
    if (n > 0) linalg_alloc_count().fetch_add(1, std::memory_order_relaxed);
  }
#else
  static void count_alloc(std::size_t) {}
#endif

  std::vector<double> data_;
};

/// Element-wise sum; dimensions must match.
Vector operator+(const Vector& a, const Vector& b);
/// Element-wise difference; dimensions must match.
Vector operator-(const Vector& a, const Vector& b);
/// Negation.
Vector operator-(const Vector& a);
/// Scaling.
Vector operator*(double scale, const Vector& a);
Vector operator*(const Vector& a, double scale);
Vector operator/(const Vector& a, double scale);

/// Inner product aᵀb; dimensions must match.
double dot(const Vector& a, const Vector& b);

/// Element-wise (Hadamard) product; dimensions must match.
Vector hadamard(const Vector& a, const Vector& b);

/// Max |a[i] - b[i]|; dimensions must match.
double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace ldafp::linalg
