#include "model/drift.h"

#include <algorithm>
#include <cmath>

namespace ldafp::model {

Status DriftOptions::validate() const {
  if (window < 2) return Status::invalid("drift window must be >= 2");
  if (min_scores < 2 || min_scores > window) {
    return Status::invalid("drift min_scores must be in [2, window]");
  }
  if (!(ks_threshold > 0.0) || ks_threshold > 1.0) {
    return Status::invalid("drift ks_threshold must be in (0, 1]");
  }
  if (!(psi_threshold > 0.0)) {
    return Status::invalid("drift psi_threshold must be > 0");
  }
  return Status();
}

DriftDetector::DriftDetector(DriftOptions options)
    : options_(options) {
  throw_if_error(options_.validate());
  live_.reserve(options_.window);
}

void DriftDetector::set_reference(std::vector<double> scores) {
  LDAFP_CHECK(!scores.empty(), "drift reference needs >= 1 score");
  std::sort(scores.begin(), scores.end());
  reference_ = std::move(scores);
  // Interior decile edges of the reference — the PSI bucket cuts.
  decile_edges_.clear();
  const std::size_t n = reference_.size();
  for (std::size_t d = 1; d < 10; ++d) {
    decile_edges_.push_back(reference_[d * n / 10]);
  }
  reset_live();
}

void DriftDetector::observe(double score) {
  if (live_.size() < options_.window) {
    live_.push_back(score);
  } else {
    live_[live_next_] = score;
  }
  live_next_ = (live_next_ + 1) % options_.window;
  ++live_total_;
}

std::size_t DriftDetector::live_count() const { return live_.size(); }

double DriftDetector::ks_statistic() const {
  if (reference_.empty() || live_.empty()) return 0.0;
  std::vector<double> live_sorted = live_;
  std::sort(live_sorted.begin(), live_sorted.end());
  // Classic two-pointer merge: evaluate |F_ref − F_live| after each
  // step of either empirical CDF.
  const double inv_ref = 1.0 / static_cast<double>(reference_.size());
  const double inv_live = 1.0 / static_cast<double>(live_sorted.size());
  std::size_t i = 0;
  std::size_t j = 0;
  double max_gap = 0.0;
  while (i < reference_.size() && j < live_sorted.size()) {
    if (reference_[i] <= live_sorted[j]) {
      ++i;
    } else {
      ++j;
    }
    const double gap = std::fabs(static_cast<double>(i) * inv_ref -
                                 static_cast<double>(j) * inv_live);
    max_gap = std::max(max_gap, gap);
  }
  // Once one side is exhausted the gap only shrinks toward the shared
  // endpoint |1 − F| — already covered by the last in-loop evaluation
  // of the exhausted side, but walk the tail for exactness.
  while (i < reference_.size()) {
    ++i;
    max_gap = std::max(max_gap,
                       std::fabs(static_cast<double>(i) * inv_ref - 1.0));
  }
  while (j < live_sorted.size()) {
    ++j;
    max_gap = std::max(max_gap,
                       std::fabs(1.0 - static_cast<double>(j) * inv_live));
  }
  return max_gap;
}

double DriftDetector::psi() const {
  if (reference_.empty() || live_.empty()) return 0.0;
  const std::size_t buckets = decile_edges_.size() + 1;
  std::vector<std::size_t> ref_counts(buckets, 0);
  std::vector<std::size_t> live_counts(buckets, 0);
  auto bucket_of = [&](double v) {
    const auto it = std::upper_bound(decile_edges_.begin(),
                                     decile_edges_.end(), v);
    return static_cast<std::size_t>(it - decile_edges_.begin());
  };
  for (const double v : reference_) ++ref_counts[bucket_of(v)];
  for (const double v : live_) ++live_counts[bucket_of(v)];
  // Epsilon-floored proportions keep empty buckets finite (standard
  // PSI practice) without letting them dominate.
  const double eps = 1e-4;
  double psi = 0.0;
  for (std::size_t b = 0; b < buckets; ++b) {
    const double p_ref = std::max(
        static_cast<double>(ref_counts[b]) /
            static_cast<double>(reference_.size()), eps);
    const double p_live = std::max(
        static_cast<double>(live_counts[b]) /
            static_cast<double>(live_.size()), eps);
    psi += (p_live - p_ref) * std::log(p_live / p_ref);
  }
  return psi;
}

bool DriftDetector::drifted() const {
  if (reference_.empty() || live_.size() < options_.min_scores) {
    return false;
  }
  return ks_statistic() >= options_.ks_threshold ||
         psi() >= options_.psi_threshold;
}

void DriftDetector::reset_live() {
  live_.clear();
  live_next_ = 0;
}

void DriftDetector::publish(obs::MetricsRegistry& registry,
                            const std::string& model_name) const {
  obs::Labels labels;
  if (!model_name.empty()) labels.push_back({"model", model_name});
  registry.gauge("model.drift.ks", labels).set(ks_statistic());
  registry.gauge("model.drift.psi", labels).set(psi());
  registry.gauge("model.drift.live_scores", labels)
      .set(static_cast<double>(live_.size()));
}

}  // namespace ldafp::model
