// Drift detection on held-out fixed-point score distributions.
//
// The retraining loop needs a trigger: "the scores the serving model
// produces now no longer look like the scores it produced on the data
// it was validated on."  The detector keeps the incumbent's reference
// score distribution (the projections wᵀx on the held-out window,
// captured at promotion time) as a sorted array, streams live serving
// scores into a fixed-capacity ring, and compares the two with the
// two-sample Kolmogorov–Smirnov statistic plus the population
// stability index over reference deciles.  Both are published as
// `model.drift.*` gauges through the obs::Sink seam, so operators see
// the drift trajectory in every metrics snapshot, and both feed the
// drift gate (`drifted()`) that arms a background retrain.
//
// observe() is lock-free single-writer: the serving loop owns the
// detector (one per model); cross-thread use goes through the
// retrainer's lock.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/metrics.h"
#include "support/error.h"

namespace ldafp::model {

/// Detector tuning.
struct DriftOptions {
  /// Live-score ring capacity (statistics use the newest `window`).
  std::size_t window = 512;
  /// Live scores required before drifted() may fire.
  std::size_t min_scores = 128;
  /// KS statistic (sup |F_ref − F_live| ∈ [0,1]) at or above which the
  /// distributions are declared drifted.
  double ks_threshold = 0.15;
  /// PSI at or above which the distributions are declared drifted
  /// (industry folklore: 0.1 = shifting, 0.25 = shifted).
  double psi_threshold = 0.25;

  Status validate() const;
};

/// Two-sample distribution monitor for one serving model.
class DriftDetector {
 public:
  explicit DriftDetector(DriftOptions options = {});

  const DriftOptions& options() const { return options_; }

  /// Installs the incumbent's held-out score sample as the reference
  /// (sorted internally; empties the live window — a new incumbent
  /// starts a fresh comparison).
  void set_reference(std::vector<double> scores);

  bool has_reference() const { return !reference_.empty(); }

  /// Streams one live serving score.
  void observe(double score);

  /// Live scores currently in the window (saturates at window size).
  std::size_t live_count() const;

  /// Two-sample KS statistic between reference and live window;
  /// 0 while either side is empty.
  double ks_statistic() const;

  /// Population stability index over reference deciles; 0 while either
  /// side is empty.
  double psi() const;

  /// True when enough live scores accumulated and either statistic
  /// crossed its threshold.
  bool drifted() const;

  /// Clears the live window only (reference stays).
  void reset_live();

  /// Publishes model.drift.{ks,psi,live_scores} gauges, labeled with
  /// the model name when non-empty.
  void publish(obs::MetricsRegistry& registry,
               const std::string& model_name = "") const;

 private:
  DriftOptions options_;
  std::vector<double> reference_;        ///< sorted
  std::vector<double> decile_edges_;     ///< 9 interior decile cuts
  std::vector<double> live_;             ///< ring buffer
  std::size_t live_next_ = 0;            ///< ring write position
  std::size_t live_total_ = 0;           ///< scores ever observed
};

}  // namespace ldafp::model
