// The versioned on-disk model format (DESIGN.md §13).
//
// A `.ldafp` model file is the durable artifact of training: the exact
// classifier bits (raw QK.F words — never re-quantized reals), the
// per-signal fixed-point formats, and the training provenance that
// justifies deploying them.  Layout, little-endian throughout
// (support/wire.h):
//
//   offset  size  field
//   0       4     magic 0x4D46444C ("LDFM" on disk)
//   4       2     format_version (1 or 2)
//   6       2     section_count
//   8       ...   section_count sections, back to back
//   EOF-4   4     CRC-32 (support/crc32.h) over bytes [0, EOF-4)
//
// Each section is { u16 section_id, u16 reserved = 0, u32 payload_len,
// payload }.  Version policy: any change to the layout of an existing
// section, or a new section a loader cannot ignore, bumps
// format_version; the loader rejects versions above kFormatVersion with
// kBadVersion and rejects section ids its version does not define with
// kBadSection (strict by design — a serving process must never guess at
// model bits).  The saver writes the LOWEST version that can represent
// the model: a two's-complement classifier needs no datapath section
// and is saved as a byte-identical version-1 file an old loader still
// reads; an LNS classifier adds the kDatapath section and bumps the
// file to version 2, which an old loader correctly refuses instead of
// mis-running log-domain words through a QK.F datapath.  A version-2
// file missing the datapath section defaults to two's complement.
//
// The loader's corruption taxonomy mirrors net/protocol's frame
// errors: every failure is an eager, specific code — never a crash,
// never a silently wrong model.  Checks run in a fixed order so each
// corruption maps to one deterministic code: minimum length, magic,
// version, structural section walk (bounds only), CRC over the whole
// body, then payload decoding.  Truncating the file at *any* byte
// offset therefore yields kTruncated; flipping a payload bit yields
// kBadCrc (tests/model/model_io_test.cpp enforces both exhaustively).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ldafp::model {

/// "LDFM" when the u32 is written little-endian.
inline constexpr std::uint32_t kMagic = 0x4D46444C;
/// Newest format version: the loader reads 1..kFormatVersion, the saver
/// writes the lowest version that can represent the model (see the
/// version policy above).
inline constexpr std::uint16_t kFormatVersion = 2;
/// Oldest format version the loader still reads.
inline constexpr std::uint16_t kMinFormatVersion = 1;
/// Fixed header (magic + version + section_count) plus the CRC trailer
/// — the smallest conceivable file.
inline constexpr std::size_t kHeaderBytes = 8;
/// Smallest structurally possible file: header plus the CRC trailer.
inline constexpr std::size_t kMinFileBytes = kHeaderBytes + 4;
/// Bytes of each section header (id + reserved + payload_len).
inline constexpr std::size_t kSectionHeaderBytes = 8;
/// Absolute ceiling on one section payload (a 64k-feature classifier is
/// half a megabyte of words; anything larger is hostile input).
inline constexpr std::size_t kMaxSectionBytes = 1u << 24;

/// Section ids.  kClassifier and kProvenance are version 1; kDatapath
/// joined in version 2 (a version-1 file containing it is kBadSection).
enum class SectionId : std::uint16_t {
  kClassifier = 1,  ///< formats + raw weight/threshold words (mandatory)
  kProvenance = 2,  ///< training lineage (mandatory)
  kDatapath = 3,    ///< arithmetic backend tag (optional; absent = QK.F
                    ///< two's complement, so version-1 files keep their
                    ///< meaning unchanged)
};

/// Why a model file could not be loaded.
enum class LoadError : std::uint8_t {
  kNone = 0,
  kBadMagic,    ///< not a model file at all
  kBadVersion,  ///< format_version this loader does not speak
  kBadCrc,      ///< body bytes damaged (checksum mismatch)
  kTruncated,   ///< file shorter than its declared structure
  kBadSection,  ///< unknown/duplicate/missing section or invalid payload
  kIo,          ///< the file could not be opened or read
};

/// Short display name ("bad-magic", ...), used in CLI errors and as a
/// metrics label.
const char* to_string(LoadError error);

}  // namespace ldafp::model
