#include "model/model_io.h"

#include <fstream>
#include <iterator>
#include <sstream>

#include "support/crc32.h"
#include "support/error.h"
#include "support/json.h"
#include "support/wire.h"

namespace ldafp::model {
namespace {

// Stable wire codes for the enum tags — written explicitly (not via
// static_cast of declaration order) so reordering a C++ enum can never
// silently change the file format.
std::uint8_t rounding_code(fixed::RoundingMode mode) {
  switch (mode) {
    case fixed::RoundingMode::kNearestEven: return 0;
    case fixed::RoundingMode::kNearestAway: return 1;
    case fixed::RoundingMode::kTowardZero: return 2;
    case fixed::RoundingMode::kFloor: return 3;
  }
  return 0;
}

bool rounding_from_code(std::uint8_t code, fixed::RoundingMode& out) {
  switch (code) {
    case 0: out = fixed::RoundingMode::kNearestEven; return true;
    case 1: out = fixed::RoundingMode::kNearestAway; return true;
    case 2: out = fixed::RoundingMode::kTowardZero; return true;
    case 3: out = fixed::RoundingMode::kFloor; return true;
  }
  return false;
}

std::uint8_t accumulator_code(fixed::AccumulatorMode acc) {
  return acc == fixed::AccumulatorMode::kNarrow ? 1 : 0;
}

bool accumulator_from_code(std::uint8_t code, fixed::AccumulatorMode& out) {
  switch (code) {
    case 0: out = fixed::AccumulatorMode::kWide; return true;
    case 1: out = fixed::AccumulatorMode::kNarrow; return true;
  }
  return false;
}

void append_section(std::vector<std::uint8_t>& out, SectionId id,
                    const std::vector<std::uint8_t>& payload) {
  support::put_u16le(out, static_cast<std::uint16_t>(id));
  support::put_u16le(out, 0);  // reserved
  support::put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  support::put_bytes(out, payload.data(), payload.size());
}

std::vector<std::uint8_t> classifier_payload(
    const core::FixedClassifier& clf) {
  std::vector<std::uint8_t> p;
  const fixed::FixedFormat& fmt = clf.format();
  support::put_u8(p, static_cast<std::uint8_t>(fmt.integer_bits()));
  support::put_u8(p, static_cast<std::uint8_t>(fmt.frac_bits()));
  support::put_u8(p, rounding_code(clf.rounding()));
  support::put_u8(p, accumulator_code(clf.accumulator()));
  support::put_u32le(p, static_cast<std::uint32_t>(clf.dim()));
  support::put_i64le(p, clf.threshold_fixed().raw());
  for (const fixed::Fixed& w : clf.weights_fixed()) {
    support::put_i64le(p, w.raw());
  }
  return p;
}

std::vector<std::uint8_t> provenance_payload(const TrainingProvenance& pv) {
  std::vector<std::uint8_t> p;
  support::put_u16le(p, static_cast<std::uint16_t>(pv.name.size()));
  support::put_bytes(p, pv.name.data(), pv.name.size());
  support::put_f64le(p, pv.feature_scale);
  support::put_f64le(p, pv.rho);
  support::put_f64le(p, pv.beta);
  support::put_f64le(p, pv.cv_accuracy);
  support::put_f64le(p, pv.train_seconds);
  support::put_f64le(p, pv.cost);
  support::put_f64le(p, pv.gap);
  support::put_u32le(p, pv.word_length);
  support::put_u32le(p, 0);  // reserved
  support::put_u64le(p, pv.nodes_processed);
  support::put_u64le(p, pv.relaxations);
  support::put_u64le(p, pv.phase1_skips);
  support::put_u64le(p, pv.newton_iterations);
  support::put_u64le(p, pv.factorizations);
  support::put_u64le(p, pv.model_version);
  return p;
}

/// Fixed-size tail of the provenance payload after the variable-length
/// name: 7 doubles + 2 u32 + 6 u64.
constexpr std::size_t kProvenanceTailBytes = 7 * 8 + 2 * 4 + 6 * 8;

/// Decodes the classifier section.  Returns kNone and engages `out` on
/// success; kBadSection on any structural or value-range violation.
LoadError decode_classifier(const std::uint8_t* data, std::size_t size,
                            std::optional<core::FixedClassifier>& out) {
  support::WireReader r(data, size);
  const std::uint8_t integer_bits = r.u8();
  const std::uint8_t frac_bits = r.u8();
  const std::uint8_t rounding_byte = r.u8();
  const std::uint8_t acc_byte = r.u8();
  const std::uint32_t dim = r.u32();
  if (!r.ok()) return LoadError::kBadSection;
  if (integer_bits < 1 || integer_bits + frac_bits > 62) {
    return LoadError::kBadSection;
  }
  fixed::RoundingMode rounding;
  fixed::AccumulatorMode acc;
  if (!rounding_from_code(rounding_byte, rounding)) {
    return LoadError::kBadSection;
  }
  if (!accumulator_from_code(acc_byte, acc)) return LoadError::kBadSection;
  if (dim < 1) return LoadError::kBadSection;
  // Exact-size check: header fields + threshold + dim weight words.
  const std::size_t expect =
      8 + 8 + static_cast<std::size_t>(dim) * 8;
  if (size != expect) return LoadError::kBadSection;

  const fixed::FixedFormat fmt(integer_bits, frac_bits);
  const std::int64_t threshold_raw = r.i64();
  std::vector<double> weights(dim);
  for (std::uint32_t i = 0; i < dim; ++i) {
    const std::int64_t raw = r.i64();
    if (raw < fmt.raw_min() || raw > fmt.raw_max()) {
      return LoadError::kBadSection;
    }
    weights[i] = fmt.to_real(raw);
  }
  if (!r.ok() || r.remaining() != 0) return LoadError::kBadSection;
  if (threshold_raw < fmt.raw_min() || threshold_raw > fmt.raw_max()) {
    return LoadError::kBadSection;
  }
  // The stored words are exact grid values, so the constructor's
  // representability check passes and its quantization reproduces the
  // identical raw words — bit-for-bit round trip.
  out.emplace(fmt, linalg::Vector(std::move(weights)),
              fmt.to_real(threshold_raw), rounding, acc);
  return LoadError::kNone;
}

LoadError decode_provenance(const std::uint8_t* data, std::size_t size,
                            TrainingProvenance& out) {
  support::WireReader r(data, size);
  const std::uint16_t name_len = r.u16();
  if (!r.ok()) return LoadError::kBadSection;
  if (size != 2 + static_cast<std::size_t>(name_len) +
                  kProvenanceTailBytes) {
    return LoadError::kBadSection;
  }
  out.name = r.bytes(name_len);
  out.feature_scale = r.f64();
  out.rho = r.f64();
  out.beta = r.f64();
  out.cv_accuracy = r.f64();
  out.train_seconds = r.f64();
  out.cost = r.f64();
  out.gap = r.f64();
  out.word_length = r.u32();
  r.skip(4);  // reserved
  out.nodes_processed = r.u64();
  out.relaxations = r.u64();
  out.phase1_skips = r.u64();
  out.newton_iterations = r.u64();
  out.factorizations = r.u64();
  out.model_version = r.u64();
  if (!r.ok() || r.remaining() != 0) return LoadError::kBadSection;
  return LoadError::kNone;
}

}  // namespace

const char* to_string(LoadError error) {
  switch (error) {
    case LoadError::kNone: return "ok";
    case LoadError::kBadMagic: return "bad-magic";
    case LoadError::kBadVersion: return "bad-version";
    case LoadError::kBadCrc: return "bad-crc";
    case LoadError::kTruncated: return "truncated";
    case LoadError::kBadSection: return "bad-section";
    case LoadError::kIo: return "io-error";
  }
  return "?";
}

std::vector<std::uint8_t> encode_model(const SavedModel& model) {
  std::vector<std::uint8_t> out;
  support::put_u32le(out, kMagic);
  support::put_u16le(out, kFormatVersion);
  support::put_u16le(out, 2);  // section_count
  append_section(out, SectionId::kClassifier,
                 classifier_payload(model.classifier));
  append_section(out, SectionId::kProvenance,
                 provenance_payload(model.provenance));
  support::put_u32le(out, support::crc32(out));
  return out;
}

DecodeResult decode_model(const std::uint8_t* data, std::size_t size) {
  DecodeResult result;
  // Check order is the taxonomy contract (model_format.h): length,
  // magic, version, structure, CRC, payloads.
  if (size < kMinFileBytes) {
    result.error = LoadError::kTruncated;
    return result;
  }
  if (support::get_u32le(data) != kMagic) {
    result.error = LoadError::kBadMagic;
    return result;
  }
  if (support::get_u16le(data + 4) != kFormatVersion) {
    result.error = LoadError::kBadVersion;
    return result;
  }
  const std::uint16_t section_count = support::get_u16le(data + 6);
  const std::size_t body_end = size - 4;  // CRC trailer excluded

  // Structural walk: section headers only, bounds-checked.  A section
  // running past the body is a truncation; an unknown id is rejected
  // before the (matching) CRC can bless it.
  struct SectionView {
    std::uint16_t id = 0;
    const std::uint8_t* payload = nullptr;
    std::size_t size = 0;
  };
  std::vector<SectionView> sections;
  std::size_t pos = kHeaderBytes;
  for (std::uint16_t s = 0; s < section_count; ++s) {
    if (pos + kSectionHeaderBytes > body_end) {
      result.error = LoadError::kTruncated;
      return result;
    }
    SectionView view;
    view.id = support::get_u16le(data + pos);
    const std::uint16_t reserved = support::get_u16le(data + pos + 2);
    const std::uint32_t payload_len = support::get_u32le(data + pos + 4);
    pos += kSectionHeaderBytes;
    if (reserved != 0 || payload_len > kMaxSectionBytes) {
      result.error = LoadError::kBadSection;
      return result;
    }
    if (pos + payload_len > body_end) {
      result.error = LoadError::kTruncated;
      return result;
    }
    view.payload = data + pos;
    view.size = payload_len;
    pos += payload_len;
    if (view.id != static_cast<std::uint16_t>(SectionId::kClassifier) &&
        view.id != static_cast<std::uint16_t>(SectionId::kProvenance)) {
      result.error = LoadError::kBadSection;
      return result;
    }
    sections.push_back(view);
  }
  if (pos != body_end) {
    // Trailing bytes no section accounts for: the file was assembled
    // wrong (or grew), not cut short.
    result.error = LoadError::kBadSection;
    return result;
  }

  const std::uint32_t stored_crc = support::get_u32le(data + body_end);
  if (support::crc32(data, body_end) != stored_crc) {
    result.error = LoadError::kBadCrc;
    return result;
  }

  std::optional<core::FixedClassifier> classifier;
  TrainingProvenance provenance;
  bool have_provenance = false;
  for (const SectionView& view : sections) {
    if (view.id == static_cast<std::uint16_t>(SectionId::kClassifier)) {
      if (classifier.has_value()) {  // duplicate
        result.error = LoadError::kBadSection;
        return result;
      }
      const LoadError err =
          decode_classifier(view.payload, view.size, classifier);
      if (err != LoadError::kNone) {
        result.error = err;
        return result;
      }
    } else {
      if (have_provenance) {
        result.error = LoadError::kBadSection;
        return result;
      }
      const LoadError err =
          decode_provenance(view.payload, view.size, provenance);
      if (err != LoadError::kNone) {
        result.error = err;
        return result;
      }
      have_provenance = true;
    }
  }
  if (!classifier.has_value() || !have_provenance) {
    result.error = LoadError::kBadSection;
    return result;
  }
  result.model.emplace(SavedModel{std::move(*classifier),
                                  std::move(provenance)});
  return result;
}

DecodeResult decode_model(const std::vector<std::uint8_t>& bytes) {
  return decode_model(bytes.data(), bytes.size());
}

std::string metadata_json(const SavedModel& model) {
  const core::FixedClassifier& clf = model.classifier;
  const fixed::FixedFormat& fmt = clf.format();
  const TrainingProvenance& pv = model.provenance;
  std::ostringstream os;
  support::JsonWriter json(os);
  json.begin_object();
  json.kv("format_version", static_cast<std::int64_t>(kFormatVersion));
  json.kv("name", pv.name);
  json.kv("model_version", pv.model_version);
  json.kv("dim", static_cast<std::int64_t>(clf.dim()));
  // Per-signal fixed-point precision: the feature/weight words share
  // QK.F; the accumulator either keeps full 2F-fraction products (wide)
  // or narrows each product back to QK.F before adding (narrow).
  json.key("signals");
  json.begin_object();
  json.kv("features", fmt.to_string());
  json.kv("weights", fmt.to_string());
  json.kv("accumulator",
          clf.accumulator() == fixed::AccumulatorMode::kWide
              ? fixed::FixedFormat(fmt.integer_bits(),
                                   2 * fmt.frac_bits()).to_string()
              : fmt.to_string());
  json.end_object();
  json.kv("rounding", fixed::to_string(clf.rounding()));
  json.kv("accumulator_mode", fixed::to_string(clf.accumulator()));
  json.kv("threshold", clf.threshold_real());
  json.kv("threshold_raw", clf.threshold_fixed().raw());
  json.key("weights");
  json.begin_array();
  for (const fixed::Fixed& w : clf.weights_fixed()) {
    json.value(w.to_real());
  }
  json.end_array();
  json.key("provenance");
  json.begin_object();
  json.kv("feature_scale", pv.feature_scale);
  json.kv("rho", pv.rho);
  json.kv("beta", pv.beta);
  json.kv("cv_accuracy", pv.cv_accuracy);
  json.kv("train_seconds", pv.train_seconds);
  json.kv("cost", pv.cost);
  json.kv("gap", pv.gap);
  json.kv("word_length", static_cast<std::int64_t>(pv.word_length));
  json.kv("nodes_processed", pv.nodes_processed);
  json.kv("relaxations", pv.relaxations);
  json.kv("phase1_skips", pv.phase1_skips);
  json.kv("newton_iterations", pv.newton_iterations);
  json.kv("factorizations", pv.factorizations);
  json.end_object();
  json.end_object();
  os << "\n";
  return os.str();
}

void save_model(const std::string& path, const SavedModel& model) {
  const std::vector<std::uint8_t> bytes = encode_model(model);
  {
    std::ofstream file(path, std::ios::binary);
    if (!file) {
      throw ldafp::IoError("model: cannot create '" + path + "'");
    }
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!file) {
      throw ldafp::IoError("model: write failed for '" + path + "'");
    }
  }
  const std::string sidecar_path = path + ".json";
  std::ofstream sidecar(sidecar_path);
  if (!sidecar) {
    throw ldafp::IoError("model: cannot create '" + sidecar_path + "'");
  }
  sidecar << metadata_json(model);
  if (!sidecar) {
    throw ldafp::IoError("model: write failed for '" + sidecar_path + "'");
  }
}

DecodeResult load_model(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    DecodeResult result;
    result.error = LoadError::kIo;
    return result;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)),
      std::istreambuf_iterator<char>());
  if (file.bad()) {
    DecodeResult result;
    result.error = LoadError::kIo;
    return result;
  }
  return decode_model(bytes);
}

}  // namespace ldafp::model
