#include "model/model_io.h"

#include <fstream>
#include <iterator>
#include <sstream>

#include "fixed/datapath.h"
#include "fixed/lns.h"
#include "support/crc32.h"
#include "support/error.h"
#include "support/json.h"
#include "support/wire.h"

namespace ldafp::model {
namespace {

// Stable wire codes for the enum tags — written explicitly (not via
// static_cast of declaration order) so reordering a C++ enum can never
// silently change the file format.
std::uint8_t rounding_code(fixed::RoundingMode mode) {
  switch (mode) {
    case fixed::RoundingMode::kNearestEven: return 0;
    case fixed::RoundingMode::kNearestAway: return 1;
    case fixed::RoundingMode::kTowardZero: return 2;
    case fixed::RoundingMode::kFloor: return 3;
  }
  return 0;
}

bool rounding_from_code(std::uint8_t code, fixed::RoundingMode& out) {
  switch (code) {
    case 0: out = fixed::RoundingMode::kNearestEven; return true;
    case 1: out = fixed::RoundingMode::kNearestAway; return true;
    case 2: out = fixed::RoundingMode::kTowardZero; return true;
    case 3: out = fixed::RoundingMode::kFloor; return true;
  }
  return false;
}

std::uint8_t accumulator_code(fixed::AccumulatorMode acc) {
  return acc == fixed::AccumulatorMode::kNarrow ? 1 : 0;
}

bool accumulator_from_code(std::uint8_t code, fixed::AccumulatorMode& out) {
  switch (code) {
    case 0: out = fixed::AccumulatorMode::kWide; return true;
    case 1: out = fixed::AccumulatorMode::kNarrow; return true;
  }
  return false;
}

std::uint8_t datapath_code(fixed::DatapathKind kind) {
  return kind == fixed::DatapathKind::kLns ? 1 : 0;
}

bool datapath_from_code(std::uint8_t code, fixed::DatapathKind& out) {
  switch (code) {
    case 0: out = fixed::DatapathKind::kTwosComplement; return true;
    case 1: out = fixed::DatapathKind::kLns; return true;
  }
  return false;
}

/// True when the saver can represent the model as a version-1 file
/// (no datapath section needed) — the version policy in model_format.h.
bool is_version1_model(const SavedModel& model) {
  return model.classifier.datapath_kind() ==
         fixed::DatapathKind::kTwosComplement;
}

std::uint16_t written_version(const SavedModel& model) {
  return is_version1_model(model) ? kMinFormatVersion : kFormatVersion;
}

void append_section(std::vector<std::uint8_t>& out, SectionId id,
                    const std::vector<std::uint8_t>& payload) {
  support::put_u16le(out, static_cast<std::uint16_t>(id));
  support::put_u16le(out, 0);  // reserved
  support::put_u32le(out, static_cast<std::uint32_t>(payload.size()));
  support::put_bytes(out, payload.data(), payload.size());
}

std::vector<std::uint8_t> classifier_payload(
    const core::FixedClassifier& clf) {
  std::vector<std::uint8_t> p;
  const fixed::FixedFormat& fmt = clf.format();
  support::put_u8(p, static_cast<std::uint8_t>(fmt.integer_bits()));
  support::put_u8(p, static_cast<std::uint8_t>(fmt.frac_bits()));
  support::put_u8(p, rounding_code(clf.rounding()));
  support::put_u8(p, accumulator_code(clf.accumulator()));
  support::put_u32le(p, static_cast<std::uint32_t>(clf.dim()));
  // Raw backend words, never re-quantized reals: the two's-complement
  // bytes are identical to what weights_fixed() used to emit, and LNS
  // words (whose log-grid values are irrational) survive bit-exactly.
  support::put_i64le(p, clf.threshold_raw());
  for (const std::int64_t w : clf.weight_words()) {
    support::put_i64le(p, w);
  }
  return p;
}

std::vector<std::uint8_t> datapath_payload(const core::FixedClassifier& clf) {
  std::vector<std::uint8_t> p;
  support::put_u8(p, datapath_code(clf.datapath_kind()));
  return p;
}

std::vector<std::uint8_t> provenance_payload(const TrainingProvenance& pv) {
  std::vector<std::uint8_t> p;
  support::put_u16le(p, static_cast<std::uint16_t>(pv.name.size()));
  support::put_bytes(p, pv.name.data(), pv.name.size());
  support::put_f64le(p, pv.feature_scale);
  support::put_f64le(p, pv.rho);
  support::put_f64le(p, pv.beta);
  support::put_f64le(p, pv.cv_accuracy);
  support::put_f64le(p, pv.train_seconds);
  support::put_f64le(p, pv.cost);
  support::put_f64le(p, pv.gap);
  support::put_u32le(p, pv.word_length);
  support::put_u32le(p, 0);  // reserved
  support::put_u64le(p, pv.nodes_processed);
  support::put_u64le(p, pv.relaxations);
  support::put_u64le(p, pv.phase1_skips);
  support::put_u64le(p, pv.newton_iterations);
  support::put_u64le(p, pv.factorizations);
  support::put_u64le(p, pv.model_version);
  return p;
}

/// Fixed-size tail of the provenance payload after the variable-length
/// name: 7 doubles + 2 u32 + 6 u64.
constexpr std::size_t kProvenanceTailBytes = 7 * 8 + 2 * 4 + 6 * 8;

/// Decodes the classifier section onto the given arithmetic backend.
/// Returns kNone and engages `out` on success; kBadSection on any
/// structural or value-range violation.
LoadError decode_classifier(const std::uint8_t* data, std::size_t size,
                            fixed::DatapathKind kind,
                            std::optional<core::FixedClassifier>& out) {
  support::WireReader r(data, size);
  const std::uint8_t integer_bits = r.u8();
  const std::uint8_t frac_bits = r.u8();
  const std::uint8_t rounding_byte = r.u8();
  const std::uint8_t acc_byte = r.u8();
  const std::uint32_t dim = r.u32();
  if (!r.ok()) return LoadError::kBadSection;
  if (integer_bits < 1 || integer_bits + frac_bits > 62) {
    return LoadError::kBadSection;
  }
  // Backend envelope checks (mirroring the datapath constructors, so a
  // hostile header is a LoadError, never a thrown CheckError): the QK.F
  // datapath needs exact 2F-fraction products in 63 bits and W <= 31
  // words; the LNS layout needs at least sign + 3 exponent bits.
  if (kind == fixed::DatapathKind::kTwosComplement) {
    if (integer_bits + 2 * frac_bits > 62 || integer_bits + frac_bits > 31) {
      return LoadError::kBadSection;
    }
  } else {
    if (integer_bits + frac_bits < 4) return LoadError::kBadSection;
  }
  fixed::RoundingMode rounding;
  fixed::AccumulatorMode acc;
  if (!rounding_from_code(rounding_byte, rounding)) {
    return LoadError::kBadSection;
  }
  if (!accumulator_from_code(acc_byte, acc)) return LoadError::kBadSection;
  if (dim < 1) return LoadError::kBadSection;
  // Exact-size check: header fields + threshold + dim weight words.
  const std::size_t expect =
      8 + 8 + static_cast<std::size_t>(dim) * 8;
  if (size != expect) return LoadError::kBadSection;

  const fixed::FixedFormat fmt(integer_bits, frac_bits);
  const std::int64_t threshold_raw = r.i64();
  std::vector<std::int64_t> words(dim);
  for (std::uint32_t i = 0; i < dim; ++i) {
    const std::int64_t raw = r.i64();
    // Both backends store sign-extended W-bit patterns, so the QK.F raw
    // range is the word range for LNS too.
    if (raw < fmt.raw_min() || raw > fmt.raw_max()) {
      return LoadError::kBadSection;
    }
    words[i] = raw;
  }
  if (!r.ok() || r.remaining() != 0) return LoadError::kBadSection;
  if (threshold_raw < fmt.raw_min() || threshold_raw > fmt.raw_max()) {
    return LoadError::kBadSection;
  }
  // Rebuild from the raw words directly — bit-for-bit round trip with
  // no real-value detour (the LNS grid would not survive one).
  out.emplace(core::FixedClassifier::from_raw_words(
      fixed::make_datapath(kind, fmt, rounding, acc), std::move(words),
      threshold_raw));
  return LoadError::kNone;
}

/// Decodes the datapath section (one backend-tag byte).
LoadError decode_datapath(const std::uint8_t* data, std::size_t size,
                          fixed::DatapathKind& out) {
  if (size != 1) return LoadError::kBadSection;
  if (!datapath_from_code(data[0], out)) return LoadError::kBadSection;
  return LoadError::kNone;
}

LoadError decode_provenance(const std::uint8_t* data, std::size_t size,
                            TrainingProvenance& out) {
  support::WireReader r(data, size);
  const std::uint16_t name_len = r.u16();
  if (!r.ok()) return LoadError::kBadSection;
  if (size != 2 + static_cast<std::size_t>(name_len) +
                  kProvenanceTailBytes) {
    return LoadError::kBadSection;
  }
  out.name = r.bytes(name_len);
  out.feature_scale = r.f64();
  out.rho = r.f64();
  out.beta = r.f64();
  out.cv_accuracy = r.f64();
  out.train_seconds = r.f64();
  out.cost = r.f64();
  out.gap = r.f64();
  out.word_length = r.u32();
  r.skip(4);  // reserved
  out.nodes_processed = r.u64();
  out.relaxations = r.u64();
  out.phase1_skips = r.u64();
  out.newton_iterations = r.u64();
  out.factorizations = r.u64();
  out.model_version = r.u64();
  if (!r.ok() || r.remaining() != 0) return LoadError::kBadSection;
  return LoadError::kNone;
}

}  // namespace

const char* to_string(LoadError error) {
  switch (error) {
    case LoadError::kNone: return "ok";
    case LoadError::kBadMagic: return "bad-magic";
    case LoadError::kBadVersion: return "bad-version";
    case LoadError::kBadCrc: return "bad-crc";
    case LoadError::kTruncated: return "truncated";
    case LoadError::kBadSection: return "bad-section";
    case LoadError::kIo: return "io-error";
  }
  return "?";
}

std::vector<std::uint8_t> encode_model(const SavedModel& model) {
  // Lowest sufficient version: a two's-complement model is written as a
  // byte-identical version-1 file (old loaders keep reading it); only a
  // non-default backend adds the datapath section and the version bump.
  const bool v1 = is_version1_model(model);
  std::vector<std::uint8_t> out;
  support::put_u32le(out, kMagic);
  support::put_u16le(out, written_version(model));
  support::put_u16le(out, v1 ? 2 : 3);  // section_count
  append_section(out, SectionId::kClassifier,
                 classifier_payload(model.classifier));
  append_section(out, SectionId::kProvenance,
                 provenance_payload(model.provenance));
  if (!v1) {
    append_section(out, SectionId::kDatapath,
                   datapath_payload(model.classifier));
  }
  support::put_u32le(out, support::crc32(out));
  return out;
}

DecodeResult decode_model(const std::uint8_t* data, std::size_t size) {
  DecodeResult result;
  // Check order is the taxonomy contract (model_format.h): length,
  // magic, version, structure, CRC, payloads.
  if (size < kMinFileBytes) {
    result.error = LoadError::kTruncated;
    return result;
  }
  if (support::get_u32le(data) != kMagic) {
    result.error = LoadError::kBadMagic;
    return result;
  }
  const std::uint16_t version = support::get_u16le(data + 4);
  if (version < kMinFormatVersion || version > kFormatVersion) {
    result.error = LoadError::kBadVersion;
    return result;
  }
  const std::uint16_t section_count = support::get_u16le(data + 6);
  const std::size_t body_end = size - 4;  // CRC trailer excluded

  // Structural walk: section headers only, bounds-checked.  A section
  // running past the body is a truncation; an unknown id is rejected
  // before the (matching) CRC can bless it.
  struct SectionView {
    std::uint16_t id = 0;
    const std::uint8_t* payload = nullptr;
    std::size_t size = 0;
  };
  std::vector<SectionView> sections;
  std::size_t pos = kHeaderBytes;
  for (std::uint16_t s = 0; s < section_count; ++s) {
    if (pos + kSectionHeaderBytes > body_end) {
      result.error = LoadError::kTruncated;
      return result;
    }
    SectionView view;
    view.id = support::get_u16le(data + pos);
    const std::uint16_t reserved = support::get_u16le(data + pos + 2);
    const std::uint32_t payload_len = support::get_u32le(data + pos + 4);
    pos += kSectionHeaderBytes;
    if (reserved != 0 || payload_len > kMaxSectionBytes) {
      result.error = LoadError::kBadSection;
      return result;
    }
    if (pos + payload_len > body_end) {
      result.error = LoadError::kTruncated;
      return result;
    }
    view.payload = data + pos;
    view.size = payload_len;
    pos += payload_len;
    // A section id is only known within the version that defined it: a
    // version-1 file carrying the (version-2) datapath section is as
    // malformed as one carrying id 7.
    const bool known =
        view.id == static_cast<std::uint16_t>(SectionId::kClassifier) ||
        view.id == static_cast<std::uint16_t>(SectionId::kProvenance) ||
        (version >= 2 &&
         view.id == static_cast<std::uint16_t>(SectionId::kDatapath));
    if (!known) {
      result.error = LoadError::kBadSection;
      return result;
    }
    sections.push_back(view);
  }
  if (pos != body_end) {
    // Trailing bytes no section accounts for: the file was assembled
    // wrong (or grew), not cut short.
    result.error = LoadError::kBadSection;
    return result;
  }

  const std::uint32_t stored_crc = support::get_u32le(data + body_end);
  if (support::crc32(data, body_end) != stored_crc) {
    result.error = LoadError::kBadCrc;
    return result;
  }

  // The datapath tag decodes first regardless of section order: the
  // classifier's raw words only have meaning on their backend.  Absent
  // section (every version-1 file) = the two's-complement default.
  fixed::DatapathKind kind = fixed::DatapathKind::kTwosComplement;
  bool have_datapath = false;
  for (const SectionView& view : sections) {
    if (view.id != static_cast<std::uint16_t>(SectionId::kDatapath)) continue;
    if (have_datapath) {  // duplicate
      result.error = LoadError::kBadSection;
      return result;
    }
    const LoadError err = decode_datapath(view.payload, view.size, kind);
    if (err != LoadError::kNone) {
      result.error = err;
      return result;
    }
    have_datapath = true;
  }

  std::optional<core::FixedClassifier> classifier;
  TrainingProvenance provenance;
  bool have_provenance = false;
  for (const SectionView& view : sections) {
    if (view.id == static_cast<std::uint16_t>(SectionId::kClassifier)) {
      if (classifier.has_value()) {  // duplicate
        result.error = LoadError::kBadSection;
        return result;
      }
      const LoadError err =
          decode_classifier(view.payload, view.size, kind, classifier);
      if (err != LoadError::kNone) {
        result.error = err;
        return result;
      }
    } else if (view.id ==
               static_cast<std::uint16_t>(SectionId::kProvenance)) {
      if (have_provenance) {
        result.error = LoadError::kBadSection;
        return result;
      }
      const LoadError err =
          decode_provenance(view.payload, view.size, provenance);
      if (err != LoadError::kNone) {
        result.error = err;
        return result;
      }
      have_provenance = true;
    }
  }
  if (!classifier.has_value() || !have_provenance) {
    result.error = LoadError::kBadSection;
    return result;
  }
  result.model.emplace(SavedModel{std::move(*classifier),
                                  std::move(provenance)});
  return result;
}

DecodeResult decode_model(const std::vector<std::uint8_t>& bytes) {
  return decode_model(bytes.data(), bytes.size());
}

std::string metadata_json(const SavedModel& model) {
  const core::FixedClassifier& clf = model.classifier;
  const fixed::FixedFormat& fmt = clf.format();
  const TrainingProvenance& pv = model.provenance;
  const bool lns = clf.datapath_kind() == fixed::DatapathKind::kLns;
  std::ostringstream os;
  support::JsonWriter json(os);
  json.begin_object();
  json.kv("format_version",
          static_cast<std::int64_t>(written_version(model)));
  json.kv("name", pv.name);
  json.kv("model_version", pv.model_version);
  json.kv("datapath", fixed::to_string(clf.datapath_kind()));
  json.kv("dim", static_cast<std::int64_t>(clf.dim()));
  // Per-signal precision.  Two's complement: the feature/weight words
  // share QK.F; the accumulator either keeps full 2F-fraction products
  // (wide) or narrows each product back to QK.F before adding (narrow).
  // LNS: every signal lives in the matched log-domain layout (wide mode
  // only widens the accumulator's internal guard bits).
  json.key("signals");
  json.begin_object();
  if (lns) {
    const std::string layout = fixed::LnsFormat::matched(fmt).to_string();
    json.kv("features", layout);
    json.kv("weights", layout);
    json.kv("accumulator", layout);
  } else {
    json.kv("features", fmt.to_string());
    json.kv("weights", fmt.to_string());
    json.kv("accumulator",
            clf.accumulator() == fixed::AccumulatorMode::kWide
                ? fixed::FixedFormat(fmt.integer_bits(),
                                     2 * fmt.frac_bits()).to_string()
                : fmt.to_string());
  }
  json.end_object();
  json.kv("rounding", fixed::to_string(clf.rounding()));
  json.kv("accumulator_mode", fixed::to_string(clf.accumulator()));
  json.kv("threshold", clf.threshold_real());
  json.kv("threshold_raw", clf.threshold_raw());
  json.key("weights");
  json.begin_array();
  {
    const linalg::Vector reals = clf.weights_real();
    for (std::size_t i = 0; i < reals.size(); ++i) {
      json.value(reals[i]);
    }
  }
  json.end_array();
  json.key("provenance");
  json.begin_object();
  json.kv("feature_scale", pv.feature_scale);
  json.kv("rho", pv.rho);
  json.kv("beta", pv.beta);
  json.kv("cv_accuracy", pv.cv_accuracy);
  json.kv("train_seconds", pv.train_seconds);
  json.kv("cost", pv.cost);
  json.kv("gap", pv.gap);
  json.kv("word_length", static_cast<std::int64_t>(pv.word_length));
  json.kv("nodes_processed", pv.nodes_processed);
  json.kv("relaxations", pv.relaxations);
  json.kv("phase1_skips", pv.phase1_skips);
  json.kv("newton_iterations", pv.newton_iterations);
  json.kv("factorizations", pv.factorizations);
  json.end_object();
  json.end_object();
  os << "\n";
  return os.str();
}

void save_model(const std::string& path, const SavedModel& model) {
  const std::vector<std::uint8_t> bytes = encode_model(model);
  {
    std::ofstream file(path, std::ios::binary);
    if (!file) {
      throw ldafp::IoError("model: cannot create '" + path + "'");
    }
    file.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(bytes.size()));
    if (!file) {
      throw ldafp::IoError("model: write failed for '" + path + "'");
    }
  }
  const std::string sidecar_path = path + ".json";
  std::ofstream sidecar(sidecar_path);
  if (!sidecar) {
    throw ldafp::IoError("model: cannot create '" + sidecar_path + "'");
  }
  sidecar << metadata_json(model);
  if (!sidecar) {
    throw ldafp::IoError("model: write failed for '" + sidecar_path + "'");
  }
}

DecodeResult load_model(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    DecodeResult result;
    result.error = LoadError::kIo;
    return result;
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(file)),
      std::istreambuf_iterator<char>());
  if (file.bad()) {
    DecodeResult result;
    result.error = LoadError::kIo;
    return result;
  }
  return decode_model(bytes);
}

}  // namespace ldafp::model
