// Save/load of versioned model files (format spec: model_format.h,
// DESIGN.md §13).
//
// The encode/decode pair works on byte vectors so tests can corrupt,
// truncate, and fuzz without touching the filesystem; save/load wrap
// them with file I/O and additionally write a human- and
// tool-readable JSON metadata sidecar next to the binary ("<path>.json"
// via support::JsonWriter).  The binary file is authoritative — the
// loader never reads the sidecar.
//
// Round-trip contract (enforced by tests/model): decode(encode(m))
// reproduces the classifier *bit for bit* — same raw weight words,
// same threshold word, same formats, same rounding/accumulator modes —
// across every word length, so load(save(m)) classifies every input
// identically to m.  Corrupt input is always rejected with the
// specific LoadError code, never a crash and never a silently wrong
// model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "model/model_format.h"

namespace ldafp::model {

/// Training lineage carried inside the file: where these bits came
/// from, how good they measured, and what the search spent — the
/// format/accuracy metadata the paper's design flow (pick W by
/// accuracy, convert to power) needs to survive deployment.
struct TrainingProvenance {
  std::string name;          ///< model name ("" = unnamed)
  double feature_scale = 1.0;  ///< preprocessing scale (apply at inference)
  double rho = 0.0;            ///< confidence level of Eq. 16 (0 = n/a)
  double beta = 0.0;           ///< the Φ⁻¹ multiplier actually used
  /// Held-out / CV accuracy in [0,1] measured at training time
  /// (negative = never measured).
  double cv_accuracy = -1.0;
  double train_seconds = 0.0;
  double cost = 0.0;           ///< Fisher cost of the weights (0 = n/a)
  double gap = 0.0;            ///< B&B optimality gap at exit
  std::uint32_t word_length = 0;  ///< the sweep point W that chose this model
  std::uint64_t nodes_processed = 0;
  std::uint64_t relaxations = 0;
  std::uint64_t phase1_skips = 0;
  std::uint64_t newton_iterations = 0;
  std::uint64_t factorizations = 0;
  /// Version counter of the serving lineage (1 = first promoted model).
  std::uint64_t model_version = 0;
};

/// Everything a model file holds.
struct SavedModel {
  core::FixedClassifier classifier;
  TrainingProvenance provenance;
};

/// Serializes to the DESIGN.md §13 byte layout (header, classifier +
/// provenance sections, CRC trailer).
std::vector<std::uint8_t> encode_model(const SavedModel& model);

/// Decode outcome: `model` is engaged exactly when error == kNone.
struct DecodeResult {
  LoadError error = LoadError::kNone;
  std::optional<SavedModel> model;

  bool ok() const { return error == LoadError::kNone; }
};

/// Decodes a byte image.  Never throws on malformed input — every
/// corruption maps to its taxonomy code (see model_format.h for the
/// check order that makes the mapping deterministic).
DecodeResult decode_model(const std::uint8_t* data, std::size_t size);
DecodeResult decode_model(const std::vector<std::uint8_t>& bytes);

/// The JSON metadata sidecar text (also useful for `ldafp_cli model
/// inspect --json`).
std::string metadata_json(const SavedModel& model);

/// Writes the binary image to `path` and the sidecar to "<path>.json".
/// Throws IoError on filesystem failure.
void save_model(const std::string& path, const SavedModel& model);

/// Reads and decodes `path`.  Filesystem failures come back as kIo;
/// malformed content as its taxonomy code.  Never throws.
DecodeResult load_model(const std::string& path);

}  // namespace ldafp::model
