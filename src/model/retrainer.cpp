#include "model/retrainer.h"

#include <algorithm>
#include <filesystem>
#include <limits>

#include "core/lda.h"
#include "core/training_set.h"
#include "stats/normal.h"
#include "support/error.h"

namespace ldafp::model {

const char* to_string(RetrainMode mode) {
  switch (mode) {
    case RetrainMode::kStreamingLda: return "streaming-lda";
    case RetrainMode::kLdaFp: return "lda-fp";
  }
  return "?";
}

Status RetrainerOptions::validate() const {
  if (model_name.empty()) return Status::invalid("model_name must be set");
  if (window_capacity < 4) {
    return Status::invalid("window_capacity must be >= 4");
  }
  if (holdout < 1 || holdout >= window_capacity) {
    return Status::invalid("holdout must be in [1, window_capacity)");
  }
  if (min_class_samples < 1) {
    return Status::invalid("min_class_samples must be >= 1");
  }
  if (!(accuracy_tolerance >= 0.0)) {
    return Status::invalid("accuracy_tolerance must be >= 0");
  }
  if (mode != RetrainMode::kStreamingLda && mode != RetrainMode::kLdaFp) {
    return Status::invalid("unknown retrain mode");
  }
  if (const Status s = drift.validate(); !s.ok()) return s;
  return trainer.validate();
}

OnlineRetrainer::OnlineRetrainer(runtime::ModelRegistry& registry,
                                 RetrainerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      moments_(1),  // re-sized on the first observe()
      drift_(options_.drift),
      group_(options_.executor) {
  throw_if_error(options_.validate());
  beta_ = stats::confidence_beta(options_.trainer.rho);
  window_.reserve(options_.window_capacity);
}

OnlineRetrainer::~OnlineRetrainer() { wait(); }

runtime::ModelHandle OnlineRetrainer::bootstrap(
    const core::FixedClassifier& clf, TrainingProvenance provenance) {
  std::lock_guard<std::mutex> retrain_lock(retrain_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  return install_locked(clf, std::move(provenance));
}

LoadError OnlineRetrainer::bootstrap_from_file(const std::string& path,
                                               runtime::ModelHandle* handle) {
  DecodeResult loaded = load_model(path);
  if (!loaded.ok()) return loaded.error;
  runtime::ModelHandle h =
      bootstrap(loaded.model->classifier, loaded.model->provenance);
  if (handle != nullptr) *handle = std::move(h);
  return LoadError::kNone;
}

void OnlineRetrainer::observe(const linalg::Vector& x, core::Label label) {
  std::lock_guard<std::mutex> lock(mu_);
  if (moments_.dim() != x.size()) {
    LDAFP_CHECK(moments_.count() == 0,
                "labeled sample dimension changed mid-stream");
    moments_ = stats::StreamingTwoClass(x.size());
  }
  const std::size_t cap = options_.window_capacity;
  if (window_.size() < cap) {
    window_.push_back(LabeledSample{x, label});
  } else {
    window_[observed_ % cap] = LabeledSample{x, label};
  }
  ++observed_;
  // The sample that just aged out of the newest-`holdout` region joins
  // the streaming sufficient statistics — so the statistics never see
  // the held-out slice and the candidate validation stays honest.
  if (observed_ > options_.holdout) {
    const std::size_t crossed = observed_ - options_.holdout - 1;
    const LabeledSample& s = window_[crossed % cap];
    (s.label == core::Label::kClassA ? moments_.class_a()
                                     : moments_.class_b())
        .add(s.x);
  }
  if (obs::MetricsRegistry* m = obs::metrics_of(options_.sink)) {
    m->gauge("model.window_samples", {{"model", options_.model_name}})
        .set(static_cast<double>(window_.size()));
  }
}

void OnlineRetrainer::observe_score(double projection_real) {
  std::lock_guard<std::mutex> lock(mu_);
  drift_.observe(projection_real);
}

bool OnlineRetrainer::drift_detected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return drift_.drifted();
}

void OnlineRetrainer::publish_drift() const {
  obs::MetricsRegistry* m = obs::metrics_of(options_.sink);
  if (m == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  drift_.publish(*m, options_.model_name);
}

RetrainOutcome OnlineRetrainer::retrain_now() {
  std::lock_guard<std::mutex> retrain_lock(retrain_mu_);
  RetrainOutcome outcome;

  // Snapshot the mutable state; train outside the lock so observers
  // and serving traffic never stall behind a retrain.
  std::vector<LabeledSample> chron;
  std::optional<stats::StreamingTwoClass> moments;
  std::optional<core::FixedClassifier> incumbent;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::size_t cap = options_.window_capacity;
    const std::size_t have = window_.size();
    chron.reserve(have);
    for (std::size_t c = observed_ - have; c < observed_; ++c) {
      chron.push_back(window_[c % cap]);
    }
    moments.emplace(moments_);
    incumbent = incumbent_;
  }

  // Newest `holdout` samples validate; the rest (and the streaming
  // statistics, which exclude the holdout by construction) train.
  if (chron.size() <= options_.holdout) {
    outcome.reason = "insufficient-data";
    finish(outcome);
    return outcome;
  }
  const std::size_t train_n = chron.size() - options_.holdout;
  std::vector<LabeledSample> holdout(chron.begin() +
                                         static_cast<std::ptrdiff_t>(train_n),
                                     chron.end());
  chron.resize(train_n);
  std::size_t train_a = 0;
  for (const LabeledSample& s : chron) {
    if (s.label == core::Label::kClassA) ++train_a;
  }
  if (train_a < options_.min_class_samples ||
      train_n - train_a < options_.min_class_samples) {
    outcome.reason = "insufficient-data";
    finish(outcome);
    return outcome;
  }

  outcome.attempted = true;
  retrains_.fetch_add(1, std::memory_order_relaxed);
  bump("model.retrains");

  std::optional<core::FixedClassifier> candidate;
  if (options_.mode == RetrainMode::kStreamingLda) {
    // Closed-form path: sufficient statistics → LDA → overflow-aware
    // quantization.  No pass over the window.
    const stats::TwoClassModel model_stats = moments->model();
    const core::LdaModel lda = core::fit_lda(model_stats);
    candidate.emplace(core::quantize_lda(lda, model_stats, beta_,
                                         options_.format,
                                         core::LdaGainPolicy::kOverflowAware,
                                         options_.trainer.rounding));
  } else {
    core::TrainingSet ts;
    for (LabeledSample& s : chron) {
      (s.label == core::Label::kClassA ? ts.class_a : ts.class_b)
          .push_back(std::move(s.x));
    }
    const core::LdaFpTrainer trainer(options_.format, options_.trainer);
    const core::LdaFpResult result = trainer.train(ts);
    if (!result.found()) {
      outcome.reason = "no-feasible";
      rejected_.fetch_add(1, std::memory_order_relaxed);
      bump("model.rejected");
      finish(outcome);
      return outcome;
    }
    candidate.emplace(trainer.make_classifier(result));
  }

  outcome.candidate_error = holdout_error(*candidate, holdout);
  outcome.incumbent_error =
      incumbent.has_value() ? holdout_error(*incumbent, holdout)
                            : std::numeric_limits<double>::infinity();

  if (outcome.candidate_error <=
      outcome.incumbent_error + options_.accuracy_tolerance) {
    TrainingProvenance pv;
    pv.cv_accuracy = 1.0 - outcome.candidate_error;
    pv.word_length =
        static_cast<std::uint32_t>(options_.format.word_length());
    std::lock_guard<std::mutex> lock(mu_);
    const runtime::ModelHandle handle =
        install_locked(*candidate, std::move(pv));
    outcome.promoted = true;
    outcome.version = handle->version;
    outcome.reason = "promoted";
    promotions_.fetch_add(1, std::memory_order_relaxed);
    bump("model.promotions");
    rearm_drift_locked(*candidate, holdout);
  } else {
    outcome.reason = "not-better";
    rejected_.fetch_add(1, std::memory_order_relaxed);
    bump("model.rejected");
  }
  finish(outcome);
  return outcome;
}

bool OnlineRetrainer::retrain_async() {
  bool expected = false;
  if (!inflight_.compare_exchange_strong(expected, true)) return false;
  group_.run([this] {
    retrain_now();
    inflight_.store(false);
  });
  return true;
}

bool OnlineRetrainer::maybe_retrain() {
  return drift_detected() && retrain_async();
}

void OnlineRetrainer::wait() { group_.wait(); }

RetrainOutcome OnlineRetrainer::rollback() {
  std::lock_guard<std::mutex> retrain_lock(retrain_mu_);
  RetrainOutcome outcome;
  PromotedVersion previous;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (history_.size() < 2) {
      outcome.reason = "no-previous-version";
      finish_locked(outcome);
      return outcome;
    }
    previous = history_[history_.size() - 2];
  }
  outcome.attempted = true;

  // Prefer the durable file: re-decoding it re-verifies the CRC, so a
  // rollback can never resurrect bits that rotted on disk.
  std::optional<core::FixedClassifier> clf;
  TrainingProvenance pv;
  if (!previous.path.empty()) {
    DecodeResult loaded = load_model(previous.path);
    if (loaded.ok()) {
      clf.emplace(std::move(loaded.model->classifier));
      pv = std::move(loaded.model->provenance);
    }
  }
  if (!clf.has_value()) {
    const runtime::ModelHandle handle =
        registry_.get(options_.model_name, previous.version);
    if (handle == nullptr) {
      outcome.reason = "previous-version-unavailable";
      finish(outcome);
      return outcome;
    }
    clf.emplace(handle->classifier);
  }

  std::lock_guard<std::mutex> lock(mu_);
  const runtime::ModelHandle handle = install_locked(*clf, std::move(pv));
  // The rollback's durable artifact is the previous version's file —
  // those exact bits are what is serving again.
  history_.back().path = previous.path;
  incumbent_ = *clf;
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  bump("model.rollbacks");
  outcome.promoted = true;
  outcome.version = handle->version;
  outcome.reason = "rolled-back";
  // Re-arm drift against the rolled-back incumbent on whatever
  // held-out slice the window currently has.
  const std::size_t have = window_.size();
  if (have > 0) {
    const std::size_t cap = options_.window_capacity;
    const std::size_t n = std::min(options_.holdout, have);
    std::vector<LabeledSample> holdout;
    holdout.reserve(n);
    for (std::size_t c = observed_ - n; c < observed_; ++c) {
      holdout.push_back(window_[c % cap]);
    }
    rearm_drift_locked(*clf, holdout);
  } else {
    drift_.reset_live();
  }
  finish_locked(outcome);
  return outcome;
}

RetrainOutcome OnlineRetrainer::last_outcome() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_outcome_;
}

std::size_t OnlineRetrainer::window_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return window_.size();
}

runtime::ModelHandle OnlineRetrainer::install_locked(
    const core::FixedClassifier& clf, TrainingProvenance provenance) {
  const runtime::ModelHandle handle =
      registry_.install(options_.model_name, clf);
  provenance.name = options_.model_name;
  provenance.model_version = handle->version;
  std::string path;
  if (!options_.store_dir.empty()) {
    std::filesystem::create_directories(options_.store_dir);
    path = options_.store_dir + "/" + options_.model_name + ".v" +
           std::to_string(handle->version) + ".ldafp";
    save_model(path, SavedModel{clf, provenance});
  }
  history_.push_back(PromotedVersion{handle->version, std::move(path)});
  incumbent_ = clf;
  if (obs::MetricsRegistry* m = obs::metrics_of(options_.sink)) {
    m->gauge("model.version", {{"model", options_.model_name}})
        .set(static_cast<double>(handle->version));
  }
  return handle;
}

double OnlineRetrainer::holdout_error(
    const core::FixedClassifier& clf,
    const std::vector<LabeledSample>& holdout) const {
  if (holdout.empty()) return 0.0;
  std::size_t wrong = 0;
  for (const LabeledSample& s : holdout) {
    if (clf.classify(s.x) != s.label) ++wrong;
  }
  return static_cast<double>(wrong) / static_cast<double>(holdout.size());
}

void OnlineRetrainer::rearm_drift_locked(
    const core::FixedClassifier& clf,
    const std::vector<LabeledSample>& holdout) {
  if (holdout.empty()) return;
  std::vector<double> scores;
  scores.reserve(holdout.size());
  for (const LabeledSample& s : holdout) {
    scores.push_back(clf.project(s.x).to_real());
  }
  drift_.set_reference(std::move(scores));
}

void OnlineRetrainer::bump(const char* counter_name) const {
  if (obs::MetricsRegistry* m = obs::metrics_of(options_.sink)) {
    m->counter(counter_name, {{"model", options_.model_name}}).increment();
  }
}

void OnlineRetrainer::finish(RetrainOutcome outcome) {
  std::lock_guard<std::mutex> lock(mu_);
  finish_locked(std::move(outcome));
}

void OnlineRetrainer::finish_locked(RetrainOutcome outcome) {
  last_outcome_ = std::move(outcome);
  if (obs::MetricsRegistry* m = obs::metrics_of(options_.sink)) {
    drift_.publish(*m, options_.model_name);
  }
}

}  // namespace ldafp::model
