// Online retraining with drift-gated hot promotion (DESIGN.md §13).
//
// The orchestrator closes the loop the ROADMAP asked for: the serving
// process keeps learning.  Labeled feedback streams into a bounded
// sample window plus rank-1 streaming sufficient statistics
// (stats::StreamingTwoClass); unlabeled serving scores stream into a
// DriftDetector armed with the incumbent's held-out score
// distribution.  When the gate fires (or a caller forces it), a
// retrain runs — optionally in the background on the sched::Executor —
// trains a candidate, validates it against the incumbent on the
// held-out slice of the window, and only a candidate that is no worse
// gets promoted: an atomic runtime::ModelRegistry install (in-flight
// traffic keeps the snapshot it resolved; new traffic sees the new
// version — the PR-1 RCU pattern), plus a durable versioned
// `<store>/<name>.v<N>.ldafp` model file.  rollback() re-installs the
// previous on-disk version as a fresh registry version, so "deploy,
// regret, revert" is one call and the registry history stays linear.
//
// Everything observable is published through the obs::Sink seam:
// model.retrains / model.promotions / model.rejected / model.rollbacks
// counters, model.version gauge, and the model.drift.* gauges.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/ldafp.h"
#include "model/drift.h"
#include "model/model_io.h"
#include "obs/sink.h"
#include "runtime/registry.h"
#include "sched/executor.h"
#include "sched/task_group.h"
#include "stats/streaming.h"

namespace ldafp::model {

/// How a retrain builds its candidate.
enum class RetrainMode : std::uint8_t {
  /// Closed-form conventional LDA from the streaming sufficient
  /// statistics, quantized overflow-aware onto the grid — O(M³) per
  /// retrain regardless of window size; the fast path for frequent
  /// background retrains.
  kStreamingLda,
  /// Full LDA-FP branch-and-bound on the training slice of the window
  /// under the configured budgets — the paper's trainer, for when a
  /// retrain may spend seconds to buy back accuracy.
  kLdaFp,
};

const char* to_string(RetrainMode mode);

/// Orchestrator tuning.
struct RetrainerOptions {
  /// Registry name the incumbent serves under.
  std::string model_name = "model";
  /// Fixed-point format candidates are trained at.
  fixed::FixedFormat format{3, 3};
  RetrainMode mode = RetrainMode::kStreamingLda;
  /// Trainer configuration: budgets drive kLdaFp; rho (via its beta)
  /// and the rounding mode drive both modes' quantization.
  core::LdaFpOptions trainer;
  /// Labeled-sample window capacity (oldest evicted first).
  std::size_t window_capacity = 2048;
  /// Newest labeled samples withheld from training and used to score
  /// candidate vs incumbent.
  std::size_t holdout = 128;
  /// Minimum labeled samples per class in the *training* slice before
  /// a retrain is attempted.
  std::size_t min_class_samples = 16;
  /// A candidate is promoted when its held-out error is at most the
  /// incumbent's plus this slack.
  double accuracy_tolerance = 0.0;
  DriftOptions drift;
  /// Background retrains run here; the default inline executor makes
  /// retrain_async() synchronous (deterministic tests, same results).
  sched::Executor executor;
  obs::Sink* sink = nullptr;
  /// Directory for durable versioned model files ("" = memory only).
  std::string store_dir;

  Status validate() const;
};

/// What one retrain attempt (or rollback) did.
struct RetrainOutcome {
  bool attempted = false;       ///< a candidate was actually trained
  bool promoted = false;
  std::uint64_t version = 0;    ///< registry version installed (when promoted)
  double candidate_error = -1.0;  ///< held-out error (-1 = not measured)
  double incumbent_error = -1.0;
  std::string reason;  ///< "promoted" / "not-better" / "insufficient-data" /
                       ///< "no-feasible" / "rolled-back" / ...
};

/// The serving-side retraining orchestrator for one registry name.
class OnlineRetrainer {
 public:
  /// `registry` outlives the retrainer.
  OnlineRetrainer(runtime::ModelRegistry& registry, RetrainerOptions options);

  /// Joins any in-flight background retrain.
  ~OnlineRetrainer();

  OnlineRetrainer(const OnlineRetrainer&) = delete;
  OnlineRetrainer& operator=(const OnlineRetrainer&) = delete;

  const RetrainerOptions& options() const { return options_; }

  /// Installs the initial incumbent (registry version 1), persists it
  /// when a store is configured, and returns the published handle.
  /// `provenance` fields name/model_version are overwritten.
  runtime::ModelHandle bootstrap(const core::FixedClassifier& clf,
                                 TrainingProvenance provenance = {});

  /// Bootstrap from a saved model file (the `ldafp_cli serve
  /// --model name=file.ldafp` path).  Returns the load error on
  /// failure; on success installs and returns kNone.
  LoadError bootstrap_from_file(const std::string& path,
                                runtime::ModelHandle* handle = nullptr);

  /// Streams one labeled sample into the window and the streaming
  /// sufficient statistics.  Thread-safe.
  void observe(const linalg::Vector& x, core::Label label);

  /// Streams one serving score (the incumbent's projection, as a real)
  /// into the drift detector.  Thread-safe.
  void observe_score(double projection_real);

  /// True when the drift gate currently fires.  Thread-safe.
  bool drift_detected() const;

  /// Publishes the drift gauges and lifecycle counters snapshot into
  /// the sink's registry (no-op without one).  Thread-safe.
  void publish_drift() const;

  /// Synchronous retrain + validate + (maybe) promote.  Thread-safe;
  /// concurrent calls serialize on an internal retrain lock.
  RetrainOutcome retrain_now();

  /// Schedules retrain_now on the executor.  Returns false when a
  /// background retrain is already in flight (never queues a backlog).
  bool retrain_async();

  /// Drift-gated trigger: retrain_async() iff drift_detected().
  bool maybe_retrain();

  /// Joins the in-flight background retrain, if any.
  void wait();

  /// Re-installs the previous promoted version as a fresh registry
  /// version — preferring its durable on-disk file when a store is
  /// configured (byte-audited reload), falling back to the in-registry
  /// snapshot.  Fails (attempted = false) when there is no previous
  /// version.
  RetrainOutcome rollback();

  /// Outcome of the most recent finished retrain/rollback.
  RetrainOutcome last_outcome() const;

  /// Lifecycle counters (also published as model.* metrics).
  std::uint64_t retrains() const { return retrains_; }
  std::uint64_t promotions() const { return promotions_; }
  std::uint64_t rollbacks() const { return rollbacks_; }

  /// Labeled samples currently windowed.
  std::size_t window_size() const;

 private:
  struct LabeledSample {
    linalg::Vector x;
    core::Label label;
  };

  /// Registry versions this retrainer installed, oldest first, with
  /// their durable files ("" when not persisted).
  struct PromotedVersion {
    std::uint64_t version = 0;
    std::string path;
  };

  runtime::ModelHandle install_locked(const core::FixedClassifier& clf,
                                      TrainingProvenance provenance);
  double holdout_error(const core::FixedClassifier& clf,
                       const std::vector<LabeledSample>& holdout) const;
  void rearm_drift_locked(const core::FixedClassifier& clf,
                          const std::vector<LabeledSample>& holdout);
  void bump(const char* counter_name) const;
  void finish(RetrainOutcome outcome);
  void finish_locked(RetrainOutcome outcome);

  runtime::ModelRegistry& registry_;
  RetrainerOptions options_;
  double beta_ = 0.0;

  mutable std::mutex mu_;            ///< window / moments / drift / history
  std::vector<LabeledSample> window_;  ///< ring: sample c at slot c % cap
  std::size_t observed_ = 0;           ///< labeled samples ever observed
  stats::StreamingTwoClass moments_;
  DriftDetector drift_;
  std::optional<core::FixedClassifier> incumbent_;
  std::vector<PromotedVersion> history_;
  RetrainOutcome last_outcome_;

  std::mutex retrain_mu_;            ///< serializes retrain/rollback bodies
  std::atomic<bool> inflight_{false};
  sched::TaskGroup group_;

  std::atomic<std::uint64_t> retrains_{0};
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> rollbacks_{0};
};

}  // namespace ldafp::model
