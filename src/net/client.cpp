#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace ldafp::net {

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rbuf_(std::move(other.rbuf_)),
      rpos_(std::exchange(other.rpos_, 0)),
      peer_closed_(std::exchange(other.peer_closed_, false)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    rbuf_ = std::move(other.rbuf_);
    rpos_ = std::exchange(other.rpos_, 0);
    peer_closed_ = std::exchange(other.peer_closed_, false);
  }
  return *this;
}

Client Client::connect_to(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw IoError("socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw IoError("invalid address: " + host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    throw IoError("cannot connect to " + host + ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Client client;
  client.fd_ = fd;
  return client;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send(const ScoreRequest& request) {
  std::vector<std::uint8_t> frame;
  encode(frame, request);
  send_bytes(frame.data(), frame.size());
}

void Client::send_bytes(const void* data, std::size_t n) {
  LDAFP_CHECK(fd_ >= 0, "client not connected");
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t w =
        ::send(fd_, bytes + sent, n - sent, MSG_NOSIGNAL);
    if (w > 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    throw IoError("connection lost while sending");
  }
}

std::size_t Client::read_some(bool blocking) {
  std::uint8_t chunk[64 * 1024];
  while (true) {
    const ssize_t n =
        ::recv(fd_, chunk, sizeof(chunk), blocking ? 0 : MSG_DONTWAIT);
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), chunk, chunk + n);
      return static_cast<std::size_t>(n);
    }
    if (n == 0) {
      peer_closed_ = true;
      return 0;
    }
    if (errno == EINTR) continue;
    if (!blocking && (errno == EAGAIN || errno == EWOULDBLOCK)) return 0;
    throw IoError("connection lost while receiving");
  }
}

bool Client::decode_buffered(ScoreResponse& out) {
  DecodedFrame frame;
  std::size_t consumed = 0;
  FrameError error = FrameError::kNone;
  const DecodeState state =
      decode_frame(rbuf_.data() + rpos_, rbuf_.size() - rpos_,
                   kMaxFrameBytes, frame, consumed, error);
  if (state == DecodeState::kNeedMore) return false;
  if (state == DecodeState::kError) {
    throw IoError(std::string("undecodable response stream: ") +
                  to_string(error));
  }
  if (frame.type != MessageType::kScoreResponse) {
    throw IoError("server sent a non-response frame");
  }
  rpos_ += consumed;
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  }
  out = std::move(frame.response);
  return true;
}

ScoreResponse Client::recv() {
  LDAFP_CHECK(fd_ >= 0, "client not connected");
  ScoreResponse response;
  while (!decode_buffered(response)) {
    if (read_some(/*blocking=*/true) == 0) {
      throw IoError("connection closed by server");
    }
  }
  return response;
}

bool Client::try_recv(ScoreResponse& out) {
  LDAFP_CHECK(fd_ >= 0, "client not connected");
  if (decode_buffered(out)) return true;
  if (read_some(/*blocking=*/false) == 0) return false;
  return decode_buffered(out);
}

ScoreResponse Client::call(const ScoreRequest& request) {
  send(request);
  return recv();
}

}  // namespace ldafp::net
