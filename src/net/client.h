// Blocking protocol client — the test and load-generator counterpart
// of the epoll server.
//
// One Client owns one TCP connection and speaks the DESIGN.md §12
// framing: send() writes a whole encoded request, recv() blocks for the
// next complete response frame (reassembling partial reads through the
// same decode_frame the server uses).  Pipelining is just calling
// send() k times before recv() — responses come back in request order,
// which tests/net assert and bench/serve_load exploits for its
// closed-loop windows.  try_recv() is the non-blocking drain used by
// the open-loop generator between paced sends.
//
// Blocking by design: each load-generator connection runs on its own
// thread, where blocking I/O is the simplest correct thing; only the
// server side needs an event loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"

namespace ldafp::net {

/// Blocking client over one connection.  Movable, not copyable.
class Client {
 public:
  /// Disconnected client; connect() before use.
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects (IPv4 dotted-quad host).  Throws IoError on failure.
  static Client connect_to(const std::string& host, std::uint16_t port);

  bool connected() const { return fd_ >= 0; }

  /// Encodes and writes one request (blocking until fully written).
  /// Throws IoError when the connection is lost mid-write.
  void send(const ScoreRequest& request);

  /// Writes raw bytes verbatim — the protocol-robustness tests use this
  /// to inject malformed frames.
  void send_bytes(const void* data, std::size_t n);

  /// Blocks for the next complete response frame.  Throws IoError on
  /// EOF or an undecodable stream.
  ScoreResponse recv();

  /// Non-blocking: true when a complete response was already buffered
  /// (or arrived without waiting).  Never blocks.
  bool try_recv(ScoreResponse& out);

  /// send() + recv() round trip.
  ScoreResponse call(const ScoreRequest& request);

  /// True when the peer has closed (observed during a recv attempt).
  bool peer_closed() const { return peer_closed_; }

  void close();
  int fd() const { return fd_; }

 private:
  /// Decodes one buffered response; false when more bytes are needed.
  bool decode_buffered(ScoreResponse& out);
  /// Reads once into the buffer.  Returns bytes read, 0 on EOF/EAGAIN.
  std::size_t read_some(bool blocking);

  int fd_ = -1;
  std::vector<std::uint8_t> rbuf_;
  std::size_t rpos_ = 0;
  bool peer_closed_ = false;
};

}  // namespace ldafp::net
