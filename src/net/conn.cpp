#include "net/conn.h"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "support/wire.h"

namespace ldafp::net {

namespace {
/// Socket read chunk; also the compaction threshold for the buffers.
constexpr std::size_t kIoChunk = 64u * 1024;
}  // namespace

std::uint64_t LoopContext::adopt(Connection* conn) {
  const std::uint64_t id = next_conn_id++;
  conns.emplace(id, conn);
  return id;
}

void LoopContext::forget(std::uint64_t id) { conns.erase(id); }

std::size_t LoopContext::drain_completions() {
  std::size_t routed = 0;
  runtime::RequestBlock* block = completions->drain();
  while (block != nullptr) {
    runtime::RequestBlock* next = block->next;
    block->next = nullptr;
    const auto it = conns.find(block->conn_id);
    if (it != conns.end()) {
      it->second->on_completion(block);
    } else {
      // The submitter closed while its request was in flight; nobody
      // will encode this reply — straight back to the freelist.
      pool.recycle(block);
    }
    ++routed;
    block = next;
  }
  return routed;
}

Connection::Connection(int fd, const ServeContext* ctx, LoopContext* loop)
    : fd_(fd), ctx_(ctx), loop_(loop) {
  ctx_->metrics->connections_opened.increment();
  // Legacy futures mode never receives completions, so it skips the
  // routing table (conn_id_ stays 0).
  if (completion_path()) conn_id_ = loop_->adopt(this);
}

Connection::~Connection() {
  if (loop_ == nullptr) return;
  loop_->forget(conn_id_);
  for (Pending& pending : pending_) {
    if (pending.block != nullptr && pending.ready) {
      // Ready blocks are ours again; un-ready ones still belong to the
      // engine and recycle as orphans when their completion routes.
      loop_->pool.recycle(pending.block);
      pending.block = nullptr;
    }
  }
}

void Connection::on_readable() {
  std::uint8_t chunk[kIoChunk];
  while (!dead_ && !close_after_flush_) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      ctx_->metrics->bytes_rx.add(static_cast<std::uint64_t>(n));
      ingest(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return;
      continue;
    }
    if (n == 0) {  // orderly EOF
      dead_ = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    dead_ = true;  // ECONNRESET and friends
    return;
  }
}

void Connection::flush() {
  while (!dead_ && wpos_ < wbuf_.size()) {
    const ssize_t n = ::send(fd_, wbuf_.data() + wpos_,
                             wbuf_.size() - wpos_, MSG_NOSIGNAL);
    if (n > 0) {
      ctx_->metrics->bytes_tx.add(static_cast<std::uint64_t>(n));
      consume_output(static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    dead_ = true;  // client vanished mid-write
    return;
  }
}

void Connection::consume_output(std::size_t n) {
  wpos_ += n;
  if (wpos_ >= wbuf_.size()) {
    wbuf_.clear();
    wpos_ = 0;
  } else if (wpos_ >= kIoChunk) {
    wbuf_.erase(wbuf_.begin(),
                wbuf_.begin() + static_cast<std::ptrdiff_t>(wpos_));
    wpos_ = 0;
  }
}

void Connection::ingest(const std::uint8_t* data, std::size_t n) {
  if (dead_ || close_after_flush_) return;  // stream already condemned
  rbuf_.insert(rbuf_.end(), data, data + n);
  if (completion_path()) {
    while (true) {
      ScoreRequestView view;
      std::size_t consumed = 0;
      FrameError error = FrameError::kNone;
      const DecodeState state =
          decode_request_view(rbuf_.data() + rpos_, rbuf_.size() - rpos_,
                              ctx_->max_frame_bytes, view, consumed, error);
      if (state == DecodeState::kNeedMore) break;
      if (state == DecodeState::kError) {
        fail_protocol(error);
        return;
      }
      rpos_ += consumed;
      // The view aliases rbuf_; handle_request quantizes the payload
      // into a packed block before returning, so nothing outlives the
      // buffer.
      handle_request(view);
    }
  } else {
    while (true) {
      DecodedFrame frame;
      std::size_t consumed = 0;
      FrameError error = FrameError::kNone;
      const DecodeState state =
          decode_frame(rbuf_.data() + rpos_, rbuf_.size() - rpos_,
                       ctx_->max_frame_bytes, frame, consumed, error);
      if (state == DecodeState::kNeedMore) break;
      if (state == DecodeState::kError) {
        fail_protocol(error);
        return;
      }
      rpos_ += consumed;
      if (frame.type == MessageType::kScoreRequest) {
        handle_request_futures(std::move(frame.request));
      } else {
        // A client pushing response frames at the server is not
        // speaking the protocol; terminal, same as a framing error.
        fail_protocol(FrameError::kBadType);
        return;
      }
    }
  }
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ >= kIoChunk) {
    rbuf_.erase(rbuf_.begin(),
                rbuf_.begin() + static_cast<std::ptrdiff_t>(rpos_));
    rpos_ = 0;
  }
}

ResponseStatus Connection::admission_check(std::string_view model_name,
                                           std::uint16_t sample_count,
                                           std::uint16_t dim,
                                           std::uint8_t expected_integer_bits,
                                           std::uint8_t expected_frac_bits,
                                           runtime::ModelHandle& model) {
  const std::string_view name =
      model_name.empty() ? std::string_view(ctx_->default_model)
                         : model_name;
  model = ctx_->registry->get(name);
  if (model == nullptr) return ResponseStatus::kUnknownModel;
  if (sample_count == 0 || dim != model->classifier.dim()) {
    return ResponseStatus::kInvalidRequest;
  }
  if ((expected_integer_bits != 0 || expected_frac_bits != 0) &&
      (expected_integer_bits !=
           model->classifier.format().integer_bits() ||
       expected_frac_bits != model->classifier.format().frac_bits())) {
    return ResponseStatus::kFormatMismatch;
  }
  if (ctx_->draining != nullptr &&
      ctx_->draining->load(std::memory_order_acquire)) {
    return ResponseStatus::kShuttingDown;
  }
  return ResponseStatus::kOk;
}

void Connection::handle_request(const ScoreRequestView& request) {
  runtime::ModelHandle model;
  const ResponseStatus check = admission_check(
      request.model, request.sample_count, request.dim,
      request.expected_integer_bits, request.expected_frac_bits, model);
  if (check != ResponseStatus::kOk) {
    enqueue_immediate(request.request_id, check, model);
    return;
  }

  runtime::RequestBlock* block = loop_->pool.acquire();
  block->model = model;
  if (!model->scorer.pack_from_f64_le(block->batch, request.features_le,
                                      request.sample_count)) {
    // NaN in the payload: reject at ingest — letting it through would
    // trip the quantizer's NaN check inside a scoring worker.
    block->batch.clear();
    loop_->pool.recycle(block);
    enqueue_immediate(request.request_id, ResponseStatus::kInvalidRequest,
                      model);
    return;
  }
  block->completions = loop_->completions;
  block->conn_id = conn_id_;
  const runtime::SubmitStatus status = ctx_->engine->submit(block);
  if (status == runtime::SubmitStatus::kAccepted) {
    ctx_->metrics->accepted.increment();
    Pending pending;
    pending.response.request_id = request.request_id;
    pending.response.status = ResponseStatus::kOk;
    pending.model = std::move(model);
    pending.block = block;
    pending_.push_back(std::move(pending));
    return;
  }
  loop_->pool.recycle(block);  // admission failed; ownership never left
  switch (status) {
    case runtime::SubmitStatus::kQueueFull:
      enqueue_immediate(request.request_id, ResponseStatus::kRejected,
                        model);
      return;
    case runtime::SubmitStatus::kShuttingDown:
      enqueue_immediate(request.request_id, ResponseStatus::kShuttingDown,
                        model);
      return;
    default:
      enqueue_immediate(request.request_id, ResponseStatus::kInvalidRequest,
                        model);
      return;
  }
}

void Connection::handle_request_futures(ScoreRequest&& request) {
  runtime::ModelHandle model;
  const ResponseStatus check = admission_check(
      request.model, request.sample_count(), request.dim,
      request.expected_integer_bits, request.expected_frac_bits, model);
  if (check != ResponseStatus::kOk) {
    enqueue_immediate(request.request_id, check, model);
    return;
  }

  const std::uint16_t samples = request.sample_count();
  std::vector<linalg::Vector> xs;
  xs.reserve(samples);
  for (std::uint16_t s = 0; s < samples; ++s) {
    const auto* row = request.features.data() +
                      static_cast<std::size_t>(s) * request.dim;
    xs.emplace_back(std::vector<double>(row, row + request.dim));
  }
  runtime::Submission sub = ctx_->engine->submit(model, std::move(xs));
  switch (sub.status) {
    case runtime::SubmitStatus::kAccepted: {
      ctx_->metrics->accepted.increment();
      Pending pending;
      pending.response.request_id = request.request_id;
      pending.response.status = ResponseStatus::kOk;
      pending.model = model;
      pending.future = std::move(sub.result);
      pending_.push_back(std::move(pending));
      return;
    }
    case runtime::SubmitStatus::kQueueFull:
      enqueue_immediate(request.request_id, ResponseStatus::kRejected,
                        model);
      return;
    case runtime::SubmitStatus::kShuttingDown:
      enqueue_immediate(request.request_id, ResponseStatus::kShuttingDown,
                        model);
      return;
    case runtime::SubmitStatus::kInvalidRequest:
      enqueue_immediate(request.request_id, ResponseStatus::kInvalidRequest,
                        model);
      return;
  }
  enqueue_immediate(request.request_id, ResponseStatus::kInternalError,
                    model);
}

void Connection::enqueue_immediate(std::uint64_t request_id,
                                   ResponseStatus status,
                                   const runtime::ModelHandle& model) {
  // Rejections are accounted at decision time, not flush time, so the
  // sent == ok + rejected invariant holds even when the client hangs up
  // before reading its failure.
  ctx_->metrics->rejected(status).increment();
  Pending pending;
  pending.immediate = true;
  pending.response.request_id = request_id;
  pending.response.status = status;
  if (model != nullptr) {
    pending.response.model_version = model->version;
    pending.response.model_integer_bits = static_cast<std::uint8_t>(
        model->classifier.format().integer_bits());
    pending.response.model_frac_bits =
        static_cast<std::uint8_t>(model->classifier.format().frac_bits());
  }
  pending_.push_back(std::move(pending));
}

void Connection::fail_protocol(FrameError error) {
  (void)error;  // reason is visible to the peer only as the close
  ctx_->metrics->protocol_errors.increment();
  // Terminal notice: request_id 0 (the offending frame's id may not
  // even have parsed), then close once it flushes.  Requests already
  // pipelined ahead of the bad bytes still complete first — they sit
  // earlier in the pending queue.
  Pending pending;
  pending.immediate = true;
  pending.response.request_id = 0;
  pending.response.status = ResponseStatus::kProtocolError;
  pending_.push_back(std::move(pending));
  close_after_flush_ = true;
}

void Connection::on_completion(runtime::RequestBlock* block) {
  for (Pending& pending : pending_) {
    if (pending.block == block) {
      pending.ready = true;
      return;
    }
  }
  // No pending slot claims this block (the pipeline was torn down
  // around it); recycle rather than leak.
  loop_->pool.recycle(block);
}

bool Connection::pump() {
  bool encoded = false;
  while (!pending_.empty() && !dead_) {
    Pending& head = pending_.front();
    if (!head.immediate) {
      if (head.block != nullptr) {
        // Completion path: the router flips `ready`; no polling.
        if (!head.ready) break;
        head.response.model_version = head.model->version;
        head.response.model_integer_bits = static_cast<std::uint8_t>(
            head.model->classifier.format().integer_bits());
        head.response.model_frac_bits = static_cast<std::uint8_t>(
            head.model->classifier.format().frac_bits());
      } else {
        // Legacy futures path (baseline benchmark mode only).
        if (head.future.wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
          break;
        }
        std::vector<runtime::ScoreResult> results = head.future.get();
        head.response.model_version = head.model->version;
        head.response.model_integer_bits = static_cast<std::uint8_t>(
            head.model->classifier.format().integer_bits());
        head.response.model_frac_bits = static_cast<std::uint8_t>(
            head.model->classifier.format().frac_bits());
        head.response.results.reserve(results.size());
        for (const runtime::ScoreResult& r : results) {
          head.response.results.push_back(
              {static_cast<std::uint8_t>(r.label), r.projection_raw});
        }
      }
    }
    encode_response(head);
    pending_.pop_front();
    encoded = true;
  }
  return encoded;
}

void Connection::encode_response(Pending& pending) {
  if (pending.block != nullptr) {
    // Stream the frame straight from the pooled block's results — no
    // WireResult staging vector.
    const std::vector<runtime::ScoreResult>& results =
        pending.block->results;
    const std::size_t prefix = begin_response_frame(
        wbuf_, pending.response,
        static_cast<std::uint16_t>(results.size()));
    for (const runtime::ScoreResult& r : results) {
      support::put_u8(wbuf_, static_cast<std::uint8_t>(r.label));
      support::put_i64le(wbuf_, r.projection_raw);
    }
    finish_response_frame(wbuf_, prefix);
    loop_->pool.recycle(pending.block);
    pending.block = nullptr;
  } else {
    encode(wbuf_, pending.response);
  }
  ctx_->metrics->responses_sent.increment();
  ctx_->metrics->serve_latency.record(pending.started.seconds());
  if (unflushed_bytes() > ctx_->max_write_buffer) {
    // The client is not draining its socket; cut it loose instead of
    // buffering without bound (the response just encoded is lost, which
    // is the documented slow-client contract).
    ctx_->metrics->slow_client_disconnects.increment();
    dead_ = true;
  }
}

}  // namespace ldafp::net
