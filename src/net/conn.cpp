#include "net/conn.h"

#include <sys/socket.h>

#include <cerrno>
#include <chrono>
#include <utility>

namespace ldafp::net {

namespace {
/// Socket read chunk; also the compaction threshold for the buffers.
constexpr std::size_t kIoChunk = 64u * 1024;
}  // namespace

Connection::Connection(int fd, const ServeContext* ctx)
    : fd_(fd), ctx_(ctx) {
  ctx_->metrics->connections_opened.increment();
}

void Connection::on_readable() {
  std::uint8_t chunk[kIoChunk];
  while (!dead_ && !close_after_flush_) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      ctx_->metrics->bytes_rx.add(static_cast<std::uint64_t>(n));
      ingest(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) return;
      continue;
    }
    if (n == 0) {  // orderly EOF
      dead_ = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    dead_ = true;  // ECONNRESET and friends
    return;
  }
}

void Connection::flush() {
  while (!dead_ && wpos_ < wbuf_.size()) {
    const ssize_t n = ::send(fd_, wbuf_.data() + wpos_,
                             wbuf_.size() - wpos_, MSG_NOSIGNAL);
    if (n > 0) {
      ctx_->metrics->bytes_tx.add(static_cast<std::uint64_t>(n));
      consume_output(static_cast<std::size_t>(n));
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    dead_ = true;  // client vanished mid-write
    return;
  }
}

void Connection::consume_output(std::size_t n) {
  wpos_ += n;
  if (wpos_ >= wbuf_.size()) {
    wbuf_.clear();
    wpos_ = 0;
  } else if (wpos_ >= kIoChunk) {
    wbuf_.erase(wbuf_.begin(),
                wbuf_.begin() + static_cast<std::ptrdiff_t>(wpos_));
    wpos_ = 0;
  }
}

void Connection::ingest(const std::uint8_t* data, std::size_t n) {
  if (dead_ || close_after_flush_) return;  // stream already condemned
  rbuf_.insert(rbuf_.end(), data, data + n);
  while (true) {
    DecodedFrame frame;
    std::size_t consumed = 0;
    FrameError error = FrameError::kNone;
    const DecodeState state =
        decode_frame(rbuf_.data() + rpos_, rbuf_.size() - rpos_,
                     ctx_->max_frame_bytes, frame, consumed, error);
    if (state == DecodeState::kNeedMore) break;
    if (state == DecodeState::kError) {
      fail_protocol(error);
      return;
    }
    rpos_ += consumed;
    if (frame.type == MessageType::kScoreRequest) {
      handle_request(std::move(frame.request));
    } else {
      // A client pushing response frames at the server is not speaking
      // the protocol; terminal, same as a framing error.
      fail_protocol(FrameError::kBadType);
      return;
    }
  }
  if (rpos_ == rbuf_.size()) {
    rbuf_.clear();
    rpos_ = 0;
  } else if (rpos_ >= kIoChunk) {
    rbuf_.erase(rbuf_.begin(),
                rbuf_.begin() + static_cast<std::ptrdiff_t>(rpos_));
    rpos_ = 0;
  }
}

void Connection::handle_request(ScoreRequest&& request) {
  const std::string& name =
      request.model.empty() ? ctx_->default_model : request.model;
  const runtime::ModelHandle model = ctx_->registry->get(name);
  if (model == nullptr) {
    enqueue_immediate(request.request_id, ResponseStatus::kUnknownModel,
                      nullptr);
    return;
  }
  const std::uint16_t samples = request.sample_count();
  if (samples == 0 || request.dim != model->classifier.dim()) {
    enqueue_immediate(request.request_id, ResponseStatus::kInvalidRequest,
                      model);
    return;
  }
  if ((request.expected_integer_bits != 0 ||
       request.expected_frac_bits != 0) &&
      (request.expected_integer_bits !=
           model->classifier.format().integer_bits() ||
       request.expected_frac_bits !=
           model->classifier.format().frac_bits())) {
    enqueue_immediate(request.request_id, ResponseStatus::kFormatMismatch,
                      model);
    return;
  }
  if (ctx_->draining != nullptr &&
      ctx_->draining->load(std::memory_order_acquire)) {
    enqueue_immediate(request.request_id, ResponseStatus::kShuttingDown,
                      model);
    return;
  }

  std::vector<linalg::Vector> xs;
  xs.reserve(samples);
  for (std::uint16_t s = 0; s < samples; ++s) {
    const auto* row = request.features.data() +
                      static_cast<std::size_t>(s) * request.dim;
    xs.emplace_back(std::vector<double>(row, row + request.dim));
  }
  runtime::Submission sub = ctx_->engine->submit(model, std::move(xs));
  switch (sub.status) {
    case runtime::SubmitStatus::kAccepted: {
      ctx_->metrics->accepted.increment();
      Pending pending;
      pending.response.request_id = request.request_id;
      pending.response.status = ResponseStatus::kOk;
      pending.model = model;
      pending.future = std::move(sub.result);
      pending_.push_back(std::move(pending));
      return;
    }
    case runtime::SubmitStatus::kQueueFull:
      enqueue_immediate(request.request_id, ResponseStatus::kRejected,
                        model);
      return;
    case runtime::SubmitStatus::kShuttingDown:
      enqueue_immediate(request.request_id, ResponseStatus::kShuttingDown,
                        model);
      return;
    case runtime::SubmitStatus::kInvalidRequest:
      enqueue_immediate(request.request_id, ResponseStatus::kInvalidRequest,
                        model);
      return;
  }
  enqueue_immediate(request.request_id, ResponseStatus::kInternalError,
                    model);
}

void Connection::enqueue_immediate(std::uint64_t request_id,
                                   ResponseStatus status,
                                   const runtime::ModelHandle& model) {
  // Rejections are accounted at decision time, not flush time, so the
  // sent == ok + rejected invariant holds even when the client hangs up
  // before reading its failure.
  ctx_->metrics->rejected(status).increment();
  Pending pending;
  pending.immediate = true;
  pending.response.request_id = request_id;
  pending.response.status = status;
  if (model != nullptr) {
    pending.response.model_version = model->version;
    pending.response.model_integer_bits = static_cast<std::uint8_t>(
        model->classifier.format().integer_bits());
    pending.response.model_frac_bits =
        static_cast<std::uint8_t>(model->classifier.format().frac_bits());
  }
  pending_.push_back(std::move(pending));
}

void Connection::fail_protocol(FrameError error) {
  (void)error;  // reason is visible to the peer only as the close
  ctx_->metrics->protocol_errors.increment();
  // Terminal notice: request_id 0 (the offending frame's id may not
  // even have parsed), then close once it flushes.  Requests already
  // pipelined ahead of the bad bytes still complete first — they sit
  // earlier in the pending queue.
  Pending pending;
  pending.immediate = true;
  pending.response.request_id = 0;
  pending.response.status = ResponseStatus::kProtocolError;
  pending_.push_back(std::move(pending));
  close_after_flush_ = true;
}

bool Connection::pump() {
  bool encoded = false;
  while (!pending_.empty() && !dead_) {
    Pending& head = pending_.front();
    if (!head.immediate) {
      if (head.future.wait_for(std::chrono::seconds(0)) !=
          std::future_status::ready) {
        break;
      }
      std::vector<runtime::ScoreResult> results = head.future.get();
      head.response.model_version = head.model->version;
      head.response.model_integer_bits = static_cast<std::uint8_t>(
          head.model->classifier.format().integer_bits());
      head.response.model_frac_bits = static_cast<std::uint8_t>(
          head.model->classifier.format().frac_bits());
      head.response.results.reserve(results.size());
      for (const runtime::ScoreResult& r : results) {
        head.response.results.push_back(
            {static_cast<std::uint8_t>(r.label), r.projection_raw});
      }
    }
    encode_response(head);
    pending_.pop_front();
    encoded = true;
  }
  return encoded;
}

void Connection::encode_response(Pending& pending) {
  encode(wbuf_, pending.response);
  ctx_->metrics->responses_sent.increment();
  ctx_->metrics->serve_latency.record(pending.started.seconds());
  if (unflushed_bytes() > ctx_->max_write_buffer) {
    // The client is not draining its socket; cut it loose instead of
    // buffering without bound (the response just encoded is lost, which
    // is the documented slow-client contract).
    ctx_->metrics->slow_client_disconnects.increment();
    dead_ = true;
  }
}

}  // namespace ldafp::net
