// Per-connection serving state machine (sans-I/O core + socket shims).
//
// A Connection owns one client's byte streams and its pipeline of
// in-flight requests.  The protocol work — reassembling partial frames,
// dispatching decoded requests into the engine, and emitting responses
// *in request order* even though engine futures complete out of order —
// is pure buffer-to-buffer logic driven through ingest()/pump(), so
// tests exercise truncation, pipelining, and malformed-frame handling
// without a socket (tests/net/conn_test.cpp feeds byte splits at every
// offset).  The socket shims (on_readable/flush) layer non-blocking
// recv/send over that core; the epoll server owns when they run.
//
// Ordering: every request — accepted or immediately failed — occupies
// one slot in the pending queue, and pump() only ever completes the
// head slot, so responses cannot overtake each other.  Backpressure is
// explicit end to end: engine kQueueFull becomes a REJECTED response
// (never a silent drop), and a client that stops reading while the
// write buffer grows past its bound is disconnected (slow-client
// protection) rather than buffering without limit.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <string>
#include <vector>

#include "net/metrics.h"
#include "net/protocol.h"
#include "runtime/engine.h"
#include "runtime/registry.h"
#include "support/timer.h"

namespace ldafp::net {

/// Shared serving dependencies a connection dispatches into (all
/// borrowed from the server; engine/registry/metrics are thread-safe).
struct ServeContext {
  runtime::InferenceEngine* engine = nullptr;
  runtime::ModelRegistry* registry = nullptr;
  NetMetrics* metrics = nullptr;
  /// Model served when a request names none.
  std::string default_model;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Unflushed response bytes beyond this disconnect the client.
  std::size_t max_write_buffer = 4u << 20;
  /// Server-wide drain flag: set during shutdown so new requests are
  /// answered kShuttingDown instead of entering the engine.
  const std::atomic<bool>* draining = nullptr;
};

/// One client connection: frame reassembly in, ordered responses out.
class Connection {
 public:
  /// `fd` may be -1 for sans-I/O use (tests); the fd is borrowed — the
  /// server owns accept/close.
  Connection(int fd, const ServeContext* ctx);

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // -- socket shims (fd >= 0) --

  /// Drains the socket (non-blocking) through ingest().  EOF or a fatal
  /// socket error marks the connection dead.
  void on_readable();

  /// Sends as much buffered response data as the socket accepts.
  void flush();

  // -- sans-I/O core --

  /// Feeds `n` raw stream bytes: reassembles frames, dispatches each
  /// complete request, and on a framing error enqueues the terminal
  /// kProtocolError response and stops consuming input.
  void ingest(const std::uint8_t* data, std::size_t n);

  /// Completes head-of-line pending requests whose results are ready,
  /// encoding their responses into the write buffer.  Returns true when
  /// at least one response was encoded (the server uses this to decide
  /// whether another flush attempt is worthwhile).
  bool pump();

  // -- lifecycle state --

  /// In-flight requests (slots awaiting an engine result or encode).
  std::size_t pending_count() const { return pending_.size(); }
  /// Unflushed encoded bytes.
  std::size_t unflushed_bytes() const { return wbuf_.size() - wpos_; }
  bool wants_write() const { return unflushed_bytes() > 0; }
  /// True once the connection must be torn down immediately.
  bool dead() const { return dead_; }
  /// Condemns the connection (peer hangup/error seen by the server);
  /// the owning loop reaps it via finished() after the event batch.
  void mark_dead() { dead_ = true; }
  /// True when the connection should close after the buffer flushes
  /// (protocol error or shutdown notice already encoded).
  bool close_after_flush() const { return close_after_flush_; }
  /// Dead, or draining a terminal response with nothing left to send.
  bool finished() const {
    return dead_ || (close_after_flush_ && !wants_write() &&
                     pending_.empty());
  }

  int fd() const { return fd_; }

  // -- test hooks --

  /// The unflushed output bytes (valid until the next pump/flush).
  const std::uint8_t* output_data() const { return wbuf_.data() + wpos_; }
  /// Consumes `n` output bytes as if the socket had accepted them.
  void consume_output(std::size_t n);

 private:
  struct Pending {
    ScoreResponse response;             ///< prefilled unless admitted
    bool immediate = false;             ///< response ready at enqueue
    runtime::ModelHandle model;         ///< null for immediate failures
    std::future<std::vector<runtime::ScoreResult>> future;
    support::WallTimer started;         ///< frame decoded -> encoded
  };

  void handle_request(ScoreRequest&& request);
  void enqueue_immediate(std::uint64_t request_id, ResponseStatus status,
                         const runtime::ModelHandle& model);
  void fail_protocol(FrameError error);
  void encode_response(Pending& pending);

  int fd_;
  const ServeContext* ctx_;
  std::vector<std::uint8_t> rbuf_;
  std::size_t rpos_ = 0;
  std::vector<std::uint8_t> wbuf_;
  std::size_t wpos_ = 0;
  std::deque<Pending> pending_;
  bool close_after_flush_ = false;
  bool dead_ = false;
};

}  // namespace ldafp::net
