// Per-connection serving state machine (sans-I/O core + socket shims).
//
// A Connection owns one client's byte streams and its pipeline of
// in-flight requests.  The protocol work — reassembling partial frames,
// dispatching decoded requests into the engine, and emitting responses
// *in request order* even though completions arrive out of order — is
// pure buffer-to-buffer logic driven through ingest()/pump()/
// on_completion(), so tests exercise truncation, pipelining, and
// malformed-frame handling without a socket (tests/net/conn_test.cpp
// feeds byte splits at every offset).  The socket shims
// (on_readable/flush) layer non-blocking recv/send over that core; the
// epoll server owns when they run.
//
// Request lifecycle (the completion-driven hot path): ingest decodes a
// frame as a borrowed view, quantizes the feature payload straight from
// the read buffer into a pooled RequestBlock's PackedBatch
// (BatchScorer::pack_from_f64_le — no per-sample vector allocations,
// no double[] copy), and submits the block.  The engine delivers the
// scored block back through the loop's CompletionQueue; the loop routes
// it here via on_completion(), pump() encodes the response straight
// from the block's results, and the block returns to the loop's
// freelist.  Steady state allocates nothing.  A futures-based legacy
// path (ServeContext::use_futures, or a null LoopContext) is kept
// solely so bench/serve_load can measure the old pipeline in the same
// binary.
//
// Ordering: every request — accepted or immediately failed — occupies
// one slot in the pending queue, and pump() only ever completes the
// head slot, so responses cannot overtake each other no matter what
// order completions land in.  Backpressure is explicit end to end:
// engine kQueueFull becomes a REJECTED response (never a silent drop),
// and a client that stops reading while the write buffer grows past its
// bound is disconnected (slow-client protection) rather than buffering
// without limit.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/metrics.h"
#include "net/protocol.h"
#include "runtime/completion.h"
#include "runtime/engine.h"
#include "runtime/registry.h"
#include "support/timer.h"

namespace ldafp::net {

class Connection;

/// Shared serving dependencies a connection dispatches into (all
/// borrowed from the server; engine/registry/metrics are thread-safe).
struct ServeContext {
  runtime::InferenceEngine* engine = nullptr;
  runtime::ModelRegistry* registry = nullptr;
  NetMetrics* metrics = nullptr;
  /// Model served when a request names none.
  std::string default_model;
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Unflushed response bytes beyond this disconnect the client.
  std::size_t max_write_buffer = 4u << 20;
  /// Server-wide drain flag: set during shutdown so new requests are
  /// answered kShuttingDown instead of entering the engine.
  const std::atomic<bool>* draining = nullptr;
  /// Legacy benchmark mode: submit through the promise/future adapter
  /// and poll readiness in pump(), exactly the pre-completion pipeline.
  /// Only bench/serve_load --baseline-futures should set this.
  bool use_futures = false;
};

/// Per-event-loop serving state shared by the loop's connections: the
/// engine's delivery target (CompletionQueue + eventfd doorbell), the
/// RequestBlock freelist, and the conn-id routing table.  Everything
/// here is single-threaded by construction — exactly one loop thread
/// (or one test thread) touches it — except the CompletionQueue, whose
/// producer side is the engine's workers.
struct LoopContext {
  LoopContext()
      : completions(std::make_shared<runtime::CompletionQueue>()) {}
  ~LoopContext() { completions->abandon(); }

  LoopContext(const LoopContext&) = delete;
  LoopContext& operator=(const LoopContext&) = delete;

  std::shared_ptr<runtime::CompletionQueue> completions;
  runtime::RequestPool pool;
  /// Routing table: block->conn_id → submitting connection (borrowed;
  /// connections register in their constructor, unregister in their
  /// destructor).
  std::unordered_map<std::uint64_t, Connection*> conns;
  std::uint64_t next_conn_id = 1;

  /// Registers a connection, returning its routing id.
  std::uint64_t adopt(Connection* conn);
  void forget(std::uint64_t id);

  /// Routes every queued completion: blocks whose connection is still
  /// registered land in its pending pipeline (on_completion); orphans —
  /// the submitter closed mid-flight — recycle straight to the pool.
  /// Returns how many blocks were routed.  Call after the completion
  /// eventfd fires (consume_signal first).
  std::size_t drain_completions();
};

/// One client connection: frame reassembly in, ordered responses out.
class Connection {
 public:
  /// `fd` may be -1 for sans-I/O use (tests); the fd is borrowed — the
  /// server owns accept/close.  `loop` wires the completion-driven hot
  /// path; when null (or ctx->use_futures) the connection falls back to
  /// the future-polling legacy pipeline.
  Connection(int fd, const ServeContext* ctx, LoopContext* loop = nullptr);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  // -- socket shims (fd >= 0) --

  /// Drains the socket (non-blocking) through ingest().  EOF or a fatal
  /// socket error marks the connection dead.
  void on_readable();

  /// Sends as much buffered response data as the socket accepts.
  void flush();

  // -- sans-I/O core --

  /// Feeds `n` raw stream bytes: reassembles frames, dispatches each
  /// complete request, and on a framing error enqueues the terminal
  /// kProtocolError response and stops consuming input.
  void ingest(const std::uint8_t* data, std::size_t n);

  /// Accepts a scored block back from the loop's completion router,
  /// marking its pending slot ready (ownership of the block returns to
  /// this connection until pump() recycles it).
  void on_completion(runtime::RequestBlock* block);

  /// Completes head-of-line pending requests whose results are ready,
  /// encoding their responses into the write buffer.  Returns true when
  /// at least one response was encoded (the server uses this to decide
  /// whether another flush attempt is worthwhile).
  bool pump();

  // -- lifecycle state --

  /// In-flight requests (slots awaiting an engine result or encode).
  std::size_t pending_count() const { return pending_.size(); }
  /// Unflushed encoded bytes.
  std::size_t unflushed_bytes() const { return wbuf_.size() - wpos_; }
  bool wants_write() const { return unflushed_bytes() > 0; }
  /// True once the connection must be torn down immediately.
  bool dead() const { return dead_; }
  /// Condemns the connection (peer hangup/error seen by the server);
  /// the owning loop reaps it via finished() after the event batch.
  void mark_dead() { dead_ = true; }
  /// True when the connection should close after the buffer flushes
  /// (protocol error or shutdown notice already encoded).
  bool close_after_flush() const { return close_after_flush_; }
  /// Dead, or draining a terminal response with nothing left to send.
  bool finished() const {
    return dead_ || (close_after_flush_ && !wants_write() &&
                     pending_.empty());
  }

  int fd() const { return fd_; }
  /// Completion-routing id (0 when running the legacy path).
  std::uint64_t conn_id() const { return conn_id_; }

  // -- test hooks --

  /// The unflushed output bytes (valid until the next pump/flush).
  const std::uint8_t* output_data() const { return wbuf_.data() + wpos_; }
  /// Consumes `n` output bytes as if the socket had accepted them.
  void consume_output(std::size_t n);

 private:
  struct Pending {
    ScoreResponse response;             ///< prefilled unless admitted
    bool immediate = false;             ///< response ready at enqueue
    bool ready = false;                 ///< completion landed (block path)
    runtime::ModelHandle model;         ///< null for immediate failures
    /// Completion-path record.  While !ready the engine owns it and
    /// this pointer is only a matching cookie; once ready it is ours
    /// until pump() recycles it.
    runtime::RequestBlock* block = nullptr;
    std::future<std::vector<runtime::ScoreResult>> future;  ///< legacy path
    support::WallTimer started;         ///< frame decoded -> encoded
  };

  bool completion_path() const {
    return loop_ != nullptr && !ctx_->use_futures;
  }

  void handle_request(const ScoreRequestView& request);
  void handle_request_futures(ScoreRequest&& request);
  /// Pre-admission validation shared by both paths; resolves `model`
  /// and returns kOk when the request may proceed to the engine.
  ResponseStatus admission_check(std::string_view model_name,
                                 std::uint16_t sample_count,
                                 std::uint16_t dim,
                                 std::uint8_t expected_integer_bits,
                                 std::uint8_t expected_frac_bits,
                                 runtime::ModelHandle& model);
  void enqueue_immediate(std::uint64_t request_id, ResponseStatus status,
                         const runtime::ModelHandle& model);
  void fail_protocol(FrameError error);
  void encode_response(Pending& pending);

  int fd_;
  const ServeContext* ctx_;
  LoopContext* loop_;
  std::uint64_t conn_id_ = 0;
  std::vector<std::uint8_t> rbuf_;
  std::size_t rpos_ = 0;
  std::vector<std::uint8_t> wbuf_;
  std::size_t wpos_ = 0;
  std::deque<Pending> pending_;
  bool close_after_flush_ = false;
  bool dead_ = false;
};

}  // namespace ldafp::net
