#include "net/metrics.h"

namespace ldafp::net {

NetMetrics::NetMetrics(obs::MetricsRegistry* registry)
    : owned_(registry != nullptr ? nullptr
                                 : std::make_unique<obs::MetricsRegistry>()),
      registry_(registry != nullptr ? registry : owned_.get()),
      connections_opened(registry_->counter("net.connections_opened")),
      connections_closed(registry_->counter("net.connections_closed")),
      slow_client_disconnects(
          registry_->counter("net.slow_client_disconnects")),
      accepted(registry_->counter("net.accepted")),
      responses_sent(registry_->counter("net.responses_sent")),
      protocol_errors(registry_->counter("net.protocol_errors")),
      bytes_rx(registry_->counter("net.bytes_rx")),
      bytes_tx(registry_->counter("net.bytes_tx")),
      loop_wakeups(registry_->counter("net.loop_wakeups")),
      serve_latency(registry_->histogram("net.serve_latency")),
      rejected_queue_full_(registry_->counter(
          "net.rejected", {{"reason", "queue-full"}})),
      rejected_unknown_model_(registry_->counter(
          "net.rejected", {{"reason", "unknown-model"}})),
      rejected_invalid_request_(registry_->counter(
          "net.rejected", {{"reason", "invalid-request"}})),
      rejected_format_mismatch_(registry_->counter(
          "net.rejected", {{"reason", "format-mismatch"}})),
      rejected_shutting_down_(registry_->counter(
          "net.rejected", {{"reason", "shutting-down"}})),
      rejected_internal_(registry_->counter(
          "net.rejected", {{"reason", "internal"}})) {}

obs::Counter& NetMetrics::rejected(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kRejected: return rejected_queue_full_;
    case ResponseStatus::kUnknownModel: return rejected_unknown_model_;
    case ResponseStatus::kInvalidRequest: return rejected_invalid_request_;
    case ResponseStatus::kFormatMismatch: return rejected_format_mismatch_;
    case ResponseStatus::kShuttingDown: return rejected_shutting_down_;
    case ResponseStatus::kOk:
    case ResponseStatus::kProtocolError:
    case ResponseStatus::kInternalError: break;
  }
  return rejected_internal_;
}

}  // namespace ldafp::net
