// The `net.*` metric identities of the serving front-end.
//
// Mirrors runtime::RuntimeStats: one NetMetrics block binds every
// handle the transport records into a caller-supplied (or private)
// obs::MetricsRegistry, so the server exports under the same registry
// as the engine's "runtime.*" block and one snapshot covers the whole
// serving pipeline.  Rejection counters are labeled by reason —
// "net.rejected{reason=queue-full}" et al. — which is what lets
// bench/serve_load assert exact accounting: every request the server
// ever saw is in net.accepted, exactly one net.rejected{reason=...},
// or net.protocol_errors.
#pragma once

#include <memory>

#include "net/protocol.h"
#include "obs/metrics.h"

namespace ldafp::net {

/// Counter/gauge/histogram block of one Server.
class NetMetrics {
  // Registry storage first: the handles below bind into it at
  // construction, and members initialize in declaration order.
  std::unique_ptr<obs::MetricsRegistry> owned_;
  obs::MetricsRegistry* registry_;

 public:
  /// Binds the handles into `registry` ("net.*" names); owns a private
  /// registry when null.
  explicit NetMetrics(obs::MetricsRegistry* registry = nullptr);

  NetMetrics(const NetMetrics&) = delete;
  NetMetrics& operator=(const NetMetrics&) = delete;

  // -- connection lifecycle --
  obs::Counter& connections_opened;
  obs::Counter& connections_closed;
  /// Slow clients disconnected for exceeding the write-buffer bound.
  obs::Counter& slow_client_disconnects;

  // -- request admission --
  obs::Counter& accepted;         ///< requests admitted to the engine
  obs::Counter& responses_sent;   ///< complete response frames flushed
  /// Unrecoverable framing errors (stream torn down afterwards).
  obs::Counter& protocol_errors;

  // -- bytes on the wire --
  obs::Counter& bytes_rx;
  obs::Counter& bytes_tx;

  // -- event-loop behaviour --
  /// epoll_wait returns across all loops.  The no-busy-poll invariant:
  /// this stays proportional to completions + I/O events, not to wall
  /// time spent with requests in flight (tests/net/server_test.cpp
  /// bounds it against responses_sent).
  obs::Counter& loop_wakeups;

  // -- latency (seconds) --
  /// Request frame fully decoded -> response frame fully encoded (the
  /// server-side end-to-end view; clients measure the wire round trip).
  obs::Histogram& serve_latency;

  /// "net.rejected{reason=...}" counter for one non-ok outcome.
  obs::Counter& rejected(ResponseStatus status);

  const obs::MetricsRegistry& registry() const { return *registry_; }

 private:
  obs::Counter& rejected_queue_full_;
  obs::Counter& rejected_unknown_model_;
  obs::Counter& rejected_invalid_request_;
  obs::Counter& rejected_format_mismatch_;
  obs::Counter& rejected_shutting_down_;
  obs::Counter& rejected_internal_;
};

}  // namespace ldafp::net
