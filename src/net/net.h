// Umbrella header of ldafp_net — the TCP serving front-end.
//
//   protocol.h  length-prefixed little-endian frames (DESIGN.md §12)
//   conn.h      per-connection state machine (reassembly, pipelining)
//   server.h    epoll event loops over the inference engine
//   client.h    blocking client for tests and load generation
//   metrics.h   the "net.*" obs identities
#pragma once

#include "net/client.h"
#include "net/conn.h"
#include "net/metrics.h"
#include "net/protocol.h"
#include "net/server.h"
