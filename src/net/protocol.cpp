#include "net/protocol.h"

#include <algorithm>
#include <bit>

#include "support/wire.h"

namespace ldafp::net {

using support::WireReader;

const char* to_string(ResponseStatus status) {
  switch (status) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kRejected: return "rejected";
    case ResponseStatus::kUnknownModel: return "unknown-model";
    case ResponseStatus::kInvalidRequest: return "invalid-request";
    case ResponseStatus::kFormatMismatch: return "format-mismatch";
    case ResponseStatus::kShuttingDown: return "shutting-down";
    case ResponseStatus::kProtocolError: return "protocol-error";
    case ResponseStatus::kInternalError: return "internal-error";
  }
  return "?";
}

const char* to_string(FrameError error) {
  switch (error) {
    case FrameError::kNone: return "none";
    case FrameError::kBadMagic: return "bad-magic";
    case FrameError::kBadVersion: return "bad-version";
    case FrameError::kBadType: return "bad-type";
    case FrameError::kOversized: return "oversized";
    case FrameError::kRuntFrame: return "runt-frame";
    case FrameError::kLengthMismatch: return "length-mismatch";
    case FrameError::kBadPayload: return "bad-payload";
  }
  return "?";
}

namespace {

/// Shared header writer: appends the length prefix (patched at the end)
/// plus the 32 fixed header bytes, returning the prefix offset.
std::size_t begin_frame(std::vector<std::uint8_t>& out, MessageType type,
                        ResponseStatus status, std::uint64_t request_id,
                        std::uint64_t model_version,
                        std::uint8_t integer_bits, std::uint8_t frac_bits,
                        std::uint8_t model_len, std::uint16_t sample_count,
                        std::uint16_t dim) {
  const std::size_t prefix = out.size();
  support::put_u32le(out, 0);  // frame_len, patched by end_frame
  support::put_u32le(out, kMagic);
  support::put_u16le(out, kProtocolVersion);
  support::put_u8(out, static_cast<std::uint8_t>(type));
  support::put_u8(out, static_cast<std::uint8_t>(status));
  support::put_u64le(out, request_id);
  support::put_u64le(out, model_version);
  support::put_u8(out, integer_bits);
  support::put_u8(out, frac_bits);
  support::put_u8(out, model_len);
  support::put_u8(out, 0);  // reserved
  support::put_u16le(out, sample_count);
  support::put_u16le(out, dim);
  return prefix;
}

void end_frame(std::vector<std::uint8_t>& out, std::size_t prefix) {
  const std::size_t frame_len = out.size() - prefix - 4;
  LDAFP_CHECK(frame_len <= kMaxFrameBytes, "encoded frame exceeds cap");
  support::patch_u32le(out, prefix, static_cast<std::uint32_t>(frame_len));
}

/// The 32 fixed header bytes, parsed but unvalidated beyond framing.
struct FrameHeader {
  std::uint32_t frame_len = 0;
  std::uint8_t type = 0;
  std::uint8_t status = 0;
  std::uint64_t request_id = 0;
  std::uint64_t model_version = 0;
  std::uint8_t integer_bits = 0;
  std::uint8_t frac_bits = 0;
  std::uint8_t model_len = 0;
  std::uint16_t sample_count = 0;
  std::uint16_t dim = 0;
};

/// Shared framing validation of decode_frame / decode_request_view:
/// eager magic/version rejection, then the length envelope, then the
/// fixed-offset header fields once the whole frame is buffered.
DecodeState parse_header(const std::uint8_t* data, std::size_t size,
                         std::size_t max_frame, FrameHeader& hdr,
                         FrameError& error) {
  max_frame = std::min(max_frame, kMaxFrameBytes);

  // Eager sanity checks: a stream that is not speaking this protocol is
  // rejected as soon as the magic/version bytes arrive, not after a
  // bogus "length" worth of garbage has been buffered.
  if (size >= 8 && support::get_u32le(data + 4) != kMagic) {
    error = FrameError::kBadMagic;
    return DecodeState::kError;
  }
  if (size >= 10 && support::get_u16le(data + 8) != kProtocolVersion) {
    error = FrameError::kBadVersion;
    return DecodeState::kError;
  }
  if (size < 4) return DecodeState::kNeedMore;
  hdr.frame_len = support::get_u32le(data);
  if (hdr.frame_len < kHeaderBytes) {
    error = FrameError::kRuntFrame;
    return DecodeState::kError;
  }
  if (hdr.frame_len > max_frame) {
    error = FrameError::kOversized;
    return DecodeState::kError;
  }
  if (size < 4 + static_cast<std::size_t>(hdr.frame_len)) {
    return DecodeState::kNeedMore;
  }

  hdr.type = data[10];
  hdr.status = data[11];
  hdr.request_id = support::get_u64le(data + 12);
  hdr.model_version = support::get_u64le(data + 20);
  hdr.integer_bits = data[28];
  hdr.frac_bits = data[29];
  hdr.model_len = data[30];
  hdr.sample_count = support::get_u16le(data + 32);
  hdr.dim = support::get_u16le(data + 34);
  return DecodeState::kFrame;
}

}  // namespace

void encode(std::vector<std::uint8_t>& out, const ScoreRequest& request) {
  LDAFP_CHECK(request.model.size() <= 255,
              "model name exceeds 255 bytes");
  LDAFP_CHECK(request.dim > 0, "request dim must be positive");
  LDAFP_CHECK(request.features.size() % request.dim == 0,
              "feature count must be a multiple of dim");
  const std::size_t samples = request.features.size() / request.dim;
  LDAFP_CHECK(samples >= 1 && samples <= 65535,
              "sample count must be in [1, 65535]");
  const std::size_t prefix = begin_frame(
      out, MessageType::kScoreRequest, ResponseStatus::kOk,
      request.request_id, /*model_version=*/0,
      request.expected_integer_bits, request.expected_frac_bits,
      static_cast<std::uint8_t>(request.model.size()),
      static_cast<std::uint16_t>(samples), request.dim);
  support::put_bytes(out, request.model.data(), request.model.size());
  for (const double v : request.features) support::put_f64le(out, v);
  end_frame(out, prefix);
}

void encode(std::vector<std::uint8_t>& out, const ScoreResponse& response) {
  LDAFP_CHECK(response.results.size() <= 65535,
              "response result count must fit u16");
  const std::size_t prefix = begin_frame(
      out, MessageType::kScoreResponse, response.status,
      response.request_id, response.model_version,
      response.model_integer_bits, response.model_frac_bits,
      /*model_len=*/0,
      static_cast<std::uint16_t>(response.results.size()), /*dim=*/0);
  for (const WireResult& r : response.results) {
    support::put_u8(out, r.label);
    support::put_i64le(out, r.projection_raw);
  }
  end_frame(out, prefix);
}

DecodeState decode_request_view(const std::uint8_t* data, std::size_t size,
                                std::size_t max_frame, ScoreRequestView& out,
                                std::size_t& consumed, FrameError& error) {
  consumed = 0;
  error = FrameError::kNone;
  FrameHeader hdr;
  const DecodeState state = parse_header(data, size, max_frame, hdr, error);
  if (state != DecodeState::kFrame) return state;
  if (hdr.type != static_cast<std::uint8_t>(MessageType::kScoreRequest)) {
    error = FrameError::kBadType;
    return DecodeState::kError;
  }
  // Full-width arithmetic: 8 * sample_count * dim peaks near 2^35, so a
  // u32 product could wrap to a tiny value and sail past the length
  // check.
  const std::size_t payload =
      static_cast<std::size_t>(hdr.model_len) +
      8 * static_cast<std::size_t>(hdr.sample_count) *
          static_cast<std::size_t>(hdr.dim);
  if (hdr.frame_len != kHeaderBytes + payload) {
    error = FrameError::kLengthMismatch;
    return DecodeState::kError;
  }
  out.request_id = hdr.request_id;
  out.expected_integer_bits = hdr.integer_bits;
  out.expected_frac_bits = hdr.frac_bits;
  out.sample_count = hdr.sample_count;
  out.dim = hdr.dim;
  const std::uint8_t* body = data + 4 + kHeaderBytes;
  out.model = std::string_view(reinterpret_cast<const char*>(body),
                               hdr.model_len);
  out.features_le = body + hdr.model_len;
  consumed = 4 + static_cast<std::size_t>(hdr.frame_len);
  return DecodeState::kFrame;
}

DecodeState decode_frame(const std::uint8_t* data, std::size_t size,
                         std::size_t max_frame, DecodedFrame& out,
                         std::size_t& consumed, FrameError& error) {
  consumed = 0;
  error = FrameError::kNone;
  FrameHeader hdr;
  const DecodeState state = parse_header(data, size, max_frame, hdr, error);
  if (state != DecodeState::kFrame) return state;

  if (hdr.type == static_cast<std::uint8_t>(MessageType::kScoreRequest)) {
    ScoreRequestView view;
    const DecodeState req_state =
        decode_request_view(data, size, max_frame, view, consumed, error);
    if (req_state != DecodeState::kFrame) return req_state;
    out.type = MessageType::kScoreRequest;
    ScoreRequest& req = out.request;
    req.request_id = view.request_id;
    req.expected_integer_bits = view.expected_integer_bits;
    req.expected_frac_bits = view.expected_frac_bits;
    req.dim = view.dim;
    req.model.assign(view.model);
    req.features.clear();
    const std::size_t count =
        static_cast<std::size_t>(view.sample_count) * view.dim;
    req.features.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      req.features.push_back(std::bit_cast<double>(
          support::get_u64le(view.features_le + 8 * i)));
    }
    return DecodeState::kFrame;
  }

  if (hdr.type == static_cast<std::uint8_t>(MessageType::kScoreResponse)) {
    const std::size_t payload =
        9 * static_cast<std::size_t>(hdr.sample_count);
    if (hdr.frame_len != kHeaderBytes + payload || hdr.model_len != 0) {
      error = FrameError::kLengthMismatch;
      return DecodeState::kError;
    }
    if (hdr.status >
        static_cast<std::uint8_t>(ResponseStatus::kInternalError)) {
      error = FrameError::kBadPayload;
      return DecodeState::kError;
    }
    out.type = MessageType::kScoreResponse;
    ScoreResponse& resp = out.response;
    resp.request_id = hdr.request_id;
    resp.status = static_cast<ResponseStatus>(hdr.status);
    resp.model_version = hdr.model_version;
    resp.model_integer_bits = hdr.integer_bits;
    resp.model_frac_bits = hdr.frac_bits;
    resp.results.clear();
    resp.results.reserve(hdr.sample_count);
    WireReader reader(data + 4 + kHeaderBytes, payload);
    for (std::size_t i = 0; i < hdr.sample_count; ++i) {
      WireResult r;
      r.label = reader.u8();
      r.projection_raw = reader.i64();
      resp.results.push_back(r);
    }
    if (!reader.ok() || reader.remaining() != 0) {
      error = FrameError::kBadPayload;
      return DecodeState::kError;
    }
    consumed = 4 + static_cast<std::size_t>(hdr.frame_len);
    return DecodeState::kFrame;
  }

  error = FrameError::kBadType;
  return DecodeState::kError;
}

std::size_t begin_response_frame(std::vector<std::uint8_t>& out,
                                 const ScoreResponse& response,
                                 std::uint16_t sample_count) {
  return begin_frame(out, MessageType::kScoreResponse, response.status,
                     response.request_id, response.model_version,
                     response.model_integer_bits, response.model_frac_bits,
                     /*model_len=*/0, sample_count, /*dim=*/0);
}

void finish_response_frame(std::vector<std::uint8_t>& out,
                           std::size_t prefix) {
  end_frame(out, prefix);
}

}  // namespace ldafp::net
