// The ldafp serving wire protocol (DESIGN.md §12).
//
// Frames are length-prefixed binary records, little-endian throughout
// (support/wire.h).  Every frame — request or response — carries the
// same 32-byte fixed header behind the u32 length prefix:
//
//   offset  size  field
//   0       4     frame_len      bytes that follow this field
//   4       4     magic          0x5046444C ("LDFP" on the wire)
//   8       2     version        protocol version, currently 1
//   10      1     type           1 = score request, 2 = score response
//   11      1     status         ResponseStatus (0 in requests)
//   12      8     request_id     client-chosen, echoed verbatim
//   20      8     model_version  0 in requests; served version in responses
//   28      1     integer_bits   FixedFormat tag (request: expected, 0 = any;
//   29      1     frac_bits       response: the served model's format)
//   30      1     model_len      request: model-name byte count; response 0
//   31      1     reserved       must be 0
//   32      2     sample_count   feature vectors in this request
//   34      2     dim            features per vector
//
// Request payload:  model_len name bytes, then sample_count*dim f64 LE
// features (row-major).  Response payload: sample_count records of
// { u8 label, i64 projection_raw } — the exact W-bit datapath bits the
// comparator saw, so clients can audit margins.
//
// Error taxonomy: *frame* errors (bad magic/version/length — the stream
// cannot be resynchronized) are terminal: the server answers with a
// status-only response (request_id 0) and closes.  *Request* errors
// (unknown model, dimension mismatch, backpressure) are per-request:
// the response carries the failure status and the connection lives on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fixed/format.h"
#include "support/error.h"

namespace ldafp::net {

/// "LDFP" when the u32 is written little-endian.
inline constexpr std::uint32_t kMagic = 0x5046444C;
inline constexpr std::uint16_t kProtocolVersion = 1;
/// Fixed header bytes counted by frame_len (excludes the prefix itself).
inline constexpr std::size_t kHeaderBytes = 32;
/// Bytes of length prefix + header before any payload.
inline constexpr std::size_t kFrameOverhead = 4 + kHeaderBytes;
/// Absolute ceiling on frame_len; servers may configure a lower one.
inline constexpr std::size_t kMaxFrameBytes = 1u << 20;

/// Frame type tag.
enum class MessageType : std::uint8_t {
  kScoreRequest = 1,
  kScoreResponse = 2,
};

/// Per-request (and terminal) outcome codes carried in responses.
enum class ResponseStatus : std::uint8_t {
  kOk = 0,
  kRejected = 1,       ///< engine backpressure (queue full) — retry later
  kUnknownModel = 2,   ///< no such model in the registry
  kInvalidRequest = 3, ///< zero samples or dimension mismatch
  kFormatMismatch = 4, ///< expected FixedFormat tag != served model's
  kShuttingDown = 5,   ///< server draining; connection will close
  kProtocolError = 6,  ///< unrecoverable framing error; connection closes
  kInternalError = 7,
};

/// Short display name ("ok", "rejected", ...).
const char* to_string(ResponseStatus status);

/// Why a frame could not be decoded.
enum class FrameError : std::uint8_t {
  kNone = 0,
  kBadMagic,
  kBadVersion,
  kBadType,
  kOversized,       ///< frame_len exceeds the configured maximum
  kRuntFrame,       ///< frame_len too short to hold the header
  kLengthMismatch,  ///< frame_len disagrees with the counted payload
  kBadPayload,      ///< truncated/inconsistent payload fields
};

/// Short display name ("bad-magic", ...), used as a metrics label.
const char* to_string(FrameError error);

/// One scoring request: `model` may be empty to address the server's
/// default model; `expected` (word-length 0 = unset) lets a client pin
/// the FixedFormat it calibrated its features against.
struct ScoreRequest {
  std::uint64_t request_id = 0;
  std::string model;
  std::uint8_t expected_integer_bits = 0;  ///< 0 = any format accepted
  std::uint8_t expected_frac_bits = 0;
  std::uint16_t dim = 0;
  /// sample_count * dim values, row-major; sample_count is derived.
  std::vector<double> features;

  std::uint16_t sample_count() const {
    return dim == 0 ? 0
                    : static_cast<std::uint16_t>(features.size() / dim);
  }
};

/// One scored sample echoed to the client.
struct WireResult {
  std::uint8_t label = 0;
  std::int64_t projection_raw = 0;
};

/// Response to one ScoreRequest (results empty unless status == kOk).
struct ScoreResponse {
  std::uint64_t request_id = 0;
  ResponseStatus status = ResponseStatus::kInternalError;
  std::uint64_t model_version = 0;
  std::uint8_t model_integer_bits = 0;
  std::uint8_t model_frac_bits = 0;
  std::vector<WireResult> results;
};

/// Appends one encoded request frame to `out`.  Throws
/// InvalidArgumentError when the request cannot be represented (model
/// name > 255 bytes, feature count not a multiple of dim, more than
/// 65535 samples, or a frame above kMaxFrameBytes).
void encode(std::vector<std::uint8_t>& out, const ScoreRequest& request);

/// Appends one encoded response frame to `out`.
void encode(std::vector<std::uint8_t>& out, const ScoreResponse& response);

/// Outcome of one decode attempt over a byte stream.
enum class DecodeState : std::uint8_t {
  kNeedMore,  ///< not enough buffered bytes yet; consumed == 0
  kFrame,     ///< one frame decoded; consumed == its total wire size
  kError,     ///< unrecoverable framing error (see FrameError)
};

/// Decoded view of either frame kind; exactly one side is populated,
/// according to `type`.
struct DecodedFrame {
  MessageType type = MessageType::kScoreRequest;
  ScoreRequest request;
  ScoreResponse response;
};

/// Incremental frame decoder: call with whatever prefix of the stream
/// is buffered.  Validates magic/version eagerly (a garbage stream is
/// rejected after 10 bytes, without waiting for a "frame" to complete)
/// and the payload exactly once the full frame is buffered.  On kFrame,
/// `consumed` is how many leading bytes to drop from the stream; on
/// kError the connection must be torn down — the stream cannot be
/// resynchronized.  `max_frame` caps frame_len (clamped to
/// kMaxFrameBytes).
DecodeState decode_frame(const std::uint8_t* data, std::size_t size,
                         std::size_t max_frame, DecodedFrame& out,
                         std::size_t& consumed, FrameError& error);

/// Borrowed view of one score-request frame: `model` and `features_le`
/// alias the caller's receive buffer and are valid only until it
/// mutates.  The serve path quantizes features straight from
/// `features_le` into packed tiles (BatchScorer::pack_from_f64_le)
/// without ever materializing a double[] copy.
struct ScoreRequestView {
  std::uint64_t request_id = 0;
  std::string_view model;
  std::uint8_t expected_integer_bits = 0;  ///< 0 = any format accepted
  std::uint8_t expected_frac_bits = 0;
  std::uint16_t sample_count = 0;
  std::uint16_t dim = 0;
  /// sample_count * dim f64 LE values, row-major, aliasing the stream.
  const std::uint8_t* features_le = nullptr;
};

/// Zero-copy request decoder: identical framing validation and state
/// machine as decode_frame, but only score-request frames decode (a
/// peer pushing response frames at a server fails kBadType, exactly as
/// the serving connection treats them) and the payload comes back as
/// views instead of copies.
DecodeState decode_request_view(const std::uint8_t* data, std::size_t size,
                                std::size_t max_frame, ScoreRequestView& out,
                                std::size_t& consumed, FrameError& error);

/// Streaming response encode for the serve hot path: appends the frame
/// prefix + header announcing `sample_count` result records (ignores
/// `response.results`), returning a token for finish_response_frame.
/// The caller appends exactly sample_count { u8 label,
/// i64 projection_raw } records (support::put_u8 / put_i64le) in
/// between, which lets pooled ScoreResults encode without materializing
/// WireResult rows.
std::size_t begin_response_frame(std::vector<std::uint8_t>& out,
                                 const ScoreResponse& response,
                                 std::uint16_t sample_count);

/// Patches the length prefix begun by begin_response_frame.
void finish_response_frame(std::vector<std::uint8_t>& out,
                           std::size_t prefix);

}  // namespace ldafp::net
