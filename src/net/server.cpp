#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <unordered_map>

namespace ldafp::net {

namespace {

double steady_now() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

/// One event loop: an epoll instance, a wake eventfd, the loop's
/// serving state (completion queue + block freelist), and the
/// connections this thread exclusively owns.
struct Server::Loop {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::thread thread;
  /// Completion-delivery target and RequestBlock pool.  Declared before
  /// `conns`: Connection destructors unregister from (and recycle into)
  /// this context, so it must outlive the map.
  LoopContext serve;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  /// EPOLLOUT interest currently registered, per fd.
  std::unordered_map<int, bool> write_interest;
  std::mutex inbox_mu;
  std::vector<int> inbox;  ///< accepted fds awaiting adoption
  /// Connection count mirror readable from other threads.
  std::atomic<std::size_t> conn_count{0};
};

Status ServerOptions::validate() const {
  if (engine == nullptr) return Status::invalid("server needs an engine");
  if (registry == nullptr) {
    return Status::invalid("server needs a model registry");
  }
  if (io_threads < 1) {
    return Status::invalid("server needs at least one io thread");
  }
  if (max_frame_bytes < kFrameOverhead) {
    return Status::invalid("max_frame_bytes below frame overhead");
  }
  if (max_write_buffer < kFrameOverhead) {
    return Status::invalid("max_write_buffer below frame overhead");
  }
  return Status();
}

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      metrics_(obs::metrics_of(options_.sink)) {
  throw_if_error(options_.validate());
  context_.engine = options_.engine;
  context_.registry = options_.registry;
  context_.metrics = &metrics_;
  context_.default_model = options_.default_model;
  context_.max_frame_bytes = options_.max_frame_bytes;
  context_.max_write_buffer = options_.max_write_buffer;
  context_.draining = &draining_;
  context_.use_futures = options_.use_futures_baseline;
}

Server::~Server() { stop(); }

void Server::start() {
  LDAFP_CHECK(!started_, "server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw IoError("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("invalid bind address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 512) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw IoError("cannot listen on " + options_.host + ": " + why);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  bound_port_ = ntohs(bound.sin_port);
  spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);

  draining_.store(false, std::memory_order_release);
  stop_.store(false, std::memory_order_release);
  loops_.clear();
  for (std::size_t i = 0; i < options_.io_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->wake_fd < 0) {
      throw IoError("epoll/eventfd setup failed");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    // The completion doorbell: engine workers ring it when scored
    // blocks land in this loop's CompletionQueue, so the loop blocks
    // in epoll_wait instead of polling for results.
    epoll_event cev{};
    cev.events = EPOLLIN;
    cev.data.fd = loop->serve.completions->event_fd();
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD,
                loop->serve.completions->event_fd(), &cev);
    loops_.push_back(std::move(loop));
  }
  // The first loop doubles as the acceptor.
  {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    Loop* loop = loops_[i].get();
    const bool acceptor = i == 0;
    loop->thread = std::thread([this, loop, acceptor] {
      run_loop(*loop, acceptor);
    });
  }
  started_ = true;
}

void Server::stop(double drain_seconds) {
  if (!started_) return;
  drain_deadline_.store(steady_now() + drain_seconds,
                        std::memory_order_release);
  draining_.store(true, std::memory_order_release);
  stop_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n =
        ::write(loop->wake_fd, &one, sizeof(one));
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
    // Handed-off fds the loop never adopted (stop raced an in-flight
    // accept handoff).  Safe to drain here: the acceptor loop joins
    // first, so nothing pushes into an inbox after its owner joined.
    // These never became Connections, so no opened/closed accounting.
    {
      std::lock_guard lock(loop->inbox_mu);
      for (const int fd : loop->inbox) ::close(fd);
      loop->inbox.clear();
    }
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    if (loop->wake_fd >= 0) ::close(loop->wake_fd);
  }
  loops_.clear();
  if (listen_fd_ >= 0) ::close(listen_fd_);
  listen_fd_ = -1;
  if (spare_fd_ >= 0) ::close(spare_fd_);
  spare_fd_ = -1;
  started_ = false;
}

std::size_t Server::connection_count() const {
  std::size_t total = 0;
  for (const auto& loop : loops_) {
    total += loop->conn_count.load(std::memory_order_relaxed);
  }
  return total;
}

void Server::run_loop(Loop& loop, bool is_acceptor) {
  std::vector<epoll_event> events(256);
  bool listener_armed = is_acceptor;
  const int completion_fd = loop.serve.completions->event_fd();
  while (true) {
    const bool stopping = stop_.load(std::memory_order_acquire);
    if (stopping && listener_armed) {
      // Drain phase: no new clients; existing responses still flush.
      ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
      listener_armed = false;
    }
    if (stopping) {
      bool idle = true;
      for (const auto& [fd, conn] : loop.conns) {
        if (conn->pending_count() > 0 || conn->wants_write()) {
          idle = false;
          break;
        }
      }
      if (idle ||
          steady_now() >=
              drain_deadline_.load(std::memory_order_acquire)) {
        break;
      }
    }

    // Completion-driven loops always block: in-flight requests wake us
    // through the CompletionQueue's eventfd, so the timeout is only an
    // idle housekeeping tick (tightened while stopping so the drain
    // deadline is honored promptly).  The legacy baseline mode keeps
    // the old behaviour — zero timeout while futures are outstanding,
    // because futures have no fd to ring — which is exactly the
    // busy-poll bench/serve_load --baseline-futures measures against.
    int timeout_ms;
    if (options_.use_futures_baseline) {
      bool pending = false;
      for (const auto& [fd, conn] : loop.conns) {
        if (conn->pending_count() > 0) {
          pending = true;
          break;
        }
      }
      timeout_ms = pending || stopping ? 0 : 200;
    } else {
      timeout_ms = stopping ? 10 : 200;
    }
    const int n = ::epoll_wait(loop.epoll_fd, events.data(),
                               static_cast<int>(events.size()),
                               timeout_ms);
    metrics_.loop_wakeups.increment();
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == listen_fd_) {
        accept_clients(loop);
        continue;
      }
      if (fd == loop.wake_fd) {
        std::uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(loop.wake_fd, &drained, sizeof(drained));
        adopt_inbox(loop);
        continue;
      }
      if (fd == completion_fd) {
        loop.serve.completions->consume_signal();
        loop.serve.drain_completions();
        continue;
      }
      auto it = loop.conns.find(fd);
      if (it == loop.conns.end()) continue;
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        // Mark dead, don't close yet: closing mid-batch frees the fd
        // number, which a same-batch accept could reuse — later stale
        // events in this batch would then hit the new connection.
        // service_connections reaps once the batch is done.
        conn.mark_dead();
        continue;
      }
      if (conn.dead()) continue;
      if ((events[i].events & EPOLLIN) != 0) conn.on_readable();
      if ((events[i].events & EPOLLOUT) != 0) conn.flush();
    }
    adopt_inbox(loop);
    service_connections(loop);
  }

  // Loop exit: every connection this thread owns closes with it.
  for (auto& [fd, conn] : loop.conns) {
    metrics_.connections_closed.increment();
    ::close(fd);
  }
  loop.conns.clear();
  loop.write_interest.clear();
  loop.conn_count.store(0, std::memory_order_relaxed);
}

void Server::accept_clients(Loop& loop) {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // fd table exhausted.  The listener is level-triggered, so
        // returning with the connection still queued would spin this
        // loop at 100% CPU.  Release the reserved spare fd, accept the
        // pending connection just to close it, then re-arm the spare.
        if (spare_fd_ >= 0) {
          ::close(spare_fd_);
          spare_fd_ = -1;
          const int victim = ::accept4(listen_fd_, nullptr, nullptr,
                                       SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (victim >= 0) ::close(victim);
          spare_fd_ = ::open("/dev/null", O_RDONLY | O_CLOEXEC);
          if (victim >= 0) continue;
        }
        return;
      }
      return;  // EAGAIN, or transient accept failure — epoll re-arms
    }
    set_nodelay(fd);
    const std::size_t target =
        next_loop_.fetch_add(1, std::memory_order_relaxed) %
        loops_.size();
    Loop& dest = *loops_[target];
    if (&dest == &loop) {
      add_connection(loop, fd);
    } else {
      {
        std::lock_guard lock(dest.inbox_mu);
        dest.inbox.push_back(fd);
      }
      const std::uint64_t one = 1;
      [[maybe_unused]] ssize_t n =
          ::write(dest.wake_fd, &one, sizeof(one));
    }
  }
}

void Server::adopt_inbox(Loop& loop) {
  std::vector<int> adopted;
  {
    std::lock_guard lock(loop.inbox_mu);
    adopted.swap(loop.inbox);
  }
  for (const int fd : adopted) add_connection(loop, fd);
}

void Server::add_connection(Loop& loop, int fd) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    ::close(fd);
    return;
  }
  loop.conns.emplace(fd,
                     std::make_unique<Connection>(fd, &context_,
                                                  &loop.serve));
  loop.write_interest[fd] = false;
  loop.conn_count.store(loop.conns.size(), std::memory_order_relaxed);
}

void Server::close_connection(Loop& loop, int fd) {
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  loop.conns.erase(fd);
  loop.write_interest.erase(fd);
  loop.conn_count.store(loop.conns.size(), std::memory_order_relaxed);
  metrics_.connections_closed.increment();
}

void Server::service_connections(Loop& loop) {
  std::vector<int> finished;
  for (auto& [fd, conn] : loop.conns) {
    if (!conn->dead()) {
      if (conn->pump()) conn->flush();
      // Level-triggered EPOLLOUT only while bytes are stuck in the
      // buffer, so an idle writable socket does not spin the loop.
      const bool want = conn->wants_write() && !conn->dead();
      bool& armed = loop.write_interest[fd];
      if (want != armed) {
        epoll_event ev{};
        ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
        ev.data.fd = fd;
        ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, fd, &ev);
        armed = want;
      }
    }
    if (conn->finished()) finished.push_back(fd);
  }
  for (const int fd : finished) close_connection(loop, fd);
}

}  // namespace ldafp::net
