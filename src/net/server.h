// Non-blocking epoll TCP front-end over the inference engine
// (DESIGN.md §12, §15).
//
// Topology: one listening socket plus `io_threads` event loops, each
// owning a disjoint set of connections (accepted round-robin, handed
// over through an eventfd-signalled inbox), so connection state is
// single-threaded by construction — the only cross-thread traffic is
// the thread-safe engine/registry/metrics trio every loop shares.
// Completion-driven: each loop owns a LoopContext (CompletionQueue +
// RequestBlock freelist), registers the queue's eventfd in its epoll
// set, and blocks in epoll_wait at a real timeout even while requests
// are in flight — engine workers ring the doorbell when scored blocks
// are ready, so a loop wakes exactly when there is I/O or a reply to
// encode, never to poll ("net.loop_wakeups" counts the wakes; a test
// bounds them against completions).
//
// The server serves whatever the ModelRegistry holds: requests route
// by model name (multi-tenant), hot swaps apply at the next request's
// registry resolve, and `default_model` catches requests that name no
// model.  Admission control composes with the engine: kQueueFull maps
// to a protocol-level REJECTED response, shutdown drains in-flight
// work before closing, and every stage records into the NetMetrics
// block ("net.*" identities).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/conn.h"
#include "net/metrics.h"
#include "obs/sink.h"
#include "runtime/engine.h"
#include "runtime/registry.h"
#include "support/error.h"

namespace ldafp::net {

/// Transport sizing and wiring of one Server.
struct ServerOptions {
  /// IPv4 address to bind (loopback by default — serving beyond the
  /// host is an explicit opt-in).
  std::string host = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Event-loop threads (>= 1); connections are spread round-robin.
  std::size_t io_threads = 1;
  /// Per-frame size cap (clamped to protocol kMaxFrameBytes).
  std::size_t max_frame_bytes = kMaxFrameBytes;
  /// Slow-client bound: unflushed response bytes beyond this close the
  /// connection.
  std::size_t max_write_buffer = 4u << 20;
  /// Model served when a request names none ("" = no default; such
  /// requests fail kUnknownModel).
  std::string default_model;
  /// Legacy benchmark mode: serve through the promise/future adapter
  /// with the old zero-timeout future-polling loops.  Exists solely so
  /// bench/serve_load --baseline-futures can measure the pre-completion
  /// pipeline in the same binary; never enable it in production.
  bool use_futures_baseline = false;

  /// Scoring engine (borrowed, required, outlives the server).
  runtime::InferenceEngine* engine = nullptr;
  /// Model store (borrowed, required, outlives the server).
  runtime::ModelRegistry* registry = nullptr;
  /// Observability seam: when `sink->metrics` is set the "net.*" block
  /// binds there (alongside the engine's "runtime.*" block when both
  /// share a registry); null = private registry.
  obs::Sink* sink = nullptr;

  /// Checks the wiring; called once by the Server constructor.
  Status validate() const;
};

/// The epoll serving front-end.  start() binds and spawns the loops;
/// stop() drains and joins (also run by the destructor).
class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and launches the event loops.  Throws IoError when
  /// the socket cannot be bound.
  void start();

  /// Graceful shutdown: stops accepting, answers new requests with
  /// kShuttingDown, waits up to `drain_seconds` for in-flight responses
  /// to flush, then closes every connection and joins the loops.
  /// Idempotent.
  void stop(double drain_seconds = 5.0);

  /// The bound port (resolves option port 0 to the kernel's choice).
  /// Valid after start().
  std::uint16_t port() const { return bound_port_; }

  bool running() const { return started_; }

  /// Live connection count across all loops.
  std::size_t connection_count() const;

  /// The transport's metric block ("net.*").
  const NetMetrics& metrics() const { return metrics_; }

  const ServerOptions& options() const { return options_; }

 private:
  struct Loop;

  void run_loop(Loop& loop, bool is_acceptor);
  void accept_clients(Loop& loop);
  void service_connections(Loop& loop);
  void adopt_inbox(Loop& loop);
  void add_connection(Loop& loop, int fd);
  void close_connection(Loop& loop, int fd);

  ServerOptions options_;
  NetMetrics metrics_;
  ServeContext context_;

  int listen_fd_ = -1;
  /// Reserved fd (open on /dev/null) released under EMFILE/ENFILE so
  /// the acceptor can accept-and-close instead of busy-spinning on the
  /// level-triggered listener while the fd table is exhausted.
  int spare_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> next_loop_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> stop_{false};
  /// steady_clock deadline (seconds since epoch of that clock) the
  /// loops must exit by once stop_ is set; guarded by being written
  /// before stop_ (release) and read after (acquire).
  std::atomic<double> drain_deadline_{0.0};
  bool started_ = false;
};

}  // namespace ldafp::net
