#include "obs/export.h"

#include <cstdio>
#include <limits>

#include "support/table.h"

namespace ldafp::obs {
namespace {

std::string format_duration(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  }
  return buf;
}

std::string format_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void write_histogram(support::JsonWriter& json,
                     const support::LatencyHistogram::Snapshot& hist) {
  json.begin_object();
  json.kv("count", hist.total_count);
  json.kv("mean", hist.mean());
  json.kv("p50", hist.quantile(0.5));
  json.kv("p90", hist.quantile(0.9));
  json.kv("p99", hist.quantile(0.99));
  json.kv("p999", hist.quantile(0.999));
  json.kv("max", hist.max_seconds);
  json.end_object();
}

}  // namespace

void write_json(support::JsonWriter& json, const MetricsSnapshot& snapshot) {
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& c : snapshot.counters) {
    json.kv(metric_identity(c.name, c.labels), c.value);
  }
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& g : snapshot.gauges) {
    json.kv(metric_identity(g.name, g.labels), g.value);
  }
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& h : snapshot.histograms) {
    json.key(metric_identity(h.name, h.labels));
    write_histogram(json, h.hist);
  }
  json.end_object();
  json.end_object();
}

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot) {
  support::JsonWriter json(out);
  write_json(json, snapshot);
  out << '\n';
}

void write_json(support::JsonWriter& json,
                const std::vector<SpanRecord>& spans) {
  json.begin_object();
  json.key("spans");
  json.begin_array();
  for (const SpanRecord& span : spans) {
    json.begin_object();
    json.kv("name", span.name);
    json.kv("thread", static_cast<std::uint64_t>(span.thread));
    json.kv("parent", static_cast<std::int64_t>(span.parent));
    json.kv("depth", static_cast<std::int64_t>(span.depth));
    json.kv("start", span.start_seconds);
    json.key("end");
    if (span.closed()) {
      json.value(span.end_seconds);
    } else {
      // JsonWriter renders non-finite doubles as null — the documented
      // "still open" marker.
      json.value(std::numeric_limits<double>::quiet_NaN());
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void write_trace_json(std::ostream& out,
                      const std::vector<SpanRecord>& spans) {
  support::JsonWriter json(out);
  write_json(json, spans);
  out << '\n';
}

std::string to_table(const MetricsSnapshot& snapshot) {
  support::TextTable values({"metric", "value"});
  for (const auto& c : snapshot.counters) {
    values.add_row({metric_identity(c.name, c.labels),
                    std::to_string(c.value)});
  }
  for (const auto& g : snapshot.gauges) {
    values.add_row({metric_identity(g.name, g.labels),
                    format_value(g.value)});
  }

  if (snapshot.histograms.empty()) return values.to_string();

  support::TextTable latency(
      {"histogram", "count", "mean", "p50", "p90", "p99", "p999", "max"});
  for (const auto& h : snapshot.histograms) {
    latency.add_row({metric_identity(h.name, h.labels),
                     std::to_string(h.hist.total_count),
                     format_duration(h.hist.mean()),
                     format_duration(h.hist.quantile(0.5)),
                     format_duration(h.hist.quantile(0.9)),
                     format_duration(h.hist.quantile(0.99)),
                     format_duration(h.hist.quantile(0.999)),
                     format_duration(h.hist.max_seconds)});
  }
  if (values.size() == 0) return latency.to_string();
  return values.to_string() + "\n" + latency.to_string();
}

}  // namespace ldafp::obs
