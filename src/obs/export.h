// Uniform exporters over obs snapshots.
//
// Every subsystem reports through the same three surfaces: the
// MetricsSnapshot / SpanRecord value structs (tests), JSON via
// support::JsonWriter (benches, the CLI's --metrics-json/--trace, CI
// artifacts), and aligned text tables via support::TextTable (logs).
// JSON keys are metric identity strings ("name" or "name{k=v}"), values
// deterministic for deterministic workloads; see README for samples.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/json.h"

namespace ldafp::obs {

/// Writes a snapshot as one JSON object value:
///   {"counters": {"bnb.nodes_processed": 123, ...},
///    "gauges": {"bnb.gap": 1e-9, ...},
///    "histograms": {"eval.train_seconds":
///        {"count": 3, "mean": ..., "p50": ..., "p90": ..., "p99": ...,
///         "p999": ..., "max": ...}, ...}}
/// Composable: the writer may be inside any container (a bench's
/// per-case object, the CLI's top-level document).
void write_json(support::JsonWriter& json, const MetricsSnapshot& snapshot);

/// Whole-document convenience: the object above plus a trailing newline.
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snapshot);

/// Writes spans as one JSON object value:
///   {"spans": [{"name": ..., "thread": 0, "parent": -1, "depth": 0,
///               "start": ..., "end": ...}, ...]}
/// Open spans export with "end": null.
void write_json(support::JsonWriter& json,
                const std::vector<SpanRecord>& spans);

/// Whole-document convenience for traces.
void write_trace_json(std::ostream& out,
                      const std::vector<SpanRecord>& spans);

/// Renders counters/gauges as one aligned table and histograms (count,
/// mean, and quantiles formatted as durations) as a second.
std::string to_table(const MetricsSnapshot& snapshot);

}  // namespace ldafp::obs
