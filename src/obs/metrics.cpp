#include "obs/metrics.h"

#include <algorithm>

namespace ldafp::obs {
namespace {

Labels sorted_labels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

template <typename Value>
const Value* find_entry(const std::vector<Value>& entries,
                        const std::string& name, const Labels& labels) {
  const Labels sorted = sorted_labels(labels);
  for (const Value& v : entries) {
    if (v.name == name && v.labels == sorted) return &v;
  }
  return nullptr;
}

template <typename Value>
void sort_values(std::vector<Value>& values) {
  std::sort(values.begin(), values.end(),
            [](const Value& a, const Value& b) {
              if (a.name != b.name) return a.name < b.name;
              return a.labels < b.labels;
            });
}

}  // namespace

std::string metric_identity(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  const Labels sorted = sorted_labels(labels);
  std::string out = name;
  out += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) out += ',';
    out += sorted[i].first;
    out += '=';
    out += sorted[i].second;
  }
  out += '}';
  return out;
}

void Gauge::set_max(double v) noexcept {
  double seen = value_.load(std::memory_order_relaxed);
  while (v > seen && !value_.compare_exchange_weak(
                         seen, v, std::memory_order_relaxed)) {
  }
}

void Gauge::add(double v) noexcept {
  double seen = value_.load(std::memory_order_relaxed);
  while (!value_.compare_exchange_weak(seen, seen + v,
                                       std::memory_order_relaxed)) {
  }
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::find_counter(
    const std::string& name, const Labels& labels) const {
  return find_entry(counters, name, labels);
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::find_gauge(
    const std::string& name, const Labels& labels) const {
  return find_entry(gauges, name, labels);
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::find_histogram(
    const std::string& name, const Labels& labels) const {
  return find_entry(histograms, name, labels);
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name,
                                             const Labels& labels) const {
  const CounterValue* v = find_counter(name, labels);
  return v != nullptr ? v->value : 0;
}

double MetricsSnapshot::gauge_value(const std::string& name,
                                    const Labels& labels) const {
  const GaugeValue* v = find_gauge(name, labels);
  return v != nullptr ? v->value : 0.0;
}

template <typename Metric>
Metric& MetricsRegistry::find_or_register(
    std::deque<Entry<Metric>>& entries, const std::string& name,
    Labels&& labels) {
  Labels sorted = sorted_labels(std::move(labels));
  std::lock_guard lock(mu_);
  for (Entry<Metric>& e : entries) {
    if (e.name == name && e.labels == sorted) return e.metric;
  }
  // Metrics are pinned (non-movable atomics), so the entry is built in
  // place and filled afterwards.
  Entry<Metric>& entry = entries.emplace_back();
  entry.name = name;
  entry.labels = std::move(sorted);
  return entry.metric;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  return find_or_register(counters_, name, std::move(labels));
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return find_or_register(gauges_, name, std::move(labels));
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      Labels labels) {
  return find_or_register(histograms_, name, std::move(labels));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::lock_guard lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const Entry<Counter>& e : counters_) {
      snap.counters.push_back({e.name, e.labels, e.metric.load()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const Entry<Gauge>& e : gauges_) {
      snap.gauges.push_back({e.name, e.labels, e.metric.load()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const Entry<Histogram>& e : histograms_) {
      snap.histograms.push_back({e.name, e.labels, e.metric.snapshot()});
    }
  }
  sort_values(snap.counters);
  sort_values(snap.gauges);
  sort_values(snap.histograms);
  return snap;
}

std::size_t MetricsRegistry::size() const {
  std::lock_guard lock(mu_);
  return counters_.size() + gauges_.size() + histograms_.size();
}

}  // namespace ldafp::obs
