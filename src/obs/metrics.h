// One metrics substrate for the whole system (DESIGN.md §11).
//
// MetricsRegistry is a registry of named, label-tagged counters, gauges,
// and histograms.  Registration (name lookup) takes a mutex and may
// allocate; it happens once, at setup time.  The returned handles are
// stable references whose hot-path operations are single relaxed atomic
// instructions — no locks, no allocation — so solver workers, sweep
// trials, and serving threads all record into one registry without
// serializing, exactly like support::LatencyHistogram (whose log-spaced
// bucket layout obs::Histogram reuses unchanged).
//
// Snapshots are plain value structs, deterministically sorted by metric
// name then labels, so tests assert on them directly; the exporters in
// obs/export.h render a snapshot as JSON (support::JsonWriter) or an
// aligned text table (support::TextTable).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "support/histogram.h"

namespace ldafp::obs {

/// Label set of one metric instance — "key=value" dimensions, e.g.
/// {{"dataset", "bci"}, {"w", "6"}}.  Order-insensitive: labels are
/// sorted by key at registration, so {{a,1},{b,2}} and {{b,2},{a,1}}
/// address the same instance.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// "name" or "name{k=v,k2=v2}" — the stable identity string used as the
/// export key and in table rows (labels in sorted-key order).
std::string metric_identity(const std::string& name, const Labels& labels);

/// Monotone event count.  Handles are created by MetricsRegistry and
/// live as long as the registry; increments are lock-free.
class Counter {
 public:
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::uint64_t load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written (or high-water) double value.  Lock-free.
class Gauge {
 public:
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }

  /// Monotone update: keeps the maximum of the current and new value
  /// (queue high-water marks).
  void set_max(double v) noexcept;

  /// Accumulates into the gauge (CAS loop — atomic<double>::fetch_add
  /// codegen is spotty, same rationale as LatencyHistogram's nanos).
  void add(double v) noexcept;

  double load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

/// Distribution of positive quantities (seconds by convention) in the
/// same fixed log-spaced buckets as support::LatencyHistogram.
class Histogram {
 public:
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double value) noexcept { hist_.record(value); }
  std::uint64_t count() const { return hist_.count(); }
  support::LatencyHistogram::Snapshot snapshot() const {
    return hist_.snapshot();
  }

 private:
  friend class MetricsRegistry;
  Histogram() = default;
  support::LatencyHistogram hist_;
};

/// Immutable copy of every registered metric, taken off the hot path.
/// Entries are sorted by (name, labels), so two registries fed the same
/// deterministic workload export byte-identical snapshots.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    Labels labels;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    Labels labels;
    double value = 0.0;
  };
  struct HistogramValue {
    std::string name;
    Labels labels;
    support::LatencyHistogram::Snapshot hist;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Lookup helpers for tests; null when the instance is absent.
  const CounterValue* find_counter(const std::string& name,
                                   const Labels& labels = {}) const;
  const GaugeValue* find_gauge(const std::string& name,
                               const Labels& labels = {}) const;
  const HistogramValue* find_histogram(const std::string& name,
                                       const Labels& labels = {}) const;

  /// Value accessors returning 0 for absent instances.
  std::uint64_t counter_value(const std::string& name,
                              const Labels& labels = {}) const;
  double gauge_value(const std::string& name,
                     const Labels& labels = {}) const;
};

/// The registry.  Handle creation is idempotent: asking twice for the
/// same (name, labels) returns the same handle, so independent
/// subsystems can share one instance by name alone.  Counters, gauges,
/// and histograms live in separate namespaces.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  // Handles point into the registry; it must stay put.
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {});

  /// Consistent-enough copy for reporting (same contract as
  /// LatencyHistogram::snapshot: per-metric reads are atomic,
  /// cross-metric skew of in-flight updates is acceptable).
  MetricsSnapshot snapshot() const;

  /// Number of registered metric instances across all kinds.
  std::size_t size() const;

 private:
  template <typename Metric>
  struct Entry {
    std::string name;
    Labels labels;
    Metric metric;
  };

  template <typename Metric>
  Metric& find_or_register(std::deque<Entry<Metric>>& entries,
                           const std::string& name, Labels&& labels);

  mutable std::mutex mu_;
  // Deques: registration never moves an already-handed-out handle.
  std::deque<Entry<Counter>> counters_;
  std::deque<Entry<Gauge>> gauges_;
  std::deque<Entry<Histogram>> histograms_;
};

}  // namespace ldafp::obs
