// The observability seam options structs carry.
//
// Mirrors the sched::Executor inline-default pattern: options hold an
// `obs::Sink*` defaulting to nullptr, and a null sink means every
// instrumented path degenerates to a branch — no metrics, no spans, no
// allocation — so embedding the seam in BnbOptions / EngineOptions /
// ExperimentConfig changes nothing until a caller wires a sink in.
// Instrumentation is side-effect-free with respect to computed results:
// attaching a sink never changes trained weights, bounds, node counts,
// or scores at any thread count (enforced by tests/obs).
#pragma once

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ldafp::obs {

/// A place to record: a metrics registry and/or a tracer, both
/// borrowed.  Either member may be null to enable just one facet.
struct Sink {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
};

/// Null-safe accessors so instrumented code reads as one expression.
inline MetricsRegistry* metrics_of(const Sink* sink) {
  return sink != nullptr ? sink->metrics : nullptr;
}
inline Tracer* tracer_of(const Sink* sink) {
  return sink != nullptr ? sink->tracer : nullptr;
}

}  // namespace ldafp::obs
