#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <utility>

namespace ldafp::obs {
namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

Tracer::Tracer() : id_(next_tracer_id()) {}

Tracer::ThreadBuffer& Tracer::local_buffer() {
  // Keyed by tracer id, not address: a new tracer at a recycled address
  // must not inherit a dead tracer's binding.  The map holds one entry
  // per tracer this thread ever recorded into — small, and stale ids
  // are simply never looked up again.
  thread_local std::unordered_map<std::uint64_t, ThreadBuffer*> bound;
  ThreadBuffer*& slot = bound[id_];
  if (slot == nullptr) {
    std::lock_guard lock(mu_);
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buffers_.back()->index = static_cast<std::uint32_t>(buffers_.size() - 1);
    slot = buffers_.back().get();
  }
  return *slot;
}

std::vector<SpanRecord> Tracer::snapshot() const {
  std::vector<SpanRecord> out;
  std::lock_guard lock(mu_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard buffer_lock(buffer->mu);
    out.insert(out.end(), buffer->spans.begin(), buffer->spans.end());
  }
  return out;
}

std::size_t Tracer::span_count() const {
  std::size_t n = 0;
  std::lock_guard lock(mu_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard buffer_lock(buffer->mu);
    n += buffer->spans.size();
  }
  return n;
}

ScopedSpan::ScopedSpan(Tracer* tracer, const char* name)
    : ScopedSpan(tracer, tracer != nullptr ? std::string(name)
                                           : std::string()) {}

ScopedSpan::ScopedSpan(Tracer* tracer, std::string name) {
  if (tracer == nullptr) return;
  tracer_ = tracer;
  buffer_ = &tracer->local_buffer();
  std::lock_guard lock(buffer_->mu);
  SpanRecord span;
  span.name = std::move(name);
  span.thread = buffer_->index;
  span.parent = buffer_->open.empty() ? -1 : buffer_->open.back();
  span.depth = static_cast<std::int32_t>(buffer_->open.size());
  span.start_seconds = tracer->seconds();
  index_ = static_cast<std::int32_t>(buffer_->spans.size());
  buffer_->spans.push_back(std::move(span));
  buffer_->open.push_back(index_);
}

ScopedSpan::~ScopedSpan() {
  if (tracer_ == nullptr) return;
  std::lock_guard lock(buffer_->mu);
  buffer_->spans[static_cast<std::size_t>(index_)].end_seconds =
      tracer_->seconds();
  // Scoping makes closes LIFO; erase defensively in case of interleaved
  // lifetimes (destructors must not throw).
  auto& open = buffer_->open;
  open.erase(std::remove(open.begin(), open.end(), index_), open.end());
}

}  // namespace ldafp::obs
