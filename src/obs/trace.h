// Scoped wall-time tracing with per-thread span buffers.
//
// A ScopedSpan brackets a region of work: construction records the start
// time against the tracer's epoch, destruction records the end.  Spans
// nest lexically — each thread keeps a stack of open spans, so a span
// started while another is open becomes its child (SpanRecord::parent /
// depth), giving a hierarchical trace of e.g. train → search → root
// bound without any manual bookkeeping.
//
// Each thread appends to its own buffer (registered with the tracer on
// first use), so tracing from solver workers, sweep trials, and serving
// threads never contends on shared state beyond a per-buffer mutex that
// is only ever contended by snapshot().  A null tracer makes ScopedSpan
// a no-op: one branch, no allocation, no clock read — the zero-overhead
// contract options structs rely on (DESIGN.md §11).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "support/timer.h"

namespace ldafp::obs {

/// One closed (or still-open) span.
struct SpanRecord {
  std::string name;
  /// Dense tracer-assigned index of the recording thread.
  std::uint32_t thread = 0;
  /// Index of the parent span within the same thread's records, -1 for
  /// a thread-root span.
  std::int32_t parent = -1;
  /// Nesting depth (0 for thread-root spans).
  std::int32_t depth = 0;
  /// Seconds since the tracer's construction.
  double start_seconds = 0.0;
  /// -1 while the span is still open.
  double end_seconds = -1.0;

  bool closed() const { return end_seconds >= start_seconds; }
  double duration_seconds() const {
    return closed() ? end_seconds - start_seconds : 0.0;
  }
};

/// Owns the per-thread buffers and the shared epoch clock.
class Tracer {
 public:
  Tracer();

  // Buffers are referenced by live ScopedSpans and thread-local caches;
  // the tracer must outlive every thread that records into it.
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Seconds since construction (the span timebase).
  double seconds() const { return epoch_.seconds(); }

  /// Copy of every recorded span, grouped by thread index (each
  /// thread's spans stay in recording order, so parent indices resolve
  /// within the group).  Safe to call while other threads record; spans
  /// still open appear with end_seconds == -1.
  std::vector<SpanRecord> snapshot() const;

  /// Total spans recorded so far.
  std::size_t span_count() const;

 private:
  friend class ScopedSpan;

  struct ThreadBuffer {
    mutable std::mutex mu;
    std::uint32_t index = 0;
    std::vector<SpanRecord> spans;
    std::vector<std::int32_t> open;  ///< stack of open span indices
  };

  /// This thread's buffer, registered on first use.
  ThreadBuffer& local_buffer();

  support::WallTimer epoch_;
  const std::uint64_t id_;  ///< process-unique, keys the thread-local cache
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span.  `tracer == nullptr` disables it entirely; with a literal
/// name the disabled path is a single branch (no string is built).
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name);
  ScopedSpan(Tracer* tracer, std::string name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  Tracer::ThreadBuffer* buffer_ = nullptr;
  std::int32_t index_ = -1;
};

}  // namespace ldafp::obs
