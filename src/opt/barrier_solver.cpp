#include "opt/barrier_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "linalg/ops.h"
#include "support/error.h"
#include "support/log.h"

namespace ldafp::opt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Box with every interval inflated to at least `min_width` (centered), so
/// the strict interior is non-empty.  Enlarging the box only relaxes the
/// problem, keeping lower bounds valid.
Box inflate_box(const Box& box, double min_width) {
  Box out = box;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].width() < min_width) {
      const double mid = out[i].mid();
      out[i].lo = mid - 0.5 * min_width;
      out[i].hi = mid + 0.5 * min_width;
    }
  }
  return out;
}

/// Cached per-SOC-constraint scalars at a point; the Σw vector lands in
/// the caller-supplied buffer so repeated evaluations stay off the heap.
struct SocEval {
  double residual;  // g(w)
  double root;      // sqrt(wᵀΣw + eps)
};

SocEval eval_soc(const SocConstraint& s, const linalg::Vector& w,
                 linalg::Vector& sigma_w) {
  SocEval out;
  const double quad =
      std::max(linalg::sym_matvec_quad(s.sigma, w, sigma_w), 0.0);
  out.root = std::sqrt(quad + s.eps);
  out.residual = s.beta * out.root + linalg::dot(s.c, w) - s.d;
  return out;
}

/// Gradient of the SOC residual from cached pieces, into `g`.
void soc_gradient(const SocConstraint& s, const SocEval& e,
                  const linalg::Vector& sigma_w, linalg::Vector& g) {
  g = sigma_w;
  g *= s.beta / e.root;
  g += s.c;
}

/// Adds (grad grad')/r² + Hg/r to `hess`, where r = -residual (phase II)
/// or s - residual (phase I), and Hg is the SOC residual Hessian.
void add_soc_barrier_hessian(const SocConstraint& s, const SocEval& e,
                             const linalg::Vector& sigma_w,
                             const linalg::Vector& grad, double r,
                             linalg::Matrix& hess) {
  const std::size_t n = grad.size();
  const double inv_r = 1.0 / r;
  const double inv_r2 = inv_r * inv_r;
  const double a = s.beta / e.root * inv_r;               // Σ scale
  const double b = s.beta / (e.root * e.root * e.root) * inv_r;  // rank-1
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      hess(i, j) += grad[i] * grad[j] * inv_r2 + a * s.sigma(i, j) -
                    b * sigma_w[i] * sigma_w[j];
    }
  }
}

/// Adds (a a')/r² to `hess` for a linear constraint with margin r.
void add_linear_barrier_hessian(const linalg::Vector& a, double r,
                                linalg::Matrix& hess) {
  const double inv_r2 = 1.0 / (r * r);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    for (std::size_t j = 0; j < a.size(); ++j) {
      hess(i, j) += a[i] * a[j] * inv_r2;
    }
  }
}

/// Solves H dx = -g into `dx` with escalating diagonal jitter, using
/// `factor` as factorization scratch.  Returns the number of Cholesky
/// attempts (retries included); allocation-free.
int newton_direction(const linalg::Matrix& hess, const linalg::Vector& grad,
                     linalg::Matrix& factor, linalg::Vector& dx) {
  const std::size_t n = hess.rows();
  const double scale = std::max(hess.norm_max(), 1.0);
  const double max_jitter = 1e-2 * scale;
  double jitter = 1e-12 * scale;
  int attempts = 0;
  while (true) {
    factor = hess;
    for (std::size_t i = 0; i < n; ++i) factor(i, i) += jitter;
    ++attempts;
    if (linalg::cholesky_factor_in_place(factor)) break;
    if (jitter >= max_jitter) {
      throw ldafp::NumericalError(
          "barrier: newton system not positive definite at max jitter");
    }
    jitter *= 10.0;
    if (jitter > max_jitter) jitter = max_jitter;
  }
  dx = grad;
  linalg::cholesky_solve_in_place(factor, dx);
  dx *= -1.0;
  return attempts;
}

/// Max constraint residual at w against the problem's *original* box
/// (mirrors ConvexProblem::max_residual; scratch keeps it off the heap).
double max_residual_ws(const ConvexProblem& p, const linalg::Vector& w,
                       linalg::Vector& scratch) {
  double worst = -kInf;
  for (std::size_t i = 0; i < p.linear().size(); ++i) {
    worst = std::max(worst, linalg::dot(p.linear()[i].a, w) - p.linear_rhs(i));
  }
  for (const auto& soc : p.soc()) {
    worst = std::max(worst, eval_soc(soc, w, scratch).residual);
  }
  const Box& box = p.box();
  for (std::size_t m = 0; m < box.size(); ++m) {
    worst = std::max(worst, box[m].lo - w[m]);
    worst = std::max(worst, w[m] - box[m].hi);
  }
  return worst;
}

// ---------------------------------------------------------------------------
// Phase II: minimize t·wᵀQw − Σ log(−gᵢ(w)) over the strictly feasible set.
// ---------------------------------------------------------------------------

struct Phase2Eval {
  bool feasible = false;  // strictly feasible at w
  double value = kInf;    // barrier function value
};

Phase2Eval eval_phase2(const ConvexProblem& p, const Box& box, double t,
                       const linalg::Vector& w, linalg::Vector& scratch) {
  Phase2Eval out;
  double barrier = 0.0;
  for (std::size_t i = 0; i < p.linear().size(); ++i) {
    const double g = linalg::dot(p.linear()[i].a, w) - p.linear_rhs(i);
    if (g >= 0.0) return out;
    barrier -= std::log(-g);
  }
  for (const auto& soc : p.soc()) {
    const double g = eval_soc(soc, w, scratch).residual;
    if (g >= 0.0) return out;
    barrier -= std::log(-g);
  }
  for (std::size_t m = 0; m < box.size(); ++m) {
    const double lo_gap = w[m] - box[m].lo;
    const double hi_gap = box[m].hi - w[m];
    if (lo_gap <= 0.0 || hi_gap <= 0.0) return out;
    barrier -= std::log(lo_gap) + std::log(hi_gap);
  }
  out.feasible = true;
  out.value = t * p.objective(w) + barrier;
  return out;
}

// ---------------------------------------------------------------------------
// Phase I: minimize s subject to gᵢ(w) <= s, w in box.
// ---------------------------------------------------------------------------

/// Runs phase I inside the workspace.  On success (true) ws.w holds a
/// strictly feasible point; false means no such point was found within
/// the iteration budget (treated as infeasible by the caller, matching
/// the certified-prune semantics).  Counters accumulate into the
/// caller's totals.
bool run_phase1(const ConvexProblem& problem, const Box& box,
                const BarrierOptions& options, SolverWorkspace& ws,
                int& total_newton, int& total_factorizations) {
  const std::size_t n = problem.dim();
  const std::size_t n_ineq = problem.linear().size() + problem.soc().size();

  linalg::Vector& w = ws.w;
  for (std::size_t i = 0; i < n; ++i) w[i] = box[i].mid();
  if (n_ineq == 0) return true;  // box interior is all we need

  // Slack above the worst violation keeps every log argument positive.
  double s = max_residual_ws(problem, w, ws.scratch) + 1.0;
  // The box residuals are <= 0 at the center; only linear/SOC matter for s.

  const auto count = static_cast<double>(n_ineq);
  double t = options.initial_t;
  int phase_newton = 0;

  const auto barrier_value = [&](const linalg::Vector& ww,
                                 double ss) -> double {
    double value = t * ss;
    for (std::size_t i = 0; i < problem.linear().size(); ++i) {
      const double margin = ss - (linalg::dot(problem.linear()[i].a, ww) -
                                  problem.linear_rhs(i));
      if (margin <= 0.0) return kInf;
      value -= std::log(margin);
    }
    for (const auto& soc : problem.soc()) {
      const double margin = ss - eval_soc(soc, ww, ws.scratch).residual;
      if (margin <= 0.0) return kInf;
      value -= std::log(margin);
    }
    for (std::size_t mm = 0; mm < n; ++mm) {
      const double lo_gap = ww[mm] - box[mm].lo;
      const double hi_gap = box[mm].hi - ww[mm];
      if (lo_gap <= 0.0 || hi_gap <= 0.0) return kInf;
      value -= std::log(lo_gap) + std::log(hi_gap);
    }
    return value;
  };

  linalg::Vector& grad = ws.grad1;
  linalg::Matrix& hess = ws.hess1;

  while (true) {
    for (int iter = 0; iter < options.max_newton_per_stage; ++iter) {
      if (phase_newton >= options.max_total_newton) break;
      ++phase_newton;
      ++total_newton;

      // Early success: comfortably below zero violation.
      if (s < -10.0 * options.feasibility_margin &&
          max_residual_ws(problem, w, ws.scratch) <
              -options.feasibility_margin) {
        return true;
      }

      // Gradient/Hessian in z = (w, s).
      grad.fill(0.0);
      std::fill_n(hess.data(), (n + 1) * (n + 1), 0.0);
      grad[n] = t;

      auto add_constraint = [&](const linalg::Vector& g_grad,
                                double margin) {
        const double inv = 1.0 / margin;
        for (std::size_t i = 0; i < n; ++i) grad[i] += g_grad[i] * inv;
        grad[n] -= inv;
        const double inv2 = inv * inv;
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            hess(i, j) += g_grad[i] * g_grad[j] * inv2;
          }
          hess(i, n) -= g_grad[i] * inv2;
          hess(n, i) -= g_grad[i] * inv2;
        }
        hess(n, n) += inv2;
      };

      for (std::size_t i = 0; i < problem.linear().size(); ++i) {
        const double margin = s - (linalg::dot(problem.linear()[i].a, w) -
                                   problem.linear_rhs(i));
        add_constraint(problem.linear()[i].a, margin);
      }
      for (std::size_t j = 0; j < problem.soc().size(); ++j) {
        const SocConstraint& soc = problem.soc()[j];
        linalg::Vector& sigma_w = ws.sigma_w[j];
        const SocEval e = eval_soc(soc, w, sigma_w);
        const double margin = s - e.residual;
        soc_gradient(soc, e, sigma_w, ws.soc_grad);
        add_constraint(ws.soc_grad, margin);
        // Curvature of the SOC residual itself.
        const double a = soc.beta / e.root / margin;
        const double b =
            soc.beta / (e.root * e.root * e.root) / margin;
        for (std::size_t ii = 0; ii < n; ++ii) {
          for (std::size_t jj = 0; jj < n; ++jj) {
            hess(ii, jj) += a * soc.sigma(ii, jj) -
                            b * sigma_w[ii] * sigma_w[jj];
          }
        }
      }
      for (std::size_t mm = 0; mm < n; ++mm) {
        const double lo_gap = w[mm] - box[mm].lo;
        const double hi_gap = box[mm].hi - w[mm];
        grad[mm] += -1.0 / lo_gap + 1.0 / hi_gap;
        hess(mm, mm) += 1.0 / (lo_gap * lo_gap) + 1.0 / (hi_gap * hi_gap);
      }

      total_factorizations += newton_direction(hess, grad, ws.factor1, ws.dz);
      const linalg::Vector& dz = ws.dz;
      const double decrement_sq = -linalg::dot(grad, dz);
      if (decrement_sq * 0.5 <= options.newton_tol) break;

      const double here = barrier_value(w, s);
      double alpha = 1.0;
      bool stepped = false;
      for (int ls = 0; ls < 60; ++ls) {
        linalg::Vector& cand = ws.cand;
        cand = w;
        for (std::size_t i = 0; i < n; ++i) cand[i] += alpha * dz[i];
        const double cand_s = s + alpha * dz[n];
        const double trial = barrier_value(cand, cand_s);
        if (trial <= here - 1e-4 * alpha * decrement_sq) {
          std::swap(w, cand);
          s = cand_s;
          stepped = true;
          break;
        }
        alpha *= 0.5;
      }
      if (!stepped) break;
    }

    // Converged for this t: feasible iff s is negative.
    if (max_residual_ws(problem, w, ws.scratch) <
        -options.feasibility_margin) {
      return true;
    }
    if (count / t <= options.gap_tol ||
        phase_newton >= options.max_total_newton) {
      // s* >= 0 to within tolerance: no strictly feasible point.
      return false;
    }
    t *= options.mu;
  }
}

}  // namespace

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

Status BarrierOptions::validate() const {
  if (!(gap_tol > 0.0)) {
    return Status::invalid("barrier: gap_tol must be positive");
  }
  if (!(initial_t > 0.0)) {
    return Status::invalid("barrier: initial_t must be positive");
  }
  if (!(warm_initial_t > 0.0)) {
    return Status::invalid("barrier: warm_initial_t must be positive");
  }
  if (!(mu > 1.0)) {
    return Status::invalid(
        "barrier: mu must exceed 1 (the barrier parameter must grow)");
  }
  if (max_newton_per_stage < 1) {
    return Status::invalid("barrier: max_newton_per_stage must be at least 1");
  }
  if (max_total_newton < 1) {
    return Status::invalid("barrier: max_total_newton must be at least 1");
  }
  if (!(newton_tol > 0.0)) {
    return Status::invalid("barrier: newton_tol must be positive");
  }
  if (!(feasibility_margin >= 0.0)) {
    return Status::invalid(
        "barrier: feasibility_margin must be non-negative");
  }
  if (!(min_box_width >= 0.0)) {
    return Status::invalid("barrier: min_box_width must be non-negative");
  }
  return Status();
}

void SolverWorkspace::resize(std::size_t n, std::size_t socs) {
  if (hess.rows() != n || hess.cols() != n) {
    hess = linalg::Matrix(n, n);
    factor = linalg::Matrix(n, n);
    hess1 = linalg::Matrix(n + 1, n + 1);
    factor1 = linalg::Matrix(n + 1, n + 1);
    grad = linalg::Vector(n);
    dx = linalg::Vector(n);
    w = linalg::Vector(n);
    cand = linalg::Vector(n);
    grad1 = linalg::Vector(n + 1);
    dz = linalg::Vector(n + 1);
    soc_grad = linalg::Vector(n);
    scratch = linalg::Vector(n);
  }
  if (sigma_w.size() < socs) sigma_w.resize(socs);
  for (auto& v : sigma_w) {
    if (v.size() != n) v = linalg::Vector(n);
  }
}

Status validate_warm_start(
    const ConvexProblem& problem,
    const std::optional<linalg::Vector>& warm_start) {
  if (!warm_start.has_value()) return Status();
  if (warm_start->size() != problem.dim()) {
    return Status::invalid(
        "barrier: warm start dimension must match problem dimension");
  }
  for (const double v : *warm_start) {
    if (!std::isfinite(v)) {
      return Status::invalid("barrier: warm start entries must be finite");
    }
  }
  return Status();
}

BarrierResult BarrierSolver::solve(
    const ConvexProblem& problem,
    const std::optional<linalg::Vector>& warm_start,
    SolverWorkspace* workspace) const {
  throw_if_error(options_.validate());
  LDAFP_CHECK(problem.has_box(), "barrier solver requires a variable box");
  throw_if_error(validate_warm_start(problem, warm_start));

  SolverWorkspace local;
  SolverWorkspace& ws = workspace != nullptr ? *workspace : local;
  const std::size_t n = problem.dim();
  ws.resize(n, problem.soc().size());

  const Box box = inflate_box(problem.box(), options_.min_box_width);

  BarrierResult result;
  result.lower_bound = -kInf;
  int total_newton = 0;
  int total_factorizations = 0;

  // Obtain a strictly feasible start in ws.w.
  if (warm_start.has_value() &&
      eval_phase2(problem, box, 1.0, *warm_start, ws.scratch).feasible) {
    ws.w = *warm_start;
    result.phase1_skipped = true;
  } else {
    if (!run_phase1(problem, box, options_, ws, total_newton,
                    total_factorizations)) {
      result.status = SolveStatus::kInfeasible;
      result.lower_bound = kInf;  // infeasible node: prune unconditionally
      result.objective = kInf;
      result.newton_iterations = total_newton;
      result.factorizations = total_factorizations;
      return result;
    }
  }

  linalg::Vector& w = ws.w;
  const auto m = static_cast<double>(problem.constraint_count());
  double t = result.phase1_skipped
                 ? std::max(options_.initial_t, options_.warm_initial_t)
                 : options_.initial_t;
  int phase2_newton = 0;
  bool hit_iteration_limit = false;

  while (true) {
    // Newton centering at the current t.
    for (int iter = 0; iter < options_.max_newton_per_stage; ++iter) {
      if (phase2_newton >= options_.max_total_newton) {
        hit_iteration_limit = true;
        break;
      }
      ++phase2_newton;
      ++total_newton;

      // Assemble gradient and Hessian of the barrier-augmented objective.
      linalg::sym_matvec_quad(problem.objective_matrix(), w, ws.grad);
      ws.grad *= 2.0 * t;
      ws.hess = problem.objective_matrix();
      ws.hess *= 2.0 * t;
      linalg::Vector& grad = ws.grad;
      linalg::Matrix& hess = ws.hess;

      for (std::size_t i = 0; i < problem.linear().size(); ++i) {
        const linalg::Vector& a = problem.linear()[i].a;
        const double r = -(linalg::dot(a, w) - problem.linear_rhs(i));
        grad.axpy(1.0 / r, a);
        add_linear_barrier_hessian(a, r, hess);
      }
      for (std::size_t j = 0; j < problem.soc().size(); ++j) {
        const SocConstraint& soc = problem.soc()[j];
        linalg::Vector& sigma_w = ws.sigma_w[j];
        const SocEval e = eval_soc(soc, w, sigma_w);
        const double r = -e.residual;
        soc_gradient(soc, e, sigma_w, ws.soc_grad);
        grad.axpy(1.0 / r, ws.soc_grad);
        add_soc_barrier_hessian(soc, e, sigma_w, ws.soc_grad, r, hess);
      }
      for (std::size_t mm = 0; mm < n; ++mm) {
        const double lo_gap = w[mm] - box[mm].lo;
        const double hi_gap = box[mm].hi - w[mm];
        grad[mm] += -1.0 / lo_gap + 1.0 / hi_gap;
        hess(mm, mm) += 1.0 / (lo_gap * lo_gap) + 1.0 / (hi_gap * hi_gap);
      }

      total_factorizations += newton_direction(hess, grad, ws.factor, ws.dx);
      const linalg::Vector& dx = ws.dx;
      const double decrement_sq = -linalg::dot(grad, dx);
      if (decrement_sq * 0.5 <= options_.newton_tol) break;

      // Backtracking line search keeping strict feasibility.
      const Phase2Eval here = eval_phase2(problem, box, t, w, ws.scratch);
      double alpha = 1.0;
      bool stepped = false;
      for (int ls = 0; ls < 60; ++ls) {
        linalg::Vector& cand = ws.cand;
        cand = w;
        cand.axpy(alpha, dx);
        const Phase2Eval trial =
            eval_phase2(problem, box, t, cand, ws.scratch);
        if (trial.feasible &&
            trial.value <= here.value - 1e-4 * alpha * decrement_sq) {
          std::swap(w, cand);
          stepped = true;
          break;
        }
        alpha *= 0.5;
      }
      if (!stepped) break;  // stalled: accept the center we have
    }

    result.duality_gap = m / t;
    if (hit_iteration_limit || result.duality_gap <= options_.gap_tol) break;
    t *= options_.mu;
  }

  result.x = w;
  result.objective = problem.objective(w);
  // Standard barrier certificate: at an (approximate) center for
  // parameter t the duality gap is m/t.  A small multiple absorbs the
  // imperfect centering.
  result.lower_bound =
      result.objective - 2.0 * result.duality_gap - options_.gap_tol;
  result.newton_iterations = total_newton;
  result.factorizations = total_factorizations;
  result.status = hit_iteration_limit ? SolveStatus::kIterationLimit
                                      : SolveStatus::kOptimal;
  return result;
}

std::optional<linalg::Vector> BarrierSolver::find_strictly_feasible(
    const ConvexProblem& problem) const {
  throw_if_error(options_.validate());
  LDAFP_CHECK(problem.has_box(), "barrier solver requires a variable box");
  const Box box = inflate_box(problem.box(), options_.min_box_width);
  SolverWorkspace ws;
  ws.resize(problem.dim(), problem.soc().size());
  int newton = 0;
  int factorizations = 0;
  if (!run_phase1(problem, box, options_, ws, newton, factorizations)) {
    return std::nullopt;
  }
  return ws.w;
}

}  // namespace ldafp::opt
