#include "opt/barrier_solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/cholesky.h"
#include "support/error.h"
#include "support/log.h"

namespace ldafp::opt {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Box with every interval inflated to at least `min_width` (centered), so
/// the strict interior is non-empty.  Enlarging the box only relaxes the
/// problem, keeping lower bounds valid.
Box inflate_box(const Box& box, double min_width) {
  Box out = box;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (out[i].width() < min_width) {
      const double mid = out[i].mid();
      out[i].lo = mid - 0.5 * min_width;
      out[i].hi = mid + 0.5 * min_width;
    }
  }
  return out;
}

/// Cached per-SOC-constraint quantities at a point.
struct SocEval {
  double residual;       // g(w)
  double root;           // sqrt(wᵀΣw + eps)
  linalg::Vector sigma_w;
};

SocEval eval_soc(const SocConstraint& s, const linalg::Vector& w) {
  SocEval out;
  out.sigma_w = s.sigma * w;
  const double quad = std::max(linalg::dot(out.sigma_w, w), 0.0);
  out.root = std::sqrt(quad + s.eps);
  out.residual = s.beta * out.root + linalg::dot(s.c, w) - s.d;
  return out;
}

/// Gradient of the SOC residual from cached pieces.
linalg::Vector soc_gradient(const SocConstraint& s, const SocEval& e) {
  linalg::Vector g = e.sigma_w;
  g *= s.beta / e.root;
  g += s.c;
  return g;
}

/// Adds (grad grad')/r² + Hg/r to `hess`, where r = -residual (phase II)
/// or s - residual (phase I), and Hg is the SOC residual Hessian.
void add_soc_barrier_hessian(const SocConstraint& s, const SocEval& e,
                             const linalg::Vector& grad, double r,
                             linalg::Matrix& hess) {
  const std::size_t n = grad.size();
  const double inv_r = 1.0 / r;
  const double inv_r2 = inv_r * inv_r;
  const double a = s.beta / e.root * inv_r;               // Σ scale
  const double b = s.beta / (e.root * e.root * e.root) * inv_r;  // rank-1
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      hess(i, j) += grad[i] * grad[j] * inv_r2 + a * s.sigma(i, j) -
                    b * e.sigma_w[i] * e.sigma_w[j];
    }
  }
}

/// Adds (a a')/r² to `hess` for a linear constraint with margin r.
void add_linear_barrier_hessian(const linalg::Vector& a, double r,
                                linalg::Matrix& hess) {
  const double inv_r2 = 1.0 / (r * r);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    for (std::size_t j = 0; j < a.size(); ++j) {
      hess(i, j) += a[i] * a[j] * inv_r2;
    }
  }
}

/// Solves H dx = -g with escalating diagonal jitter.
linalg::Vector newton_direction(const linalg::Matrix& hess,
                                const linalg::Vector& grad) {
  double used = 0.0;
  const double scale = std::max(hess.norm_max(), 1.0);
  const linalg::Cholesky chol = linalg::Cholesky::with_jitter(
      hess, 1e-12 * scale, 1e-2 * scale, &used);
  linalg::Vector dir = chol.solve(grad);
  dir *= -1.0;
  return dir;
}

}  // namespace

const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Phase II: minimize t·wᵀQw − Σ log(−gᵢ(w)) over the strictly feasible set.
// ---------------------------------------------------------------------------

namespace {

struct Phase2Eval {
  bool feasible = false;  // strictly feasible at w
  double value = kInf;    // barrier function value
};

Phase2Eval eval_phase2(const ConvexProblem& p, const Box& box, double t,
                       const linalg::Vector& w) {
  Phase2Eval out;
  double barrier = 0.0;
  for (const auto& lin : p.linear()) {
    const double g = linalg::dot(lin.a, w) - lin.b;
    if (g >= 0.0) return out;
    barrier -= std::log(-g);
  }
  for (const auto& soc : p.soc()) {
    const double g = eval_soc(soc, w).residual;
    if (g >= 0.0) return out;
    barrier -= std::log(-g);
  }
  for (std::size_t m = 0; m < box.size(); ++m) {
    const double lo_gap = w[m] - box[m].lo;
    const double hi_gap = box[m].hi - w[m];
    if (lo_gap <= 0.0 || hi_gap <= 0.0) return out;
    barrier -= std::log(lo_gap) + std::log(hi_gap);
  }
  out.feasible = true;
  out.value = t * p.objective(w) + barrier;
  return out;
}

}  // namespace

BarrierResult BarrierSolver::solve(
    const ConvexProblem& problem,
    const std::optional<linalg::Vector>& warm_start) const {
  LDAFP_CHECK(problem.has_box(), "barrier solver requires a variable box");
  const Box box = inflate_box(problem.box(), options_.min_box_width);
  const std::size_t n = problem.dim();

  BarrierResult result;
  result.lower_bound = -kInf;

  // Obtain a strictly feasible start.
  linalg::Vector w;
  if (warm_start.has_value() &&
      eval_phase2(problem, box, 1.0, *warm_start).feasible) {
    w = *warm_start;
  } else {
    const auto feasible = find_strictly_feasible(problem);
    if (!feasible.has_value()) {
      result.status = SolveStatus::kInfeasible;
      result.lower_bound = kInf;  // infeasible node: prune unconditionally
      result.objective = kInf;
      return result;
    }
    w = *feasible;
  }

  const auto m = static_cast<double>(problem.constraint_count());
  double t = options_.initial_t;
  int total_newton = 0;
  bool hit_iteration_limit = false;

  while (true) {
    // Newton centering at the current t.
    for (int iter = 0; iter < options_.max_newton_per_stage; ++iter) {
      if (total_newton >= options_.max_total_newton) {
        hit_iteration_limit = true;
        break;
      }
      ++total_newton;

      // Assemble gradient and Hessian of the barrier-augmented objective.
      linalg::Vector grad = problem.objective_gradient(w);
      grad *= t;
      linalg::Matrix hess = problem.objective_matrix();
      hess *= 2.0 * t;

      for (const auto& lin : problem.linear()) {
        const double r = -(linalg::dot(lin.a, w) - lin.b);
        grad.axpy(1.0 / r, lin.a);
        add_linear_barrier_hessian(lin.a, r, hess);
      }
      for (const auto& soc : problem.soc()) {
        const SocEval e = eval_soc(soc, w);
        const double r = -e.residual;
        const linalg::Vector g = soc_gradient(soc, e);
        grad.axpy(1.0 / r, g);
        add_soc_barrier_hessian(soc, e, g, r, hess);
      }
      for (std::size_t mm = 0; mm < n; ++mm) {
        const double lo_gap = w[mm] - box[mm].lo;
        const double hi_gap = box[mm].hi - w[mm];
        grad[mm] += -1.0 / lo_gap + 1.0 / hi_gap;
        hess(mm, mm) += 1.0 / (lo_gap * lo_gap) + 1.0 / (hi_gap * hi_gap);
      }

      const linalg::Vector dx = newton_direction(hess, grad);
      const double decrement_sq = -linalg::dot(grad, dx);
      if (decrement_sq * 0.5 <= options_.newton_tol) break;

      // Backtracking line search keeping strict feasibility.
      const Phase2Eval here = eval_phase2(problem, box, t, w);
      double alpha = 1.0;
      bool stepped = false;
      for (int ls = 0; ls < 60; ++ls) {
        linalg::Vector cand = w;
        cand.axpy(alpha, dx);
        const Phase2Eval trial = eval_phase2(problem, box, t, cand);
        if (trial.feasible &&
            trial.value <= here.value - 1e-4 * alpha * decrement_sq) {
          w = std::move(cand);
          stepped = true;
          break;
        }
        alpha *= 0.5;
      }
      if (!stepped) break;  // stalled: accept the center we have
    }

    result.duality_gap = m / t;
    if (hit_iteration_limit || result.duality_gap <= options_.gap_tol) break;
    t *= options_.mu;
  }

  result.x = w;
  result.objective = problem.objective(w);
  // Standard barrier certificate: at an (approximate) center for
  // parameter t the duality gap is m/t.  A small multiple absorbs the
  // imperfect centering.
  result.lower_bound =
      result.objective - 2.0 * result.duality_gap - options_.gap_tol;
  result.newton_iterations = total_newton;
  result.status = hit_iteration_limit ? SolveStatus::kIterationLimit
                                      : SolveStatus::kOptimal;
  return result;
}

// ---------------------------------------------------------------------------
// Phase I: minimize s subject to gᵢ(w) <= s, w in box.
// ---------------------------------------------------------------------------

std::optional<linalg::Vector> BarrierSolver::find_strictly_feasible(
    const ConvexProblem& problem) const {
  LDAFP_CHECK(problem.has_box(), "barrier solver requires a variable box");
  const Box box = inflate_box(problem.box(), options_.min_box_width);
  const std::size_t n = problem.dim();
  const std::size_t n_ineq = problem.linear().size() + problem.soc().size();

  linalg::Vector w(linalg::Vector(box.center()));
  if (n_ineq == 0) return w;  // box interior is all we need

  // Slack above the worst violation keeps every log argument positive.
  double s = problem.max_residual(w) + 1.0;
  // The box residuals are <= 0 at the center; only linear/SOC matter for s.

  const auto count = static_cast<double>(n_ineq);
  double t = options_.initial_t;
  int total_newton = 0;

  const auto barrier_value = [&](const linalg::Vector& ww,
                                 double ss) -> double {
    double value = t * ss;
    for (const auto& lin : problem.linear()) {
      const double margin = ss - (linalg::dot(lin.a, ww) - lin.b);
      if (margin <= 0.0) return kInf;
      value -= std::log(margin);
    }
    for (const auto& soc : problem.soc()) {
      const double margin = ss - eval_soc(soc, ww).residual;
      if (margin <= 0.0) return kInf;
      value -= std::log(margin);
    }
    for (std::size_t mm = 0; mm < n; ++mm) {
      const double lo_gap = ww[mm] - box[mm].lo;
      const double hi_gap = box[mm].hi - ww[mm];
      if (lo_gap <= 0.0 || hi_gap <= 0.0) return kInf;
      value -= std::log(lo_gap) + std::log(hi_gap);
    }
    return value;
  };

  while (true) {
    for (int iter = 0; iter < options_.max_newton_per_stage; ++iter) {
      if (total_newton >= options_.max_total_newton) break;
      ++total_newton;

      // Early success: comfortably below zero violation.
      if (s < -10.0 * options_.feasibility_margin &&
          problem.max_residual(w) < -options_.feasibility_margin) {
        return w;
      }

      // Gradient/Hessian in z = (w, s).
      linalg::Vector grad(n + 1);
      linalg::Matrix hess(n + 1, n + 1);
      grad[n] = t;

      auto add_constraint = [&](const linalg::Vector& g_grad,
                                double margin) {
        const double inv = 1.0 / margin;
        for (std::size_t i = 0; i < n; ++i) grad[i] += g_grad[i] * inv;
        grad[n] -= inv;
        const double inv2 = inv * inv;
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            hess(i, j) += g_grad[i] * g_grad[j] * inv2;
          }
          hess(i, n) -= g_grad[i] * inv2;
          hess(n, i) -= g_grad[i] * inv2;
        }
        hess(n, n) += inv2;
      };

      for (const auto& lin : problem.linear()) {
        const double margin = s - (linalg::dot(lin.a, w) - lin.b);
        add_constraint(lin.a, margin);
      }
      for (const auto& soc : problem.soc()) {
        const SocEval e = eval_soc(soc, w);
        const double margin = s - e.residual;
        const linalg::Vector g = soc_gradient(soc, e);
        add_constraint(g, margin);
        // Curvature of the SOC residual itself.
        const double a = soc.beta / e.root / margin;
        const double b =
            soc.beta / (e.root * e.root * e.root) / margin;
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            hess(i, j) += a * soc.sigma(i, j) -
                          b * e.sigma_w[i] * e.sigma_w[j];
          }
        }
      }
      for (std::size_t mm = 0; mm < n; ++mm) {
        const double lo_gap = w[mm] - box[mm].lo;
        const double hi_gap = box[mm].hi - w[mm];
        grad[mm] += -1.0 / lo_gap + 1.0 / hi_gap;
        hess(mm, mm) += 1.0 / (lo_gap * lo_gap) + 1.0 / (hi_gap * hi_gap);
      }

      const linalg::Vector dz = newton_direction(hess, grad);
      const double decrement_sq = -linalg::dot(grad, dz);
      if (decrement_sq * 0.5 <= options_.newton_tol) break;

      const double here = barrier_value(w, s);
      double alpha = 1.0;
      bool stepped = false;
      for (int ls = 0; ls < 60; ++ls) {
        linalg::Vector cand = w;
        for (std::size_t i = 0; i < n; ++i) cand[i] += alpha * dz[i];
        const double cand_s = s + alpha * dz[n];
        const double trial = barrier_value(cand, cand_s);
        if (trial <= here - 1e-4 * alpha * decrement_sq) {
          w = std::move(cand);
          s = cand_s;
          stepped = true;
          break;
        }
        alpha *= 0.5;
      }
      if (!stepped) break;
    }

    // Converged for this t: feasible iff s is negative.
    if (problem.max_residual(w) < -options_.feasibility_margin) return w;
    if (count / t <= options_.gap_tol ||
        total_newton >= options_.max_total_newton) {
      // s* >= 0 to within tolerance: no strictly feasible point.
      return std::nullopt;
    }
    t *= options_.mu;
  }
}

}  // namespace ldafp::opt
