// Log-barrier interior-point solver for ConvexProblem.
//
// Implements the classic two-phase barrier method (Boyd & Vandenberghe,
// ch. 11), which is how we solve the paper's convex relaxation (Eq. 25):
//   phase I  — minimize the max constraint violation s over (w, s) to find
//              a strictly feasible start (or prove infeasibility),
//   phase II — minimize t·wᵀQw − Σ log(−gᵢ(w)) with t increased
//              geometrically until the duality gap m/t is below tolerance.
//
// The certified lower bound returned with each solve is
// objective − gap_margin, where gap_margin covers the barrier duality gap
// m/t plus the residual Newton decrement; branch-and-bound pruning uses
// that bound, never the raw primal value.
//
// Hot-path design (DESIGN.md §10): a caller-owned SolverWorkspace holds
// every Newton-loop buffer, so repeated solves over the same problem
// shape (the branch-and-bound inner loop) perform zero steady-state heap
// allocations; a strictly feasible warm start skips phase I entirely.
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/convex_problem.h"
#include "support/error.h"

namespace ldafp::opt {

/// Outcome of a barrier solve.
enum class SolveStatus {
  kOptimal,        ///< converged to tolerance
  kInfeasible,     ///< phase I proved no strictly feasible point exists
  kIterationLimit, ///< Newton/outer iteration budget exhausted
};

/// Short display name of a status.
const char* to_string(SolveStatus status);

/// Tuning knobs.  Defaults are sized for the paper's problems
/// (dimension <= a few hundred, tens of constraints).
struct BarrierOptions {
  double gap_tol = 1e-7;       ///< stop when m/t falls below this
  double initial_t = 1.0;      ///< first barrier parameter
  /// First barrier parameter when a strictly feasible warm start skipped
  /// phase I.  Warm seeds (a parent node's relaxation optimum) are
  /// already near-optimal, so early low-t centering stages would only
  /// drag the iterate away and back; starting higher skips them.  The
  /// certificate is unaffected — bounds depend only on the final duality
  /// gap.  Effective value is max(initial_t, warm_initial_t).
  double warm_initial_t = 1e6;
  double mu = 20.0;            ///< barrier parameter growth factor
  int max_newton_per_stage = 80;
  int max_total_newton = 2000;
  double newton_tol = 1e-10;   ///< half squared Newton decrement
  double feasibility_margin = 1e-9;  ///< strictness required of phase I
  /// Interval widths below this are inflated before solving so the box
  /// interior is non-empty; inflation only enlarges the feasible set, so
  /// lower bounds remain valid.
  double min_box_width = 1e-9;

  /// Checks every tolerance/budget for validity; called once per solve
  /// entry (solve / find_strictly_feasible).
  Status validate() const;
};

/// Argument validation for solve(): the warm start, when present, must
/// match the problem dimension and be finite.  Exposed so callers can
/// pre-check a seed without try/catch; solve() raises a non-ok status
/// as InvalidArgumentError.
Status validate_warm_start(const ConvexProblem& problem,
                           const std::optional<linalg::Vector>& warm_start);

/// Result of a barrier solve.
struct BarrierResult {
  SolveStatus status = SolveStatus::kIterationLimit;
  linalg::Vector x;            ///< best (strictly feasible) point found
  double objective = 0.0;      ///< xᵀQx at x
  double lower_bound = 0.0;    ///< certified lower bound on the optimum
  int newton_iterations = 0;   ///< Newton steps, both phases combined
  int factorizations = 0;      ///< Cholesky attempts (jitter retries incl.)
  bool phase1_skipped = false; ///< warm start was strictly feasible
  double duality_gap = 0.0;    ///< m/t at exit
};

/// Reusable scratch memory for the solver's Newton loops.  One workspace
/// per thread: solve() sizes it to the problem's shape (allocating only
/// when the shape actually changes), after which every Newton iteration —
/// Hessian assembly, factorization, triangular solves, line search —
/// runs without touching the heap.  Contents are meaningless between
/// solves; never share one workspace between concurrent solves.
struct SolverWorkspace {
  /// Ensures capacity for dimension n with k SOC constraints.  No-op
  /// (and allocation-free) when the shape already matches.
  void resize(std::size_t n, std::size_t socs);

  // Phase II buffers (dimension n).
  linalg::Matrix hess, factor;
  linalg::Vector grad, dx, w, cand;
  // Phase I buffers (dimension n+1 for the (w, s) system).
  linalg::Matrix hess1, factor1;
  linalg::Vector grad1, dz;
  // Per-SOC Σⱼw caches plus generic n-dim scratch (residual evaluations).
  std::vector<linalg::Vector> sigma_w;
  linalg::Vector soc_grad, scratch;
};

/// The solver.  Stateless apart from options; safe to reuse.
class BarrierSolver {
 public:
  BarrierSolver() = default;
  explicit BarrierSolver(BarrierOptions options) : options_(options) {}

  const BarrierOptions& options() const { return options_; }

  /// Solves the problem.  `warm_start`, when given, must match the
  /// problem dimension and be finite (throws InvalidArgumentError
  /// otherwise); when it is strictly feasible, phase I is skipped.
  /// `workspace`, when given, supplies all Newton-loop scratch memory —
  /// pass one workspace per thread to make repeated same-shape solves
  /// allocation-free.  The problem must have a box (every LDA-FP
  /// subproblem does).
  BarrierResult solve(const ConvexProblem& problem,
                      const std::optional<linalg::Vector>& warm_start =
                          std::nullopt,
                      SolverWorkspace* workspace = nullptr) const;

  /// Phase I alone: returns a strictly feasible point or nullopt.
  std::optional<linalg::Vector> find_strictly_feasible(
      const ConvexProblem& problem) const;

 private:
  BarrierOptions options_;
};

}  // namespace ldafp::opt
