// Log-barrier interior-point solver for ConvexProblem.
//
// Implements the classic two-phase barrier method (Boyd & Vandenberghe,
// ch. 11), which is how we solve the paper's convex relaxation (Eq. 25):
//   phase I  — minimize the max constraint violation s over (w, s) to find
//              a strictly feasible start (or prove infeasibility),
//   phase II — minimize t·wᵀQw − Σ log(−gᵢ(w)) with t increased
//              geometrically until the duality gap m/t is below tolerance.
//
// The certified lower bound returned with each solve is
// objective − gap_margin, where gap_margin covers the barrier duality gap
// m/t plus the residual Newton decrement; branch-and-bound pruning uses
// that bound, never the raw primal value.
#pragma once

#include <optional>

#include "linalg/vector.h"
#include "opt/convex_problem.h"

namespace ldafp::opt {

/// Outcome of a barrier solve.
enum class SolveStatus {
  kOptimal,        ///< converged to tolerance
  kInfeasible,     ///< phase I proved no strictly feasible point exists
  kIterationLimit, ///< Newton/outer iteration budget exhausted
};

/// Short display name of a status.
const char* to_string(SolveStatus status);

/// Tuning knobs.  Defaults are sized for the paper's problems
/// (dimension <= a few hundred, tens of constraints).
struct BarrierOptions {
  double gap_tol = 1e-7;       ///< stop when m/t falls below this
  double initial_t = 1.0;      ///< first barrier parameter
  double mu = 20.0;            ///< barrier parameter growth factor
  int max_newton_per_stage = 80;
  int max_total_newton = 2000;
  double newton_tol = 1e-10;   ///< half squared Newton decrement
  double feasibility_margin = 1e-9;  ///< strictness required of phase I
  /// Interval widths below this are inflated before solving so the box
  /// interior is non-empty; inflation only enlarges the feasible set, so
  /// lower bounds remain valid.
  double min_box_width = 1e-9;
};

/// Result of a barrier solve.
struct BarrierResult {
  SolveStatus status = SolveStatus::kIterationLimit;
  linalg::Vector x;            ///< best (strictly feasible) point found
  double objective = 0.0;      ///< xᵀQx at x
  double lower_bound = 0.0;    ///< certified lower bound on the optimum
  int newton_iterations = 0;
  double duality_gap = 0.0;    ///< m/t at exit
};

/// The solver.  Stateless apart from options; safe to reuse.
class BarrierSolver {
 public:
  BarrierSolver() = default;
  explicit BarrierSolver(BarrierOptions options) : options_(options) {}

  const BarrierOptions& options() const { return options_; }

  /// Solves the problem.  `warm_start`, when given and strictly feasible,
  /// skips phase I.  The problem must have a box (every LDA-FP
  /// subproblem does).
  BarrierResult solve(const ConvexProblem& problem,
                      const std::optional<linalg::Vector>& warm_start =
                          std::nullopt) const;

  /// Phase I alone: returns a strictly feasible point or nullopt.
  std::optional<linalg::Vector> find_strictly_feasible(
      const ConvexProblem& problem) const;

 private:
  BarrierOptions options_;
};

}  // namespace ldafp::opt
