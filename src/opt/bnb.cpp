#include "opt/bnb.h"

#include <cmath>
#include <limits>
#include <queue>
#include <vector>

#include "support/error.h"
#include "support/log.h"
#include "support/str.h"
#include "support/timer.h"

namespace ldafp::opt {
namespace {

struct QueueNode {
  double lower;
  Box box;
};

struct LowerBoundGreater {
  bool operator()(const QueueNode& a, const QueueNode& b) const {
    return a.lower > b.lower;  // min-heap on lower bound
  }
};

}  // namespace

const char* to_string(BnbStatus status) {
  switch (status) {
    case BnbStatus::kOptimal: return "optimal";
    case BnbStatus::kNodeLimit: return "node-limit";
    case BnbStatus::kTimeLimit: return "time-limit";
    case BnbStatus::kNoSolution: return "no-solution";
  }
  return "?";
}

BnbResult BnbSolver::run(
    BnbProblem& problem, const Box& root,
    const std::optional<std::pair<linalg::Vector, double>>&
        initial_incumbent) const {
  LDAFP_CHECK(root.size() > 0, "bnb root box must be non-empty");
  support::WallTimer timer;

  BnbResult result;
  if (initial_incumbent.has_value()) {
    result.best_point = initial_incumbent->first;
    result.best_value = initial_incumbent->second;
  }

  std::priority_queue<QueueNode, std::vector<QueueNode>, LowerBoundGreater>
      queue;

  auto consider_candidate = [&](const NodeBounds& bounds) {
    if (bounds.candidate.has_value() &&
        bounds.candidate_value < result.best_value) {
      result.best_point = bounds.candidate;
      result.best_value = bounds.candidate_value;
    }
  };

  auto prune_threshold = [&]() {
    // A node whose lower bound exceeds this cannot improve the incumbent
    // beyond the requested gap.  With no incumbent yet, never prune.
    if (!std::isfinite(result.best_value)) {
      return std::numeric_limits<double>::infinity();
    }
    return result.best_value -
           std::max(options_.abs_gap,
                    options_.rel_gap * std::fabs(result.best_value));
  };

  // Infeasible boxes report lower = +inf and must never enter the queue.
  auto should_push = [&](double lower) {
    return lower < std::numeric_limits<double>::infinity() &&
           lower <= prune_threshold();
  };

  // Root node.
  {
    const NodeBounds bounds = problem.bound(root);
    consider_candidate(bounds);
    if (should_push(bounds.lower)) {
      queue.push(QueueNode{bounds.lower, root});
    }
  }

  result.lower_bound = result.best_value;  // adjusted below while queue live

  while (!queue.empty()) {
    if (result.nodes_processed >= options_.max_nodes) {
      result.status = BnbStatus::kNodeLimit;
      result.lower_bound = std::min(queue.top().lower, result.best_value);
      result.seconds = timer.seconds();
      return result;
    }
    if (timer.seconds() > options_.max_seconds) {
      result.status = BnbStatus::kTimeLimit;
      result.lower_bound = std::min(queue.top().lower, result.best_value);
      result.seconds = timer.seconds();
      return result;
    }

    const QueueNode node = queue.top();
    queue.pop();
    ++result.nodes_processed;

    if (options_.progress && options_.progress_interval > 0 &&
        result.nodes_processed % options_.progress_interval == 0) {
      BnbResult snapshot = result;
      snapshot.best_point.reset();  // keep snapshots cheap
      snapshot.lower_bound = std::min(node.lower, result.best_value);
      snapshot.seconds = timer.seconds();
      options_.progress(snapshot);
    }

    // Best-first invariant: the queue head carries the global lower
    // bound.  If it cannot beat the incumbent, the search is done.
    if (node.lower > prune_threshold()) {
      ++result.nodes_pruned;
      result.lower_bound = std::min(node.lower, result.best_value);
      result.status = BnbStatus::kOptimal;
      result.seconds = timer.seconds();
      return result;
    }

    if (problem.is_terminal(node.box)) {
      const NodeBounds exact = problem.solve_terminal(node.box);
      consider_candidate(exact);
      continue;  // terminal boxes are fully resolved
    }

    const auto [left, right] = problem.branch(node.box);
    for (const Box* child : {&left, &right}) {
      if (child->empty()) continue;
      const NodeBounds bounds = problem.bound(*child);
      consider_candidate(bounds);
      if (should_push(bounds.lower)) {
        queue.push(QueueNode{bounds.lower, *child});
      } else {
        ++result.nodes_pruned;
      }
    }
  }

  // Queue drained: the incumbent is optimal over the root box.
  result.lower_bound = result.best_value;
  result.status = result.best_point.has_value() ? BnbStatus::kOptimal
                                                : BnbStatus::kNoSolution;
  result.seconds = timer.seconds();
  if (options_.progress) {
    BnbResult snapshot = result;
    snapshot.best_point.reset();
    options_.progress(snapshot);
  }
  return result;
}

}  // namespace ldafp::opt
