#include "opt/bnb.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>
#include <queue>
#include <utility>
#include <vector>

#include "sched/task_group.h"
#include "support/error.h"
#include "support/log.h"
#include "support/str.h"
#include "support/timer.h"

namespace ldafp::opt {
namespace {

// ---------------------------------------------------------------------------
// Deterministic speculative parallelism.
//
// Expanding a node — solve_terminal for terminal boxes, branch + bound
// of both children otherwise — reads nothing but the box (the
// BnbProblem concurrency contract), so it can run speculatively on any
// thread, in any order, even for nodes that end up pruned.  Everything
// that touches search state (incumbent updates, pruning, pushes,
// budgets, status) happens on the one control thread, in the exact
// order the sequential search would use; an Expansion is the plain-data
// courier between the two.  That split is why the parallel search is
// bit-identical to the sequential one at every thread count: thread
// scheduling can only change *when* an expansion is computed, never
// what it contains nor the order its effects are committed.

/// Speculation slot lifecycle.
enum SpecStage : int {
  kSpecIdle = 0,     ///< nobody is expanding this node yet
  kSpecClaimed = 1,  ///< one thread owns the expansion
  kSpecDone = 2,     ///< expansion (or a skip) is published
};

struct Expansion {
  /// False when a speculator skipped the node (hopeless bound at claim
  /// time); the control thread then expands inline, so skips are a pure
  /// performance decision and never change results.
  bool computed = false;
  bool terminal = false;
  NodeBounds exact;  ///< terminal payload
  struct Child {
    bool present = false;  ///< branch produced a non-empty box here
    Box box;
    NodeBounds bounds;
  };
  Child children[2];  ///< non-terminal payload, [0]=left, [1]=right
  std::exception_ptr error;
};

/// One frontier node's box plus its speculation slot.  `seed` is the
/// node's own relaxation optimum (the warm start handed to its
/// children's bound() calls); it is written once, before the node is
/// fueled to workers, and read-only afterwards.
struct SpecState {
  SpecState(Box b, double l) : box(std::move(b)), lower(l) {}
  Box box;
  double lower;
  std::optional<linalg::Vector> seed;
  std::atomic<int> stage{kSpecIdle};
  Expansion expansion;
};

struct QueueNode {
  double lower;
  std::shared_ptr<SpecState> spec;
};

struct LowerBoundGreater {
  bool operator()(const QueueNode& a, const QueueNode& b) const {
    return a.lower > b.lower;  // min-heap on lower bound
  }
};

using Frontier =
    std::priority_queue<QueueNode, std::vector<QueueNode>, LowerBoundGreater>;

/// The expansion itself — identical arithmetic on every path.  The
/// bound/consider/push interleaving of the original sequential loop is
/// reassociated here (both children are bounded before any incumbent
/// update), which is observationally identical because bound() never
/// reads search state.
Expansion expand_node(BnbProblem& problem, const SpecState& state) {
  Expansion e;
  e.computed = true;
  BoundContext ctx;
  if (state.seed.has_value()) ctx.parent_relaxation = &*state.seed;
  try {
    if (problem.is_terminal(state.box)) {
      e.terminal = true;
      e.exact = problem.solve_terminal(state.box);
    } else {
      auto [left, right] = problem.branch(state.box);
      Box* children[2] = {&left, &right};
      for (int k = 0; k < 2; ++k) {
        if (children[k]->empty()) continue;
        e.children[k].present = true;
        e.children[k].bounds = problem.bound(*children[k], ctx);
        e.children[k].box = std::move(*children[k]);
      }
    }
  } catch (...) {
    e.error = std::current_exception();
  }
  return e;
}

/// Runs speculative expansions on the executor's pool.  The control
/// thread feeds it frontier nodes; workers claim the most promising
/// backlog entries (ordering is advisory — correctness never depends on
/// which entries workers pick, because obtain() falls back to inline
/// expansion for anything unclaimed or skipped).  Pool tasks are
/// one-shot steps that resubmit themselves, so a helping thread is
/// never trapped in a long drain loop.  The TaskGroup member joins all
/// in-flight steps before the engine (and the borrowed problem
/// reference) goes out of scope.
class SpecEngine {
 public:
  SpecEngine(BnbProblem& problem, const sched::Executor& executor)
      : problem_(problem), executor_(executor), group_(executor) {}

  ~SpecEngine() { shutdown(); }

  bool parallel() const { return executor_.parallel(); }

  /// Adds a frontier node to the speculation backlog and tops up the
  /// self-resubmitting worker steps.  No-op on inline executors.
  void fuel(std::shared_ptr<SpecState> state) {
    if (!parallel()) return;
    {
      std::lock_guard lock(mu_);
      heap_.push_back(std::move(state));
      std::push_heap(heap_.begin(), heap_.end(), LowerGreater{});
    }
    if (active_.load() < executor_.threads()) {
      active_.fetch_add(1);
      group_.run([this] { step(); });
    }
  }

  /// Mirrors the control thread's committed prune threshold; workers
  /// skip backlog entries above it (advisory only).
  void publish_threshold(double threshold) {
    advisory_threshold_.store(threshold);
  }

  /// The control thread's single entry point: expands inline when the
  /// node is unclaimed (or was skipped), otherwise helps the pool until
  /// the in-flight speculative expansion is published.
  Expansion obtain(SpecState& state) {
    if (parallel()) {
      int expected = kSpecIdle;
      if (!state.stage.compare_exchange_strong(expected, kSpecClaimed)) {
        sched::ThreadPool* pool = executor_.pool();
        while (state.stage.load() != kSpecDone) {
          if (pool == nullptr || !pool->try_run_one()) {
            state.stage.wait(kSpecClaimed);
          }
        }
        if (state.expansion.computed) return std::move(state.expansion);
        // Speculator published a skip: expand inline below.
      }
    }
    return expand_node(problem_, state);
  }

  /// Stops speculation and joins in-flight steps.  Safe to call twice.
  void shutdown() {
    stop_.store(true);
    {
      std::lock_guard lock(mu_);
      heap_.clear();
    }
    group_.wait();  // our steps never throw (expand_node catches)
  }

 private:
  struct LowerGreater {
    bool operator()(const std::shared_ptr<SpecState>& a,
                    const std::shared_ptr<SpecState>& b) const {
      return a->lower > b->lower;
    }
  };

  std::shared_ptr<SpecState> pop_best() {
    std::lock_guard lock(mu_);
    if (heap_.empty()) return nullptr;
    std::pop_heap(heap_.begin(), heap_.end(), LowerGreater{});
    std::shared_ptr<SpecState> out = std::move(heap_.back());
    heap_.pop_back();
    return out;
  }

  void step() {
    if (!stop_.load()) {
      if (std::shared_ptr<SpecState> state = pop_best()) {
        int expected = kSpecIdle;
        if (state->stage.compare_exchange_strong(expected, kSpecClaimed)) {
          if (!stop_.load() &&
              state->lower <= advisory_threshold_.load()) {
            state->expansion = expand_node(problem_, *state);
          }  // else: leave computed == false (a published skip)
          state->stage.store(kSpecDone);
          state->stage.notify_all();
        }
        group_.run([this] { step(); });  // keep draining
        return;
      }
    }
    active_.fetch_sub(1);  // chain ends; fuel() revives it
  }

  BnbProblem& problem_;
  sched::Executor executor_;
  sched::TaskGroup group_;
  std::mutex mu_;
  std::vector<std::shared_ptr<SpecState>> heap_;
  std::atomic<double> advisory_threshold_{
      std::numeric_limits<double>::infinity()};
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> active_{0};
};

}  // namespace

const char* to_string(BnbStatus status) {
  switch (status) {
    case BnbStatus::kOptimal: return "optimal";
    case BnbStatus::kNodeLimit: return "node-limit";
    case BnbStatus::kTimeLimit: return "time-limit";
    case BnbStatus::kNoSolution: return "no-solution";
  }
  return "?";
}

Status BnbOptions::validate() const {
  if (max_nodes < 1) {
    return Status::invalid("bnb: max_nodes must be at least 1");
  }
  // 0 is legal: an already-expired budget stops before the first node
  // (anytime semantics the parallel tests exercise).  Rejects negative
  // and NaN.
  if (!(max_seconds >= 0.0)) {
    return Status::invalid("bnb: max_seconds must be non-negative");
  }
  if (!(abs_gap >= 0.0)) {
    return Status::invalid("bnb: abs_gap must be non-negative");
  }
  if (!(rel_gap >= 0.0)) {
    return Status::invalid("bnb: rel_gap must be non-negative");
  }
  if (progress && progress_interval < 1) {
    return Status::invalid(
        "bnb: progress_interval must be at least 1 when a progress "
        "callback is set");
  }
  return Status();
}

void publish(const NodeStats& stats, obs::MetricsRegistry& registry,
             const obs::Labels& labels) {
  registry.counter("solver.relaxations", labels).add(stats.relaxations);
  registry.counter("solver.phase1_skips", labels).add(stats.phase1_skips);
  registry.counter("solver.newton_iterations", labels)
      .add(stats.newton_iterations);
  registry.counter("solver.factorizations", labels)
      .add(stats.factorizations);
}

void publish(const BnbResult& result, obs::MetricsRegistry& registry,
             const obs::Labels& labels) {
  registry.counter("bnb.runs", labels).increment();
  registry.counter("bnb.nodes_processed", labels)
      .add(static_cast<std::uint64_t>(result.nodes_processed));
  registry.counter("bnb.nodes_pruned", labels)
      .add(static_cast<std::uint64_t>(result.nodes_pruned));
  registry.gauge("bnb.best_value", labels).set(result.best_value);
  registry.gauge("bnb.lower_bound", labels).set(result.lower_bound);
  registry.gauge("bnb.gap", labels).set(result.gap());
  registry.gauge("bnb.seconds", labels).add(result.seconds);
  publish(result.solver_stats, registry, labels);
}

BnbResult BnbSolver::run(
    BnbProblem& problem, const Box& root,
    const std::optional<std::pair<linalg::Vector, double>>&
        initial_incumbent) const {
  throw_if_error(options_.validate());
  // Observation wrapper: the search itself never touches the sink, so
  // attaching one cannot perturb results (tests/obs holds the
  // bit-identity cross-check at 1/2/4/8 threads).
  obs::ScopedSpan span(obs::tracer_of(options_.sink), "bnb.run");
  BnbResult result = run_search(problem, root, initial_incumbent);
  if (obs::MetricsRegistry* metrics = obs::metrics_of(options_.sink)) {
    publish(result, *metrics);
  }
  return result;
}

BnbResult BnbSolver::run_search(
    BnbProblem& problem, const Box& root,
    const std::optional<std::pair<linalg::Vector, double>>&
        initial_incumbent) const {
  LDAFP_CHECK(root.size() > 0, "bnb root box must be non-empty");
  support::WallTimer timer;

  BnbResult result;
  if (initial_incumbent.has_value()) {
    result.best_point = initial_incumbent->first;
    result.best_value = initial_incumbent->second;
  }

  SpecEngine engine(problem, options_.executor);
  Frontier queue;

  auto prune_threshold = [&]() {
    // A node whose lower bound exceeds this cannot improve the incumbent
    // beyond the requested gap.  With no incumbent yet, never prune.
    if (!std::isfinite(result.best_value)) {
      return std::numeric_limits<double>::infinity();
    }
    return result.best_value -
           std::max(options_.abs_gap,
                    options_.rel_gap * std::fabs(result.best_value));
  };

  auto consider_candidate = [&](const NodeBounds& bounds) {
    if (bounds.candidate.has_value() &&
        bounds.candidate_value < result.best_value) {
      result.best_point = bounds.candidate;
      result.best_value = bounds.candidate_value;
      engine.publish_threshold(prune_threshold());
    }
  };

  // Infeasible boxes report lower = +inf and must never enter the queue.
  auto should_push = [&](double lower) {
    return lower < std::numeric_limits<double>::infinity() &&
           lower <= prune_threshold();
  };

  auto push_node = [&](double lower, Box box,
                       std::optional<linalg::Vector> seed) {
    auto spec = std::make_shared<SpecState>(std::move(box), lower);
    if (options_.warm_start_relaxations) {
      spec->seed = std::move(seed);
    }
    queue.push(QueueNode{lower, spec});
    engine.fuel(std::move(spec));
  };

  // Root node (always a cold solve: no parent to inherit from).
  {
    NodeBounds bounds = problem.bound(root, BoundContext{});
    result.solver_stats += bounds.stats;
    consider_candidate(bounds);
    if (should_push(bounds.lower)) {
      push_node(bounds.lower, root, std::move(bounds.relaxation_point));
    }
  }

  result.lower_bound = result.best_value;  // adjusted below while queue live

  while (!queue.empty()) {
    if (result.nodes_processed >= options_.max_nodes) {
      result.status = BnbStatus::kNodeLimit;
      result.lower_bound = std::min(queue.top().lower, result.best_value);
      result.seconds = timer.seconds();
      return result;
    }
    if (timer.seconds() > options_.max_seconds) {
      result.status = BnbStatus::kTimeLimit;
      result.lower_bound = std::min(queue.top().lower, result.best_value);
      result.seconds = timer.seconds();
      return result;
    }

    const QueueNode node = queue.top();
    queue.pop();
    ++result.nodes_processed;

    if (options_.progress && options_.progress_interval > 0 &&
        result.nodes_processed % options_.progress_interval == 0) {
      BnbResult snapshot = result;
      snapshot.best_point.reset();  // keep snapshots cheap
      snapshot.lower_bound = std::min(node.lower, result.best_value);
      snapshot.seconds = timer.seconds();
      options_.progress(snapshot);
    }

    // Best-first invariant: the queue head carries the global lower
    // bound.  If it cannot beat the incumbent, the search is done.
    if (node.lower > prune_threshold()) {
      ++result.nodes_pruned;
      result.lower_bound = std::min(node.lower, result.best_value);
      result.status = BnbStatus::kOptimal;
      result.seconds = timer.seconds();
      return result;
    }

    Expansion expansion = engine.obtain(*node.spec);
    if (expansion.error) {
      std::rethrow_exception(expansion.error);
    }

    if (expansion.terminal) {
      result.solver_stats += expansion.exact.stats;
      consider_candidate(expansion.exact);
      continue;  // terminal boxes are fully resolved
    }

    for (Expansion::Child& child : expansion.children) {
      if (!child.present) continue;
      result.solver_stats += child.bounds.stats;
      consider_candidate(child.bounds);
      if (should_push(child.bounds.lower)) {
        push_node(child.bounds.lower, std::move(child.box),
                  std::move(child.bounds.relaxation_point));
      } else {
        ++result.nodes_pruned;
      }
    }
  }

  // Queue drained: the incumbent is optimal over the root box.
  result.lower_bound = result.best_value;
  result.status = result.best_point.has_value() ? BnbStatus::kOptimal
                                                : BnbStatus::kNoSolution;
  result.seconds = timer.seconds();
  if (options_.progress) {
    BnbResult snapshot = result;
    snapshot.best_point.reset();
    options_.progress(snapshot);
  }
  return result;
}

}  // namespace ldafp::opt
