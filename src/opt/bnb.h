// Generic best-first branch-and-bound over interval boxes.
//
// This is the skeleton of the paper's Algorithm 1: iteratively partition
// the variable box, estimate lower/upper bounds per sub-box, keep the set
// of live boxes whose lower bound can still beat the incumbent, and stop
// when every live box is small (or a node/time budget runs out — the
// "additional heuristics" hook the paper mentions).
//
// The framework is problem-agnostic: the LDA-FP trainer plugs in through
// the BnbProblem interface (bounding via the convex relaxation, branching
// on grid-aligned splits, exact enumeration of terminal boxes).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>

#include "linalg/vector.h"
#include "obs/sink.h"
#include "opt/box.h"
#include "sched/executor.h"
#include "support/error.h"

namespace ldafp::opt {

/// Deterministic solver-effort counters carried by every bound() result
/// and summed — on the control thread, over committed expansions only —
/// into BnbResult::solver_stats.  Speculative expansions that are never
/// committed do not contribute, so the totals are bit-identical at any
/// thread count (unlike raw telemetry counters, which also see
/// speculative extras).
struct NodeStats {
  std::uint64_t relaxations = 0;       ///< barrier solves performed
  std::uint64_t phase1_skips = 0;      ///< solves warm-started past phase I
  std::uint64_t newton_iterations = 0; ///< Newton steps, both phases
  std::uint64_t factorizations = 0;    ///< Cholesky attempts

  NodeStats& operator+=(const NodeStats& o) {
    relaxations += o.relaxations;
    phase1_skips += o.phase1_skips;
    newton_iterations += o.newton_iterations;
    factorizations += o.factorizations;
    return *this;
  }
};

/// Adds the counters into `registry` under the shared "solver.*" names
/// — the one reporting path for solver effort: BnbSolver::run publishes
/// its result through this when a sink is attached, and benches/tools
/// publish stored NodeStats through the same call before exporting
/// (obs/export.h), so every surface agrees on names and shape.
void publish(const NodeStats& stats, obs::MetricsRegistry& registry,
             const obs::Labels& labels = {});

/// What a problem reports about one box.
struct NodeBounds {
  /// Valid lower bound on the objective over the box (may be +inf when
  /// the box is infeasible — the node is then pruned).
  double lower = -std::numeric_limits<double>::infinity();
  /// Optional feasible point found while bounding, with its exact
  /// objective value; used to update the incumbent.
  std::optional<linalg::Vector> candidate;
  double candidate_value = std::numeric_limits<double>::infinity();
  /// Optimal point of the node's convex relaxation, when one was solved.
  /// The driver hands it back (clamped by the problem) as the
  /// BoundContext for this node's children — the tree-wide warm start.
  std::optional<linalg::Vector> relaxation_point;
  /// Solver effort behind this bound.
  NodeStats stats;
};

/// Extra context the driver passes to bound(): the parent node's
/// relaxation optimum (null at the root or when warm starts are
/// disabled).  The pointee is fixed before the node is published to
/// workers and never mutated afterwards, so reading it is race-free.
/// Determinism note: the parent point is itself a pure function of the
/// parent box and *its* context, inductively rooted at the cold root
/// solve — so bound(box, ctx) stays a pure function of the node's
/// position in the tree, which is what keeps parallel runs bit-identical
/// (DESIGN.md §9/§10).
struct BoundContext {
  const linalg::Vector* parent_relaxation = nullptr;
};

/// Problem plug-in interface for the solver.
///
/// Concurrency contract: when BnbOptions::executor is parallel, the
/// solver evaluates bound() / is_terminal() / solve_terminal() /
/// branch() speculatively from pool workers — concurrently, and
/// possibly for boxes that sequential execution would never expand.
/// Implementations must therefore be thread-safe and functionally pure
/// (the returned values may depend only on the box argument, never on
/// call order or hidden mutable state; internal counters need atomics).
/// Under the default inline executor calls arrive strictly one at a
/// time, exactly as before.
class BnbProblem {
 public:
  virtual ~BnbProblem() = default;

  /// Bounds the objective over `box` (relaxation + rounding heuristic).
  virtual NodeBounds bound(const Box& box) = 0;

  /// Context-aware overload the driver actually calls: `ctx` carries the
  /// parent's relaxation optimum for warm-starting.  The default ignores
  /// the context, so existing problems are unaffected.  Overrides must
  /// keep the result a pure function of (box, ctx) — see BoundContext.
  virtual NodeBounds bound(const Box& box, const BoundContext& ctx) {
    (void)ctx;
    return bound(box);
  }

  /// True when `box` is small enough to finish by exact enumeration.
  virtual bool is_terminal(const Box& box) const = 0;

  /// Exactly minimizes over the discrete feasible points inside a
  /// terminal `box`; returns the best candidate (or none if empty).
  virtual NodeBounds solve_terminal(const Box& box) = 0;

  /// Splits a non-terminal box into two children.
  virtual std::pair<Box, Box> branch(const Box& box) = 0;
};

/// Search budgets.  Exhausting a budget yields an anytime result with a
/// reported optimality gap instead of a proved optimum.
struct BnbOptions {
  std::size_t max_nodes = 200000;
  double max_seconds = std::numeric_limits<double>::infinity();
  /// Stop when best_value - global_lower_bound <= abs_gap ...
  double abs_gap = 1e-9;
  /// ... or <= rel_gap * |best_value|.
  double rel_gap = 1e-6;
  /// When set, called with a progress snapshot every `progress_interval`
  /// processed nodes (and once at exit).  The snapshot's lower_bound is
  /// the live global bound; best_point is omitted to keep snapshots
  /// cheap.  Long searches (the paper's ran for up to ~50 minutes) use
  /// this for anytime reporting.
  std::function<void(const struct BnbResult&)> progress;
  std::size_t progress_interval = 1000;
  /// Execution resource for node expansions.  The default inline
  /// executor reproduces the single-threaded search exactly.  A pooled
  /// executor expands frontier nodes speculatively on the workers while
  /// one control thread commits results in the sequential order, so the
  /// incumbent, certified gap, status, and node counts are bit-identical
  /// to the sequential search at any thread count (see DESIGN.md §9;
  /// wall-clock time budgets remain wall-clock, so kTimeLimit runs stop
  /// at a machine-dependent node in either mode).
  sched::Executor executor;
  /// Pass each node's relaxation optimum to its children's bound() calls
  /// (BoundContext), letting the problem warm-start phase II directly.
  /// Off means every bound() sees a null context — the cold baseline.
  /// Either setting is bit-identical across thread counts; the two
  /// settings may differ from each other in low-order bits of interior
  /// relaxation bounds (Newton trajectories differ), though incumbents
  /// are grid-rounded and typically agree exactly.
  bool warm_start_relaxations = true;
  /// Observability seam (null = zero-overhead no-op, like the inline
  /// executor default).  With a sink attached, run() wraps the search
  /// in a "bnb.run" span and publishes the result's counters/gauges
  /// into the metrics registry on exit.  Purely observational: results
  /// are bit-identical with or without a sink at any thread count.
  obs::Sink* sink = nullptr;

  /// Checks every budget/tolerance for validity; called once by
  /// BnbSolver::run before the search starts.
  Status validate() const;
};

/// Why the search stopped.
enum class BnbStatus {
  kOptimal,     ///< gap closed to tolerance
  kNodeLimit,   ///< max_nodes exhausted
  kTimeLimit,   ///< max_seconds exhausted
  kNoSolution,  ///< no feasible point exists in the root box
};

/// Short display name of a status.
const char* to_string(BnbStatus status);

/// Search outcome and statistics.
struct BnbResult {
  BnbStatus status = BnbStatus::kNoSolution;
  std::optional<linalg::Vector> best_point;
  double best_value = std::numeric_limits<double>::infinity();
  /// Global lower bound over the root box at exit.
  double lower_bound = -std::numeric_limits<double>::infinity();
  std::size_t nodes_processed = 0;
  std::size_t nodes_pruned = 0;
  /// Solver effort summed over committed expansions (thread-invariant).
  NodeStats solver_stats;
  double seconds = 0.0;

  /// Absolute optimality gap at exit.
  double gap() const { return best_value - lower_bound; }
};

/// Publishes a finished search into `registry`: "bnb.*" counters (runs,
/// nodes processed/pruned) and gauges (best value, lower bound, gap,
/// seconds) plus the "solver.*" NodeStats counters.  The result struct
/// stays the deterministic value record; this is its one bridge onto
/// the registry snapshot/export path.
void publish(const BnbResult& result, obs::MetricsRegistry& registry,
             const obs::Labels& labels = {});

/// Best-first branch-and-bound driver.
class BnbSolver {
 public:
  BnbSolver() = default;
  explicit BnbSolver(BnbOptions options) : options_(options) {}

  const BnbOptions& options() const { return options_; }

  /// Runs the search from `root`.  `initial_incumbent`, when provided,
  /// seeds the upper bound (point + exact value) — the warm-start
  /// heuristic.  Validates the options (throws InvalidArgumentError on
  /// a non-ok BnbOptions::validate()) and, when options.sink is set,
  /// traces the run and publishes the result's counters on exit.
  BnbResult run(BnbProblem& problem, const Box& root,
                const std::optional<std::pair<linalg::Vector, double>>&
                    initial_incumbent = std::nullopt) const;

 private:
  BnbResult run_search(
      BnbProblem& problem, const Box& root,
      const std::optional<std::pair<linalg::Vector, double>>&
          initial_incumbent) const;

  BnbOptions options_;
};

}  // namespace ldafp::opt
