#include "opt/box.h"

#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace ldafp::opt {

bool Box::empty() const {
  for (const auto& iv : dims_) {
    if (iv.empty()) return true;
  }
  return false;
}

std::size_t Box::widest_dimension() const {
  LDAFP_CHECK(!dims_.empty(), "widest_dimension of an empty box");
  std::size_t best = 0;
  for (std::size_t i = 1; i < dims_.size(); ++i) {
    if (dims_[i].width() > dims_[best].width()) best = i;
  }
  return best;
}

double Box::max_width() const {
  double w = 0.0;
  for (const auto& iv : dims_) w = std::max(w, iv.width());
  return w;
}

std::vector<double> Box::center() const {
  std::vector<double> c(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) c[i] = dims_[i].mid();
  return c;
}

std::pair<Box, Box> Box::split(std::size_t dim, double point) const {
  LDAFP_CHECK(dim < dims_.size(), "split dimension out of range");
  LDAFP_CHECK(dims_[dim].contains(point), "split point outside interval");
  Box left = *this;
  Box right = *this;
  left[dim].hi = point;
  right[dim].lo = point;
  return {left, right};
}

std::string Box::to_string(int digits) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    if (i != 0) os << " x ";
    os << "[" << support::format_double(dims_[i].lo, digits) << ","
       << support::format_double(dims_[i].hi, digits) << "]";
  }
  return os.str();
}

}  // namespace ldafp::opt
