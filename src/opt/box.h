// Interval boxes: the search regions the branch-and-bound solver
// partitions (paper Eq. 24).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ldafp::opt {

/// A closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  double mid() const { return 0.5 * (lo + hi); }
  bool contains(double x) const { return lo <= x && x <= hi; }
  bool empty() const { return lo > hi; }
};

/// Axis-aligned box: one interval per optimization variable.
class Box {
 public:
  Box() = default;
  explicit Box(std::vector<Interval> dims) : dims_(std::move(dims)) {}
  /// n copies of [lo, hi].
  Box(std::size_t n, Interval iv) : dims_(n, iv) {}

  std::size_t size() const { return dims_.size(); }
  Interval& operator[](std::size_t i) { return dims_[i]; }
  const Interval& operator[](std::size_t i) const { return dims_[i]; }

  /// True when some interval is empty.
  bool empty() const;

  /// Index of the widest interval.
  std::size_t widest_dimension() const;

  /// Largest interval width.
  double max_width() const;

  /// Center point of the box.
  std::vector<double> center() const;

  /// Splits dimension `dim` at `point` into (left: hi=point,
  /// right: lo=point).  `point` must lie inside the interval.
  std::pair<Box, Box> split(std::size_t dim, double point) const;

  /// "[lo,hi] x [lo,hi] ..." for logging.
  std::string to_string(int digits = 4) const;

 private:
  std::vector<Interval> dims_;
};

}  // namespace ldafp::opt
