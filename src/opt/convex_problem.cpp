#include "opt/convex_problem.h"

#include <cmath>

#include "support/error.h"

namespace ldafp::opt {

ConvexProblem::ConvexProblem(linalg::Matrix q) : q_(std::move(q)) {
  LDAFP_CHECK(q_.square(), "objective matrix must be square");
  LDAFP_CHECK(q_.is_symmetric(1e-9 * (1.0 + q_.norm_max())),
              "objective matrix must be symmetric");
}

void ConvexProblem::set_box(Box box) {
  LDAFP_CHECK(box.size() == dim(), "box dimension mismatch");
  box_ = std::move(box);
}

void ConvexProblem::add_linear(LinearConstraint constraint) {
  LDAFP_CHECK(constraint.a.size() == dim(),
              "linear constraint dimension mismatch");
  linear_.push_back(std::move(constraint));
}

void ConvexProblem::add_soc(SocConstraint constraint) {
  LDAFP_CHECK(constraint.sigma.square() &&
                  constraint.sigma.rows() == dim() &&
                  constraint.c.size() == dim(),
              "soc constraint dimension mismatch");
  LDAFP_CHECK(constraint.beta >= 0.0, "soc beta must be non-negative");
  LDAFP_CHECK(constraint.eps > 0.0, "soc eps must be positive");
  soc_.push_back(std::move(constraint));
}

double ConvexProblem::objective(const linalg::Vector& w) const {
  return linalg::quadratic_form(q_, w);
}

linalg::Vector ConvexProblem::objective_gradient(
    const linalg::Vector& w) const {
  linalg::Vector g = q_ * w;
  g *= 2.0;
  return g;
}

std::size_t ConvexProblem::constraint_count() const {
  return linear_.size() + soc_.size() + 2 * box_.size();
}

double ConvexProblem::linear_residual(std::size_t i,
                                      const linalg::Vector& w) const {
  LDAFP_CHECK(i < linear_.size(), "linear constraint index out of range");
  return linalg::dot(linear_[i].a, w) - linear_[i].b;
}

double ConvexProblem::soc_residual(std::size_t j,
                                   const linalg::Vector& w) const {
  LDAFP_CHECK(j < soc_.size(), "soc constraint index out of range");
  const SocConstraint& s = soc_[j];
  const double quad = linalg::quadratic_form(s.sigma, w);
  return s.beta * std::sqrt(std::max(quad, 0.0) + s.eps) +
         linalg::dot(s.c, w) - s.d;
}

linalg::Vector ConvexProblem::soc_gradient(std::size_t j,
                                           const linalg::Vector& w) const {
  LDAFP_CHECK(j < soc_.size(), "soc constraint index out of range");
  const SocConstraint& s = soc_[j];
  const double quad = linalg::quadratic_form(s.sigma, w);
  const double root = std::sqrt(std::max(quad, 0.0) + s.eps);
  linalg::Vector g = s.sigma * w;
  g *= s.beta / root;
  g += s.c;
  return g;
}

double ConvexProblem::max_residual(const linalg::Vector& w) const {
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < linear_.size(); ++i) {
    worst = std::max(worst, linear_residual(i, w));
  }
  for (std::size_t j = 0; j < soc_.size(); ++j) {
    worst = std::max(worst, soc_residual(j, w));
  }
  for (std::size_t m = 0; m < box_.size(); ++m) {
    worst = std::max(worst, box_[m].lo - w[m]);
    worst = std::max(worst, w[m] - box_[m].hi);
  }
  return worst;
}

bool ConvexProblem::is_feasible(const linalg::Vector& w, double tol) const {
  return max_residual(w) <= tol;
}

}  // namespace ldafp::opt
