#include "opt/convex_problem.h"

#include <cmath>
#include <limits>

#include "support/error.h"

namespace ldafp::opt {

ConvexProblem::ConvexProblem(linalg::Matrix q)
    : owned_(std::make_shared<ProblemStructure>(std::move(q))),
      structure_(owned_) {}

ConvexProblem::ConvexProblem(
    std::shared_ptr<const ProblemStructure> structure, Box box)
    : structure_(std::move(structure)) {
  LDAFP_CHECK(structure_ != nullptr, "node view requires a structure");
  set_box(std::move(box));
  linear_rhs_.reserve(structure_->linear().size());
  for (const LinearConstraint& lin : structure_->linear()) {
    linear_rhs_.push_back(lin.b);
  }
}

std::shared_ptr<const ProblemStructure> ConvexProblem::share_structure() {
  owned_.reset();  // freeze: mutators refuse from here on
  return structure_;
}

void ConvexProblem::set_box(Box box) {
  LDAFP_CHECK(box.size() == dim(), "box dimension mismatch");
  box_ = std::move(box);
}

void ConvexProblem::add_linear(LinearConstraint constraint) {
  LDAFP_CHECK(owned_ != nullptr,
              "cannot add constraints to a frozen/shared problem structure");
  const double b = constraint.b;
  owned_->add_linear(std::move(constraint));
  linear_rhs_.push_back(b);
}

void ConvexProblem::add_soc(SocConstraint constraint) {
  LDAFP_CHECK(owned_ != nullptr,
              "cannot add constraints to a frozen/shared problem structure");
  owned_->add_soc(std::move(constraint));
}

double ConvexProblem::linear_rhs(std::size_t i) const {
  LDAFP_CHECK(i < linear_rhs_.size(), "linear constraint index out of range");
  return linear_rhs_[i];
}

void ConvexProblem::set_linear_rhs(std::size_t i, double b) {
  LDAFP_CHECK(i < linear_rhs_.size(), "linear constraint index out of range");
  linear_rhs_[i] = b;
}

double ConvexProblem::objective(const linalg::Vector& w) const {
  return linalg::quadratic_form(objective_matrix(), w);
}

linalg::Vector ConvexProblem::objective_gradient(
    const linalg::Vector& w) const {
  linalg::Vector g = objective_matrix() * w;
  g *= 2.0;
  return g;
}

std::size_t ConvexProblem::constraint_count() const {
  return linear().size() + soc().size() + 2 * box_.size();
}

double ConvexProblem::linear_residual(std::size_t i,
                                      const linalg::Vector& w) const {
  LDAFP_CHECK(i < linear().size(), "linear constraint index out of range");
  return linalg::dot(linear()[i].a, w) - linear_rhs_[i];
}

double ConvexProblem::soc_residual(std::size_t j,
                                   const linalg::Vector& w) const {
  LDAFP_CHECK(j < soc().size(), "soc constraint index out of range");
  const SocConstraint& s = soc()[j];
  const double quad = linalg::quadratic_form(s.sigma, w);
  return s.beta * std::sqrt(std::max(quad, 0.0) + s.eps) +
         linalg::dot(s.c, w) - s.d;
}

linalg::Vector ConvexProblem::soc_gradient(std::size_t j,
                                           const linalg::Vector& w) const {
  LDAFP_CHECK(j < soc().size(), "soc constraint index out of range");
  const SocConstraint& s = soc()[j];
  const double quad = linalg::quadratic_form(s.sigma, w);
  const double root = std::sqrt(std::max(quad, 0.0) + s.eps);
  linalg::Vector g = s.sigma * w;
  g *= s.beta / root;
  g += s.c;
  return g;
}

double ConvexProblem::max_residual(const linalg::Vector& w) const {
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < linear().size(); ++i) {
    worst = std::max(worst, linear_residual(i, w));
  }
  for (std::size_t j = 0; j < soc().size(); ++j) {
    worst = std::max(worst, soc_residual(j, w));
  }
  for (std::size_t m = 0; m < box_.size(); ++m) {
    worst = std::max(worst, box_[m].lo - w[m]);
    worst = std::max(worst, w[m] - box_[m].hi);
  }
  return worst;
}

bool ConvexProblem::is_feasible(const linalg::Vector& w, double tol) const {
  return max_residual(w) <= tol;
}

}  // namespace ldafp::opt
