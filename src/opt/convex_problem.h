// Convex quadratic-over-cone problem container.
//
// This is the shape of the paper's relaxed subproblem (Eq. 25):
//
//     min   wᵀ Q w                       (Q symmetric PSD)
//     s.t.  aᵢᵀ w <= bᵢ                  (linear inequalities)
//           βⱼ √(wᵀ Σⱼ w + εⱼ) + cⱼᵀ w <= dⱼ   (second-order cone)
//           lo <= w <= hi                (box)
//
// The εⱼ smoothing keeps the SOC residual differentiable at w = 0 (it
// only *tightens* the constraint, so feasibility of the smoothed problem
// implies feasibility of the true one).
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "opt/box.h"

namespace ldafp::opt {

/// One linear inequality aᵀw <= b.
struct LinearConstraint {
  linalg::Vector a;
  double b = 0.0;
};

/// One smoothed second-order-cone constraint
/// beta * sqrt(wᵀ Sigma w + eps) + cᵀw <= d.
struct SocConstraint {
  double beta = 0.0;
  linalg::Matrix sigma;  ///< symmetric PSD
  linalg::Vector c;
  double d = 0.0;
  double eps = 1e-12;
};

/// The full problem.  All pieces are optional except the objective.
class ConvexProblem {
 public:
  /// Creates a problem with objective wᵀQw.  Q must be square symmetric.
  explicit ConvexProblem(linalg::Matrix q);

  std::size_t dim() const { return q_.rows(); }

  const linalg::Matrix& objective_matrix() const { return q_; }

  /// Sets the variable box (dimension must match).  Without a box the
  /// variables are unbounded — the barrier solver requires a box, since
  /// every LDA-FP subproblem has one (Eq. 24/28).
  void set_box(Box box);
  const Box& box() const { return box_; }
  bool has_box() const { return box_.size() == dim(); }

  /// Appends a linear inequality.
  void add_linear(LinearConstraint constraint);
  const std::vector<LinearConstraint>& linear() const { return linear_; }

  /// Appends a SOC constraint.
  void add_soc(SocConstraint constraint);
  const std::vector<SocConstraint>& soc() const { return soc_; }

  /// Objective value wᵀQw.
  double objective(const linalg::Vector& w) const;

  /// Objective gradient 2 Q w.
  linalg::Vector objective_gradient(const linalg::Vector& w) const;

  /// Number of scalar inequality constraints (linear + soc + 2*box).
  std::size_t constraint_count() const;

  /// Residual of linear constraint i: aᵀw - b (feasible when <= 0).
  double linear_residual(std::size_t i, const linalg::Vector& w) const;

  /// Residual of SOC constraint j (feasible when <= 0).
  double soc_residual(std::size_t j, const linalg::Vector& w) const;

  /// Gradient of SOC residual j at w.
  linalg::Vector soc_gradient(std::size_t j, const linalg::Vector& w) const;

  /// Max over all constraint residuals (box included); <= 0 means
  /// feasible.  Useful for phase-I and verification.
  double max_residual(const linalg::Vector& w) const;

  /// True when every residual <= tol.
  bool is_feasible(const linalg::Vector& w, double tol) const;

 private:
  linalg::Matrix q_;
  Box box_;
  std::vector<LinearConstraint> linear_;
  std::vector<SocConstraint> soc_;
};

}  // namespace ldafp::opt
