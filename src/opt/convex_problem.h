// Convex quadratic-over-cone problem container.
//
// This is the shape of the paper's relaxed subproblem (Eq. 25):
//
//     min   wᵀ Q w                       (Q symmetric PSD)
//     s.t.  aᵢᵀ w <= bᵢ                  (linear inequalities)
//           βⱼ √(wᵀ Σⱼ w + εⱼ) + cⱼᵀ w <= dⱼ   (second-order cone)
//           lo <= w <= hi                (box)
//
// The εⱼ smoothing keeps the SOC residual differentiable at w = 0 (it
// only *tightens* the constraint, so feasibility of the smoothed problem
// implies feasibility of the true one).
//
// A ConvexProblem is a thin view over a ProblemStructure (the objective
// and constraint data) plus per-view state: the variable box and the
// linear right-hand sides.  Standalone problems own their structure and
// build it with add_linear/add_soc; branch-and-bound node views share
// one immutable structure by shared_ptr and cost O(m) to create — only
// the box and the t-interval rows change between nodes (DESIGN.md §10).
#pragma once

#include <memory>
#include <vector>

#include "opt/box.h"
#include "opt/problem_structure.h"

namespace ldafp::opt {

/// The full problem.  All pieces are optional except the objective.
class ConvexProblem {
 public:
  /// Creates a standalone problem with objective wᵀQw and a fresh,
  /// exclusively owned structure.  Q must be square symmetric.
  explicit ConvexProblem(linalg::Matrix q);

  /// Creates a node view sharing `structure` (O(m): no matrix copies).
  /// The box must match the structure's dimension; linear right-hand
  /// sides start at the structure's defaults (override per node with
  /// set_linear_rhs).
  ConvexProblem(std::shared_ptr<const ProblemStructure> structure, Box box);

  std::size_t dim() const { return structure_->dim(); }

  const linalg::Matrix& objective_matrix() const {
    return structure_->objective_matrix();
  }

  /// The shared structure handle.  Calling this freezes the problem:
  /// add_linear/add_soc throw afterwards, so every view created from the
  /// handle observes identical structure forever.
  std::shared_ptr<const ProblemStructure> share_structure();

  const ProblemStructure& structure() const { return *structure_; }

  /// Sets the variable box (dimension must match).  Without a box the
  /// variables are unbounded — the barrier solver requires a box, since
  /// every LDA-FP subproblem has one (Eq. 24/28).
  void set_box(Box box);
  const Box& box() const { return box_; }
  bool has_box() const { return box_.size() == dim(); }

  /// Appends a linear inequality.  Requires exclusive structure
  /// ownership (throws once share_structure() has been called).
  void add_linear(LinearConstraint constraint);
  const std::vector<LinearConstraint>& linear() const {
    return structure_->linear();
  }

  /// Appends a SOC constraint.  Requires exclusive structure ownership.
  void add_soc(SocConstraint constraint);
  const std::vector<SocConstraint>& soc() const {
    return structure_->soc();
  }

  /// Per-view linear right-hand side for constraint i (defaults to the
  /// structure's b; residuals use this value, not linear()[i].b).
  double linear_rhs(std::size_t i) const;
  void set_linear_rhs(std::size_t i, double b);

  /// Objective value wᵀQw.
  double objective(const linalg::Vector& w) const;

  /// Objective gradient 2 Q w.
  linalg::Vector objective_gradient(const linalg::Vector& w) const;

  /// Number of scalar inequality constraints (linear + soc + 2*box).
  std::size_t constraint_count() const;

  /// Residual of linear constraint i: aᵀw - b (feasible when <= 0).
  double linear_residual(std::size_t i, const linalg::Vector& w) const;

  /// Residual of SOC constraint j (feasible when <= 0).
  double soc_residual(std::size_t j, const linalg::Vector& w) const;

  /// Gradient of SOC residual j at w.
  linalg::Vector soc_gradient(std::size_t j, const linalg::Vector& w) const;

  /// Max over all constraint residuals (box included); <= 0 means
  /// feasible.  Useful for phase-I and verification.
  double max_residual(const linalg::Vector& w) const;

  /// True when every residual <= tol.
  bool is_feasible(const linalg::Vector& w, double tol) const;

 private:
  std::shared_ptr<ProblemStructure> owned_;  ///< null once shared/frozen
  std::shared_ptr<const ProblemStructure> structure_;
  Box box_;
  std::vector<double> linear_rhs_;
};

}  // namespace ldafp::opt
