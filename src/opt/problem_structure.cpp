#include "opt/problem_structure.h"

#include "support/error.h"

namespace ldafp::opt {

ProblemStructure::ProblemStructure(linalg::Matrix q) : q_(std::move(q)) {
  LDAFP_CHECK(q_.square(), "objective matrix must be square");
  LDAFP_CHECK(q_.is_symmetric(1e-9 * (1.0 + q_.norm_max())),
              "objective matrix must be symmetric");
  q_norm_max_ = q_.norm_max();
}

void ProblemStructure::add_linear(LinearConstraint constraint) {
  LDAFP_CHECK(constraint.a.size() == dim(),
              "linear constraint dimension mismatch");
  linear_.push_back(std::move(constraint));
}

void ProblemStructure::add_soc(SocConstraint constraint) {
  LDAFP_CHECK(constraint.sigma.square() &&
                  constraint.sigma.rows() == dim() &&
                  constraint.c.size() == dim(),
              "soc constraint dimension mismatch");
  LDAFP_CHECK(constraint.beta >= 0.0, "soc beta must be non-negative");
  LDAFP_CHECK(constraint.eps > 0.0, "soc eps must be positive");
  soc_.push_back(std::move(constraint));
}

}  // namespace ldafp::opt
