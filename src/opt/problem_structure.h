// Immutable per-tree structure of the relaxed subproblem (Eq. 25).
//
// Every node of the LDA-FP branch-and-bound tree solves the *same*
// relaxation up to its variable box and the two t-interval right-hand
// sides: the objective Q, the SOC blocks Σⱼ, and the linear constraint
// normals never change while the tree is searched.  ProblemStructure owns
// those invariant pieces exactly once per tree; ConvexProblem node views
// share it by shared_ptr, so building the per-node problem costs O(m)
// instead of the former O(m²) deep copy of Q and four Σⱼ blocks.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ldafp::opt {

/// One linear inequality aᵀw <= b.  `b` is the structure's default
/// right-hand side; node views may override it per node (the t-interval
/// rows of the LDA-FP relaxation do exactly that).
struct LinearConstraint {
  linalg::Vector a;
  double b = 0.0;
};

/// One smoothed second-order-cone constraint
/// beta * sqrt(wᵀ Sigma w + eps) + cᵀw <= d.
struct SocConstraint {
  double beta = 0.0;
  linalg::Matrix sigma;  ///< symmetric PSD
  linalg::Vector c;
  double d = 0.0;
  double eps = 1e-12;
};

/// The box-independent part of a ConvexProblem.  Built once, then shared
/// immutably (via shared_ptr<const ProblemStructure>) across every node
/// view of a branch-and-bound tree.
class ProblemStructure {
 public:
  /// Structure with objective wᵀQw.  Q must be square symmetric.
  explicit ProblemStructure(linalg::Matrix q);

  std::size_t dim() const { return q_.rows(); }

  const linalg::Matrix& objective_matrix() const { return q_; }

  /// Max |Q_ij|, precomputed at construction (Hessian scale estimates).
  double objective_norm_max() const { return q_norm_max_; }

  /// Appends a linear inequality (dimension must match).
  void add_linear(LinearConstraint constraint);
  const std::vector<LinearConstraint>& linear() const { return linear_; }

  /// Appends a SOC constraint (dimension must match, beta >= 0, eps > 0).
  void add_soc(SocConstraint constraint);
  const std::vector<SocConstraint>& soc() const { return soc_; }

 private:
  linalg::Matrix q_;
  double q_norm_max_ = 0.0;
  std::vector<LinearConstraint> linear_;
  std::vector<SocConstraint> soc_;
};

}  // namespace ldafp::opt
