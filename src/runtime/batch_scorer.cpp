#include "runtime/batch_scorer.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "fixed/value.h"
#include "support/error.h"
#include "support/wire.h"

namespace ldafp::runtime {

namespace simd = fixed::simd;

void PackedBatch::append_packed(const PackedBatch& src) {
  if (src.rows == 0) return;
  if (rows == 0) {
    dim = src.dim;
    words.clear();
  } else {
    LDAFP_CHECK(dim == src.dim,
                "append_packed: batches packed at different dims");
  }
  if (rows % kLane == 0) {
    // Tile-aligned destination: the source tiles (padding included)
    // drop in verbatim.  Interior padding lanes left by this copy are
    // zero and get overwritten if more rows land later.
    words.insert(words.end(), src.words.begin(), src.words.end());
    rows += src.rows;
    return;
  }
  // Mid-tile destination: restripe row by row into the open lanes.
  const std::size_t stride = dim * kLane;
  words.reserve(((rows + src.rows + kLane - 1) / kLane) * stride);
  for (std::size_t r = 0; r < src.rows; ++r) {
    const std::size_t row = rows + r;
    if (row % kLane == 0) {
      words.resize(words.size() + stride, 0);
    }
    std::int64_t* tile = words.data() + (row / kLane) * stride;
    const std::size_t lane = row % kLane;
    const std::int64_t* src_tile = src.words.data() + (r / kLane) * stride;
    const std::size_t src_lane = r % kLane;
    for (std::size_t m = 0; m < dim; ++m) {
      tile[m * kLane + lane] = src_tile[m * kLane + src_lane];
    }
  }
  rows += src.rows;
}

BatchScorer::BatchScorer(const core::FixedClassifier& clf)
    : datapath_(clf.datapath_ptr()),
      twos_complement_(clf.datapath_kind() ==
                       fixed::DatapathKind::kTwosComplement),
      fmt_(clf.format()),
      wide_fmt_(clf.format().integer_bits(), 2 * clf.format().frac_bits()),
      mode_(clf.rounding()),
      acc_(clf.accumulator()),
      weights_raw_(clf.weight_words()),
      threshold_raw_(clf.threshold_raw()),
      q_scale_(std::ldexp(1.0, clf.format().frac_bits())),
      q_min_(clf.format().min_value()),
      q_max_(clf.format().max_value()),
      raw_min_(clf.format().raw_min()),
      raw_max_(clf.format().raw_max()) {
  if (twos_complement_) {
    // Validate the integer-overflow envelope once at snapshot time (the
    // same checks make_plan applies per score call).
    simd::make_plan(weights_raw_.data(), weights_raw_.size(), fmt_, mode_,
                    acc_);
  }
}

std::int64_t BatchScorer::quantize(double v) const {
  LDAFP_CHECK(!std::isnan(v), "cannot quantize NaN");
  if (!twos_complement_) return datapath_->quantize(v);
  // Mirrors FixedFormat::quantize_saturate with the constants hoisted
  // out of the per-element path.  v * 2^F is exact for in-range v (a
  // power-of-two scale only shifts the exponent), so the rounding step
  // sees the identical double ldexp would produce.
  if (v <= q_min_) return raw_min_;
  if (v >= q_max_) return raw_max_;
  const std::int64_t raw = fixed::round_real_to_int(v * q_scale_, mode_);
  if (raw < raw_min_) return raw_min_;
  if (raw > raw_max_) return raw_max_;
  return raw;
}

void BatchScorer::pack_into(PackedBatch& out, const linalg::Vector* xs,
                            std::size_t n) const {
  constexpr std::size_t kLane = PackedBatch::kLane;
  if (out.rows == 0) {
    // Latch the layout on first pack; a cleared batch keeps its word
    // capacity but re-latches.
    out.dim = dim();
    out.words.clear();
  } else {
    LDAFP_CHECK(out.dim == dim(),
                "pack_into: batch already packed at a different dim");
  }
  const std::size_t m_count = dim();
  out.words.reserve(((out.rows + n + kLane - 1) / kLane) * m_count * kLane);
  for (std::size_t r = 0; r < n; ++r) {
    LDAFP_CHECK(xs[r].size() == m_count, "batch scorer dimension mismatch");
    const std::size_t row = out.rows + r;
    if (row % kLane == 0) {
      // New zero-padded tile; padding lanes stay zero (harmless words
      // that the kernels may read but whose results are never used).
      out.words.resize(out.words.size() + m_count * kLane, 0);
    }
    std::int64_t* tile =
        out.words.data() + (row / kLane) * m_count * kLane;
    const std::size_t lane = row % kLane;
    for (std::size_t m = 0; m < m_count; ++m) {
      tile[m * kLane + lane] = quantize(xs[r][m]);
    }
  }
  out.rows += n;
}

PackedBatch BatchScorer::pack(const std::vector<linalg::Vector>& xs) const {
  PackedBatch batch;
  pack_into(batch, xs.data(), xs.size());
  return batch;
}

bool BatchScorer::pack_from_f64_le(PackedBatch& out,
                                   const std::uint8_t* payload,
                                   std::size_t n) const {
  constexpr std::size_t kLane = PackedBatch::kLane;
  if (out.rows == 0) {
    out.dim = dim();
    out.words.clear();
  } else {
    LDAFP_CHECK(out.dim == dim(),
                "pack_from_f64_le: batch already packed at a different dim");
  }
  const std::size_t m_count = dim();
  out.words.reserve(((out.rows + n + kLane - 1) / kLane) * m_count * kLane);
  const std::uint8_t* p = payload;
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t row = out.rows;
    if (row % kLane == 0) {
      out.words.resize(out.words.size() + m_count * kLane, 0);
    }
    std::int64_t* tile =
        out.words.data() + (row / kLane) * m_count * kLane;
    const std::size_t lane = row % kLane;
    for (std::size_t m = 0; m < m_count; ++m, p += 8) {
      // Exactly what WireReader::f64 yields: the LE u64 bit pattern
      // reinterpreted as IEEE-754 — so the value entering quantize() is
      // bit-identical to the decode-then-pack path.
      const double v = std::bit_cast<double>(support::get_u64le(p));
      if (std::isnan(v)) return false;  // reject at ingest, not in a worker
      tile[m * kLane + lane] = quantize(v);
    }
    out.rows += 1;
  }
  return true;
}

void BatchScorer::score(const PackedBatch& batch, ScoreResult* out) const {
  if (batch.rows == 0) return;
  LDAFP_CHECK(batch.dim == dim(), "batch scorer dimension mismatch");
  constexpr std::size_t kLane = PackedBatch::kLane;
  if (!twos_complement_) {
    // No vector kernels for this backend: gather each row out of the
    // AoSoA tiles and run the datapath's scalar dot.  One row buffer
    // per call, none per row.
    std::vector<std::int64_t> xrow(dim());
    for (std::size_t r = 0; r < batch.rows; ++r) {
      const std::int64_t* tile = batch.tile(r / kLane);
      const std::size_t lane = r % kLane;
      for (std::size_t m = 0; m < dim(); ++m) {
        xrow[m] = tile[m * kLane + lane];
      }
      const std::int64_t y =
          datapath_->dot(weights_raw_.data(), xrow.data(), dim());
      out[r].projection_raw = y;
      out[r].label = datapath_->ge(y, threshold_raw_) ? core::Label::kClassA
                                                      : core::Label::kClassB;
    }
    return;
  }
  const simd::DotPlan plan =
      simd::make_plan(weights_raw_.data(), dim(), fmt_, mode_, acc_);
  std::int64_t y[kLane];
  for (std::size_t t = 0; t < batch.tiles(); ++t) {
    const std::size_t base = t * kLane;
    const std::size_t lanes = std::min(kLane, batch.rows - base);
    simd::score_tile(plan, batch.tile(t), y, lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      out[base + lane].projection_raw = y[lane];
      out[base + lane].label = y[lane] >= threshold_raw_
                                   ? core::Label::kClassA
                                   : core::Label::kClassB;
    }
  }
}

std::vector<ScoreResult> BatchScorer::score(
    const std::vector<linalg::Vector>& xs) const {
  const PackedBatch batch = pack(xs);
  std::vector<ScoreResult> out(batch.rows);
  score(batch, out.data());
  return out;
}

std::vector<core::Label> BatchScorer::classify(
    const std::vector<linalg::Vector>& xs) const {
  std::vector<core::Label> labels;
  labels.reserve(xs.size());
  for (const ScoreResult& r : score(xs)) labels.push_back(r.label);
  return labels;
}

}  // namespace ldafp::runtime
