#include "runtime/batch_scorer.h"

#include <algorithm>
#include <cmath>

#include "fixed/value.h"
#include "support/error.h"

namespace ldafp::runtime {

namespace simd = fixed::simd;

BatchScorer::BatchScorer(const core::FixedClassifier& clf)
    : fmt_(clf.format()),
      wide_fmt_(clf.format().integer_bits(), 2 * clf.format().frac_bits()),
      mode_(clf.rounding()),
      acc_(clf.accumulator()),
      threshold_raw_(clf.threshold_fixed().raw()),
      q_scale_(std::ldexp(1.0, clf.format().frac_bits())),
      q_min_(clf.format().min_value()),
      q_max_(clf.format().max_value()),
      raw_min_(clf.format().raw_min()),
      raw_max_(clf.format().raw_max()) {
  weights_raw_.reserve(clf.dim());
  for (const fixed::Fixed& w : clf.weights_fixed()) {
    weights_raw_.push_back(w.raw());
  }
  // Validate the integer-overflow envelope once at snapshot time (the
  // same checks make_plan applies per score call).
  simd::make_plan(weights_raw_.data(), weights_raw_.size(), fmt_, mode_,
                  acc_);
}

std::int64_t BatchScorer::quantize(double v) const {
  LDAFP_CHECK(!std::isnan(v), "cannot quantize NaN");
  // Mirrors FixedFormat::quantize_saturate with the constants hoisted
  // out of the per-element path.  v * 2^F is exact for in-range v (a
  // power-of-two scale only shifts the exponent), so the rounding step
  // sees the identical double ldexp would produce.
  if (v <= q_min_) return raw_min_;
  if (v >= q_max_) return raw_max_;
  const std::int64_t raw = fixed::round_real_to_int(v * q_scale_, mode_);
  if (raw < raw_min_) return raw_min_;
  if (raw > raw_max_) return raw_max_;
  return raw;
}

void BatchScorer::pack_into(PackedBatch& out, const linalg::Vector* xs,
                            std::size_t n) const {
  constexpr std::size_t kLane = PackedBatch::kLane;
  if (out.rows == 0) {
    // Latch the layout on first pack; a cleared batch keeps its word
    // capacity but re-latches.
    out.dim = dim();
    out.words.clear();
  } else {
    LDAFP_CHECK(out.dim == dim(),
                "pack_into: batch already packed at a different dim");
  }
  const std::size_t m_count = dim();
  out.words.reserve(((out.rows + n + kLane - 1) / kLane) * m_count * kLane);
  for (std::size_t r = 0; r < n; ++r) {
    LDAFP_CHECK(xs[r].size() == m_count, "batch scorer dimension mismatch");
    const std::size_t row = out.rows + r;
    if (row % kLane == 0) {
      // New zero-padded tile; padding lanes stay zero (harmless words
      // that the kernels may read but whose results are never used).
      out.words.resize(out.words.size() + m_count * kLane, 0);
    }
    std::int64_t* tile =
        out.words.data() + (row / kLane) * m_count * kLane;
    const std::size_t lane = row % kLane;
    for (std::size_t m = 0; m < m_count; ++m) {
      tile[m * kLane + lane] = quantize(xs[r][m]);
    }
  }
  out.rows += n;
}

PackedBatch BatchScorer::pack(const std::vector<linalg::Vector>& xs) const {
  PackedBatch batch;
  pack_into(batch, xs.data(), xs.size());
  return batch;
}

void BatchScorer::score(const PackedBatch& batch, ScoreResult* out) const {
  if (batch.rows == 0) return;
  LDAFP_CHECK(batch.dim == dim(), "batch scorer dimension mismatch");
  constexpr std::size_t kLane = PackedBatch::kLane;
  const simd::DotPlan plan =
      simd::make_plan(weights_raw_.data(), dim(), fmt_, mode_, acc_);
  std::int64_t y[kLane];
  for (std::size_t t = 0; t < batch.tiles(); ++t) {
    const std::size_t base = t * kLane;
    const std::size_t lanes = std::min(kLane, batch.rows - base);
    simd::score_tile(plan, batch.tile(t), y, lanes);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      out[base + lane].projection_raw = y[lane];
      out[base + lane].label = y[lane] >= threshold_raw_
                                   ? core::Label::kClassA
                                   : core::Label::kClassB;
    }
  }
}

std::vector<ScoreResult> BatchScorer::score(
    const std::vector<linalg::Vector>& xs) const {
  const PackedBatch batch = pack(xs);
  std::vector<ScoreResult> out(batch.rows);
  score(batch, out.data());
  return out;
}

std::vector<core::Label> BatchScorer::classify(
    const std::vector<linalg::Vector>& xs) const {
  std::vector<core::Label> labels;
  labels.reserve(xs.size());
  for (const ScoreResult& r : score(xs)) labels.push_back(r.label);
  return labels;
}

}  // namespace ldafp::runtime
