#include "runtime/batch_scorer.h"

#include "fixed/value.h"
#include "support/error.h"

namespace ldafp::runtime {

BatchScorer::BatchScorer(const core::FixedClassifier& clf)
    : fmt_(clf.format()),
      wide_fmt_(clf.format().integer_bits(), 2 * clf.format().frac_bits()),
      mode_(clf.rounding()),
      acc_(clf.accumulator()),
      threshold_raw_(clf.threshold_fixed().raw()) {
  weights_raw_.reserve(clf.dim());
  for (const fixed::Fixed& w : clf.weights_fixed()) {
    weights_raw_.push_back(w.raw());
  }
}

void BatchScorer::pack_into(PackedBatch& out, const linalg::Vector* xs,
                            std::size_t n) const {
  out.dim = dim();
  out.words.reserve(out.words.size() + n * dim());
  for (std::size_t r = 0; r < n; ++r) {
    LDAFP_CHECK(xs[r].size() == dim(), "batch scorer dimension mismatch");
    for (std::size_t m = 0; m < dim(); ++m) {
      out.words.push_back(fmt_.quantize_saturate(xs[r][m], mode_));
    }
  }
  out.rows += n;
}

PackedBatch BatchScorer::pack(const std::vector<linalg::Vector>& xs) const {
  PackedBatch batch;
  pack_into(batch, xs.data(), xs.size());
  return batch;
}

void BatchScorer::score(const PackedBatch& batch, ScoreResult* out) const {
  LDAFP_CHECK(batch.dim == dim(), "batch scorer dimension mismatch");
  const std::size_t m_count = dim();
  const std::int64_t* w = weights_raw_.data();
  for (std::size_t r = 0; r < batch.rows; ++r) {
    const std::int64_t* x = batch.row(r);
    std::int64_t y_raw;
    if (acc_ == fixed::AccumulatorMode::kWide) {
      // Mirrors fixed::dot_wide: exact products at scale 2^-2F, wrapping
      // accumulation in the K.2F register, one final rounding to QK.F.
      std::int64_t acc = 0;
      for (std::size_t m = 0; m < m_count; ++m) {
        acc = wide_fmt_.wrap_raw(acc + w[m] * x[m]);
      }
      y_raw = fmt_.wrap_raw(
          fixed::Fixed::narrow_raw(acc, fmt_.frac_bits(), mode_));
    } else {
      // Mirrors fixed::dot_narrow: every product rounded to QK.F and
      // wrapped, accumulator wraps in QK.F.
      std::int64_t acc = 0;
      for (std::size_t m = 0; m < m_count; ++m) {
        const std::int64_t prod = fmt_.wrap_raw(
            fixed::Fixed::narrow_raw(w[m] * x[m], fmt_.frac_bits(), mode_));
        acc = fmt_.wrap_raw(acc + prod);
      }
      y_raw = acc;
    }
    out[r].projection_raw = y_raw;
    out[r].label = y_raw >= threshold_raw_ ? core::Label::kClassA
                                           : core::Label::kClassB;
  }
}

std::vector<ScoreResult> BatchScorer::score(
    const std::vector<linalg::Vector>& xs) const {
  const PackedBatch batch = pack(xs);
  std::vector<ScoreResult> out(batch.rows);
  score(batch, out.data());
  return out;
}

std::vector<core::Label> BatchScorer::classify(
    const std::vector<linalg::Vector>& xs) const {
  std::vector<core::Label> labels;
  labels.reserve(xs.size());
  for (const ScoreResult& r : score(xs)) labels.push_back(r.label);
  return labels;
}

}  // namespace ldafp::runtime
