// Batched evaluation of the W-bit MAC datapath.
//
// A BatchScorer snapshots a trained core::FixedClassifier into raw
// integer form once — weight words, threshold word, format constants —
// then scores whole batches of feature vectors over a contiguous packed
// buffer.  The arithmetic replays fixed::dot_datapath step for step
// (same product narrowing, same wrapping accumulator, same final
// rounding), so every label and projection is bit-identical to calling
// FixedClassifier::classify sample by sample; the batch path only
// removes the per-call allocations and per-element format re-checks.
// tests/runtime/batch_scorer_test.cpp holds the cross-check.
//
// Const methods are thread-safe: a scorer is immutable after
// construction, which is what lets the serving engine share one
// snapshot across its worker pool without locks.
#pragma once

#include <cstdint>
#include <vector>

#include "core/classifier.h"
#include "fixed/dot.h"
#include "fixed/format.h"
#include "linalg/vector.h"

namespace ldafp::runtime {

/// Feature vectors quantized into one contiguous row-major buffer of
/// raw QK.F words.  Reused across scoring calls to keep the hot path
/// allocation-free once the buffer has grown to the working batch size.
struct PackedBatch {
  std::size_t rows = 0;
  std::size_t dim = 0;
  std::vector<std::int64_t> words;  ///< rows * dim raw words, row-major

  const std::int64_t* row(std::size_t r) const { return words.data() + r * dim; }
  void clear() { rows = 0; words.clear(); }
};

/// One scored sample: the decision plus the W-bit projection word the
/// comparator saw (exact datapath bits, useful for margin/telemetry).
struct ScoreResult {
  core::Label label = core::Label::kClassA;
  std::int64_t projection_raw = 0;
};

/// Immutable batched evaluator of one fixed-point classifier.
class BatchScorer {
 public:
  /// Snapshots the classifier's quantized words (no re-quantization —
  /// the exact bits are copied via FixedClassifier::weights_fixed).
  explicit BatchScorer(const core::FixedClassifier& clf);

  std::size_t dim() const { return weights_raw_.size(); }
  const fixed::FixedFormat& format() const { return fmt_; }
  fixed::AccumulatorMode accumulator() const { return acc_; }

  /// Quantizes `n` feature vectors (saturating, as the classifier's
  /// preprocessing prescribes) into `out`, appending after out.rows.
  /// Throws InvalidArgumentError on a dimension mismatch.
  void pack_into(PackedBatch& out, const linalg::Vector* xs,
                 std::size_t n) const;

  /// Fresh packed batch from a sample list.
  PackedBatch pack(const std::vector<linalg::Vector>& xs) const;

  /// Scores every row of the batch into `out[0..rows)`.  `out` must
  /// have room for batch.rows results.
  void score(const PackedBatch& batch, ScoreResult* out) const;

  /// Convenience: pack + score, returning one result per sample.
  std::vector<ScoreResult> score(const std::vector<linalg::Vector>& xs) const;

  /// Convenience: labels only (bit-identical to
  /// FixedClassifier::classify per sample).
  std::vector<core::Label> classify(const std::vector<linalg::Vector>& xs) const;

 private:
  fixed::FixedFormat fmt_;
  fixed::FixedFormat wide_fmt_;  ///< K integer + 2F fractional bits
  fixed::RoundingMode mode_;
  fixed::AccumulatorMode acc_;
  std::vector<std::int64_t> weights_raw_;
  std::int64_t threshold_raw_ = 0;
};

}  // namespace ldafp::runtime
