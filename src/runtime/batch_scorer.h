// Batched evaluation of the W-bit MAC datapath.
//
// A BatchScorer snapshots a trained core::FixedClassifier into raw
// integer form once — weight words, threshold word, format constants —
// then scores whole batches of feature vectors over a contiguous packed
// buffer using the vectorized kernels in fixed/simd.h (AVX2/NEON with a
// runtime-dispatched scalar fallback).  The arithmetic replays
// fixed::dot_datapath step for step (same product narrowing, same
// wrapping accumulator, same final rounding), so every label and
// projection is bit-identical to calling FixedClassifier::classify
// sample by sample no matter which kernel backend is active; the batch
// path only removes the per-call allocations, per-element format
// re-checks, and the scalar one-sample-at-a-time MAC.
// tests/runtime/batch_scorer_test.cpp and
// tests/runtime/simd_identity_test.cpp hold the cross-checks.
//
// Const methods are thread-safe: a scorer is immutable after
// construction, which is what lets the serving engine share one
// snapshot across its worker pool without locks.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/classifier.h"
#include "fixed/datapath.h"
#include "fixed/dot.h"
#include "fixed/format.h"
#include "fixed/simd.h"
#include "linalg/vector.h"

namespace ldafp::runtime {

/// Feature vectors quantized into one contiguous AoSoA buffer of raw
/// QK.F words: tiles of fixed::simd::kLane samples, feature-major
/// within a tile, so one vector load reads the same feature of kLane
/// consecutive samples.  Partial trailing tiles are zero-padded.
/// Reused across scoring calls to keep the hot path allocation-free
/// once the buffer has grown to the working batch size.
struct PackedBatch {
  static constexpr std::size_t kLane = fixed::simd::kLane;

  std::size_t rows = 0;
  std::size_t dim = 0;  ///< latched from the first pack_into
  std::vector<std::int64_t> words;  ///< tiles() * dim * kLane raw words

  std::size_t tiles() const { return (rows + kLane - 1) / kLane; }
  /// Start of tile t: dim * kLane words, feature-major.
  const std::int64_t* tile(std::size_t t) const {
    return words.data() + t * dim * kLane;
  }
  /// Raw word of sample r, feature m (test/debug accessor).
  std::int64_t word(std::size_t r, std::size_t m) const {
    return words[((r / kLane) * dim + m) * kLane + (r % kLane)];
  }
  void clear() {
    rows = 0;
    dim = 0;
    words.clear();
  }

  /// Appends every row of `src` (already-quantized words — pure lane
  /// restriping, no re-quantization), latching dim from `src` when this
  /// batch is empty.  Throws InvalidArgumentError on a dim mismatch.
  /// The engine uses this to merge per-request batches packed at ingest
  /// into one contiguous scoring batch.
  void append_packed(const PackedBatch& src);
};

/// One scored sample: the decision plus the W-bit projection word the
/// comparator saw (exact datapath bits, useful for margin/telemetry).
struct ScoreResult {
  core::Label label = core::Label::kClassA;
  std::int64_t projection_raw = 0;
};

/// Immutable batched evaluator of one on-chip classifier.
class BatchScorer {
 public:
  /// Snapshots the classifier's quantized words (no re-quantization —
  /// the exact bits are copied via FixedClassifier::weight_words) and
  /// shares its datapath.  Two's-complement classifiers score through
  /// the vector kernels; other backends (LNS) score through the
  /// datapath's scalar dot, still batched over the packed buffer.
  /// Throws InvalidArgumentError when a two's-complement format exceeds
  /// the scoring datapath's integer envelope (W <= 31, K + 2F <= 62).
  explicit BatchScorer(const core::FixedClassifier& clf);

  std::size_t dim() const { return weights_raw_.size(); }
  const fixed::FixedFormat& format() const { return fmt_; }
  fixed::AccumulatorMode accumulator() const { return acc_; }
  /// The arithmetic backend this scorer replays.
  fixed::DatapathKind datapath_kind() const { return datapath_->kind(); }

  /// Quantizes `n` feature vectors (saturating, as the classifier's
  /// preprocessing prescribes) into `out`, appending after out.rows.
  /// The batch's dim is latched on the first pack; appending from a
  /// scorer of a different dim throws InvalidArgumentError, as does a
  /// per-sample dimension mismatch.
  void pack_into(PackedBatch& out, const linalg::Vector* xs,
                 std::size_t n) const;

  /// Fresh packed batch from a sample list.
  PackedBatch pack(const std::vector<linalg::Vector>& xs) const;

  /// Zero-copy ingest: quantizes `n` samples straight from a
  /// little-endian f64 wire payload (n * dim() values, row-major — the
  /// protocol's request feature layout) into `out`, appending after
  /// out.rows.  Bit-identical to decoding the payload into doubles and
  /// calling pack_into (same cached quantizer; reading the IEEE-754 bit
  /// pattern is exact), asserted by the sweep in
  /// tests/runtime/batch_scorer_test.cpp.  Returns false — leaving
  /// `out` with any rows packed before the offender, callers should
  /// clear() — when a value is NaN, so hostile payloads surface as a
  /// request error at ingest instead of a crash in a scoring worker.
  bool pack_from_f64_le(PackedBatch& out, const std::uint8_t* payload,
                        std::size_t n) const;

  /// Scores every row of the batch into `out[0..rows)`.  `out` must
  /// have room for batch.rows results.
  void score(const PackedBatch& batch, ScoreResult* out) const;

  /// Convenience: pack + score, returning one result per sample.
  std::vector<ScoreResult> score(const std::vector<linalg::Vector>& xs) const;

  /// Convenience: labels only (bit-identical to
  /// FixedClassifier::classify per sample).
  std::vector<core::Label> classify(const std::vector<linalg::Vector>& xs) const;

 private:
  /// The datapath's quantizer.  On the two's-complement backend this is
  /// fmt_.quantize_saturate(v, mode_) with the scale and limits cached
  /// (bit-identical: scaling by an exact power of two commutes with the
  /// rounding step; asserted in tests/runtime/batch_scorer_test.cpp);
  /// other backends delegate to Datapath::quantize.
  std::int64_t quantize(double v) const;

  std::shared_ptr<const fixed::Datapath> datapath_;
  bool twos_complement_ = true;  ///< cached kind check for the hot path
  fixed::FixedFormat fmt_;
  fixed::FixedFormat wide_fmt_;  ///< K integer + 2F fractional bits
  fixed::RoundingMode mode_;
  fixed::AccumulatorMode acc_;
  std::vector<std::int64_t> weights_raw_;
  std::int64_t threshold_raw_ = 0;
  // Cached quantizer constants.
  double q_scale_ = 1.0;  ///< 2^F, exact
  double q_min_ = 0.0;    ///< fmt_.min_value()
  double q_max_ = 0.0;    ///< fmt_.max_value()
  std::int64_t raw_min_ = 0;
  std::int64_t raw_max_ = 0;
};

}  // namespace ldafp::runtime
