#include "runtime/completion.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include "support/error.h"

namespace ldafp::runtime {

std::atomic<std::int64_t> RequestBlock::live_{0};

void RequestBlock::reset() {
  next = nullptr;
  model.reset();
  batch.clear();      // keeps word capacity
  results.clear();    // keeps result capacity
  completions.reset();
  promise.reset();
  conn_id = 0;
}

CompletionQueue::CompletionQueue() {
  event_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (event_fd_ < 0) throw IoError("eventfd() failed for completion queue");
}

CompletionQueue::~CompletionQueue() {
  delete_list(head_.exchange(nullptr, std::memory_order_acquire));
  ::close(event_fd_);
}

void CompletionQueue::push(RequestBlock* block) {
  pushed_.fetch_add(1, std::memory_order_relaxed);
  if (abandoned_.load(std::memory_order_acquire)) {
    delete block;
    return;
  }
  // The old head is latched in a local: once the CAS lands the block
  // belongs to the consumer, which rewrites `next` while reversing the
  // drained list — reading `block->next` back after publication would
  // race that reversal.
  RequestBlock* old_head = head_.load(std::memory_order_relaxed);
  do {
    block->next = old_head;
  } while (!head_.compare_exchange_weak(old_head, block,
                                        std::memory_order_release,
                                        std::memory_order_relaxed));
  // abandon() may have swept the stack between the check above and the
  // CAS landing; re-check and sweep again so the block cannot strand.
  if (abandoned_.load(std::memory_order_acquire)) {
    delete_list(head_.exchange(nullptr, std::memory_order_acquire));
    return;
  }
  if (old_head == nullptr) {
    // Empty→non-empty transition: ring the doorbell once per burst.
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(event_fd_, &one, sizeof(one));
  }
}

RequestBlock* CompletionQueue::drain() {
  RequestBlock* head = head_.exchange(nullptr, std::memory_order_acquire);
  // The stack pops LIFO; reverse in place so the consumer sees pushes
  // in FIFO order (head-of-line response ordering relies on nothing
  // here — conn matching is by block — but FIFO keeps latency fair).
  RequestBlock* fifo = nullptr;
  while (head != nullptr) {
    RequestBlock* next = head->next;
    head->next = fifo;
    fifo = head;
    head = next;
  }
  return fifo;
}

void CompletionQueue::consume_signal() {
  std::uint64_t drained = 0;
  [[maybe_unused]] ssize_t n =
      ::read(event_fd_, &drained, sizeof(drained));
}

void CompletionQueue::abandon() {
  abandoned_.store(true, std::memory_order_release);
  delete_list(head_.exchange(nullptr, std::memory_order_acquire));
}

void CompletionQueue::delete_list(RequestBlock* head) {
  while (head != nullptr) {
    RequestBlock* next = head->next;
    delete head;
    head = next;
  }
}

RequestPool::~RequestPool() {
  while (free_ != nullptr) {
    RequestBlock* next = free_->next;
    delete free_;
    free_ = next;
  }
}

RequestBlock* RequestPool::acquire() {
  if (free_ == nullptr) return new RequestBlock();
  RequestBlock* block = free_;
  free_ = block->next;
  --free_count_;
  block->next = nullptr;
  return block;
}

void RequestPool::recycle(RequestBlock* block) {
  if (block == nullptr) return;
  if (free_count_ >= max_free_) {
    delete block;
    return;
  }
  block->reset();
  block->next = free_;
  free_ = block;
  ++free_count_;
}

}  // namespace ldafp::runtime
