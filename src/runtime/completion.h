// Completion-driven request lifecycle: pooled request records, an MPSC
// completion queue with an eventfd doorbell, and a per-consumer
// freelist (DESIGN.md §15).
//
// The future-based submit path allocates a promise/future pair per
// request and forces the consumer to *poll* readiness — the epoll serve
// loops used to spin at zero timeout whenever any future was
// outstanding.  This module inverts the flow: a request travels as one
// heap RequestBlock for its whole life (ingest → engine queue → scoring
// → completion queue → response encode → freelist), and the engine
// *pushes* finished blocks onto the submitter's CompletionQueue, ringing
// its eventfd so an epoll loop wakes exactly when replies exist.
//
// Ownership protocol (who may touch a block):
//   1. The producer fills model/batch and calls
//      InferenceEngine::submit(block).  On kAccepted the engine owns the
//      block; on any rejection ownership never left the caller.
//   2. A worker scores it and hands it to exactly one of: the
//      completion queue (block->completions), the adapter promise
//      (block->promise), or — when the queue is already gone — delete.
//   3. The queue consumer drains FIFO batches and, after encoding the
//      reply, recycles the block through its single-threaded
//      RequestPool.
// A block is therefore owned by exactly one side at every instant, and
// every accepted block completes exactly once
// (tests/runtime/completion_test.cpp holds this under TSan across
// shutdown-drain, hot-swap, and queue-full paths).
//
// Lifetime of the queue itself: consumers hold it by shared_ptr and
// blocks reference it weakly, so an engine still draining after the
// serving loop tore down cannot dangle — a failed weak lock (or a push
// into an abandon()ed queue) deletes the block instead of delivering it.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "runtime/batch_scorer.h"
#include "runtime/registry.h"
#include "support/timer.h"

namespace ldafp::runtime {

class CompletionQueue;

/// One request's whole lifecycle in a single pooled record.  The
/// intrusive `next` link threads it through the engine queue, the
/// completion stack, and the freelist without any per-hop allocation.
struct RequestBlock {
  RequestBlock() { live_.fetch_add(1, std::memory_order_relaxed); }
  ~RequestBlock() { live_.fetch_sub(1, std::memory_order_relaxed); }

  RequestBlock(const RequestBlock&) = delete;
  RequestBlock& operator=(const RequestBlock&) = delete;

  /// Intrusive link; meaning depends on which list currently owns the
  /// block (completion stack or freelist).  Null while in flight.
  RequestBlock* next = nullptr;

  /// Snapshot the request was admitted against (grouping key; keeps the
  /// model alive through scoring).
  ModelHandle model;
  /// Quantized samples, packed at ingest (pack_from_f64_le /
  /// pack_into).  Capacity survives recycling.
  PackedBatch batch;
  /// One result per batch row, filled by the scoring worker.
  std::vector<ScoreResult> results;

  /// Delivery target: the submitter's completion queue.  Empty on the
  /// adapter path (then `promise` is set instead).
  std::weak_ptr<CompletionQueue> completions;
  /// Future-based adapter delivery; null on the completion-queue path,
  /// so serve-path blocks never pay the promise allocation.
  std::unique_ptr<std::promise<std::vector<ScoreResult>>> promise;

  /// Consumer-side routing cookie (the serving loop maps it back to the
  /// connection that submitted the block; 0 = unrouted).
  std::uint64_t conn_id = 0;
  /// Started at admission; measures queue wait + execution.
  support::WallTimer submitted;

  /// Resets request state for freelist reuse, keeping buffer capacity.
  void reset();

  /// Live block count (leak canary for tests).
  static std::int64_t live() {
    return live_.load(std::memory_order_relaxed);
  }

 private:
  static std::atomic<std::int64_t> live_;
};

/// MPSC queue of finished RequestBlocks with an eventfd doorbell.
///
/// Producers (engine workers) push with a lock-free Treiber stack and
/// ring `event_fd()` only on the empty→non-empty transition, so a
/// worker delivering a whole batch costs one syscall.  The single
/// consumer registers `event_fd()` in its epoll set, and on wake calls
/// consume_signal() then drain(); the eventfd is level-triggered from
/// epoll's point of view (counter > 0 keeps it readable), so a push
/// racing the drain simply wakes the consumer again.
class CompletionQueue {
 public:
  /// Throws IoError when the eventfd cannot be created.
  CompletionQueue();
  /// Deletes any undrained blocks (teardown path) and closes the fd.
  ~CompletionQueue();

  CompletionQueue(const CompletionQueue&) = delete;
  CompletionQueue& operator=(const CompletionQueue&) = delete;

  /// The doorbell fd (owned; register EPOLLIN on it, never close it).
  int event_fd() const { return event_fd_; }

  /// Delivers one finished block (thread-safe, lock-free).  After
  /// abandon() the block is deleted instead — the consumer is gone.
  void push(RequestBlock* block);

  /// Consumer only: detaches the whole pending list and returns it in
  /// FIFO order (walk via block->next; null-terminated).
  RequestBlock* drain();

  /// Consumer only: clears the doorbell (call on EPOLLIN, before
  /// drain()).
  void consume_signal();

  /// Marks the consumer as gone: concurrent and future pushes delete
  /// their block, and anything already queued is deleted here.  Called
  /// by the serving loop at teardown, before it drops its reference.
  void abandon();

  /// Total blocks ever pushed (includes abandoned ones; telemetry/test
  /// hook).
  std::uint64_t pushed() const {
    return pushed_.load(std::memory_order_relaxed);
  }

 private:
  void delete_list(RequestBlock* head);

  int event_fd_ = -1;
  std::atomic<RequestBlock*> head_{nullptr};
  std::atomic<bool> abandoned_{false};
  std::atomic<std::uint64_t> pushed_{0};
};

/// Single-threaded freelist of RequestBlocks.  One pool lives in each
/// serving event loop (and in each test fixture); because a loop's
/// connections are owned by exactly one thread, acquire/recycle need no
/// locking.  Bounded so a burst cannot pin memory forever.
class RequestPool {
 public:
  explicit RequestPool(std::size_t max_free = 4096) : max_free_(max_free) {}
  ~RequestPool();

  RequestPool(const RequestPool&) = delete;
  RequestPool& operator=(const RequestPool&) = delete;

  /// A reset block, recycled when available, freshly allocated when not.
  RequestBlock* acquire();

  /// Returns a block to the freelist (deleted when the pool is full).
  void recycle(RequestBlock* block);

  std::size_t free_count() const { return free_count_; }

 private:
  RequestBlock* free_ = nullptr;
  std::size_t free_count_ = 0;
  std::size_t max_free_;
};

}  // namespace ldafp::runtime
