#include "runtime/engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "support/error.h"

namespace ldafp::runtime {

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kShuttingDown: return "shutting-down";
    case SubmitStatus::kInvalidRequest: return "invalid-request";
  }
  return "?";
}

Status EngineOptions::validate() const {
  if (workers < 1) {
    return Status::invalid("engine needs at least one worker");
  }
  if (queue_capacity < 1) {
    return Status::invalid("queue_capacity must be positive");
  }
  if (max_batch < 1) {
    return Status::invalid("max_batch must be positive");
  }
  if (!(max_wait_seconds >= 0.0)) {
    return Status::invalid("max_wait_seconds must be non-negative");
  }
  return Status();
}

InferenceEngine::InferenceEngine(EngineOptions options)
    : options_(options),
      tracer_(obs::tracer_of(options.sink)),
      stats_(obs::metrics_of(options.sink)),
      queue_(options.queue_capacity),
      paused_(options.start_paused) {
  throw_if_error(options_.validate());
  stats_.queue_capacity.set(static_cast<double>(options_.queue_capacity));
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceEngine::~InferenceEngine() { shutdown(); }

SubmitStatus InferenceEngine::submit(RequestBlock* block) {
  if (block == nullptr || block->model == nullptr ||
      block->batch.rows == 0 ||
      block->batch.dim != block->model->classifier.dim()) {
    return SubmitStatus::kInvalidRequest;
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    return SubmitStatus::kShuttingDown;
  }
  block->submitted = support::WallTimer();
  RequestBlock* item = block;
  switch (queue_.try_push(std::move(item))) {
    case PushResult::kOk:
      stats_.requests_submitted.increment();
      // The queue's depth and high-water mark are mirrored into the
      // stats block at admission so exports are self-contained.
      stats_.queue_depth.set(static_cast<double>(queue_.size()));
      stats_.queue_depth_high_water.set_max(
          static_cast<double>(queue_.high_water_mark()));
      return SubmitStatus::kAccepted;
    case PushResult::kFull:
      stats_.requests_rejected.increment();
      stats_.queue_depth.set(static_cast<double>(queue_.size()));
      return SubmitStatus::kQueueFull;
    case PushResult::kClosed:
      return SubmitStatus::kShuttingDown;
  }
  return SubmitStatus::kShuttingDown;
}

Submission InferenceEngine::submit(ModelHandle model,
                                   std::vector<linalg::Vector> samples) {
  Submission submission;
  if (model == nullptr || samples.empty()) {
    submission.status = SubmitStatus::kInvalidRequest;
    return submission;
  }
  const std::size_t dim = model->classifier.dim();
  for (const linalg::Vector& x : samples) {
    if (x.size() != dim) {
      submission.status = SubmitStatus::kInvalidRequest;
      return submission;
    }
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    submission.status = SubmitStatus::kShuttingDown;
    return submission;
  }

  auto block = std::make_unique<RequestBlock>();
  block->model = std::move(model);
  block->model->scorer.pack_into(block->batch, samples.data(),
                                 samples.size());
  block->promise =
      std::make_unique<std::promise<std::vector<ScoreResult>>>();
  // The future must be taken before admission: a worker may fulfill
  // (and delete) the block immediately.
  submission.result = block->promise->get_future();

  submission.status = submit(block.get());
  if (submission.status == SubmitStatus::kAccepted) {
    block.release();  // the engine owns it now
  } else {
    submission.result = {};
  }
  return submission;
}

Submission InferenceEngine::submit(ModelHandle model, linalg::Vector sample) {
  std::vector<linalg::Vector> samples;
  samples.push_back(std::move(sample));
  return submit(std::move(model), std::move(samples));
}

void InferenceEngine::pause() {
  std::lock_guard lock(pause_mu_);
  paused_ = true;
}

void InferenceEngine::resume() {
  {
    std::lock_guard lock(pause_mu_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void InferenceEngine::shutdown() {
  std::call_once(shutdown_once_, [this] {
    accepting_.store(false, std::memory_order_release);
    // Closing the queue flips pushes to kClosed and lets the workers
    // drain the backlog; parked workers must wake up to drain it.
    queue_.close();
    resume();
    for (std::thread& worker : workers_) worker.join();
  });
}

void InferenceEngine::worker_loop() {
  using clock = std::chrono::steady_clock;
  WorkerScratch scratch;
  std::vector<RequestBlock*>& batch = scratch.batch;
  while (true) {
    {
      std::unique_lock lock(pause_mu_);
      pause_cv_.wait(lock, [this] { return !paused_ || queue_.closed(); });
    }
    batch.clear();

    // Open a micro-batch: block for the first request, then linger for
    // more while the batch holds fewer than max_batch samples.  The
    // linger budget adapts to queue depth (shallow queue → short wait,
    // so an idle engine adds almost no latency; deep queue → full
    // budget, though a deep queue fills the batch without waiting).
    // Requests ride whole, so one oversized request still scores in a
    // single pass.
    RequestBlock* first = nullptr;
    if (!queue_.pop(first)) return;  // closed and drained
    std::size_t sample_count = first->batch.rows;
    batch.push_back(first);
    const double depth_frac = std::min(
        1.0, static_cast<double>(queue_.size() + 1) /
                 static_cast<double>(options_.max_batch));
    const auto linger = std::chrono::nanoseconds(static_cast<long long>(
        options_.max_wait_seconds * depth_frac * 1e9));
    const auto deadline = clock::now() + linger;
    while (sample_count < options_.max_batch) {
      RequestBlock* next = nullptr;
      if (queue_.pop_wait_until(next, deadline) != PopResult::kItem) break;
      sample_count += next->batch.rows;
      batch.push_back(next);
    }
    stats_.queue_depth.set(static_cast<double>(queue_.size()));
    stats_.batch_occupancy.record(
        static_cast<double>(sample_count) /
        static_cast<double>(options_.max_batch));

    // Group by model snapshot (pointer identity — a hot-swap installs a
    // new snapshot, so mixed traffic around a swap splits cleanly) in
    // one stable pass: batches hold at most a handful of distinct
    // snapshots, so the key scan is a short linear probe, not the old
    // quadratic grouped[] sweep.
    scratch.group_keys.clear();
    for (RequestBlock* block : batch) {
      const ModelSnapshot* key = block->model.get();
      std::size_t g = 0;
      while (g < scratch.group_keys.size() &&
             scratch.group_keys[g] != key) {
        ++g;
      }
      if (g == scratch.group_keys.size()) {
        scratch.group_keys.push_back(key);
        if (scratch.groups.size() < scratch.group_keys.size()) {
          scratch.groups.emplace_back();
        }
        scratch.groups[g].clear();
      }
      scratch.groups[g].push_back(block);
    }
    for (std::size_t g = 0; g < scratch.group_keys.size(); ++g) {
      score_group(*scratch.groups[g].front()->model, scratch.groups[g],
                  scratch);
    }
  }
}

void InferenceEngine::score_group(const ModelSnapshot& model,
                                  std::vector<RequestBlock*>& group,
                                  WorkerScratch& scratch) {
  obs::ScopedSpan span(tracer_, "engine.batch");
  for (const RequestBlock* block : group) {
    stats_.queue_wait.record(block->submitted.seconds());
  }

  support::WallTimer exec;
  std::size_t rows = 0;
  if (group.size() == 1) {
    // Single-request group: score straight into the block's pooled
    // result buffer — no merge, no copy.
    RequestBlock* block = group.front();
    block->results.resize(block->batch.rows);
    model.scorer.score(block->batch, block->results.data());
    rows = block->batch.rows;
  } else {
    // Multi-request group: restripe the per-request tiles into one
    // contiguous batch (word moves, no re-quantization), score once,
    // then copy each request's span back into its pooled reply.
    scratch.merged.clear();
    for (const RequestBlock* block : group) {
      scratch.merged.append_packed(block->batch);
    }
    scratch.scored.resize(scratch.merged.rows);
    model.scorer.score(scratch.merged, scratch.scored.data());
    std::size_t offset = 0;
    for (RequestBlock* block : group) {
      const std::size_t n = block->batch.rows;
      block->results.assign(scratch.scored.begin() + offset,
                            scratch.scored.begin() + offset + n);
      offset += n;
    }
    rows = scratch.merged.rows;
  }
  stats_.batch_execute.record(exec.seconds());

  // Counters settle before delivery: a caller woken by its future (or
  // completion) must see this batch already accounted for.
  stats_.batches_scored.increment();
  stats_.samples_scored.add(rows);
  stats_.requests_completed.add(group.size());
  for (RequestBlock* block : group) deliver(block);
  group.clear();
}

void InferenceEngine::deliver(RequestBlock* block) {
  stats_.request_total.record(block->submitted.seconds());
  if (block->promise != nullptr) {
    // Adapter path: move the promise and results out, free the block,
    // then resolve — the future's shared state outlives the block.
    auto promise = std::move(block->promise);
    std::vector<ScoreResult> results = std::move(block->results);
    delete block;
    promise->set_value(std::move(results));
    return;
  }
  if (std::shared_ptr<CompletionQueue> queue = block->completions.lock()) {
    queue->push(block);
    return;
  }
  // The consumer tore down while this block was in flight; nobody can
  // receive it.
  delete block;
}

}  // namespace ldafp::runtime
