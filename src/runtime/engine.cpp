#include "runtime/engine.h"

#include <chrono>
#include <utility>

#include "support/error.h"

namespace ldafp::runtime {

const char* to_string(SubmitStatus status) {
  switch (status) {
    case SubmitStatus::kAccepted: return "accepted";
    case SubmitStatus::kQueueFull: return "queue-full";
    case SubmitStatus::kShuttingDown: return "shutting-down";
    case SubmitStatus::kInvalidRequest: return "invalid-request";
  }
  return "?";
}

Status EngineOptions::validate() const {
  if (workers < 1) {
    return Status::invalid("engine needs at least one worker");
  }
  if (queue_capacity < 1) {
    return Status::invalid("queue_capacity must be positive");
  }
  if (max_batch < 1) {
    return Status::invalid("max_batch must be positive");
  }
  if (!(max_wait_seconds >= 0.0)) {
    return Status::invalid("max_wait_seconds must be non-negative");
  }
  return Status();
}

InferenceEngine::InferenceEngine(EngineOptions options)
    : options_(options),
      tracer_(obs::tracer_of(options.sink)),
      stats_(obs::metrics_of(options.sink)),
      queue_(options.queue_capacity),
      paused_(options.start_paused) {
  throw_if_error(options_.validate());
  stats_.queue_capacity.set(static_cast<double>(options_.queue_capacity));
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

InferenceEngine::~InferenceEngine() { shutdown(); }

Submission InferenceEngine::submit(ModelHandle model,
                                   std::vector<linalg::Vector> samples) {
  Submission submission;
  if (model == nullptr || samples.empty()) {
    submission.status = SubmitStatus::kInvalidRequest;
    return submission;
  }
  const std::size_t dim = model->classifier.dim();
  for (const linalg::Vector& x : samples) {
    if (x.size() != dim) {
      submission.status = SubmitStatus::kInvalidRequest;
      return submission;
    }
  }
  if (!accepting_.load(std::memory_order_acquire)) {
    submission.status = SubmitStatus::kShuttingDown;
    return submission;
  }

  Request request;
  request.model = std::move(model);
  request.samples = std::move(samples);
  // The future must be taken before the request is moved into the queue:
  // a worker may fulfill (and destroy) the promise immediately.
  submission.result = request.promise.get_future();

  switch (queue_.try_push(std::move(request))) {
    case PushResult::kOk:
      submission.status = SubmitStatus::kAccepted;
      stats_.requests_submitted.increment();
      // The queue's depth and high-water mark are mirrored into the
      // stats block at admission so exports are self-contained.
      stats_.queue_depth.set(static_cast<double>(queue_.size()));
      stats_.queue_depth_high_water.set_max(
          static_cast<double>(queue_.high_water_mark()));
      break;
    case PushResult::kFull:
      submission.status = SubmitStatus::kQueueFull;
      stats_.requests_rejected.increment();
      stats_.queue_depth.set(static_cast<double>(queue_.size()));
      submission.result = {};
      break;
    case PushResult::kClosed:
      submission.status = SubmitStatus::kShuttingDown;
      submission.result = {};
      break;
  }
  return submission;
}

Submission InferenceEngine::submit(ModelHandle model, linalg::Vector sample) {
  std::vector<linalg::Vector> samples;
  samples.push_back(std::move(sample));
  return submit(std::move(model), std::move(samples));
}

void InferenceEngine::pause() {
  std::lock_guard lock(pause_mu_);
  paused_ = true;
}

void InferenceEngine::resume() {
  {
    std::lock_guard lock(pause_mu_);
    paused_ = false;
  }
  pause_cv_.notify_all();
}

void InferenceEngine::shutdown() {
  std::call_once(shutdown_once_, [this] {
    accepting_.store(false, std::memory_order_release);
    // Closing the queue flips pushes to kClosed and lets the workers
    // drain the backlog; parked workers must wake up to drain it.
    queue_.close();
    resume();
    for (std::thread& worker : workers_) worker.join();
  });
}

void InferenceEngine::worker_loop() {
  using clock = std::chrono::steady_clock;
  const auto linger = std::chrono::nanoseconds(
      static_cast<long long>(options_.max_wait_seconds * 1e9));
  std::vector<Request> batch;
  while (true) {
    {
      std::unique_lock lock(pause_mu_);
      pause_cv_.wait(lock, [this] { return !paused_ || queue_.closed(); });
    }
    batch.clear();

    // Open a micro-batch: block for the first request, then linger up to
    // max_wait for more while the batch holds fewer than max_batch
    // samples.  Requests ride whole, so one oversized request still
    // scores in a single pass.
    Request first;
    if (!queue_.pop(first)) return;  // closed and drained
    std::size_t sample_count = first.samples.size();
    batch.push_back(std::move(first));
    const auto deadline = clock::now() + linger;
    while (sample_count < options_.max_batch) {
      Request next;
      if (queue_.pop_wait_until(next, deadline) != PopResult::kItem) break;
      sample_count += next.samples.size();
      batch.push_back(std::move(next));
    }
    stats_.queue_depth.set(static_cast<double>(queue_.size()));

    // Group by model snapshot (pointer identity — a hot-swap installs a
    // new snapshot, so mixed traffic around a swap splits cleanly) and
    // score each group as one contiguous packed batch.
    std::vector<Request*> group;
    std::vector<bool> grouped(batch.size(), false);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (grouped[i]) continue;
      group.clear();
      for (std::size_t j = i; j < batch.size(); ++j) {
        if (!grouped[j] && batch[j].model == batch[i].model) {
          grouped[j] = true;
          group.push_back(&batch[j]);
        }
      }
      score_group(*batch[i].model, group);
    }
  }
}

void InferenceEngine::score_group(const ModelSnapshot& model,
                                  std::vector<Request*>& group) {
  obs::ScopedSpan span(tracer_, "engine.batch");
  for (const Request* request : group) {
    stats_.queue_wait.record(request->submitted.seconds());
  }

  support::WallTimer exec;
  PackedBatch packed;
  for (const Request* request : group) {
    model.scorer.pack_into(packed, request->samples.data(),
                           request->samples.size());
  }
  std::vector<ScoreResult> scored(packed.rows);
  model.scorer.score(packed, scored.data());
  stats_.batch_execute.record(exec.seconds());

  std::size_t offset = 0;
  for (Request* request : group) {
    const std::size_t n = request->samples.size();
    std::vector<ScoreResult> slice(scored.begin() + offset,
                                   scored.begin() + offset + n);
    offset += n;
    stats_.request_total.record(request->submitted.seconds());
    request->promise.set_value(std::move(slice));
  }
  stats_.batches_scored.increment();
  stats_.samples_scored.add(packed.rows);
  stats_.requests_completed.add(group.size());
}

}  // namespace ldafp::runtime
