// Multi-threaded batched inference engine.
//
// The serving pipeline is: submit() packs a request (model handle + one
// or more feature vectors + a promise) into a bounded MPMC queue; a
// fixed pool of workers pops micro-batches (up to max_batch samples,
// lingering up to max_wait for stragglers), groups them by model
// snapshot, scores each group through the model's BatchScorer in one
// contiguous pass, and fulfills the promises.  Results are bit-identical
// to calling FixedClassifier::classify per sample — batching changes
// throughput, never bits (tests/runtime/engine_test.cpp holds the
// cross-check under producer/worker concurrency).
//
// Overload behaviour is explicit: a full queue rejects the submission
// with SubmitStatus::kQueueFull instead of buffering without bound, and
// shutdown() closes admission, drains every in-flight request, then
// joins the workers — a drained engine never breaks a promise.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "linalg/vector.h"
#include "obs/sink.h"
#include "runtime/batch_scorer.h"
#include "runtime/queue.h"
#include "runtime/registry.h"
#include "runtime/stats.h"
#include "support/error.h"
#include "support/timer.h"

namespace ldafp::runtime {

/// Engine sizing and micro-batching policy.
struct EngineOptions {
  /// Worker threads in the scoring pool (>= 1).
  std::size_t workers = 4;
  /// Bounded request-queue capacity (requests, not samples).
  std::size_t queue_capacity = 1024;
  /// Micro-batch target: a worker scores at most this many samples per
  /// pass (requests are admitted whole, so a single oversized request
  /// still scores in one pass).
  std::size_t max_batch = 64;
  /// How long a worker lingers for more requests while its batch is
  /// short.  0 disables lingering (score whatever is queued).
  double max_wait_seconds = 500e-6;
  /// Start with workers parked; traffic is admitted (and backpressure
  /// applies) but nothing scores until resume().  Deterministic testing
  /// and warm-start hook.
  bool start_paused = false;

  /// Observability seam (may be null = self-contained).  When
  /// `sink->metrics` is set the engine binds its RuntimeStats handles
  /// into that registry, so "runtime.*" metrics export alongside the
  /// rest of the process; when `sink->tracer` is set each scored batch
  /// records an "engine.batch" span.  Scoring results are identical
  /// either way.
  obs::Sink* sink = nullptr;

  /// Checks the sizing knobs; called once by the engine constructor.
  Status validate() const;
};

/// Admission outcome of submit().
enum class SubmitStatus {
  kAccepted,
  kQueueFull,      ///< backpressure — shed or retry with backoff
  kShuttingDown,   ///< engine no longer admits work
  kInvalidRequest, ///< null model or empty/mismatched sample list
};

/// Short display name of a submit status.
const char* to_string(SubmitStatus status);

/// An admitted (or rejected) request: when status == kAccepted, `result`
/// resolves to one ScoreResult per submitted sample, in order.
struct Submission {
  SubmitStatus status = SubmitStatus::kInvalidRequest;
  std::future<std::vector<ScoreResult>> result;
};

/// Fixed-pool batched scoring engine over registry model handles.
class InferenceEngine {
 public:
  explicit InferenceEngine(EngineOptions options = {});

  /// Drains and joins (see shutdown()).
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Enqueues `samples` for scoring against `model`.  All samples of a
  /// request ride in one queue slot and resolve through one future.
  Submission submit(ModelHandle model, std::vector<linalg::Vector> samples);

  /// Single-sample convenience.
  Submission submit(ModelHandle model, linalg::Vector sample);

  /// Parks the workers (in-flight batches finish first).
  void pause();
  /// Unparks the workers.
  void resume();

  /// Stops admission, drains every queued request, joins the pool.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Telemetry (live; readable while traffic flows).
  const RuntimeStats& stats() const { return stats_; }
  /// Current queue depth (requests waiting for a worker).
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t worker_count() const { return workers_.size(); }
  const EngineOptions& options() const { return options_; }

 private:
  struct Request {
    ModelHandle model;
    std::vector<linalg::Vector> samples;
    std::promise<std::vector<ScoreResult>> promise;
    support::WallTimer submitted;  ///< started at admission
  };

  void worker_loop();
  void score_group(const ModelSnapshot& model, std::vector<Request*>& group);

  EngineOptions options_;
  obs::Tracer* tracer_ = nullptr;
  RuntimeStats stats_;
  BoundedQueue<Request> queue_;

  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  bool paused_ = false;

  std::atomic<bool> accepting_{true};
  std::once_flag shutdown_once_;
  std::vector<std::thread> workers_;
};

}  // namespace ldafp::runtime
