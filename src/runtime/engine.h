// Multi-threaded batched inference engine.
//
// The serving pipeline is completion-driven: submit(RequestBlock*)
// admits a pooled record that already carries its quantized PackedBatch
// (packed at ingest — no per-sample vectors, no re-quantization) into a
// bounded MPMC queue; a fixed pool of workers pops micro-batches (up to
// max_batch samples, lingering adaptively for stragglers), groups them
// by model snapshot in one stable pass, scores each group through the
// model's BatchScorer, and pushes each finished block onto its
// submitter's CompletionQueue — ringing that consumer's eventfd so an
// epoll loop wakes exactly when replies exist instead of polling
// futures.  Results are bit-identical to calling
// FixedClassifier::classify per sample — batching and lane-merging
// change throughput, never bits (tests/runtime/engine_test.cpp and
// completion_test.cpp hold the cross-check under concurrency).
//
// A thin future-based submit() adapter survives for callers that want
// one-shot request/response without owning a completion queue; it rides
// the same block pipeline with a promise attached.
//
// Overload behaviour is explicit: a full queue rejects the submission
// with SubmitStatus::kQueueFull instead of buffering without bound, and
// shutdown() closes admission, drains every in-flight request, then
// joins the workers — a drained engine never drops a completion.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "linalg/vector.h"
#include "obs/sink.h"
#include "runtime/batch_scorer.h"
#include "runtime/completion.h"
#include "runtime/queue.h"
#include "runtime/registry.h"
#include "runtime/stats.h"
#include "support/error.h"
#include "support/timer.h"

namespace ldafp::runtime {

/// Engine sizing and micro-batching policy.
struct EngineOptions {
  /// Worker threads in the scoring pool (>= 1).
  std::size_t workers = 4;
  /// Bounded request-queue capacity (requests, not samples).
  std::size_t queue_capacity = 1024;
  /// Micro-batch target: a worker scores at most this many samples per
  /// pass (requests are admitted whole, so a single oversized request
  /// still scores in one pass).
  std::size_t max_batch = 64;
  /// Linger budget: the most a worker waits for more requests while its
  /// batch is short.  The effective linger adapts to queue depth —
  /// max_wait_seconds * min(1, (depth + 1) / max_batch) — so an idle
  /// engine answers at near-zero added latency while a loaded one waits
  /// long enough to fill its batch.  0 disables lingering.
  double max_wait_seconds = 500e-6;
  /// Start with workers parked; traffic is admitted (and backpressure
  /// applies) but nothing scores until resume().  Deterministic testing
  /// and warm-start hook.
  bool start_paused = false;

  /// Observability seam (may be null = self-contained).  When
  /// `sink->metrics` is set the engine binds its RuntimeStats handles
  /// into that registry, so "runtime.*" metrics export alongside the
  /// rest of the process; when `sink->tracer` is set each scored batch
  /// records an "engine.batch" span.  Scoring results are identical
  /// either way.
  obs::Sink* sink = nullptr;

  /// Checks the sizing knobs; called once by the engine constructor.
  Status validate() const;
};

/// Admission outcome of submit().
enum class SubmitStatus {
  kAccepted,
  kQueueFull,      ///< backpressure — shed or retry with backoff
  kShuttingDown,   ///< engine no longer admits work
  kInvalidRequest, ///< null model or empty/mismatched sample list
};

/// Short display name of a submit status.
const char* to_string(SubmitStatus status);

/// An admitted (or rejected) request on the adapter path: when status ==
/// kAccepted, `result` resolves to one ScoreResult per submitted sample,
/// in order.
struct Submission {
  SubmitStatus status = SubmitStatus::kInvalidRequest;
  std::future<std::vector<ScoreResult>> result;
};

/// Fixed-pool batched scoring engine over registry model handles.
class InferenceEngine {
 public:
  explicit InferenceEngine(EngineOptions options = {});

  /// Drains and joins (see shutdown()).
  ~InferenceEngine();

  InferenceEngine(const InferenceEngine&) = delete;
  InferenceEngine& operator=(const InferenceEngine&) = delete;

  /// Completion-driven admission (the serve hot path).  `block` must
  /// carry a model handle and a non-empty PackedBatch packed by that
  /// model's scorer; `block->completions` (or `block->promise`) names
  /// the delivery target.  On kAccepted the engine owns the block until
  /// it delivers the completion — exactly once, even across shutdown.
  /// On any other status ownership stays with the caller (recycle or
  /// retry).  Thread-safe.
  SubmitStatus submit(RequestBlock* block);

  /// Future-based adapter: enqueues `samples` for scoring against
  /// `model`.  All samples of a request ride in one queue slot and
  /// resolve through one future.  (Unlike the block path, this packs on
  /// the submitting thread and pays one promise allocation.)
  Submission submit(ModelHandle model, std::vector<linalg::Vector> samples);

  /// Single-sample convenience.
  Submission submit(ModelHandle model, linalg::Vector sample);

  /// Parks the workers (in-flight batches finish first).
  void pause();
  /// Unparks the workers.
  void resume();

  /// Stops admission, drains every queued request, joins the pool.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Telemetry (live; readable while traffic flows).
  const RuntimeStats& stats() const { return stats_; }
  /// Current queue depth (requests waiting for a worker).
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t worker_count() const { return workers_.size(); }
  const EngineOptions& options() const { return options_; }

 private:
  /// Per-worker reusable scratch: the merged packed batch, the scored
  /// results staging area, and the grouping arrays all live for the
  /// worker's lifetime, so the steady-state scoring path allocates
  /// nothing once warm.
  struct WorkerScratch {
    std::vector<RequestBlock*> batch;
    std::vector<const ModelSnapshot*> group_keys;
    std::vector<std::vector<RequestBlock*>> groups;
    PackedBatch merged;
    std::vector<ScoreResult> scored;
  };

  void worker_loop();
  void score_group(const ModelSnapshot& model,
                   std::vector<RequestBlock*>& group,
                   WorkerScratch& scratch);
  /// Hands a scored block to its delivery target (completion queue,
  /// promise, or — when the consumer is gone — the deleter).
  void deliver(RequestBlock* block);

  EngineOptions options_;
  obs::Tracer* tracer_ = nullptr;
  RuntimeStats stats_;
  BoundedQueue<RequestBlock*> queue_;

  std::mutex pause_mu_;
  std::condition_variable pause_cv_;
  bool paused_ = false;

  std::atomic<bool> accepting_{true};
  std::once_flag shutdown_once_;
  std::vector<std::thread> workers_;
};

}  // namespace ldafp::runtime
