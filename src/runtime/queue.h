// Bounded MPMC queue with backpressure — the admission control point of
// the inference engine.
//
// Producers use try_push only: a full queue is an immediate, explicit
// rejection (the caller gets a status and can shed load upstream), never
// an unbounded buffer or a blocked client thread.  Consumers block, and
// pop_until supports the engine's micro-batching policy: take what is
// there, then linger up to a deadline for more to amortize per-batch
// overhead.  close() starts the drain phase — pushes fail fast while
// consumers keep popping until the queue is empty.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

#include "support/error.h"

namespace ldafp::runtime {

/// Outcome of a non-blocking push.
enum class PushResult {
  kOk,      ///< enqueued
  kFull,    ///< at capacity — caller should shed or retry later
  kClosed,  ///< queue closed (engine shutting down)
};

/// Outcome of a timed pop.
enum class PopResult {
  kItem,     ///< one item dequeued
  kTimeout,  ///< deadline hit while empty (queue still open)
  kClosed,   ///< closed and fully drained
};

/// Mutex/condvar bounded queue.  All methods are thread-safe.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    LDAFP_CHECK(capacity > 0, "queue capacity must be positive");
  }

  /// Non-blocking enqueue with explicit backpressure.
  PushResult try_push(T&& item) {
    {
      std::lock_guard lock(mu_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
      if (items_.size() > high_water_) high_water_ = items_.size();
    }
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// Blocking dequeue.  False only when the queue is closed and drained.
  bool pop(T& out) {
    std::unique_lock lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Timed dequeue for the micro-batcher's linger phase: takes an item
  /// if one is (or becomes) available before `deadline`.  A past
  /// deadline still drains already-queued items without waiting.
  template <typename Clock, typename Duration>
  PopResult pop_wait_until(
      T& out, std::chrono::time_point<Clock, Duration> deadline) {
    std::unique_lock lock(mu_);
    ready_.wait_until(lock, deadline,
                      [this] { return closed_ || !items_.empty(); });
    if (!items_.empty()) {
      out = std::move(items_.front());
      items_.pop_front();
      return PopResult::kItem;
    }
    return closed_ ? PopResult::kClosed : PopResult::kTimeout;
  }

  /// Closes the queue: subsequent pushes fail with kClosed, consumers
  /// drain the remaining items and then see pop() == false.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  /// Deepest the queue has ever been (backpressure telemetry).
  std::size_t high_water_mark() const {
    std::lock_guard lock(mu_);
    return high_water_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace ldafp::runtime
