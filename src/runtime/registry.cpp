#include "runtime/registry.h"

#include <mutex>
#include <utility>

namespace ldafp::runtime {

ModelHandle ModelRegistry::install(const std::string& name,
                                   core::FixedClassifier clf) {
  // Version assignment and publish share one writer critical section so
  // concurrent installs under the same name cannot collide; snapshot
  // construction is O(dim) copies, cheap enough to hold the lock.
  std::unique_lock lock(mu_);
  auto& versions = models_[name];
  const std::uint64_t version =
      versions.empty() ? 1 : versions.rbegin()->first + 1;
  auto snapshot =
      std::make_shared<const ModelSnapshot>(name, version, std::move(clf));
  versions[version] = snapshot;
  return snapshot;
}

ModelHandle ModelRegistry::install(const std::string& name,
                                   const hw::RomImage& image,
                                   fixed::RoundingMode mode,
                                   fixed::AccumulatorMode acc) {
  return install(name, image.classifier(mode, acc));
}

ModelHandle ModelRegistry::get(std::string_view name) const {
  std::shared_lock lock(mu_);
  const auto it = models_.find(name);
  if (it == models_.end() || it->second.empty()) return nullptr;
  return it->second.rbegin()->second;
}

ModelHandle ModelRegistry::get(std::string_view name,
                               std::uint64_t version) const {
  std::shared_lock lock(mu_);
  const auto it = models_.find(name);
  if (it == models_.end()) return nullptr;
  const auto vit = it->second.find(version);
  return vit == it->second.end() ? nullptr : vit->second;
}

bool ModelRegistry::remove(const std::string& name) {
  std::unique_lock lock(mu_);
  return models_.erase(name) > 0;
}

std::size_t ModelRegistry::prune(const std::string& name,
                                 std::size_t keep_latest) {
  if (keep_latest == 0) keep_latest = 1;
  std::unique_lock lock(mu_);
  const auto it = models_.find(name);
  if (it == models_.end()) return 0;
  auto& versions = it->second;
  std::size_t dropped = 0;
  while (versions.size() > keep_latest) {
    versions.erase(versions.begin());
    ++dropped;
  }
  return dropped;
}

std::vector<ModelInfo> ModelRegistry::list() const {
  std::shared_lock lock(mu_);
  std::vector<ModelInfo> out;
  out.reserve(models_.size());
  for (const auto& [name, versions] : models_) {
    if (versions.empty()) continue;
    const ModelHandle& latest = versions.rbegin()->second;
    ModelInfo info;
    info.name = name;
    info.latest_version = latest->version;
    info.version_count = versions.size();
    info.dim = latest->classifier.dim();
    info.format = latest->classifier.format().to_string();
    out.push_back(std::move(info));
  }
  return out;
}

std::size_t ModelRegistry::size() const {
  std::shared_lock lock(mu_);
  return models_.size();
}

}  // namespace ldafp::runtime
