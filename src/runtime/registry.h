// Model registry: named, versioned, hot-swappable model snapshots.
//
// Serving separates a model's *bits* (immutable once trained) from the
// *traffic* flowing through it.  The registry holds each installed model
// as a shared_ptr<const ModelSnapshot>; scoring threads resolve a name
// to a handle once per request (a shared-lock map lookup plus a
// refcount bump) and then score lock-free.  Installing a new version is
// an atomic publish under the writer lock — in-flight batches keep the
// snapshot they resolved alive through their handle, so a hot swap
// never invalidates work already admitted (the classic RCU-by-
// shared_ptr serving pattern).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/classifier.h"
#include "hw/rom_image.h"
#include "runtime/batch_scorer.h"

namespace ldafp::runtime {

/// One immutable servable model: identity + the exact classifier bits +
/// the batched evaluator built from them.
struct ModelSnapshot {
  std::string name;
  std::uint64_t version = 0;
  core::FixedClassifier classifier;
  BatchScorer scorer;

  ModelSnapshot(std::string model_name, std::uint64_t model_version,
                core::FixedClassifier clf)
      : name(std::move(model_name)),
        version(model_version),
        classifier(std::move(clf)),
        scorer(classifier) {}
};

/// Shared ownership handle scoring paths hold while they work.
using ModelHandle = std::shared_ptr<const ModelSnapshot>;

/// Identity row for list().
struct ModelInfo {
  std::string name;
  std::uint64_t latest_version = 0;
  std::size_t version_count = 0;
  std::size_t dim = 0;
  std::string format;  ///< "QK.F"
};

/// Thread-safe name/version keyed store of model snapshots.
class ModelRegistry {
 public:
  /// Installs a classifier under `name`, assigning the next version
  /// number (1 for a new name).  Returns the published handle.
  ModelHandle install(const std::string& name, core::FixedClassifier clf);

  /// Installs the classifier a weight-ROM image implements (the
  /// hardware handoff artifact doubles as the serving artifact).
  ModelHandle install(const std::string& name, const hw::RomImage& image,
                      fixed::RoundingMode mode =
                          fixed::RoundingMode::kNearestEven,
                      fixed::AccumulatorMode acc =
                          fixed::AccumulatorMode::kWide);

  /// Latest version of `name`; nullptr when absent.  Takes a view (the
  /// map compares heterogeneously) so the serve hot path resolves
  /// wire-decoded names without materializing a std::string.
  ModelHandle get(std::string_view name) const;

  /// Specific version of `name`; nullptr when absent.
  ModelHandle get(std::string_view name, std::uint64_t version) const;

  /// Drops all versions of `name`.  In-flight handles stay valid; true
  /// when the name existed.
  bool remove(const std::string& name);

  /// Drops versions of `name` older than the latest, keeping
  /// `keep_latest` of them (>= 1).  Returns how many were dropped.
  std::size_t prune(const std::string& name, std::size_t keep_latest = 1);

  /// One row per installed name.
  std::vector<ModelInfo> list() const;

  std::size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  /// std::less<> enables find(string_view) without a temporary string.
  std::map<std::string, std::map<std::uint64_t, ModelHandle>, std::less<>>
      models_;
};

}  // namespace ldafp::runtime
