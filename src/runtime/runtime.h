// Umbrella header of ldafp_runtime — the serving layer.
//
// Train with core::, export bits with hw::RomImage, then serve:
//
//   runtime::ModelRegistry registry;
//   auto model = registry.install("bci", trained_classifier);
//   runtime::InferenceEngine engine({.workers = 4});
//   auto sub = engine.submit(model, features);
//   if (sub.status == runtime::SubmitStatus::kAccepted)
//     auto results = sub.result.get();   // bit-exact datapath labels
#pragma once

#include "runtime/batch_scorer.h"
#include "runtime/engine.h"
#include "runtime/queue.h"
#include "runtime/registry.h"
#include "runtime/stats.h"
