#include "runtime/stats.h"

#include "obs/export.h"

namespace ldafp::runtime {

RuntimeStats::RuntimeStats(obs::MetricsRegistry* registry)
    : owned_(registry != nullptr ? nullptr
                                 : std::make_unique<obs::MetricsRegistry>()),
      registry_(registry != nullptr ? registry : owned_.get()),
      requests_submitted(registry_->counter("runtime.requests_submitted")),
      requests_rejected(registry_->counter("runtime.requests_rejected")),
      requests_completed(registry_->counter("runtime.requests_completed")),
      samples_scored(registry_->counter("runtime.samples_scored")),
      batches_scored(registry_->counter("runtime.batches_scored")),
      queue_depth(registry_->gauge("runtime.queue_depth")),
      queue_capacity(registry_->gauge("runtime.queue_capacity")),
      queue_depth_high_water(
          registry_->gauge("runtime.queue_depth_high_water")),
      queue_wait(registry_->histogram("runtime.queue_wait")),
      batch_execute(registry_->histogram("runtime.batch_execute")),
      request_total(registry_->histogram("runtime.request_total")),
      batch_occupancy(registry_->histogram("runtime.batch_occupancy")),
      mean_batch_size_gauge_(
          registry_->gauge("runtime.mean_batch_size")) {}

double RuntimeStats::mean_batch_size() const {
  const std::uint64_t batches = batches_scored.load();
  if (batches == 0) return 0.0;
  return static_cast<double>(samples_scored.load()) /
         static_cast<double>(batches);
}

obs::MetricsSnapshot RuntimeStats::snapshot() const {
  mean_batch_size_gauge_.set(mean_batch_size());
  return registry_->snapshot();
}

std::string RuntimeStats::report() const {
  return obs::to_table(snapshot());
}

}  // namespace ldafp::runtime
