#include "runtime/stats.h"

#include <cstdio>

#include "support/table.h"

namespace ldafp::runtime {
namespace {

std::string format_count(std::uint64_t v) { return std::to_string(v); }

std::string format_seconds(double s) {
  char buf[32];
  if (s < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", s * 1e6);
  } else if (s < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", s * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", s);
  }
  return buf;
}

void add_histogram_row(support::TextTable& table, const char* stage,
                       const support::LatencyHistogram& hist) {
  const auto snap = hist.snapshot();
  table.add_row({stage, format_count(snap.total_count),
                 format_seconds(snap.mean()),
                 format_seconds(snap.quantile(0.5)),
                 format_seconds(snap.quantile(0.9)),
                 format_seconds(snap.quantile(0.99)),
                 format_seconds(snap.max_seconds)});
}

}  // namespace

double RuntimeStats::mean_batch_size() const {
  const std::uint64_t batches = batches_scored.load(std::memory_order_relaxed);
  if (batches == 0) return 0.0;
  return static_cast<double>(
             samples_scored.load(std::memory_order_relaxed)) /
         static_cast<double>(batches);
}

std::string RuntimeStats::report() const {
  support::TextTable counters({"counter", "value"});
  counters.add_row({"requests submitted",
                    format_count(requests_submitted.load())});
  counters.add_row({"requests rejected (queue full)",
                    format_count(requests_rejected.load())});
  counters.add_row({"requests completed",
                    format_count(requests_completed.load())});
  counters.add_row({"samples scored", format_count(samples_scored.load())});
  counters.add_row({"batches scored", format_count(batches_scored.load())});
  char mean_batch[32];
  std::snprintf(mean_batch, sizeof(mean_batch), "%.2f", mean_batch_size());
  counters.add_row({"mean batch size", mean_batch});
  counters.add_row({"queue depth high-water",
                    format_count(queue_depth_high_water.load())});

  support::TextTable latency(
      {"stage", "count", "mean", "p50", "p90", "p99", "max"});
  add_histogram_row(latency, "queue wait", queue_wait);
  add_histogram_row(latency, "batch execute", batch_execute);
  add_histogram_row(latency, "request total", request_total);

  return counters.to_string() + "\n" + latency.to_string();
}

}  // namespace ldafp::runtime
