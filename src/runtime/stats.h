// Serving telemetry: counters + per-stage latency histograms.
//
// One RuntimeStats block lives in the engine; submit paths and workers
// update it with relaxed atomics and lock-free histogram records, so
// telemetry never serializes the hot path.  report() renders the block
// through support::TextTable for logs/benches.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "support/histogram.h"

namespace ldafp::runtime {

/// Counter block of one InferenceEngine.
class RuntimeStats {
 public:
  // -- submission admission --
  std::atomic<std::uint64_t> requests_submitted{0};  ///< accepted
  std::atomic<std::uint64_t> requests_rejected{0};   ///< queue full
  std::atomic<std::uint64_t> requests_completed{0};
  std::atomic<std::uint64_t> samples_scored{0};

  // -- worker batching --
  std::atomic<std::uint64_t> batches_scored{0};

  /// Deepest the request queue has been (mirrored from the queue at
  /// report time by the engine; kept here so report() is self-contained).
  std::atomic<std::uint64_t> queue_depth_high_water{0};

  // -- per-stage latency (seconds) --
  support::LatencyHistogram queue_wait;     ///< submit -> batch formation
  support::LatencyHistogram batch_execute;  ///< pack + score of one batch
  support::LatencyHistogram request_total;  ///< submit -> promise fulfilled

  /// Mean samples per scored batch (the micro-batcher's achieved
  /// amortization).
  double mean_batch_size() const;

  /// Renders counters and histogram quantiles as an aligned text table.
  std::string report() const;
};

}  // namespace ldafp::runtime
