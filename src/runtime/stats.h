// Serving telemetry: thin views over obs::MetricsRegistry handles.
//
// One RuntimeStats block lives in the engine; submit paths and workers
// update it through lock-free registry handles (relaxed counters,
// log-spaced histograms), so telemetry never serializes the hot path.
// The block either binds into a caller-supplied registry (the
// EngineOptions::sink seam — engine metrics then export alongside
// everything else in the process) or owns a private one.
//
// MIGRATION (PR 5): report()'s hand-assembled tables are deprecated in
// favor of the uniform obs exporters — call snapshot() and render with
// obs::to_table / obs::write_json (obs/export.h), which is exactly what
// the compatibility wrapper report() now does (plus the derived
// "runtime.mean_batch_size" gauge).  report() is kept so existing
// callers (serve_bci, runtime_throughput) keep printing; new code
// should take the snapshot.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.h"

namespace ldafp::runtime {

/// Counter block of one InferenceEngine.
class RuntimeStats {
  // Registry storage first: the public handles below bind into it at
  // construction, and members initialize in declaration order.
  std::unique_ptr<obs::MetricsRegistry> owned_;
  obs::MetricsRegistry* registry_;

 public:
  /// Binds the handles into `registry` ("runtime.*" names); owns a
  /// private registry when null.
  explicit RuntimeStats(obs::MetricsRegistry* registry = nullptr);

  RuntimeStats(const RuntimeStats&) = delete;
  RuntimeStats& operator=(const RuntimeStats&) = delete;

  // -- submission admission --
  obs::Counter& requests_submitted;  ///< accepted
  obs::Counter& requests_rejected;   ///< queue full
  obs::Counter& requests_completed;
  obs::Counter& samples_scored;

  // -- worker batching --
  obs::Counter& batches_scored;

  /// Live request-queue depth (mirrored from the queue by the engine at
  /// submit and batch-formation time), plus the configured capacity —
  /// together they make backpressure visible in every exported
  /// snapshot: utilization is queue_depth / queue_capacity, and a
  /// rejected-requests counter climbing while depth pins at capacity is
  /// the kQueueFull signature bench/serve_load asserts on.
  obs::Gauge& queue_depth;
  obs::Gauge& queue_capacity;

  /// Deepest the request queue has been (mirrored from the queue at
  /// submit time by the engine; kept here so exports are self-contained).
  obs::Gauge& queue_depth_high_water;

  // -- per-stage latency (seconds) --
  obs::Histogram& queue_wait;     ///< submit -> batch formation
  obs::Histogram& batch_execute;  ///< pack + score of one batch
  obs::Histogram& request_total;  ///< submit -> completion delivered

  /// Fill fraction of each formed micro-batch (samples / max_batch,
  /// in (0, 1]); the adaptive linger's efficiency signal — a
  /// distribution pinned low under load means batching is not
  /// amortizing, pinned at 1.0 means the queue always fills the batch.
  obs::Histogram& batch_occupancy;

  /// Mean samples per scored batch (the micro-batcher's achieved
  /// amortization).
  double mean_batch_size() const;

  /// The registry the handles live in (caller-supplied or owned).
  const obs::MetricsRegistry& registry() const { return *registry_; }

  /// Snapshot of the bound registry with the derived
  /// "runtime.mean_batch_size" gauge refreshed first — the uniform
  /// reporting path (render via obs::to_table / obs::write_json).
  obs::MetricsSnapshot snapshot() const;

  /// DEPRECATED compatibility wrapper: renders snapshot() through
  /// obs::to_table.  Prefer snapshot() + an obs exporter.
  std::string report() const;

 private:
  obs::Gauge& mean_batch_size_gauge_;  ///< derived, refreshed by snapshot()
};

}  // namespace ldafp::runtime
