#include "sched/executor.h"

#include <thread>

namespace ldafp::sched {

Executor Executor::pooled(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;  // the standard allows "unknown"
  }
  Executor ex;
  if (threads > 1) ex.pool_ = std::make_shared<ThreadPool>(threads);
  return ex;
}

}  // namespace ldafp::sched
