// Executor: the cheap, copyable seam through which callers opt into
// parallelism.
//
// A default-constructed Executor is *inline* — threads() == 1 and every
// parallel helper degenerates to the plain sequential loop, so embedding
// an Executor in an options struct (BnbOptions, ExperimentConfig)
// changes nothing until a caller explicitly asks for a pool.  A pooled
// Executor shares ownership of one ThreadPool; copies share the same
// workers, so the sweep layer and the branch-and-bound layer can hand
// the same pool around without oversubscribing the machine.
#pragma once

#include <cstddef>
#include <memory>

#include "sched/thread_pool.h"

namespace ldafp::sched {

/// Shared handle on an execution resource (inline or pooled).
class Executor {
 public:
  /// Inline executor: parallel helpers run on the calling thread.
  Executor() = default;

  /// Synonym for the default constructor, for call-site clarity.
  static Executor inline_exec() { return Executor(); }

  /// Executor backed by a pool of `threads` workers.  `threads` == 0
  /// means std::thread::hardware_concurrency(); `threads` <= 1 returns
  /// an inline executor (no pool, identical behaviour to sequential).
  static Executor pooled(std::size_t threads);

  /// Worker count: 1 for inline executors.
  std::size_t threads() const { return pool_ ? pool_->size() : 1; }

  /// True when backed by a pool.
  bool parallel() const { return pool_ != nullptr; }

  /// The pool, or nullptr for inline executors.
  ThreadPool* pool() const { return pool_.get(); }

 private:
  std::shared_ptr<ThreadPool> pool_;
};

}  // namespace ldafp::sched
