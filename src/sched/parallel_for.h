// Data-parallel loop helpers over an Executor, with deterministic
// variants for the experiment harness.
//
// parallel_for covers an index range with either static chunking (one
// contiguous block per worker — lowest overhead, right when iterations
// cost about the same) or dynamic chunking (an atomic cursor hands out
// `grain`-sized slices — right when iteration cost is skewed, e.g. one
// word length's branch-and-bound dwarfing the others).
//
// Determinism: parallel_for promises only that every index runs exactly
// once.  parallel_map additionally stores result i at slot i, and
// parallel_reduce_ordered folds those slots *in index order* on the
// calling thread — so floating-point reductions are bit-identical to the
// sequential loop at any thread count, without requiring associativity.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "sched/executor.h"
#include "sched/task_group.h"

namespace ldafp::sched {

/// How parallel_for carves the index range.
enum class Chunking {
  kStatic,   ///< one contiguous block per worker
  kDynamic,  ///< atomic cursor, `grain` indices at a time
};

/// parallel_for tuning.
struct ForOptions {
  Chunking chunking = Chunking::kStatic;
  std::size_t grain = 1;  ///< dynamic slice size (>= 1)
};

/// Invokes `body(i)` for every i in [begin, end), exactly once each.
/// Inline executors run the plain sequential loop.  `body` must be
/// safe to invoke concurrently on distinct indices.  Exceptions from
/// any invocation abort the remaining chunks' work lazily and the first
/// one is rethrown here.
template <typename Body>
void parallel_for(const Executor& executor, std::size_t begin,
                  std::size_t end, Body&& body, ForOptions options = {}) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (!executor.parallel() || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  TaskGroup group(executor);
  if (options.chunking == Chunking::kStatic) {
    const std::size_t chunks = std::min(executor.threads(), n);
    const std::size_t base = n / chunks;
    const std::size_t extra = n % chunks;  // first `extra` chunks get +1
    std::size_t lo = begin;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t len = base + (c < extra ? 1 : 0);
      const std::size_t hi = lo + len;
      group.run([lo, hi, &body] {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      });
      lo = hi;
    }
  } else {
    const std::size_t grain = options.grain == 0 ? 1 : options.grain;
    auto cursor = std::make_shared<std::atomic<std::size_t>>(begin);
    const std::size_t slices = (n + grain - 1) / grain;
    const std::size_t loops = std::min(executor.threads(), slices);
    for (std::size_t w = 0; w < loops; ++w) {
      group.run([cursor, end, grain, &body] {
        while (true) {
          const std::size_t lo = cursor->fetch_add(grain);
          if (lo >= end) return;
          const std::size_t hi = std::min(lo + grain, end);
          for (std::size_t i = lo; i < hi; ++i) body(i);
        }
      });
    }
  }
  group.wait();
}

/// Evaluates `fn(i)` for i in [0, n) and returns the results in index
/// order.  The value type must be default-constructible and movable.
/// Dynamic chunking with grain 1: map bodies in this repository are
/// coarse (a training fold, a full trial).
template <typename Fn>
auto parallel_map(const Executor& executor, std::size_t n, Fn&& fn)
    -> std::vector<std::decay_t<std::invoke_result_t<Fn&, std::size_t>>> {
  using Value = std::decay_t<std::invoke_result_t<Fn&, std::size_t>>;
  std::vector<Value> out(n);
  parallel_for(
      executor, 0, n, [&](std::size_t i) { out[i] = fn(i); },
      ForOptions{Chunking::kDynamic, 1});
  return out;
}

/// Maps in parallel, folds sequentially in index order:
///   acc = fold(acc, fn(0)); acc = fold(acc, fn(1)); ...
/// Bit-identical to the sequential loop at any thread count.
template <typename Acc, typename Fn, typename Fold>
Acc parallel_reduce_ordered(const Executor& executor, std::size_t n,
                            Acc init, Fn&& fn, Fold&& fold) {
  auto values = parallel_map(executor, n, std::forward<Fn>(fn));
  Acc acc = std::move(init);
  for (auto& value : values) {
    acc = fold(std::move(acc), std::move(value));
  }
  return acc;
}

}  // namespace ldafp::sched
