#include "sched/task_group.h"

#include <chrono>
#include <utility>

namespace ldafp::sched {

TaskGroup::~TaskGroup() {
  try {
    wait();
  } catch (...) {
    // Destructor join is best-effort; wait() is where errors surface.
  }
}

void TaskGroup::record_exception() {
  std::lock_guard lock(error_mu_);
  if (!error_) error_ = std::current_exception();
}

void TaskGroup::run(std::function<void()> task) {
  ThreadPool* pool = executor_.pool();
  if (pool == nullptr) {
    try {
      task();
    } catch (...) {
      record_exception();
    }
    return;
  }
  pending_.fetch_add(1);
  pool->submit([this, task = std::move(task)]() mutable {
    try {
      task();
    } catch (...) {
      record_exception();
    }
    // The final decrement and its notify run under done_mu_: a waiter
    // can then only observe pending_ == 0 once this critical section is
    // entered, and wait()'s closing rendezvous lock keeps the group
    // alive until it is left — without both, wait() could return (and
    // the group be destroyed) while notify_all is still executing.
    std::lock_guard lock(done_mu_);
    if (pending_.fetch_sub(1) == 1) done_cv_.notify_all();
  });
}

void TaskGroup::wait() {
  if (ThreadPool* pool = executor_.pool()) {
    while (pending_.load() != 0) {
      if (pool->try_run_one()) continue;
      // Nothing to help with: the remaining tasks are mid-flight on
      // other threads.  Park briefly; the finisher notifies.
      std::unique_lock lock(done_mu_);
      done_cv_.wait_for(lock, std::chrono::milliseconds(1),
                        [this] { return pending_.load() == 0; });
    }
    // Rendezvous with the finishing task: its decrement-and-notify holds
    // done_mu_, so acquiring the lock here guarantees the notifier has
    // left the group's members before wait() returns and the group may
    // be destroyed.
    std::lock_guard rendezvous(done_mu_);
  }
  std::exception_ptr error;
  {
    std::lock_guard lock(error_mu_);
    std::swap(error, error_);
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace ldafp::sched
