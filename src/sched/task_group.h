// Structured fork/join.
//
// A TaskGroup scopes a set of forked tasks: run() forks, wait() joins
// them all and rethrows the first exception any of them raised.  On an
// inline executor the tasks run immediately on the calling thread (same
// semantics, zero threads).  On a pooled executor the waiting thread
// *helps*: instead of blocking it executes queued pool tasks, which is
// what makes nested groups on one shared pool (a parallel sweep whose
// trials run a parallel branch-and-bound) deadlock-free — every waiter
// is also a worker.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>

#include "sched/executor.h"

namespace ldafp::sched {

/// Fork/join scope.  run() is thread-safe — forked tasks may fork
/// further tasks into their own group (a task that spawns a follow-up
/// keeps the group's pending count above zero until the follow-up
/// finishes, so wait() cannot return early).  wait() may only be called
/// from one thread at a time.
class TaskGroup {
 public:
  explicit TaskGroup(Executor executor) : executor_(std::move(executor)) {}

  /// Joins outstanding tasks; any stored exception is swallowed here
  /// (call wait() first if you care — you should).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Forks one task.  Inline executors run it before returning (its
  /// exception, if any, is captured and deferred to wait() so both
  /// executor kinds behave identically).
  void run(std::function<void()> task);

  /// Joins every forked task, helping the pool while it waits, then
  /// rethrows the first captured exception (the group is reusable
  /// afterwards).
  void wait();

  const Executor& executor() const { return executor_; }

 private:
  void record_exception();

  Executor executor_;
  std::atomic<std::size_t> pending_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::mutex error_mu_;
  std::exception_ptr error_;
};

}  // namespace ldafp::sched
