#include "sched/thread_pool.h"

#include <utility>

#include "support/error.h"

namespace ldafp::sched {
namespace {

// Which pool (if any) the current thread is a worker of, and its index.
thread_local ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  LDAFP_CHECK(threads > 0, "thread pool needs at least one worker");
  queues_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  idle_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // Belt and braces: a submit racing the final pending_ update could in
  // principle leave a task behind; the contract says it must still run.
  while (try_run_one()) {
  }
}

void ThreadPool::submit(std::function<void()> task) {
  LDAFP_CHECK(task != nullptr, "cannot submit a null task");
  if (tls_pool == this) {
    std::lock_guard lock(queues_[tls_index]->mu);
    queues_[tls_index]->tasks.push_back(std::move(task));
  } else {
    std::lock_guard lock(inject_mu_);
    injected_.push_back(std::move(task));
  }
  {
    // The increment is fenced by idle_mu_ so a parking worker either sees
    // pending_ > 0 in its predicate or is already waiting when the notify
    // lands — no lost wakeups.
    std::lock_guard lock(idle_mu_);
    pending_.fetch_add(1);
  }
  idle_cv_.notify_one();
}

bool ThreadPool::pop_own(std::size_t index, Task& out) {
  WorkerQueue& q = *queues_[index];
  std::lock_guard lock(q.mu);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());
  q.tasks.pop_back();
  pending_.fetch_sub(1);
  return true;
}

bool ThreadPool::pop_injected(Task& out) {
  std::lock_guard lock(inject_mu_);
  if (injected_.empty()) return false;
  out = std::move(injected_.front());
  injected_.pop_front();
  pending_.fetch_sub(1);
  return true;
}

bool ThreadPool::steal(std::size_t thief, Task& out) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t victim = (thief + 1 + k) % n;
    if (victim == thief) continue;
    WorkerQueue& q = *queues_[victim];
    std::lock_guard lock(q.mu);
    if (q.tasks.empty()) continue;
    out = std::move(q.tasks.front());
    q.tasks.pop_front();
    pending_.fetch_sub(1);
    steals_.fetch_add(1);
    return true;
  }
  return false;
}

void ThreadPool::run(Task& task) {
  executed_.fetch_add(1);
  task();  // tasks must not throw (TaskGroup wraps user code)
}

bool ThreadPool::try_run_one() {
  Task task;
  const bool is_worker = tls_pool == this;
  const std::size_t self = is_worker ? tls_index : queues_.size();
  if (is_worker && pop_own(self, task)) {
    run(task);
    return true;
  }
  if (pop_injected(task)) {
    run(task);
    return true;
  }
  if (steal(self, task)) {
    run(task);
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_pool = this;
  tls_index = index;
  Task task;
  while (true) {
    if (pop_own(index, task) || pop_injected(task) || steal(index, task)) {
      run(task);
      task = nullptr;
      continue;
    }
    std::unique_lock lock(idle_mu_);
    idle_cv_.wait(lock, [this] {
      return stop_.load() || pending_.load() > 0;
    });
    if (stop_.load() && pending_.load() <= 0) return;
  }
}

}  // namespace ldafp::sched
