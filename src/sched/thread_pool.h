// Fixed-size work-stealing thread pool — the execution substrate shared
// by the parallel branch-and-bound driver and the experiment sweeps.
//
// Shape: one bounded set of workers, each owning a deque.  A worker
// pushes and pops its own deque at the back (LIFO, cache-warm); idle
// workers steal from the front of a victim's deque (FIFO, oldest task
// first, the classic Blumofe–Leiserson discipline).  Tasks submitted
// from outside the pool land in a shared injection queue.  Each deque is
// guarded by its own small mutex rather than a lock-free Chase–Lev
// array: every task in this repository is milliseconds of work (a
// barrier solve, a training fold), so the mutex is invisible in profiles
// and the pool stays trivially ThreadSanitizer-clean.
//
// The pool never blocks a caller: submit() enqueues and returns, and
// try_run_one() lets *any* thread (a TaskGroup waiter, the B&B control
// thread) execute one queued task inline — this "helping" is what makes
// nested fork/join on one shared pool deadlock-free.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ldafp::sched {

/// Fixed-size work-stealing pool.  All methods are thread-safe.
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Finishes every task already submitted, then joins the workers.
  /// Submitting concurrently with destruction is undefined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task.  From a worker thread the task goes to that
  /// worker's own deque (LIFO); from any other thread it goes to the
  /// shared injection queue.
  void submit(std::function<void()> task);

  /// Runs one queued task on the calling thread, if any is available.
  /// Returns false when every queue is empty.  Safe from any thread;
  /// waiters use it to help instead of blocking.
  bool try_run_one();

  /// Tasks executed so far (telemetry).
  std::size_t tasks_executed() const { return executed_.load(); }

  /// Tasks taken from another worker's deque so far (telemetry).
  std::size_t steals() const { return steals_.load(); }

 private:
  using Task = std::function<void()>;

  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t index);
  bool pop_own(std::size_t index, Task& out);
  bool pop_injected(Task& out);
  bool steal(std::size_t thief, Task& out);
  void run(Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  std::mutex inject_mu_;
  std::deque<Task> injected_;

  // Sleep/wake: workers park on `idle_cv_` when a full scan finds
  // nothing; `pending_` counts submitted-but-not-yet-started tasks so
  // the wake predicate is a single load.
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  /// Signed: a task is pushed before pending_ is incremented, so a fast
  /// thief can transiently drive the counter to -1.
  std::atomic<std::ptrdiff_t> pending_{0};
  std::atomic<bool> stop_{false};

  std::atomic<std::size_t> executed_{0};
  std::atomic<std::size_t> steals_{0};
};

}  // namespace ldafp::sched
