#include "stats/descriptive.h"

#include <algorithm>

#include "support/error.h"

namespace ldafp::stats {

linalg::Vector sample_mean(const std::vector<linalg::Vector>& samples) {
  LDAFP_CHECK(!samples.empty(), "sample_mean needs at least one sample");
  linalg::Vector mean(samples.front().size());
  for (const auto& s : samples) {
    LDAFP_CHECK(s.size() == mean.size(), "sample dimension mismatch");
    mean += s;
  }
  mean /= static_cast<double>(samples.size());
  return mean;
}

linalg::Matrix sample_covariance(const std::vector<linalg::Vector>& samples) {
  return sample_covariance(samples, sample_mean(samples));
}

linalg::Matrix sample_covariance(const std::vector<linalg::Vector>& samples,
                                 const linalg::Vector& mean) {
  LDAFP_CHECK(!samples.empty(), "sample_covariance needs >= 1 sample");
  const std::size_t dim = mean.size();
  linalg::Matrix cov(dim, dim);
  for (const auto& s : samples) {
    LDAFP_CHECK(s.size() == dim, "sample dimension mismatch");
    for (std::size_t i = 0; i < dim; ++i) {
      const double di = s[i] - mean[i];
      for (std::size_t j = i; j < dim; ++j) {
        cov(i, j) += di * (s[j] - mean[j]);
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(samples.size());
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = i; j < dim; ++j) {
      cov(i, j) *= inv_n;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

linalg::Matrix between_class_scatter(const linalg::Vector& mu_a,
                                     const linalg::Vector& mu_b) {
  LDAFP_CHECK(mu_a.size() == mu_b.size(), "scatter dimension mismatch");
  const linalg::Vector diff = mu_a - mu_b;
  return linalg::Matrix::outer(diff, diff);
}

linalg::Matrix within_class_scatter(const linalg::Matrix& sigma_a,
                                    const linalg::Matrix& sigma_b) {
  LDAFP_CHECK(sigma_a.rows() == sigma_b.rows() &&
                  sigma_a.cols() == sigma_b.cols(),
              "scatter dimension mismatch");
  linalg::Matrix out = sigma_a;
  out += sigma_b;
  out *= 0.5;
  return out;
}

FeatureRange feature_range(const std::vector<linalg::Vector>& samples) {
  LDAFP_CHECK(!samples.empty(), "feature_range needs >= 1 sample");
  FeatureRange out{samples.front(), samples.front()};
  for (const auto& s : samples) {
    LDAFP_CHECK(s.size() == out.min.size(), "sample dimension mismatch");
    for (std::size_t i = 0; i < s.size(); ++i) {
      out.min[i] = std::min(out.min[i], s[i]);
      out.max[i] = std::max(out.max[i], s[i]);
    }
  }
  return out;
}

}  // namespace ldafp::stats
