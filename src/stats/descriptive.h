// Sample statistics and the LDA scatter matrices (paper Eqs. 1-6).
//
// The paper uses population normalization (1/N, Eqs. 5-6); we follow it so
// that scatter values match Eq. 2 exactly.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ldafp::stats {

/// Mean vector of a sample (rows = observations).  Requires >= 1 row.
linalg::Vector sample_mean(const std::vector<linalg::Vector>& samples);

/// Population covariance (1/N) of a sample around its own mean.
/// Requires >= 1 row.
linalg::Matrix sample_covariance(const std::vector<linalg::Vector>& samples);

/// Population covariance around a supplied mean.
linalg::Matrix sample_covariance(const std::vector<linalg::Vector>& samples,
                                 const linalg::Vector& mean);

/// Between-class scatter S_B = (μ_A - μ_B)(μ_A - μ_B)ᵀ (Eq. 1).
linalg::Matrix between_class_scatter(const linalg::Vector& mu_a,
                                     const linalg::Vector& mu_b);

/// Within-class scatter S_W = (Σ_A + Σ_B)/2 (Eq. 2).
linalg::Matrix within_class_scatter(const linalg::Matrix& sigma_a,
                                    const linalg::Matrix& sigma_b);

/// Per-feature minimum and maximum over a sample.
struct FeatureRange {
  linalg::Vector min;
  linalg::Vector max;
};

/// Computes per-feature min/max.  Requires >= 1 row.
FeatureRange feature_range(const std::vector<linalg::Vector>& samples);

}  // namespace ldafp::stats
