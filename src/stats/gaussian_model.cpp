#include "stats/gaussian_model.h"

#include <cmath>
#include <limits>

#include "linalg/eigen_sym.h"
#include "stats/descriptive.h"
#include "support/error.h"

namespace ldafp::stats {

GaussianModel::GaussianModel(linalg::Vector mu, linalg::Matrix sigma)
    : mu_(std::move(mu)), sigma_(std::move(sigma)) {
  LDAFP_CHECK(sigma_.square() && sigma_.rows() == mu_.size(),
              "gaussian model dimension mismatch");
  LDAFP_CHECK(sigma_.is_symmetric(1e-9 * (1.0 + sigma_.norm_max())),
              "gaussian covariance must be symmetric");
}

GaussianModel GaussianModel::fit(const std::vector<linalg::Vector>& samples,
                                 CovarianceEstimator estimator) {
  linalg::Vector mu = sample_mean(samples);
  linalg::Matrix sigma = estimate_covariance(samples, mu, estimator);
  return GaussianModel(std::move(mu), std::move(sigma));
}

double GaussianModel::marginal_sigma(std::size_t m) const {
  LDAFP_CHECK(m < dim(), "feature index out of range");
  return std::sqrt(std::max(sigma_(m, m), 0.0));
}

double GaussianModel::projection_mean(const linalg::Vector& w) const {
  return linalg::dot(w, mu_);
}

double GaussianModel::projection_variance(const linalg::Vector& w) const {
  return std::max(linalg::quadratic_form(sigma_, w), 0.0);
}

Interval GaussianModel::product_interval(double w_m, std::size_t m,
                                         double beta) const {
  LDAFP_CHECK(beta >= 0.0, "beta must be non-negative");
  const double center = w_m * mu_[m];
  const double half = beta * std::fabs(w_m) * marginal_sigma(m);
  return Interval{center - half, center + half};
}

Interval GaussianModel::projection_interval(const linalg::Vector& w,
                                            double beta) const {
  LDAFP_CHECK(beta >= 0.0, "beta must be non-negative");
  const double center = projection_mean(w);
  const double half = beta * std::sqrt(projection_variance(w));
  return Interval{center - half, center + half};
}

linalg::Vector GaussianModel::sample(support::Rng& rng) const {
  if (sqrt_sigma_.empty()) {
    sqrt_sigma_ = linalg::sqrt_psd(sigma_);
  }
  linalg::Vector z(dim());
  for (std::size_t i = 0; i < dim(); ++i) z[i] = rng.gaussian();
  linalg::Vector out = sqrt_sigma_ * z;
  out += mu_;
  return out;
}

std::vector<linalg::Vector> GaussianModel::sample(std::size_t n,
                                                  support::Rng& rng) const {
  std::vector<linalg::Vector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample(rng));
  return out;
}

linalg::Vector TwoClassModel::mean_difference() const {
  return class_a.mu() - class_b.mu();
}

linalg::Matrix TwoClassModel::within_class_scatter() const {
  return stats::within_class_scatter(class_a.sigma(), class_b.sigma());
}

linalg::Matrix TwoClassModel::between_class_scatter() const {
  return stats::between_class_scatter(class_a.mu(), class_b.mu());
}

double TwoClassModel::fisher_cost(const linalg::Vector& w) const {
  const double t = linalg::dot(mean_difference(), w);
  const double numerator = linalg::quadratic_form(within_class_scatter(), w);
  if (t == 0.0) return std::numeric_limits<double>::infinity();
  return numerator / (t * t);
}

}  // namespace ldafp::stats
