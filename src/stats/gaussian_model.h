// Per-class multivariate Gaussian model (paper Eq. 14) and the
// confidence-interval arithmetic (Eqs. 15-17, 19) behind LDA-FP's
// anti-overflow constraints.
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/shrinkage.h"
#include "support/rng.h"

namespace ldafp::stats {

/// A closed real interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  double width() const { return hi - lo; }
  bool contains(double x) const { return lo <= x && x <= hi; }
};

/// Gaussian model of one class: x ~ N(mu, sigma).
class GaussianModel {
 public:
  /// Builds the model; sigma must be square, symmetric, and match mu.
  GaussianModel(linalg::Vector mu, linalg::Matrix sigma);

  /// Fits mean and covariance from samples (empirical = paper Eqs. 3-6;
  /// Ledoit-Wolf shrinkage for small-sample regimes).
  static GaussianModel fit(const std::vector<linalg::Vector>& samples,
                           CovarianceEstimator estimator =
                               CovarianceEstimator::kEmpirical);

  const linalg::Vector& mu() const { return mu_; }
  const linalg::Matrix& sigma() const { return sigma_; }
  std::size_t dim() const { return mu_.size(); }

  /// Marginal standard deviation of feature m, sqrt(Σ_mm).
  double marginal_sigma(std::size_t m) const;

  /// Mean of the projection y = wᵀx, i.e. wᵀμ (Eq. 19).
  double projection_mean(const linalg::Vector& w) const;

  /// Variance of the projection y = wᵀx, i.e. wᵀΣw (Eq. 19), clipped
  /// at 0 against round-off.
  double projection_variance(const linalg::Vector& w) const;

  /// β-sigma confidence interval of the scalar product w_m·x_m (Eq. 17).
  Interval product_interval(double w_m, std::size_t m, double beta) const;

  /// β-sigma confidence interval of the projection wᵀx (Eq. 19/20).
  Interval projection_interval(const linalg::Vector& w, double beta) const;

  /// Draws one sample (lazily factors Σ^(1/2); Σ only needs to be PSD).
  linalg::Vector sample(support::Rng& rng) const;

  /// Draws n samples.
  std::vector<linalg::Vector> sample(std::size_t n, support::Rng& rng) const;

 private:
  linalg::Vector mu_;
  linalg::Matrix sigma_;
  mutable linalg::Matrix sqrt_sigma_;  // cached Σ^(1/2), empty until used
};

/// The two-class Gaussian picture of Eq. 14 plus the derived scatter
/// matrices — everything the LDA-FP optimizer consumes about the data.
struct TwoClassModel {
  GaussianModel class_a;
  GaussianModel class_b;

  /// μ_A - μ_B, the direction defining t (Eq. 22) and the boundary.
  linalg::Vector mean_difference() const;

  /// Within-class scatter S_W = (Σ_A + Σ_B)/2 (Eq. 2).
  linalg::Matrix within_class_scatter() const;

  /// Between-class scatter (Eq. 1).
  linalg::Matrix between_class_scatter() const;

  /// Fisher ratio wᵀS_W w / (wᵀ(μ_A-μ_B))² — the LDA-FP cost (Eq. 10/21).
  /// Returns +inf when the denominator vanishes.
  double fisher_cost(const linalg::Vector& w) const;
};

}  // namespace ldafp::stats
