// Standard normal distribution functions.
//
// Φ⁻¹ powers the paper's confidence-interval machinery: Eq. 16 maps a
// confidence level ρ to the half-width multiplier β = Φ⁻¹(0.5 + 0.5ρ) used
// in every anti-overflow constraint (Eqs. 17-20).
#pragma once

namespace ldafp::stats {

/// Standard normal density.
double normal_pdf(double x);

/// Standard normal CDF Φ(x), accurate to ~1e-15 via erfc.
double normal_cdf(double x);

/// Inverse standard normal CDF Φ⁻¹(p) for p in (0, 1): Acklam's rational
/// approximation refined with one Halley step (relative error < 1e-13).
/// Throws InvalidArgumentError for p outside (0, 1).
double normal_quantile(double p);

/// β of Eq. 16: the half-width multiplier for a two-sided confidence
/// interval at level rho in [0, 1).  rho=0.9999 (the kind of value the
/// paper intends by "sufficiently large") gives β ≈ 3.89.
/// Throws InvalidArgumentError for rho outside [0, 1).
double confidence_beta(double rho);

}  // namespace ldafp::stats
