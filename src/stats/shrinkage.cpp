#include "stats/shrinkage.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"
#include "support/error.h"

namespace ldafp::stats {

const char* to_string(CovarianceEstimator estimator) {
  switch (estimator) {
    case CovarianceEstimator::kEmpirical: return "empirical";
    case CovarianceEstimator::kLedoitWolf: return "ledoit-wolf";
  }
  return "?";
}

ShrinkageResult ledoit_wolf_covariance(
    const std::vector<linalg::Vector>& samples,
    const linalg::Vector& mean) {
  LDAFP_CHECK(!samples.empty(), "shrinkage needs >= 1 sample");
  const std::size_t p = mean.size();
  const auto n = static_cast<double>(samples.size());

  const linalg::Matrix s = sample_covariance(samples, mean);

  // Target scale μ = tr(S)/p.
  double mu = 0.0;
  for (std::size_t i = 0; i < p; ++i) mu += s(i, i);
  mu /= static_cast<double>(p);

  // d² = ||S - μI||², the dispersion of S around the target.
  double d2 = 0.0;
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < p; ++j) {
      const double deviation = s(i, j) - (i == j ? mu : 0.0);
      d2 += deviation * deviation;
    }
  }

  // b̄² = (1/n²) Σ_k ||x_k x_kᵀ - S||², the estimation noise, clipped to
  // d² (Ledoit-Wolf Lemma 3.3 ensures λ ∈ [0, 1]).
  double b2 = 0.0;
  for (const auto& sample : samples) {
    LDAFP_CHECK(sample.size() == p, "sample dimension mismatch");
    linalg::Vector c = sample;
    c -= mean;
    double norm = 0.0;
    for (std::size_t i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < p; ++j) {
        const double deviation = c[i] * c[j] - s(i, j);
        norm += deviation * deviation;
      }
    }
    b2 += norm;
  }
  b2 /= n * n;
  b2 = std::min(b2, d2);

  ShrinkageResult out;
  out.mu = mu;
  out.lambda = d2 > 0.0 ? b2 / d2 : 0.0;
  out.covariance = s;
  out.covariance *= 1.0 - out.lambda;
  for (std::size_t i = 0; i < p; ++i) {
    out.covariance(i, i) += out.lambda * mu;
  }
  return out;
}

linalg::Matrix estimate_covariance(
    const std::vector<linalg::Vector>& samples, const linalg::Vector& mean,
    CovarianceEstimator estimator) {
  if (estimator == CovarianceEstimator::kEmpirical) {
    return sample_covariance(samples, mean);
  }
  return ledoit_wolf_covariance(samples, mean).covariance;
}

}  // namespace ldafp::stats
