// Ledoit-Wolf shrinkage estimation of covariance matrices.
//
// The paper's BCI workload fits 42x42 covariance matrices from ~112
// trials; the empirical estimator is then badly conditioned and both
// trainers inherit its noise.  Ledoit & Wolf (2004) give the analytic
// optimal convex combination
//     Σ̂ = (1-λ) S + λ μ I,   μ = tr(S)/p,
// minimizing expected Frobenius risk.  Exposed as an optional estimator
// for GaussianModel and the trainers (an ablation in bench/).
#pragma once

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace ldafp::stats {

/// Which covariance estimator a fit should use.
enum class CovarianceEstimator {
  kEmpirical,   ///< population covariance (paper Eqs. 5-6), the default
  kLedoitWolf,  ///< shrinkage toward the scaled identity
};

/// Short display name ("empirical" / "ledoit-wolf").
const char* to_string(CovarianceEstimator estimator);

/// Result of a shrinkage fit.
struct ShrinkageResult {
  linalg::Matrix covariance;  ///< (1-λ) S + λ μ I
  double lambda = 0.0;        ///< shrinkage intensity in [0, 1]
  double mu = 0.0;            ///< shrinkage target scale tr(S)/p
};

/// Ledoit-Wolf estimate around the supplied mean.  Requires >= 1 sample.
ShrinkageResult ledoit_wolf_covariance(
    const std::vector<linalg::Vector>& samples, const linalg::Vector& mean);

/// Covariance by the chosen estimator (empirical = paper Eqs. 5-6).
linalg::Matrix estimate_covariance(
    const std::vector<linalg::Vector>& samples, const linalg::Vector& mean,
    CovarianceEstimator estimator);

}  // namespace ldafp::stats
