#include "stats/streaming.h"

#include "support/error.h"

namespace ldafp::stats {

StreamingMoments::StreamingMoments(std::size_t dim)
    : mean_(dim), scatter_(dim, dim), delta_(dim) {
  LDAFP_CHECK(dim >= 1, "streaming moments need dimension >= 1");
}

void StreamingMoments::add(const linalg::Vector& x) {
  LDAFP_CHECK(x.size() == mean_.size(),
              "streaming sample dimension mismatch");
  ++count_;
  const double inv_n = 1.0 / static_cast<double>(count_);
  const std::size_t m = mean_.size();
  // delta = x − mean_old; mean_new = mean_old + delta / n;
  // scatter += delta (x − mean_new)ᵀ   (the Welford rank-1 form).
  for (std::size_t i = 0; i < m; ++i) delta_[i] = x[i] - mean_[i];
  for (std::size_t i = 0; i < m; ++i) mean_[i] += delta_[i] * inv_n;
  for (std::size_t i = 0; i < m; ++i) {
    const double di = delta_[i];
    for (std::size_t j = 0; j < m; ++j) {
      scatter_(i, j) += di * (x[j] - mean_[j]);
    }
  }
}

void StreamingMoments::merge(const StreamingMoments& other) {
  LDAFP_CHECK(other.mean_.size() == mean_.size(),
              "streaming merge dimension mismatch");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    count_ = other.count_;
    mean_ = other.mean_;
    scatter_ = other.scatter_;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double n = n1 + n2;
  const std::size_t m = mean_.size();
  // Chan et al.: S = S1 + S2 + (n1·n2/n) δδᵀ with δ = mean2 − mean1.
  for (std::size_t i = 0; i < m; ++i) delta_[i] = other.mean_[i] - mean_[i];
  const double w = n1 * n2 / n;
  for (std::size_t i = 0; i < m; ++i) {
    const double di = delta_[i];
    for (std::size_t j = 0; j < m; ++j) {
      scatter_(i, j) += other.scatter_(i, j) + w * di * delta_[j];
    }
  }
  for (std::size_t i = 0; i < m; ++i) {
    mean_[i] += delta_[i] * (n2 / n);
  }
  count_ += other.count_;
}

void StreamingMoments::reset() {
  count_ = 0;
  const std::size_t m = mean_.size();
  for (std::size_t i = 0; i < m; ++i) {
    mean_[i] = 0.0;
    for (std::size_t j = 0; j < m; ++j) scatter_(i, j) = 0.0;
  }
}

linalg::Matrix StreamingMoments::covariance() const {
  LDAFP_CHECK(count_ >= 1, "covariance needs at least one sample");
  const double inv_n = 1.0 / static_cast<double>(count_);
  const std::size_t m = mean_.size();
  linalg::Matrix cov(m, m);
  // Population (1/N) normalization, symmetrized against the tiny
  // asymmetry rank-1 updates accumulate in the low-order bits.
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      const double v = 0.5 * (scatter_(i, j) + scatter_(j, i)) * inv_n;
      cov(i, j) = v;
      cov(j, i) = v;
    }
  }
  return cov;
}

TwoClassModel StreamingTwoClass::model() const {
  LDAFP_CHECK(ready(), "both classes need samples before model()");
  return TwoClassModel{
      GaussianModel(class_a_.mean(), class_a_.covariance()),
      GaussianModel(class_b_.mean(), class_b_.covariance())};
}

}  // namespace ldafp::stats
