// Streaming (rank-1 incremental) estimation of the per-class Gaussian
// statistics the LDA pipeline consumes.
//
// The online-retraining loop (src/model/retrainer.h) sees labeled
// samples one at a time and cannot afford an O(N·M²) re-scan of its
// window per update.  StreamingMoments maintains the sample mean and
// the *centered* scatter matrix with Welford's rank-1 update — O(M²)
// per sample, numerically stable (no catastrophic cancellation of
// E[x²] − E[x]²) — and exposes the population-normalized (1/N, paper
// Eqs. 5-6) covariance at any point.  merge() implements the Chan
// parallel combination so shards accumulated on different threads fold
// into one estimate exactly.
#pragma once

#include <cstddef>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "stats/gaussian_model.h"

namespace ldafp::stats {

/// Welford mean/scatter accumulator for one class.
class StreamingMoments {
 public:
  /// Accumulator for M-dimensional samples.
  explicit StreamingMoments(std::size_t dim);

  std::size_t dim() const { return mean_.size(); }
  std::size_t count() const { return count_; }

  /// Rank-1 update with one sample (must match dim()).
  void add(const linalg::Vector& x);

  /// Folds another accumulator of the same dimension into this one
  /// (Chan et al. pairwise combination — exact, order-independent up to
  /// floating-point association).
  void merge(const StreamingMoments& other);

  /// Forgets everything (count back to 0).
  void reset();

  /// Sample mean; the zero vector while count() == 0.
  const linalg::Vector& mean() const { return mean_; }

  /// Population covariance (1/N normalization, matching
  /// stats::sample_covariance).  Requires count() >= 1.
  linalg::Matrix covariance() const;

 private:
  std::size_t count_ = 0;
  linalg::Vector mean_;
  linalg::Matrix scatter_;  ///< Σ (x−mean)(x−mean)ᵀ, unnormalized
  linalg::Vector delta_;    ///< scratch: x − mean before the update
};

/// The two-class streaming picture: one accumulator per class plus the
/// bridge onto the TwoClassModel every downstream consumer (fit_lda,
/// quantize_lda, Fisher cost) already takes.
class StreamingTwoClass {
 public:
  explicit StreamingTwoClass(std::size_t dim)
      : class_a_(dim), class_b_(dim) {}

  std::size_t dim() const { return class_a_.dim(); }
  StreamingMoments& class_a() { return class_a_; }
  StreamingMoments& class_b() { return class_b_; }
  const StreamingMoments& class_a() const { return class_a_; }
  const StreamingMoments& class_b() const { return class_b_; }

  /// Samples seen across both classes.
  std::size_t count() const { return class_a_.count() + class_b_.count(); }

  /// True once both classes have at least `per_class` samples — the
  /// precondition for model().
  bool ready(std::size_t per_class = 1) const {
    return class_a_.count() >= per_class && class_b_.count() >= per_class;
  }

  void reset() {
    class_a_.reset();
    class_b_.reset();
  }

  /// The Eq. 14 two-class Gaussian model of everything seen so far.
  /// Requires ready().
  TwoClassModel model() const;

 private:
  StreamingMoments class_a_;
  StreamingMoments class_b_;
};

}  // namespace ldafp::stats
