// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// check trailing every versioned model file (DESIGN.md §13).
//
// The model loader needs to distinguish "this file was damaged in
// transit" (kBadCrc) from "this file was cut short" (kTruncated), so
// the checksum covers every byte of the file body and is verified
// before any section payload is interpreted.  The implementation is the
// standard table-driven byte-at-a-time loop; `seed` lets callers chain
// incremental updates (crc32(b, n, crc32(a, m)) == crc32(a||b)).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ldafp::support {

/// CRC-32 of `size` bytes starting at `data`.  `seed` is the running
/// checksum from a previous call (0 starts a fresh computation); the
/// pre/post inversion is handled internally, so seeds compose by simply
/// passing the previous return value.
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

/// Convenience over a byte vector.
std::uint32_t crc32(const std::vector<std::uint8_t>& bytes,
                    std::uint32_t seed = 0);

}  // namespace ldafp::support
