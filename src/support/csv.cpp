#include "support/csv.h"

#include <fstream>
#include <sstream>

#include "support/error.h"
#include "support/str.h"

namespace ldafp::support {
namespace {

bool is_comment_or_blank(const std::string& line) {
  const std::string t = trim(line);
  return t.empty() || t[0] == '#';
}

}  // namespace

CsvTable parse_csv(const std::string& content, bool has_header) {
  CsvTable table;
  std::istringstream stream(content);
  std::string line;
  bool header_pending = has_header;
  std::size_t line_no = 0;
  while (std::getline(stream, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (is_comment_or_blank(line)) continue;
    const auto cells = split(line, ',');
    if (header_pending) {
      for (const auto& cell : cells) table.header.push_back(trim(cell));
      header_pending = false;
      continue;
    }
    std::vector<double> row;
    row.reserve(cells.size());
    for (const auto& cell : cells) {
      double value = 0.0;
      if (!parse_double(cell, value)) {
        throw IoError("csv: non-numeric cell '" + cell + "' on line " +
                      std::to_string(line_no));
      }
      row.push_back(value);
    }
    if (!table.rows.empty() && row.size() != table.rows.front().size()) {
      throw IoError("csv: ragged row on line " + std::to_string(line_no));
    }
    if (!table.header.empty() && row.size() != table.header.size()) {
      throw IoError("csv: row width does not match header on line " +
                    std::to_string(line_no));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

CsvTable read_csv(const std::string& path, bool has_header) {
  std::ifstream file(path);
  if (!file) throw IoError("csv: cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return parse_csv(buffer.str(), has_header);
}

void write_csv(const std::string& path, const CsvTable& table, int digits) {
  std::ofstream file(path);
  if (!file) throw IoError("csv: cannot create '" + path + "'");
  if (!table.header.empty()) {
    file << join(table.header, ",") << '\n';
  }
  for (const auto& row : table.rows) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) file << ',';
      file << format_double(row[i], digits);
    }
    file << '\n';
  }
  if (!file) throw IoError("csv: write failed for '" + path + "'");
}

}  // namespace ldafp::support
