// Minimal CSV reader/writer for dataset import/export.
//
// Supports the subset of CSV our datasets need: comma separation, optional
// header row, '#'-prefixed comment lines, no quoting.  All cells in data
// rows must parse as doubles.
#pragma once

#include <string>
#include <vector>

namespace ldafp::support {

/// A parsed numeric CSV file: optional header names plus a dense row-major
/// table of doubles (all rows share the same width).
struct CsvTable {
  std::vector<std::string> header;          ///< empty when has_header=false
  std::vector<std::vector<double>> rows;    ///< each row has `cols()` cells

  /// Number of data rows.
  std::size_t size() const { return rows.size(); }
  /// Number of columns (0 for an empty table).
  std::size_t cols() const { return rows.empty() ? header.size()
                                                 : rows.front().size(); }
};

/// Reads a numeric CSV file.  Throws IoError on missing file, ragged rows,
/// or non-numeric cells.  When `has_header` is true the first
/// non-comment line is treated as column names.
CsvTable read_csv(const std::string& path, bool has_header);

/// Parses CSV content from a string (same rules as read_csv).
CsvTable parse_csv(const std::string& content, bool has_header);

/// Writes a table to `path`.  Throws IoError when the file cannot be
/// created.  `digits` controls printed precision.
void write_csv(const std::string& path, const CsvTable& table,
               int digits = 9);

}  // namespace ldafp::support
