#include "support/error.h"

#include <sstream>

namespace ldafp {

void throw_if_error(const Status& status) {
  if (!status.ok()) throw InvalidArgumentError(status.message());
}

}  // namespace ldafp

namespace ldafp::detail {

void throw_invalid_argument(const char* expr, const char* file, int line,
                            const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgumentError(os.str());
}

}  // namespace ldafp::detail
