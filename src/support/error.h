// Error handling primitives shared by every ldafp library.
//
// The library reports contract violations (bad arguments, broken
// preconditions) and environmental failures (missing files, malformed
// input) through exceptions derived from ldafp::Error, following the
// "RAII + exceptions" style of the C++ Core Guidelines.  Numerical
// non-convergence is *not* an exception: solvers return a status enum so
// callers can react to anytime behaviour.
#pragma once

#include <stdexcept>
#include <string>

namespace ldafp {

/// Base class of all exceptions thrown by the ldafp libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad dimension, out-of-range
/// argument, ...).  These indicate programming errors at the call site.
class InvalidArgumentError : public Error {
 public:
  explicit InvalidArgumentError(const std::string& what) : Error(what) {}
};

/// A numerical routine detected an input on which it cannot make progress
/// (singular matrix passed to a solve, non-PSD covariance, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// An I/O operation failed (missing file, malformed CSV row, ...).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Value-type validation outcome: either ok() or an error message.
/// Options structs expose `Status validate() const` so configuration
/// checking is data, not control flow — callers can inspect a rejection
/// without try/catch, and public entry points raise a non-ok status as
/// InvalidArgumentError via throw_if_error() exactly once.
class Status {
 public:
  /// Default-constructed status is ok.
  Status() = default;

  static Status invalid(std::string message) {
    return Status(std::move(message));
  }

  bool ok() const { return message_.empty(); }
  explicit operator bool() const { return ok(); }

  /// Empty for ok statuses.
  const std::string& message() const { return message_; }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::string message_;
};

/// Raises a non-ok status as InvalidArgumentError; no-op when ok.
void throw_if_error(const Status& status);

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* expr, const char* file,
                                         int line, const std::string& msg);
}  // namespace detail

}  // namespace ldafp

/// Precondition check: throws ldafp::InvalidArgumentError when `cond` is
/// false.  Always enabled (these guard public API boundaries, not hot inner
/// loops).
#define LDAFP_CHECK(cond, msg)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::ldafp::detail::throw_invalid_argument(#cond, __FILE__, __LINE__,    \
                                              (msg));                       \
    }                                                                       \
  } while (false)
