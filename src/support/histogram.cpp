#include "support/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ldafp::support {
namespace {

/// Static table of bucket upper edges (exclusive).  Built once; lookup
/// afterwards is read-only and thread-safe.
const std::array<double, LatencyHistogram::kBuckets - 1>& edge_table() {
  static const auto edges = [] {
    std::array<double, LatencyHistogram::kBuckets - 1> e{};
    for (int i = 0; i < LatencyHistogram::kBuckets - 1; ++i) {
      e[i] = LatencyHistogram::kMinSeconds *
             std::pow(10.0, static_cast<double>(i + 1) /
                                LatencyHistogram::kPerDecade);
    }
    return e;
  }();
  return edges;
}

std::uint64_t to_nanos(double seconds) {
  return seconds <= 0.0 ? 0
                        : static_cast<std::uint64_t>(seconds * 1e9 + 0.5);
}

}  // namespace

int LatencyHistogram::bucket_index(double seconds) {
  const auto& edges = edge_table();
  const auto it = std::upper_bound(edges.begin(), edges.end(), seconds);
  return static_cast<int>(it - edges.begin());
}

double LatencyHistogram::bucket_upper_edge(int i) {
  if (i >= kBuckets - 1) return std::numeric_limits<double>::infinity();
  return edge_table()[static_cast<std::size_t>(i < 0 ? 0 : i)];
}

void LatencyHistogram::record(double seconds) {
  const int bucket = bucket_index(seconds);
  counts_[static_cast<std::size_t>(bucket)].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t nanos = to_nanos(seconds);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  std::uint64_t seen = max_nanos_.load(std::memory_order_relaxed);
  while (nanos > seen &&
         !max_nanos_.compare_exchange_weak(seen, nanos,
                                           std::memory_order_relaxed)) {
  }
}

std::uint64_t LatencyHistogram::count() const {
  return count_.load(std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::snapshot() const {
  Snapshot snap;
  for (int i = 0; i < kBuckets; ++i) {
    snap.counts[static_cast<std::size_t>(i)] =
        counts_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
    snap.total_count += snap.counts[static_cast<std::size_t>(i)];
  }
  snap.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  snap.max_seconds =
      static_cast<double>(max_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

void LatencyHistogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_nanos_.store(0, std::memory_order_relaxed);
  max_nanos_.store(0, std::memory_order_relaxed);
}

double LatencyHistogram::Snapshot::mean() const {
  return total_count == 0 ? 0.0
                          : sum_seconds / static_cast<double>(total_count);
}

double LatencyHistogram::Snapshot::quantile(double q) const {
  if (total_count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(total_count)));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts[static_cast<std::size_t>(i)];
    if (seen >= rank && rank > 0) {
      // The overflow bucket has no finite edge; the observed max is the
      // tightest bound we track.  Same for q=1 anywhere.
      if (i == kBuckets - 1 || q >= 1.0) return max_seconds;
      // The observed max also caps every quantile (a bucket's upper
      // edge can overshoot it within the top bucket).
      return std::min(bucket_upper_edge(i), max_seconds);
    }
  }
  return max_seconds;
}

}  // namespace ldafp::support
