// Lock-free latency histogram for the serving runtime's hot path.
//
// Companion of WallTimer (timer.h): workers time a stage with the
// monotonic clock and record the elapsed seconds here.  The bucket
// layout is fixed at compile time — log-spaced edges from 100 ns to
// 100 s, five buckets per decade — so record() is a binary search over
// a static edge table plus relaxed atomic increments: no allocation, no
// locks, safe to call concurrently from any number of threads.
//
// Aggregation (percentiles, mean) happens on a Snapshot taken outside
// the hot path; percentile values are bucket upper edges, i.e. accurate
// to one log-spaced bucket (~58% relative width), which is the right
// fidelity for throughput dashboards.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ldafp::support {

/// Concurrent fixed-bucket log-spaced histogram of durations in seconds.
class LatencyHistogram {
 public:
  /// Bucket count: kPerDecade buckets per decade across
  /// [kMinSeconds, kMaxSeconds), plus one overflow bucket at the top.
  static constexpr int kPerDecade = 5;
  static constexpr int kDecades = 9;  // 1e-7 s .. 1e2 s
  static constexpr int kBuckets = kPerDecade * kDecades + 1;
  static constexpr double kMinSeconds = 1e-7;

  LatencyHistogram() = default;

  // The atomic counters pin the histogram in place; share by reference.
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one duration.  Negative values clamp to the first bucket,
  /// values past the table into the overflow bucket.  Lock-free,
  /// allocation-free.
  void record(double seconds);

  /// Number of recorded durations so far.
  std::uint64_t count() const;

  /// Upper edge (exclusive) of bucket `i` in seconds; the overflow
  /// bucket reports +infinity.
  static double bucket_upper_edge(int i);

  /// Index of the bucket a duration falls into.
  static int bucket_index(double seconds);

  /// Immutable copy of the counters for aggregation off the hot path.
  struct Snapshot {
    std::array<std::uint64_t, kBuckets> counts{};
    std::uint64_t total_count = 0;
    double sum_seconds = 0.0;
    double max_seconds = 0.0;

    /// Mean recorded duration (0 when empty).
    double mean() const;

    /// Upper edge of the bucket holding the q-quantile (q in [0,1]);
    /// the overflow bucket and q=1 report the exact observed max.
    double quantile(double q) const;
  };

  /// Takes a consistent-enough snapshot for reporting (individual
  /// counters are read atomically; cross-counter skew of a few in-flight
  /// records is acceptable for stats output).
  Snapshot snapshot() const;

  /// Zeroes all counters.  Not linearizable against concurrent record()
  /// calls; intended for quiescent periods (e.g. between bench phases).
  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> counts_{};
  std::atomic<std::uint64_t> count_{0};
  /// Sum/max in integer nanoseconds so plain fetch_add/CAS work on
  /// every toolchain (atomic<double>::fetch_add is C++20 but spotty).
  std::atomic<std::uint64_t> sum_nanos_{0};
  std::atomic<std::uint64_t> max_nanos_{0};
};

}  // namespace ldafp::support
