#include "support/json.h"

#include <cmath>
#include <cstdio>

#include "support/error.h"

namespace ldafp::support {

void JsonWriter::before_value() {
  if (depth_.empty()) {
    LDAFP_CHECK(!wrote_top_, "json: only one top-level value allowed");
    wrote_top_ = true;
    return;
  }
  if (depth_.back() == Scope::kObject) {
    LDAFP_CHECK(pending_key_, "json: object members need a key first");
    pending_key_ = false;
    return;
  }
  if (need_comma_.back()) out_ << ',';
  need_comma_.back() = true;
}

void JsonWriter::begin_object() {
  before_value();
  out_ << '{';
  depth_.push_back(Scope::kObject);
  need_comma_.push_back(false);
}

void JsonWriter::end_object() {
  LDAFP_CHECK(!depth_.empty() && depth_.back() == Scope::kObject &&
                  !pending_key_,
              "json: end_object without matching begin_object");
  out_ << '}';
  depth_.pop_back();
  need_comma_.pop_back();
}

void JsonWriter::begin_array() {
  before_value();
  out_ << '[';
  depth_.push_back(Scope::kArray);
  need_comma_.push_back(false);
}

void JsonWriter::end_array() {
  LDAFP_CHECK(!depth_.empty() && depth_.back() == Scope::kArray,
              "json: end_array without matching begin_array");
  out_ << ']';
  depth_.pop_back();
  need_comma_.pop_back();
}

void JsonWriter::key(const std::string& name) {
  LDAFP_CHECK(!depth_.empty() && depth_.back() == Scope::kObject &&
                  !pending_key_,
              "json: key() is only valid directly inside an object");
  if (need_comma_.back()) out_ << ',';
  need_comma_.back() = true;
  write_string(name);
  out_ << ':';
  pending_key_ = true;
}

void JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no inf/nan
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
}

void JsonWriter::value(std::int64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ << v;
}

void JsonWriter::value(bool v) {
  before_value();
  out_ << (v ? "true" : "false");
}

void JsonWriter::value(const std::string& v) {
  before_value();
  write_string(v);
}

void JsonWriter::write_string(const std::string& s) {
  out_ << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out_ << "\\\""; break;
      case '\\': out_ << "\\\\"; break;
      case '\b': out_ << "\\b"; break;
      case '\f': out_ << "\\f"; break;
      case '\n': out_ << "\\n"; break;
      case '\r': out_ << "\\r"; break;
      case '\t': out_ << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
  out_ << '"';
}

}  // namespace ldafp::support
